//! Property tests tying the printer and parser together: every
//! generated formula pretty-prints to text the parser reads back to the
//! same AST. Catches precedence and parenthesization bugs in either
//! direction.

use mcv::logic::{clausify, parse_formula, Formula, FreshVars, Sort, Term, Var};
use proptest::prelude::*;

/// Binder variables may carry sorts: `fa(a:E)` prints and reparses them.
fn binder_var_strategy() -> impl Strategy<Value = Var> {
    prop_oneof!["[a-d]".prop_map(Var::unsorted), "[a-d]".prop_map(|n| Var::new(n, Sort::new("E"))),]
}

/// Term-position variables must be unsorted: the printer renders only
/// the name there, so a sort annotation cannot survive a round trip.
fn term_var_strategy() -> impl Strategy<Value = Var> {
    "[a-d]".prop_map(Var::unsorted)
}

/// Nullary constants are excluded: `c()` prints as the bare name `c`,
/// which the parser (faithfully to the thesis' scripts, where bare
/// identifiers are variables) reads back as a variable. The asymmetry
/// is pinned by `constant_print_parse_asymmetry` below.
fn term_strategy() -> impl Strategy<Value = Term> {
    let leaf = term_var_strategy().prop_map(Term::var).boxed();
    leaf.prop_recursive(2, 8, 3, |inner| {
        prop::collection::vec(inner, 1..3).prop_map(|args| Term::app("f", args))
    })
}

#[test]
fn constant_print_parse_asymmetry() {
    // A nullary application prints as a bare name…
    let c = Term::constant("k0");
    assert_eq!(c.to_string(), "k0");
    // …which the parser reads as a variable (bare identifiers are
    // variables in the Chapter 5 surface syntax). Writing `k0()` keeps
    // it a constant.
    assert_eq!(mcv::logic::parse_term("k0").unwrap(), Term::var(Var::unsorted("k0")));
    assert_eq!(mcv::logic::parse_term("k0()").unwrap(), c);
}

fn formula_strategy() -> impl Strategy<Value = Formula> {
    let atom = prop_oneof![
        prop::collection::vec(term_strategy(), 0..3).prop_map(|args| Formula::pred("P", args)),
        (term_strategy(), term_strategy()).prop_map(|(l, r)| Formula::Eq(l, r)),
        Just(Formula::True),
        Just(Formula::False),
    ];
    atom.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::or(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::implies(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::iff(a, b)),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| Formula::ite(c, t, e)),
            (prop::collection::vec(binder_var_strategy(), 1..3), inner.clone())
                .prop_map(|(vs, f)| Formula::forall(dedup_vars(vs), f)),
            (prop::collection::vec(binder_var_strategy(), 1..3), inner)
                .prop_map(|(vs, f)| Formula::exists(dedup_vars(vs), f)),
        ]
    })
}

fn dedup_vars(vs: Vec<Var>) -> Vec<Var> {
    let mut seen = std::collections::BTreeSet::new();
    vs.into_iter().filter(|v| seen.insert(v.name().clone())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn printed_formulas_reparse_to_the_same_ast(f in formula_strategy()) {
        let text = f.to_string();
        let reparsed = parse_formula(&text)
            .unwrap_or_else(|e| panic!("printed text failed to parse: {text:?}: {e}"));
        prop_assert_eq!(reparsed, f);
    }

    #[test]
    fn clausification_is_stable_across_round_trip(f in formula_strategy()) {
        // Clausifying the original and the round-tripped formula with a
        // fresh generator each yields the same clause count and shapes.
        let text = f.to_string();
        let reparsed = parse_formula(&text).expect("round trip");
        let a = clausify(&f, &mut FreshVars::new());
        let b = clausify(&reparsed, &mut FreshVars::new());
        prop_assert_eq!(a.len(), b.len());
        for (ca, cb) in a.iter().zip(&b) {
            prop_assert_eq!(ca.literals.len(), cb.literals.len());
        }
    }

    #[test]
    fn terms_round_trip(t in term_strategy()) {
        let text = t.to_string();
        let reparsed = mcv::logic::parse_term(&text)
            .unwrap_or_else(|e| panic!("printed term failed to parse: {text:?}: {e}"));
        prop_assert_eq!(reparsed, t);
    }
}
