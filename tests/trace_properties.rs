//! Property tests of the causal-tracing subsystem: same-seed runs
//! record byte-identical traces once wall-clock is stripped, the
//! happens-before checker accepts every clean-run trace, and it
//! rejects hand-mutated ones (deliver before its send, a Lamport clock
//! regression, a commit ack before the force that covers it).

use mcv::chaos::{run_chaos, ChaosConfig, FaultPlan, FaultSchedule};
use mcv::engine::{Engine, EngineConfig};
use mcv::trace::{check, CausalTrace, EventKind};
use proptest::prelude::*;

fn traced_chaos(seed: u64) -> CausalTrace {
    let cfg = ChaosConfig {
        seed,
        schedule: FaultSchedule::generate(seed, &FaultPlan::tolerated(4, 300)),
        ..ChaosConfig::default()
    };
    let (_, mut trace) = mcv::trace::record_trace(None, || run_chaos(&cfg));
    trace.strip_wall();
    trace
}

/// A deterministic single-threaded engine trace: per-commit forcing
/// (no writer thread) and all transactions issued from this thread, so
/// event order is a pure function of the workload.
fn traced_engine() -> CausalTrace {
    let (_, mut trace) = mcv::trace::record_trace(None, || {
        let engine = Engine::new(EngineConfig { group_commit: false, ..Default::default() });
        for i in 0..5i64 {
            let mut t = engine.begin();
            t.write("X", i).expect("write");
            t.write(&format!("Y{i}"), i).expect("write");
            t.commit().expect("commit");
        }
        let mut t = engine.begin();
        t.write("X", 99).expect("write");
        t.abort();
    });
    trace.strip_wall();
    trace
}

#[test]
fn same_seed_chaos_runs_record_byte_identical_traces() {
    let a = traced_chaos(42);
    let b = traced_chaos(42);
    assert!(!a.is_empty());
    assert_eq!(a.to_jsonl(), b.to_jsonl());
}

#[test]
fn same_workload_engine_runs_record_byte_identical_traces() {
    let a = traced_engine();
    let b = traced_engine();
    assert!(!a.is_empty());
    assert_eq!(a.to_jsonl(), b.to_jsonl());
}

#[test]
fn mutated_ack_before_force_is_rejected() {
    let mut t = traced_engine();
    assert!(check(&t).ok(), "{}", check(&t).summary());
    // Shrink every force's coverage to 0 records: commit acks now cite
    // forces that never covered their commit records.
    for e in &mut t.events {
        if let EventKind::WalForce { upto, .. } = &mut e.kind {
            *upto = 0;
        }
    }
    let report = check(&t);
    assert!(!report.ok());
    assert!(report.violations.iter().any(|v| v.rule == "force_before_ack"), "{}", report.summary());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Clean runs — any seed, tolerated faults — always satisfy
    /// happens-before.
    #[test]
    fn hb_checker_accepts_clean_run_traces(seed in 0u64..200) {
        let t = traced_chaos(seed);
        prop_assert!(!t.is_empty());
        let report = check(&t);
        prop_assert!(report.ok(), "{}", report.summary());
    }

    /// Rewiring a deliver's cause to a *later* event id (a deliver
    /// before its send in the id order) is always caught.
    #[test]
    fn mutated_deliver_before_send_is_rejected(seed in 0u64..100) {
        let mut t = traced_chaos(seed);
        let last_id = t.events.last().map(|e| e.id).unwrap_or(0);
        let deliver = t
            .events
            .iter_mut()
            .find(|e| matches!(e.kind, EventKind::Deliver { .. }) && e.id < last_id);
        if let Some(d) = deliver {
            // No deliver to corrupt under some seeds — vacuously fine.
            d.cause = Some(last_id);
            let report = check(&t);
            prop_assert!(!report.ok());
        }
    }

    /// Zeroing one event's Lamport clock regresses its site's clock —
    /// always caught (any event after the first on its site works).
    #[test]
    fn mutated_clock_regression_is_rejected(seed in 0u64..100) {
        let mut t = traced_chaos(seed);
        if let Some(e) = t.events.iter_mut().find(|e| e.seq > 1) {
            e.lamport = 0;
            let report = check(&t);
            prop_assert!(!report.ok());
            prop_assert!(
                report
                    .violations
                    .iter()
                    .any(|v| v.rule.contains("lamport") || v.rule.contains("cause")),
                "{}",
                report.summary()
            );
        }
    }
}
