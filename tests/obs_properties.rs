//! Property tests of the observability subsystem: JSON round-trips of
//! [`RunReport`]s are the identity, serialization is stable, and the
//! metrics a simulation run emits are a pure function of the scenario —
//! two identically-seeded runs report identical counters.

use mcv::commit::{run_scenario, CrashPoint, Scenario};
use mcv::obs::{Histogram, MetricsRegistry, RunReport, SpanStats};
use proptest::prelude::*;

fn key_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9._]{0,11}"
}

/// Printable ASCII, including quotes and backslashes, plus a newline —
/// exercises the JSON string escaper.
fn text_strategy() -> impl Strategy<Value = String> {
    "[ -~\n]{0,16}"
}

fn report_strategy() -> impl Strategy<Value = RunReport> {
    // The vendored proptest has no btree_map strategy: generate vecs of
    // pairs and collect (later duplicates of a key win, which is fine).
    let facts = prop::collection::vec((key_strategy(), text_strategy()), 0..4)
        .prop_map(|kvs| kvs.into_iter().collect::<std::collections::BTreeMap<_, _>>());
    let counters = prop::collection::vec((key_strategy(), any::<u64>()), 0..5)
        .prop_map(|kvs| kvs.into_iter().collect::<std::collections::BTreeMap<_, _>>());
    // Halves of i32s serialize exactly and re-parse bit-identically.
    let gauges = prop::collection::vec(
        (key_strategy(), (-1_000_000i32..1_000_000).prop_map(|n| f64::from(n) / 2.0)),
        0..4,
    )
    .prop_map(|kvs| kvs.into_iter().collect::<std::collections::BTreeMap<_, _>>());
    let histograms =
        prop::collection::vec((key_strategy(), prop::collection::vec(0u64..100_000, 1..8)), 0..3)
            .prop_map(|kvs| kvs.into_iter().collect::<std::collections::BTreeMap<_, _>>());
    let spans =
        prop::collection::vec(
            (key_strategy(), 1u64..1000, any::<u64>())
                .prop_map(|(name, calls, wall_ns)| SpanStats { name, calls, wall_ns }),
            0..4,
        );
    (facts, counters, gauges, histograms, spans, any::<u64>()).prop_map(
        |(facts, counters, gauges, histograms, spans, elapsed)| {
            let reg = MetricsRegistry::new();
            for (k, v) in &counters {
                reg.add(k, *v);
            }
            for (k, v) in &gauges {
                reg.set_gauge(k, *v);
            }
            for (k, values) in &histograms {
                for v in values {
                    reg.record(k, *v);
                }
            }
            let mut r = RunReport::new("prop");
            r.facts = facts;
            r.metrics = reg.snapshot();
            r.spans = spans;
            r.wall.elapsed_ns = elapsed;
            r
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// JSON -> struct -> JSON is the identity, and the intermediate
    /// struct equals the original (both pretty and JSONL forms).
    #[test]
    fn run_report_json_round_trips(r in report_strategy()) {
        let pretty = r.to_json();
        let back = RunReport::from_json(&pretty).expect("parse pretty");
        prop_assert_eq!(&back, &r);
        prop_assert_eq!(back.to_json(), pretty);

        let line = r.to_jsonl_line();
        prop_assert!(!line.contains('\n'));
        let back = RunReport::from_json(&line).expect("parse jsonl");
        prop_assert_eq!(&back, &r);
        prop_assert_eq!(back.to_jsonl_line(), line);
    }

    /// Histograms merge losslessly: recording everything in one
    /// histogram equals merging two halves.
    #[test]
    fn histogram_merge_is_concatenation(
        xs in prop::collection::vec(0u64..1_000_000, 0..20),
        ys in prop::collection::vec(0u64..1_000_000, 0..20),
    ) {
        let mut all = Histogram::default();
        for v in xs.iter().chain(&ys) {
            all.record(*v);
        }
        let mut a = Histogram::default();
        for v in &xs {
            a.record(*v);
        }
        let mut b = Histogram::default();
        for v in &ys {
            b.record(*v);
        }
        a.merge(&b);
        prop_assert_eq!(a, all);
    }
}

/// The determinism contract: two identically-seeded simulation runs
/// produce byte-identical reports once wall-clock fields are stripped.
#[test]
fn same_seed_runs_report_identical_metrics() {
    let scenario = Scenario {
        coordinator_crash: Some(CrashPoint::AfterVotes),
        recovery_at: Some(5_000),
        seed: 7,
        ..Scenario::default()
    };
    let run = || {
        let (_, data) = mcv::obs::collect(|| run_scenario(&scenario));
        let mut report = data.into_report("same-seed");
        report.strip_wall();
        report
    };
    let a = run();
    let b = run();
    assert!(a.metrics.counter("commit.3pc.runs") == 1);
    assert!(a.metrics.counter("sim.events") > 0);
    assert_eq!(a, b);
    assert_eq!(a.to_json(), b.to_json());
}

/// Stripping wall-clock removes exactly the non-deterministic fields:
/// a report with only `wall.*` gauges strips to an empty gauge map.
#[test]
fn strip_wall_drops_wall_prefixed_metrics_only() {
    let reg = MetricsRegistry::new();
    reg.add("prover.generated", 10);
    reg.set_gauge("wall.prover_ns", 123456.0);
    reg.set_gauge("queue.depth", 4.0);
    let mut r = RunReport::new("strip");
    r.metrics = reg.snapshot();
    r.wall.elapsed_ns = 999;
    r.strip_wall();
    assert_eq!(r.wall.elapsed_ns, 0);
    assert_eq!(r.metrics.counter("prover.generated"), 10);
    assert_eq!(r.metrics.gauge("queue.depth"), Some(4.0));
    assert_eq!(r.metrics.gauge("wall.prover_ns"), None);
}
