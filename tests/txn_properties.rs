//! Property tests of the transaction substrate: the executable
//! counterparts of the thesis' SP6–SP10 sub-properties, checked on
//! randomized workloads and crash points.

use mcv::txn::{History, LockManager, LockMode, OpKind, SiteDb, TxnId, Wal};
use proptest::prelude::*;

/// A randomly generated operation.
#[derive(Debug, Clone)]
struct GenOp {
    txn: u64,
    item: u8,
    write: bool,
    value: i64,
}

fn ops_strategy(max_ops: usize) -> impl Strategy<Value = Vec<GenOp>> {
    prop::collection::vec(
        (1u64..5, 0u8..4, any::<bool>(), -50i64..50).prop_map(|(txn, item, write, value)| GenOp {
            txn,
            item,
            write,
            value,
        }),
        1..max_ops,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Global property 1, executably: any history produced *through* the
    /// strict-2PL database is conflict-serializable.
    #[test]
    fn histories_through_2pl_are_serializable(ops in ops_strategy(40)) {
        let mut db = SiteDb::new();
        let mut began = std::collections::BTreeSet::new();
        for op in &ops {
            let txn = TxnId(op.txn);
            if began.insert(txn) {
                db.begin(txn);
            }
            let item = format!("X{}", op.item);
            // Busy (lock conflict) aborts the requester — wound-wait-ish;
            // either way the surviving history must stay serializable.
            let result = if op.write {
                db.write(txn, &item, op.value).map(|_| 0)
            } else {
                db.read(txn, &item)
            };
            if result.is_err() && db.status(txn) == Some(mcv::txn::TxnStatus::Active) {
                let _ = db.abort(txn);
            }
        }
        for txn in began {
            if db.status(txn) == Some(mcv::txn::TxnStatus::Active) {
                let _ = db.commit(txn);
            }
        }
        let h = db.history().expect("site is up");
        prop_assert!(h.is_conflict_serializable(), "history: {h}");
    }

    /// Global property 3, executably: after a crash at *any* prefix of
    /// the workload, recovery reconstructs exactly the committed-prefix
    /// state (SP10 Recover).
    #[test]
    fn recovery_equals_committed_prefix(
        ops in ops_strategy(30),
        crash_after in 0usize..30,
    ) {
        let mut db = SiteDb::new();
        let mut reference = Wal::new(); // shadow log of committed effects
        let mut began = std::collections::BTreeSet::new();
        for (i, op) in ops.iter().enumerate() {
            if i == crash_after {
                break;
            }
            let txn = TxnId(op.txn);
            if began.insert(txn) {
                db.begin(txn);
                reference.log_update(txn, "marker", 0, 0); // placeholder, removed below
            }
            let item = format!("X{}", op.item);
            if op.write {
                let _ = db.write(txn, &item, op.value);
            } else {
                let _ = db.read(txn, &item);
            }
            // Commit every third op's transaction to create a mix.
            if i % 3 == 2 && db.status(txn) == Some(mcv::txn::TxnStatus::Active) {
                let _ = db.commit(txn);
            }
        }
        // The recovery contract: recovered state == WAL's committed view.
        let expected = db.wal().recover();
        db.crash();
        db.recover();
        for (item, value) in &expected {
            prop_assert_eq!(db.value(item), Some(*value));
        }
    }

    /// SP7/SP8: the lock manager never grants incompatible locks,
    /// whatever the request sequence.
    #[test]
    fn lock_table_invariants(ops in ops_strategy(40)) {
        let mut lm = LockManager::new();
        let mut finished = std::collections::BTreeSet::new();
        for op in &ops {
            let txn = TxnId(op.txn);
            if finished.contains(&txn) {
                continue;
            }
            let item = format!("X{}", op.item);
            let mode = if op.write { LockMode::Exclusive } else { LockMode::Shared };
            match lm.acquire(txn, item.clone(), mode) {
                Ok(mcv::txn::LockOutcome::WouldDeadlock { .. }) => {
                    lm.release_all(txn);
                    finished.insert(txn);
                }
                Ok(_) => {}
                Err(_) => {}
            }
            // Invariant: write-locked => no readers.
            if lm.write_locked(&item) {
                prop_assert_eq!(lm.read_count(&item), 0, "readers under a write lock on {}", item);
            }
        }
    }

    /// The WAL recovery function is idempotent and monotone in commits.
    #[test]
    fn wal_recovery_laws(ops in ops_strategy(25)) {
        let mut wal = Wal::new();
        for (i, op) in ops.iter().enumerate() {
            let txn = TxnId(op.txn);
            wal.log_update(txn, format!("X{}", op.item), 0, op.value);
            if i % 4 == 3 {
                wal.log_commit(txn);
            }
        }
        let once = wal.recover();
        let twice = wal.recover();
        prop_assert_eq!(&once, &twice);
        // Committing one more in-doubt txn only adds/overwrites keys.
        if let Some(t) = wal.in_doubt().iter().next().copied() {
            wal.log_commit(t);
            let after = wal.recover();
            for k in once.keys() {
                prop_assert!(after.contains_key(k));
            }
        }
    }

    /// Conflict-graph serializability detector agrees with a serial
    /// reference on serial histories.
    #[test]
    fn serial_histories_always_pass(ops in ops_strategy(30)) {
        let mut h = History::new();
        // Group ops by txn: a fully serial schedule.
        let mut sorted = ops.clone();
        sorted.sort_by_key(|o| o.txn);
        for op in sorted {
            h.push(TxnId(op.txn), format!("X{}", op.item), if op.write { OpKind::Write } else { OpKind::Read });
        }
        prop_assert!(h.is_conflict_serializable());
    }
}

#[test]
fn double_crash_during_recovery_is_harmless() {
    // "Undo and redo must function even if there is a second crash
    // during recovery."
    let mut db = SiteDb::new();
    db.begin(TxnId(1));
    db.write(TxnId(1), "X", 10).unwrap();
    db.commit(TxnId(1)).unwrap();
    db.begin(TxnId(2));
    db.write(TxnId(2), "X", 99).unwrap();
    db.crash();
    db.recover();
    db.crash(); // second crash immediately after recovery
    db.recover();
    assert_eq!(db.value("X"), Some(10));
    assert_eq!(db.in_doubt(), vec![TxnId(2)]);
}
