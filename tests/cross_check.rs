//! Cross-checks between the formal and executable halves: simulator
//! traces must satisfy the properties the specs axiomatize, and the
//! decision rules used by the running termination protocol must be the
//! ones the DECISIONMAKING spec states.

use mcv::commit::{
    run_scenario, termination_decision, CrashPoint, GlobalState, LocalState, Protocol, Scenario,
};
use mcv::sim::ProcId;

/// `Agreeconsensus` (SP5: no two processes decide differently), checked
/// on every decision pair of real executions.
#[test]
fn traces_satisfy_agreeconsensus() {
    for seed in 0..20 {
        for crash in [None, Some(CrashPoint::AfterVotes), Some(CrashPoint::AfterPrepare)] {
            let r = run_scenario(&Scenario {
                seed,
                coordinator_crash: crash,
                recovery_at: Some(5_000),
                ..Scenario::default()
            });
            for a in &r.decisions {
                for b in &r.decisions {
                    if a.txn == b.txn {
                        assert_eq!(
                            a.commit, b.commit,
                            "Agreeconsensus violated at seed {seed} crash {crash:?}"
                        );
                    }
                }
            }
        }
    }
}

/// The Consistent State Maintenance rule on collected global states: a
/// vector with commit never also holds abort, at every prefix of the
/// decision sequence.
#[test]
fn decision_prefixes_form_consistent_global_states() {
    for seed in 0..20 {
        let r = run_scenario(&Scenario {
            seed,
            coordinator_crash: Some(CrashPoint::AfterPrepare),
            recovery_at: Some(5_000),
            ..Scenario::default()
        });
        let mut vector = GlobalState::new();
        for d in &r.decisions {
            vector
                .record(d.site, if d.commit { LocalState::Committed } else { LocalState::Aborted });
            assert!(vector.is_consistent(), "inconsistent prefix at seed {seed}: {vector}");
        }
    }
}

/// The termination rule is monotone in preparedness: adding a prepared
/// site never flips a commit decision to abort.
#[test]
fn termination_rule_monotonicity() {
    let states = [
        LocalState::Initial,
        LocalState::Wait,
        LocalState::Prepared,
        LocalState::Aborted,
        LocalState::Committed,
    ];
    for a in states {
        for b in states {
            let mut g = GlobalState::new();
            g.record(ProcId(1), a);
            g.record(ProcId(2), b);
            let before = termination_decision(&g);
            let mut g2 = g.clone();
            g2.record(ProcId(3), LocalState::Prepared);
            let after = termination_decision(&g2);
            // Abort-deciders stay abort only due to an explicit abort.
            if before
                && !matches!((a, b), _ if g.states().values().any(|s| *s == LocalState::Aborted))
            {
                assert!(after, "adding a prepared site flipped commit->abort for ({a:?},{b:?})");
            }
        }
    }
}

/// Blocked time in 2PC shrinks as recovery comes sooner: the thesis'
/// "major disruption" claim is proportional to the outage.
#[test]
fn two_pc_blocked_time_tracks_recovery_time() {
    let mut last = None;
    for recovery_at in [1_000u64, 2_000, 4_000] {
        let r = run_scenario(&Scenario {
            protocol: Protocol::TwoPhase,
            coordinator_crash: Some(CrashPoint::AfterVotes),
            recovery_at: Some(recovery_at),
            deadline: 10_000,
            ..Scenario::default()
        });
        assert!(r.uniform);
        // All cohorts decide only after recovery.
        let max_decision =
            r.decision_times.values().map(|t| t.ticks()).max().expect("someone decided");
        assert!(max_decision >= recovery_at, "decided before recovery?");
        if let Some(prev) = last {
            assert!(max_decision > prev, "blocked time should grow with the outage");
        }
        last = Some(max_decision);
    }
}

/// 3PC decision latency is independent of recovery time (non-blocking):
/// the operational sites' decisions do not move when recovery moves.
#[test]
fn three_pc_latency_independent_of_recovery() {
    let mut operational_decisions = Vec::new();
    for recovery_at in [1_000u64, 2_000, 4_000] {
        let r = run_scenario(&Scenario {
            coordinator_crash: Some(CrashPoint::AfterPrepare),
            recovery_at: Some(recovery_at),
            deadline: 10_000,
            seed: 7,
            ..Scenario::default()
        });
        assert!(r.uniform && r.nonblocking);
        let cohort_max = r
            .decision_times
            .iter()
            .filter(|(site, _)| site.0 != 0)
            .map(|(_, t)| t.ticks())
            .max()
            .expect("cohorts decided");
        operational_decisions.push(cohort_max);
    }
    assert_eq!(operational_decisions[0], operational_decisions[1]);
    assert_eq!(operational_decisions[1], operational_decisions[2]);
}
