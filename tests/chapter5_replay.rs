//! End-to-end replay of the thesis' Chapter 5: parse every spec, build
//! every composition, discharge every proof — the complete formal
//! artifact, exercised through the public API only.

use mcv::blocks::{modules, pipeline, properties, registry, SpecLibrary};

#[test]
fn the_complete_chapter5_artifact() {
    let lib = SpecLibrary::load();

    // Every Table 3.1 block parses and validates.
    let blocks = registry::blocks(&lib);
    assert_eq!(blocks.len(), 12);
    for b in &blocks {
        assert!(b.spec.check().is_empty(), "{} has issues", b.name);
    }

    // Both sequential divisions compose with commuting cones and no
    // open morphism obligations on the Chapter 5 arcs.
    for step in pipeline::sequential_division_1(&lib) {
        assert!(step.commutes, "{}", step.name);
        assert_eq!(step.open_obligations, 0, "{}", step.name);
    }
    for step in pipeline::sequential_division_2(&lib) {
        assert!(step.commutes, "{}", step.name);
    }

    // All three global properties discharge.
    let outcomes = properties::replay_all(&lib);
    assert_eq!(outcomes.len(), 3);
    for o in &outcomes {
        assert!(o.proved(), "{} failed: {:?}", o.command.label, o.result);
    }
    // p1 and p3 are honest proofs; p2 is vacuous (contradictory support).
    assert!(!outcomes[0].vacuous, "p1 should be a direct proof");
    assert!(outcomes[1].vacuous, "p2 should be exposed as vacuous");
    assert!(!outcomes[2].vacuous, "p3 should be a direct proof");
}

#[test]
fn module_chains_produce_certified_composites() {
    let lib = SpecLibrary::load();
    let f = modules::ModuleFactory::new(lib);
    for chain in [f.serializability_chain(), f.consistent_state_chain(), f.rollback_chain()] {
        for step in &chain {
            assert!(step.certificate.all_hold(), "{}", step.label);
            assert!(step.module.commutes(), "{}", step.label);
        }
    }
}

#[test]
fn proofs_survive_composition_into_the_apex() {
    // The thesis' key claim: the global property proved in the block is
    // provable in the composed protocol. Prove Serialize against PR2's
    // (the composed apex's) own axioms.
    let lib = SpecLibrary::load();
    let steps = pipeline::sequential_division_1(&lib);
    let pr2 = &steps[2].colimit.apex;
    let theorem = pr2.property(&"Serialize".into()).expect("theorem carried to apex");
    let axioms = pr2.axioms_as_named();
    // Use only the support axioms (mirroring the `using` clause) to keep
    // the search tractable and honest.
    let support: Vec<_> = axioms
        .into_iter()
        .filter(|a| {
            ["Agreebroad", "Agreeconsensus", "Storevalues", "Readlock", "Writelock"]
                .contains(&a.name.as_str())
        })
        .collect();
    assert_eq!(support.len(), 5);
    let result = properties::chapter5_prover().prove(&support, &theorem.formula);
    assert!(result.is_proved(), "{result:?}");
}

#[test]
fn spec_texts_round_trip_through_display() {
    // Every parsed spec renders back to legal spec syntax that reparses
    // to an equivalent signature.
    let lib = SpecLibrary::load();
    for spec in lib.all() {
        let rendered = spec.to_string();
        assert!(rendered.contains("= spec"));
        assert!(rendered.ends_with("endspec"));
        // Signature lines all reparse.
        let reparsed = mcv::core::parse_spec(
            spec.name.clone(),
            &rendered[rendered.find("spec").unwrap() + 4..],
            &[],
        );
        // Axiom bodies contain rendered formulas (which use pretty
        // syntax, still parseable); tolerate errors only from prop
        // name collisions, not from signatures.
        if let Ok(r) = reparsed {
            assert_eq!(r.signature.sort_count(), spec.signature.sort_count());
            assert_eq!(r.signature.op_count(), spec.signature.op_count());
        }
    }
}
