//! The defining condition of a specification morphism — *axioms are
//! translated to theorems* — discharged mechanically: syntactic
//! fast-path and prover fallback, plus failure detection.

use mcv::core::{DischargeReport, SpecBuilder, SpecMorphism};
use mcv::logic::{Prover, Sort, Sym};

#[test]
fn syntactic_presence_discharges_without_proving() {
    let src = SpecBuilder::new("SRC")
        .sort(Sort::new("E"))
        .predicate("P", vec![Sort::new("E")])
        .axiom("p_total", "fa(x:E) P(x)")
        .build_ref()
        .unwrap();
    let tgt = SpecBuilder::new("TGT")
        .sort(Sort::new("E"))
        .predicate("P", vec![Sort::new("E")])
        .axiom("p_total", "fa(x:E) P(x)")
        .build_ref()
        .unwrap();
    let m = SpecMorphism::new("m", src, tgt, [], []).unwrap();
    assert!(m.obligations().is_empty());
}

#[test]
fn prover_discharges_semantic_obligations() {
    // Source axiom: fa(x) Q(x) after renaming P -> Q. The target never
    // states it directly but entails it via R and R => Q.
    let src = SpecBuilder::new("SRC")
        .sort(Sort::new("E"))
        .predicate("P", vec![Sort::new("E")])
        .axiom("p_total", "fa(x:E) P(x)")
        .build_ref()
        .unwrap();
    let tgt = SpecBuilder::new("TGT")
        .sort(Sort::new("E"))
        .predicate("Q", vec![Sort::new("E")])
        .predicate("R", vec![Sort::new("E")])
        .axiom("r_total", "fa(x:E) R(x)")
        .axiom("r_implies_q", "fa(x:E) (R(x) => Q(x))")
        .build_ref()
        .unwrap();
    let m = SpecMorphism::new("m", src, tgt, [], [(Sym::new("P"), Sym::new("Q"))]).unwrap();
    let obligations = m.obligations();
    assert_eq!(obligations.len(), 1);
    let report = DischargeReport::run(&Prover::new(), obligations);
    assert!(report.all_proved(), "{report}");
}

#[test]
fn non_theorem_obligations_fail_to_discharge() {
    // The target says nothing about Q: the obligation must fail — the
    // map is NOT a specification morphism.
    let src = SpecBuilder::new("SRC")
        .sort(Sort::new("E"))
        .predicate("P", vec![Sort::new("E")])
        .axiom("p_total", "fa(x:E) P(x)")
        .build_ref()
        .unwrap();
    let tgt = SpecBuilder::new("TGT")
        .sort(Sort::new("E"))
        .predicate("Q", vec![Sort::new("E")])
        .predicate("Unrelated", vec![Sort::new("E")])
        .axiom("noise", "fa(x:E) Unrelated(x)")
        .build_ref()
        .unwrap();
    let m = SpecMorphism::new("m", src, tgt, [], [(Sym::new("P"), Sym::new("Q"))]).unwrap();
    let report = DischargeReport::run(&Prover::new(), m.obligations());
    assert!(!report.all_proved());
    assert_eq!(report.failures().len(), 1);
}

#[test]
fn chapter5_pipeline_arcs_have_no_open_obligations() {
    // Every Chapter 5 composition arc is import-backed: each source
    // axiom appears verbatim in the target, so all obligations discharge
    // syntactically — the thesis' "rigorously pretested modules" story.
    use mcv::blocks::{pipeline, SpecLibrary};
    let lib = SpecLibrary::load();
    for step in pipeline::sequential_division_1(&lib) {
        assert_eq!(step.open_obligations, 0, "{}", step.name);
    }
}
