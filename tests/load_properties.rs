//! Property tests of the open-loop load subsystem: same-seed
//! schedules expand to byte-identical arrival lists, the deterministic
//! admission replay produces byte-identical decision sequences and
//! `strip_wall`-stable RunReports, every arrival resolves to exactly
//! one terminal state, and the live wall-clock driver preserves the
//! schedule-determined facts across same-seed runs.

use mcv::load::{
    simulate, ArrivalProcess, ArrivalSchedule, LoadConfig, LoadProfile, ShedPolicy, SimConfig,
};
use mcv::obs::RunReport;
use proptest::prelude::*;

fn profile(seed: u64, rate_tps: f64) -> LoadProfile {
    LoadProfile {
        process: ArrivalProcess::Poisson { rate_tps },
        duration_us: 150_000,
        sessions: 20_000,
        session_theta: 0.8,
        seed,
    }
}

/// The simulator's report with one wall-clock gauge attached, the way
/// the live harness records machine-dependent measurements — exactly
/// what `strip_wall` must erase.
fn sim_report(seed: u64, rate_tps: f64, wall_marker: f64) -> RunReport {
    let schedule = ArrivalSchedule::generate(&profile(seed, rate_tps));
    let outcome = simulate(&schedule, &SimConfig::default());
    let mut report = outcome.report("load.sim");
    report.metrics.gauges.insert("wall.load.sim_ns".to_owned(), wall_marker);
    report.strip_wall();
    report
}

#[test]
fn same_seed_schedules_are_byte_identical() {
    let a = ArrivalSchedule::generate(&profile(42, 3_000.0));
    let b = ArrivalSchedule::generate(&profile(42, 3_000.0));
    assert!(!a.is_empty());
    assert_eq!(a.to_jsonl(), b.to_jsonl());
}

#[test]
fn same_seed_admission_sequences_are_byte_identical() {
    // Overload (well past the sim's ~10k tps capacity) so the
    // sequence actually contains shed/retry/miss decisions, not a
    // trivial all-accept run.
    let schedule = ArrivalSchedule::generate(&profile(7, 25_000.0));
    let a = simulate(&schedule, &SimConfig::default());
    let b = simulate(&schedule, &SimConfig::default());
    assert!(a.shed > 0, "overload replay must shed");
    assert_eq!(a.admission_bytes(), b.admission_bytes());
}

#[test]
fn same_seed_sim_reports_are_strip_wall_stable() {
    let a = sim_report(11, 15_000.0, 1.0);
    // A different wall-clock measurement must not survive strip_wall.
    let b = sim_report(11, 15_000.0, 2.0e9);
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn live_runs_preserve_schedule_determined_facts() {
    // The wall-clock driver's interleavings are scheduling-dependent,
    // but everything the schedule determines — the arrival count and
    // the conservation of terminal states — must agree across
    // same-seed runs.
    let cfg = LoadConfig { profile: profile(5, 1_500.0), ..Default::default() };
    let a = mcv::load::run_load(&cfg);
    let b = mcv::load::run_load(&cfg);
    assert_eq!(a.arrivals, b.arrivals);
    assert_eq!(a.metrics.counter("load.arrivals"), b.metrics.counter("load.arrivals"));
    for r in [&a, &b] {
        assert_eq!(r.unresolved, 0, "{}", r.summary());
        assert_eq!(r.committed + r.dropped + r.deadline_missed + r.crash_lost, r.arrivals);
        assert!(r.oracles_ok(), "{}", r.summary());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any seed and offered rate: schedule generation is a pure
    /// function of the profile.
    #[test]
    fn schedules_are_deterministic_across_seeds(seed in 0u64..500, rate_khz in 1u64..30) {
        let p = profile(seed, (rate_khz * 1_000) as f64);
        let a = ArrivalSchedule::generate(&p);
        let b = ArrivalSchedule::generate(&p);
        prop_assert_eq!(a.to_jsonl(), b.to_jsonl());
    }

    /// Any seed, rate, and policy: the admission replay conserves
    /// arrivals (each resolves exactly once: completion, drop, or
    /// deadline miss) and its decision bytes are stable.
    #[test]
    fn admission_replay_conserves_arrivals(seed in 0u64..500, rate_khz in 1u64..30, drop in 0u8..2) {
        let schedule = ArrivalSchedule::generate(&profile(seed, (rate_khz * 1_000) as f64));
        let cfg = SimConfig {
            policy: if drop == 0 {
                ShedPolicy::Drop
            } else {
                ShedPolicy::RetryAfter { base_us: 1_000, cap_us: 16_000 }
            },
            ..SimConfig::default()
        };
        let a = simulate(&schedule, &cfg);
        let terminal = a.completed
            + a.deadline_missed
            + if matches!(cfg.policy, ShedPolicy::Drop) { a.shed } else { 0 };
        prop_assert_eq!(terminal, a.arrivals);
        let b = simulate(&schedule, &cfg);
        prop_assert_eq!(a.admission_bytes(), b.admission_bytes());
    }
}
