//! Property tests of the executable commit protocols across random
//! seeds, cohort counts and failure schedules: the three global
//! properties, observed rather than proved.

use mcv::commit::{run_scenario, CrashPoint, Protocol, Scenario};
use proptest::prelude::*;

fn crash_point_strategy() -> impl Strategy<Value = Option<CrashPoint>> {
    prop_oneof![
        Just(None),
        Just(Some(CrashPoint::AfterVoteReq)),
        Just(Some(CrashPoint::AfterVotes)),
        Just(Some(CrashPoint::AfterPrepare)),
        Just(Some(CrashPoint::AfterPartialPrepare)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Consistent state maintenance: with the termination protocol, no
    /// execution — whatever the seed, size, or coordinator crash point —
    /// yields one site committing while another aborts.
    #[test]
    fn three_pc_is_always_uniform(
        seed in 0u64..500,
        n_cohorts in 1usize..6,
        crash in crash_point_strategy(),
    ) {
        let r = run_scenario(&Scenario {
            seed,
            n_cohorts,
            coordinator_crash: crash,
            recovery_at: Some(5_000),
            ..Scenario::default()
        });
        prop_assert!(r.uniform, "split brain: {:?}", r.decisions);
    }

    /// Non-blocking: 3PC's operational sites decide before the failed
    /// coordinator recovers, for every crash point.
    #[test]
    fn three_pc_never_blocks(
        seed in 0u64..500,
        n_cohorts in 1usize..6,
        crash in crash_point_strategy(),
    ) {
        let r = run_scenario(&Scenario {
            seed,
            n_cohorts,
            coordinator_crash: crash,
            recovery_at: Some(5_000),
            ..Scenario::default()
        });
        prop_assert!(r.nonblocking, "blocked: {:?}", r.blocked_before_recovery);
    }

    /// 2PC stays *uniform* (atomicity) even though it blocks: safety is
    /// never traded away.
    #[test]
    fn two_pc_is_always_uniform(
        seed in 0u64..500,
        n_cohorts in 1usize..6,
        crash in crash_point_strategy(),
    ) {
        // 3PC-only crash points degrade to "no crash" for 2PC (the
        // prepare phase does not exist); AfterVotes is the relevant one.
        let crash = match crash {
            Some(CrashPoint::AfterPrepare) | Some(CrashPoint::AfterPartialPrepare) => {
                Some(CrashPoint::AfterVotes)
            }
            other => other,
        };
        let r = run_scenario(&Scenario {
            protocol: Protocol::TwoPhase,
            seed,
            n_cohorts,
            coordinator_crash: crash,
            recovery_at: Some(5_000),
            ..Scenario::default()
        });
        prop_assert!(r.uniform, "split brain: {:?}", r.decisions);
    }

    /// 2PC blocks exactly in the post-vote window.
    #[test]
    fn two_pc_blocks_in_the_post_vote_window(seed in 0u64..500, n_cohorts in 1usize..6) {
        let r = run_scenario(&Scenario {
            protocol: Protocol::TwoPhase,
            seed,
            n_cohorts,
            coordinator_crash: Some(CrashPoint::AfterVotes),
            recovery_at: Some(5_000),
            ..Scenario::default()
        });
        prop_assert!(!r.nonblocking);
        prop_assert_eq!(r.blocked_before_recovery.len(), n_cohorts);
    }

    /// Validity: with no failures and all-yes votes, both protocols
    /// commit; with a no-vote, both abort.
    #[test]
    fn validity_of_outcomes(
        seed in 0u64..500,
        n_cohorts in 1usize..6,
        protocol in prop_oneof![Just(Protocol::TwoPhase), Just(Protocol::ThreePhase)],
        refuser in prop::option::of(0usize..6),
    ) {
        let refuser = refuser.filter(|r| *r < n_cohorts);
        let r = run_scenario(&Scenario {
            protocol,
            seed,
            n_cohorts,
            vote_no_cohort: refuser,
            ..Scenario::default()
        });
        prop_assert!(r.uniform);
        prop_assert_eq!(r.outcome, Some(refuser.is_none()));
    }

    /// Determinism: same scenario, same execution.
    #[test]
    fn runs_are_reproducible(seed in 0u64..500, n_cohorts in 1usize..5) {
        let sc = Scenario {
            seed,
            n_cohorts,
            coordinator_crash: Some(CrashPoint::AfterPrepare),
            recovery_at: Some(5_000),
            ..Scenario::default()
        };
        let a = run_scenario(&sc);
        let b = run_scenario(&sc);
        prop_assert_eq!(a.messages, b.messages);
        prop_assert_eq!(a.decision_times, b.decision_times);
    }
}

/// The Figure 3.2 model checker agrees with the simulator about the
/// naive-timeout hazard across cohort counts.
#[test]
fn model_and_simulation_agree_on_the_naive_hazard() {
    use mcv::commit::fsm::{check, ModelConfig};
    for cohorts in 1..=3usize {
        let model_safe = check(&ModelConfig {
            cohorts,
            naive_timeouts: true,
            synchronous: true,
            coordinator_recovery: false,
        })
        .is_safe();
        let sim = run_scenario(&Scenario {
            n_cohorts: cohorts,
            coordinator_crash: Some(CrashPoint::AfterPartialPrepare),
            naive_timeouts: true,
            ..Scenario::default()
        });
        if cohorts == 1 {
            assert!(model_safe);
            assert!(sim.uniform);
        } else {
            assert!(!model_safe, "model misses the {cohorts}-cohort hazard");
            assert!(!sim.uniform, "simulation misses the {cohorts}-cohort hazard");
        }
    }
}
