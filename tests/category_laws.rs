//! Property tests of the categorical machinery: identity/associativity
//! laws, pushout squares, colimit cones — over both FinSet and the
//! category of specifications, on randomly generated inputs.

use mcv::core::finset::{fin_pushout, fin_set, mediating, FinMap, FinSet};
use mcv::core::{colimit, Diagram, SpecBuilder, SpecMorphism, SpecRef};
use mcv::logic::{Sort, Sym};
use proptest::prelude::*;

/// Strategy: a finite set of up to 6 named elements.
fn finset_strategy() -> impl Strategy<Value = FinSet> {
    prop::collection::btree_set("[a-e][0-9]", 1..6)
}

/// Strategy: a random total map between two sets (by index arithmetic).
fn map_between(dom: FinSet, cod: FinSet, seed: u64) -> FinMap {
    let cod_vec: Vec<&String> = cod.iter().collect();
    let graph: Vec<(&str, &str)> = dom
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let img = cod_vec[(i as u64 + seed) as usize % cod_vec.len()];
            (d.as_str(), img.as_str())
        })
        .collect();
    FinMap::new(dom.clone(), cod.clone(), graph).expect("total by construction")
}

proptest! {
    #[test]
    fn finset_identity_laws(s in finset_strategy(), t in finset_strategy(), seed in 0u64..7) {
        let f = map_between(s.clone(), t.clone(), seed);
        let id_s = FinMap::identity(&s);
        let id_t = FinMap::identity(&t);
        prop_assert_eq!(id_s.then(&f).unwrap(), f.clone());
        prop_assert_eq!(f.then(&id_t).unwrap(), f);
    }

    #[test]
    fn finset_composition_associates(
        a in finset_strategy(), b in finset_strategy(),
        c in finset_strategy(), d in finset_strategy(),
        s1 in 0u64..5, s2 in 0u64..5, s3 in 0u64..5,
    ) {
        let f = map_between(a, b.clone(), s1);
        let g = map_between(b, c.clone(), s2);
        let h = map_between(c, d, s3);
        let left = f.then(&g).unwrap().then(&h).unwrap();
        let right = f.then(&g.then(&h).unwrap()).unwrap();
        prop_assert_eq!(left, right);
    }

    #[test]
    fn finset_pushout_square_always_commutes(
        a in finset_strategy(), b in finset_strategy(), c in finset_strategy(),
        s1 in 0u64..5, s2 in 0u64..5,
    ) {
        let f = map_between(a.clone(), b, s1);
        let g = map_between(a, c, s2);
        let po = fin_pushout(&f, &g).unwrap();
        prop_assert_eq!(f.then(&po.p).unwrap(), g.then(&po.q).unwrap());
    }

    #[test]
    fn finset_mediating_morphism_exists_for_collapse_cocone(
        a in finset_strategy(), b in finset_strategy(), c in finset_strategy(),
        s1 in 0u64..5, s2 in 0u64..5,
    ) {
        let f = map_between(a.clone(), b.clone(), s1);
        let g = map_between(a, c.clone(), s2);
        let po = fin_pushout(&f, &g).unwrap();
        // The one-point cocone always commutes; its mediating morphism
        // must exist and satisfy both triangles.
        let point = fin_set(["pt"]);
        let p2 = FinMap::new(b, point.clone(), po.p.dom.iter().map(|e| (e.as_str(), "pt")).collect::<Vec<_>>()).unwrap();
        let q2 = FinMap::new(c, point, po.q.dom.iter().map(|e| (e.as_str(), "pt")).collect::<Vec<_>>()).unwrap();
        let u = mediating(&po, &f, &g, &p2, &q2).unwrap();
        prop_assert_eq!(po.p.then(&u).unwrap(), p2);
        prop_assert_eq!(po.q.then(&u).unwrap(), q2);
    }
}

/// Builds a random spec with `n` predicates named P0..P(n-1) over a
/// shared sort.
fn spec_with(name: &str, preds: &[usize]) -> SpecRef {
    let mut b = SpecBuilder::new(name).sort(Sort::new("E"));
    for p in preds {
        b = b.predicate(format!("P{}", p), vec![Sort::new("E")]);
    }
    b.build_ref().expect("well-formed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spec_colimit_cone_always_commutes(
        shared in prop::collection::btree_set(0usize..4, 1..4),
        left_extra in prop::collection::btree_set(4usize..8, 0..3),
        right_extra in prop::collection::btree_set(8usize..12, 0..3),
    ) {
        let shared_v: Vec<usize> = shared.iter().copied().collect();
        let mut left_v = shared_v.clone();
        left_v.extend(&left_extra);
        let mut right_v = shared_v.clone();
        right_v.extend(&right_extra);
        let s = spec_with("S", &shared_v);
        let l = spec_with("L", &left_v);
        let r = spec_with("R", &right_v);
        let f = SpecMorphism::new("f", s.clone(), l.clone(), [], []).unwrap();
        let g = SpecMorphism::new("g", s.clone(), r.clone(), [], []).unwrap();
        let mut d = Diagram::new();
        d.add_node("s", s).unwrap();
        d.add_node("l", l).unwrap();
        d.add_node("r", r).unwrap();
        d.add_arc("f", "s", "l", f).unwrap();
        d.add_arc("g", "s", "r", g).unwrap();
        let c = colimit(&d, "APEX").unwrap();
        prop_assert!(c.verify_commutes());
        // Shared union cardinality: shared counted once.
        let expected = shared_v.len() + left_extra.len() + right_extra.len();
        prop_assert_eq!(c.apex.signature.op_count(), expected);
    }

    #[test]
    fn spec_morphism_translation_preserves_structure(
        n_preds in 1usize..4,
        rename_idx in 0usize..4,
    ) {
        let rename_idx = rename_idx % n_preds;
        let preds: Vec<usize> = (0..n_preds).collect();
        let src = spec_with("SRC", &preds);
        // Target renames one predicate.
        let mut b = SpecBuilder::new("TGT").sort(Sort::new("E"));
        for p in &preds {
            if *p == rename_idx {
                b = b.predicate(format!("Q{}", p), vec![Sort::new("E")]);
            } else {
                b = b.predicate(format!("P{}", p), vec![Sort::new("E")]);
            }
        }
        let tgt = b.build_ref().unwrap();
        let m = SpecMorphism::new(
            "m", src, tgt, [],
            [(Sym::new(format!("P{}", rename_idx)), Sym::new(format!("Q{}", rename_idx)))],
        ).unwrap();
        let f = mcv::logic::formula(&format!("fa(x:E) P{}(x)", rename_idx));
        let translated = m.apply_formula(&f);
        let expected = format!("Q{}(x)", rename_idx);
        let renamed_ok = translated.to_string().contains(&expected);
        prop_assert!(renamed_ok, "expected {} in {}", expected, translated);
    }
}

#[test]
fn colimit_is_idempotent_on_apex() {
    // Taking the colimit of a single-node diagram of an apex reproduces
    // its signature.
    let s = spec_with("BASE", &[0, 1, 2]);
    let mut d = Diagram::new();
    d.add_node("a", s.clone()).unwrap();
    let c1 = colimit(&d, "C1").unwrap();
    let mut d2 = Diagram::new();
    d2.add_node("a", c1.apex.clone()).unwrap();
    let c2 = colimit(&d2, "C2").unwrap();
    assert_eq!(c1.apex.signature.op_count(), c2.apex.signature.op_count());
}
