//! # mcv — Modular Composition and Verification of Transaction Processing Protocols
//!
//! A Rust reproduction of Janarthanan's 2003 thesis (ICDCS 2003):
//! category-theoretic composition of transaction-processing protocol
//! building blocks, and compositional verification of the non-blocking
//! three-phase commit (3PC) protocol's three global properties —
//! serializability of transactions, consistent state maintenance, and
//! roll-back recovery — plus an executable counterpart of every block.
//!
//! This facade re-exports the workspace crates:
//!
//! - [`logic`] — many-sorted FOL + resolution prover (stands in for SNARK);
//! - [`core`] — the category of specifications: morphisms, diagrams,
//!   pushouts, colimits (stands in for Specware);
//! - [`module`] — algebraic module specifications (PAR/EXP/IMP/BOD);
//! - [`blocks`] — the Table 3.1 building-block specs, composition
//!   pipelines, and the Chapter 5 proofs;
//! - [`sim`] — a deterministic discrete-event distributed-system simulator;
//! - [`txn`] — WAL, strict 2PL, checkpointing, rollback recovery;
//! - [`commit`] — executable 2PC/3PC with election, termination, and
//!   failure injection, plus a Figure 3.2 model checker;
//! - [`obs`] — observability: metrics, span tracing, and
//!   machine-readable [`obs::RunReport`]s for any of the above;
//! - [`trace`] — causal event tracing: Lamport-clocked typed events,
//!   a happens-before checker, flight-recorder ring buffers, and the
//!   explorer behind the `trace` bin;
//! - [`chaos`] — randomized fault-schedule campaigns over the commit
//!   protocols with atomic-commitment oracles and delta-debugging
//!   shrinking to minimal, replayable counterexamples;
//! - [`engine`] — a multi-threaded transaction engine (sharded strict
//!   2PL, cross-shard deadlock detection, group-commit WAL, worker
//!   pool) whose concurrent histories are checked against the same
//!   serializability and recovery oracles the models use;
//! - [`dist`] — cross-shard atomic transactions: the 3PC/termination
//!   FSMs driven over a real threaded transport with one engine per
//!   shard, fault-injection campaigns, and cross-shard atomicity
//!   oracles;
//! - [`mvcc`] — multi-version storage: timestamped version chains,
//!   snapshot-visibility reads that bypass the lock table,
//!   first-committer-wins certification, and low-watermark garbage
//!   collection, mounted in the engine behind an
//!   [`engine::IsolationLevel`] knob;
//! - [`prof`] — profiling: per-transaction phase attribution through
//!   lock-free ring buffers, critical-path analysis over [`trace`]
//!   happens-before DAGs, and windowed live telemetry for load runs;
//! - [`load`] — open-loop traffic: seeded Poisson/flash-crowd/diurnal
//!   arrival processes over zipfian user sessions, non-blocking
//!   admission with explicit load shedding and deadline budgets,
//!   chaos-under-load with recovery-time SLO measurement, and a
//!   deterministic admission-replay simulator.
//!
//! # Examples
//!
//! ```
//! // Prove the serializability property exactly as Chapter 5 does.
//! use mcv::blocks::{SpecLibrary, properties};
//! let lib = SpecLibrary::load();
//! let outcome = properties::replay(&lib, &properties::chapter5_commands()[0]);
//! assert!(outcome.proved());
//! ```
//!
//! ```
//! // Run 3PC with a coordinator crash: operational sites never block.
//! use mcv::commit::{run_scenario, Scenario, CrashPoint};
//! let r = run_scenario(&Scenario {
//!     coordinator_crash: Some(CrashPoint::AfterVotes),
//!     recovery_at: Some(5_000),
//!     ..Scenario::default()
//! });
//! assert!(r.nonblocking && r.uniform);
//! ```

pub use mcv_blocks as blocks;
pub use mcv_chaos as chaos;
pub use mcv_commit as commit;
pub use mcv_core as core;
pub use mcv_dist as dist;
pub use mcv_engine as engine;
pub use mcv_load as load;
pub use mcv_logic as logic;
pub use mcv_module as module;
pub use mcv_mvcc as mvcc;
pub use mcv_obs as obs;
pub use mcv_prof as prof;
pub use mcv_sim as sim;
pub use mcv_trace as trace;
pub use mcv_txn as txn;
