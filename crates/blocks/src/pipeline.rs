//! The colimit composition pipelines of Chapter 5, realizing the
//! modular-dependency chains of Figures 3.4 and 3.5:
//!
//! - sequential division 1 (recovery of a failed site):
//!   `CONTROLLER → PR1 → PR2 → PR3 → PR4`;
//! - sequential division 2 (electing a backup coordinator):
//!   `CONTROLLER → PR5 → PR6 → PR7 → PR8 → PR9`.
//!
//! Steps with Chapter 5 scripts replay the script's exact diagram
//! (two named specs + the listed morphism); the thesis stops at PR6,
//! and the remaining steps compose over a shared-ancestor span.

use crate::specs::SpecLibrary;
use mcv_core::{colimit, Colimit, Diagram, SpecMorphism, SpecRef};
use mcv_logic::Sym;

/// One composition step (one colimit of Figure 3.4/3.5).
#[derive(Debug)]
pub struct PipelineStep {
    /// Name of the resulting protocol (`CONTROLLER`, `PR1`, …).
    pub name: String,
    /// What was composed with what, over which interaction.
    pub description: String,
    /// The computed colimit.
    pub colimit: Colimit,
    /// Whether the cone commutes (Chapter 2's correctness criterion).
    pub commutes: bool,
    /// Unresolved morphism proof obligations across all arcs (axioms
    /// that do not translate to target theorems syntactically). Zero
    /// for the import-chained Chapter 5 scripts.
    pub open_obligations: usize,
}

fn chain_step(
    name: &str,
    description: &str,
    from: &SpecRef,
    to: &SpecRef,
    ops: &[&str],
) -> PipelineStep {
    let _span = mcv_obs::Span::enter("pipeline.chain_step");
    let m = SpecMorphism::new(
        "i",
        from.clone(),
        to.clone(),
        [],
        ops.iter().map(|o| (Sym::new(*o), Sym::new(*o))),
    )
    .unwrap_or_else(|e| panic!("{name}: morphism failed: {e}"));
    let open_obligations = m.obligations().len();
    let mut d = Diagram::new();
    d.add_node("a", from.clone()).expect("fresh diagram");
    d.add_node("b", to.clone()).expect("fresh diagram");
    d.add_arc("i", "a", "b", m).expect("endpoints match");
    let c = colimit(&d, name).unwrap_or_else(|e| panic!("{name}: colimit failed: {e}"));
    let commutes = c.verify_commutes();
    finish_step(name, description, c, commutes, open_obligations)
}

fn span_step(
    name: &str,
    description: &str,
    shared: &SpecRef,
    left: &SpecRef,
    right: &SpecRef,
) -> PipelineStep {
    let _span = mcv_obs::Span::enter("pipeline.span_step");
    let f = SpecMorphism::new_lenient("f", shared.clone(), left.clone(), [], [])
        .unwrap_or_else(|e| panic!("{name}: span left morphism failed: {e}"));
    let g = SpecMorphism::new_lenient("g", shared.clone(), right.clone(), [], [])
        .unwrap_or_else(|e| panic!("{name}: span right morphism failed: {e}"));
    let open_obligations = f.obligations().len() + g.obligations().len();
    let mut d = Diagram::new();
    d.add_node("s", shared.clone()).expect("fresh diagram");
    d.add_node("a", left.clone()).expect("fresh diagram");
    d.add_node("b", right.clone()).expect("fresh diagram");
    d.add_arc("f", "s", "a", f).expect("endpoints match");
    d.add_arc("g", "s", "b", g).expect("endpoints match");
    let c = colimit(&d, name).unwrap_or_else(|e| panic!("{name}: colimit failed: {e}"));
    let commutes = c.verify_commutes();
    finish_step(name, description, c, commutes, open_obligations)
}

fn finish_step(
    name: &str,
    description: &str,
    colimit: Colimit,
    commutes: bool,
    open_obligations: usize,
) -> PipelineStep {
    mcv_obs::counter("pipeline.steps", 1);
    mcv_obs::counter("pipeline.open_obligations", open_obligations as u64);
    if !commutes {
        mcv_obs::counter("pipeline.non_commuting_steps", 1);
    }
    PipelineStep {
        name: name.to_owned(),
        description: description.to_owned(),
        colimit,
        commutes,
        open_obligations,
    }
}

/// The controller: colimit of broadcast and consensus (Figures 4.3/4.4;
/// Chapter 5's `CONSENT = colimit CONSEN`).
pub fn controller(lib: &SpecLibrary) -> PipelineStep {
    chain_step(
        "CONTROLLER",
        "RELIABLEBROADCAST ⊔ CONSENSUS over {Broadcast, Deliver, TermBroad, ValiBroad, AgreeBroad}",
        &lib.reliable_broadcast,
        &lib.consensus,
        &["Broadcast", "Deliver", "TermBroad", "ValiBroad", "AgreeBroad"],
    )
}

/// Sequential division 1 (Figure 3.4): controller, undo/redo, 2PL,
/// checkpointing, recovery — the chain whose apex `PR4` carries the
/// roll-back recovery property.
pub fn sequential_division_1(lib: &SpecLibrary) -> Vec<PipelineStep> {
    vec![
        controller(lib),
        chain_step(
            "PR1",
            "CONTROLLER ∘ UNDOREDO over coordinator/participant information (Fig 4.5/4.6)",
            &lib.consensus,
            &lib.undoredo,
            &["Valiconsensus", "Agreeconsensus", "Decision", "Proposal"],
        ),
        chain_step(
            "PR2",
            "PR1 ∘ TWOPHASELOCK over transaction details (Fig 4.7/4.8)",
            &lib.undoredo,
            &lib.two_phase_lock,
            &["Undo", "Redo", "Storevalues"],
        ),
        chain_step(
            "PR3",
            "PR2 ∘ CHECKPOINTING over site state data (Fig 4.25/4.26)",
            &lib.two_phase_lock,
            &lib.checkpointing,
            &["Read", "Write", "Locking", "Unlock", "Readlock", "Writelock"],
        ),
        chain_step(
            "PR4",
            "PR3 ∘ ROLLBACKRECOVERY over stored state information (Fig 4.27/4.28)",
            &lib.checkpointing,
            &lib.rollback_recovery,
            &["receive", "log", "Ckpt", "ckpt", "Store", "store", "Pi", "PI", "Checkpoint"],
        ),
    ]
}

/// Sequential division 2 (Figure 3.5): controller, snapshot, decision
/// making, termination, voting/election, failure/time-out — the chain
/// whose apex `PR9` supports electing a backup coordinator.
pub fn sequential_division_2(lib: &SpecLibrary) -> Vec<PipelineStep> {
    let d1 = chain_step(
        "PR5",
        "CONTROLLER ∘ SNAPSHOT over decision information (Fig 4.13/4.14)",
        &lib.consensus,
        &lib.snapshot,
        &["Decision", "Proposal", "Valiconsensus", "Agreeconsensus"],
    );
    let d2 = chain_step(
        "PR6",
        "PR5 ∘ DECISIONMAKING over recorded state information (Fig 4.15/4.16)",
        &lib.snapshot,
        &lib.decision_making,
        &["sending", "reception", "record"],
    );
    let d3 = span_step(
        "PR7",
        "PR6 ∘ TERMINATION over the decision-making rules (Fig 3.5; no Ch.5 script)",
        &lib.decision_making,
        &d2.colimit.apex,
        &lib.termination,
    );
    let d4 = span_step(
        "PR8",
        "PR7 ∘ VOTING over the consensus vocabulary (Fig 3.5; no Ch.5 script)",
        &lib.consensus,
        &d3.colimit.apex,
        &lib.voting,
    );
    let d5 = span_step(
        "PR9",
        "PR8 ∘ FAILURETIMEOUT over the basic primitives (Fig 3.5; no Ch.5 script)",
        &lib.bbb,
        &d4.colimit.apex,
        &lib.failure_timeout,
    );
    vec![controller(lib), d1, d2, d3, d4, d5]
}

/// The executable-store refinement: `SNAPSHOT ∘ MVCCSNAPSHOT` over the
/// recorded-state vocabulary. Not part of the thesis divisions — it
/// ties the `mcv-mvcc` crate (version installs, snapshot visibility,
/// first-committer-wins, watermark GC) to the Snapshot block the same
/// way PR6 ties decision making to it.
pub fn mvcc_refinement(lib: &SpecLibrary) -> PipelineStep {
    chain_step(
        "MVCC",
        "SNAPSHOT ∘ MVCCSNAPSHOT over recorded state information (executable instance)",
        &lib.snapshot,
        &lib.mvcc_snapshot,
        &["sending", "reception", "record"],
    )
}

/// Renders a pipeline as the Figure 3.4/3.5 chain.
pub fn render(steps: &[PipelineStep]) -> String {
    let mut out = String::new();
    for s in steps {
        out.push_str(&format!(
            "{:<10} = {}\n             apex: {} sorts, {} ops, {} axioms, {} theorems; commutes: {}; open obligations: {}\n",
            s.name,
            s.description,
            s.colimit.apex.signature.sort_count(),
            s.colimit.apex.signature.op_count(),
            s.colimit.apex.axioms().count(),
            s.colimit.apex.theorems().count(),
            s.commutes,
            s.open_obligations,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn division_1_composes_and_commutes() {
        let lib = SpecLibrary::load();
        let steps = sequential_division_1(&lib);
        assert_eq!(steps.len(), 5);
        for s in &steps {
            assert!(s.commutes, "{} does not commute", s.name);
            assert_eq!(s.open_obligations, 0, "{} has open obligations", s.name);
        }
    }

    #[test]
    fn division_2_composes_and_commutes() {
        let lib = SpecLibrary::load();
        let steps = sequential_division_2(&lib);
        assert_eq!(steps.len(), 6);
        for s in &steps {
            assert!(s.commutes, "{} does not commute", s.name);
        }
    }

    #[test]
    fn controller_has_broadcast_and_consensus_properties() {
        let lib = SpecLibrary::load();
        let c = controller(&lib);
        let apex = &c.colimit.apex;
        assert!(apex.property(&"Agreebroad".into()).is_some());
        assert!(apex.property(&"Agreeconsensus".into()).is_some());
    }

    #[test]
    fn pr2_stacks_the_serializability_dependencies() {
        // Figure 4.1: serializability needs 2PL over undo/redo over
        // consensus over broadcast.
        let lib = SpecLibrary::load();
        let steps = sequential_division_1(&lib);
        let pr2 = &steps[2].colimit.apex;
        for prop in ["Agreebroad", "Agreeconsensus", "Storevalues", "Readlock", "Writelock"] {
            assert!(pr2.property(&Sym::new(prop)).is_some(), "PR2 missing {prop}");
        }
        assert!(pr2.property(&"Serialize".into()).is_some());
    }

    #[test]
    fn pr4_stacks_the_recovery_dependencies() {
        let lib = SpecLibrary::load();
        let steps = sequential_division_1(&lib);
        let pr4 = &steps[4].colimit.apex;
        for prop in ["Checkpoint", "Recover", "recover", "RBR"] {
            assert!(pr4.property(&Sym::new(prop)).is_some(), "PR4 missing {prop}");
        }
    }

    #[test]
    fn pr6_stacks_the_consistent_state_dependencies() {
        let lib = SpecLibrary::load();
        let steps = sequential_division_2(&lib);
        let pr6 = &steps[2].colimit.apex;
        for prop in ["Agreebroad", "Agreeconsensus", "Globprocstateinfo", "Constateinfo", "CSM"] {
            assert!(pr6.property(&Sym::new(prop)).is_some(), "PR6 missing {prop}");
        }
    }

    #[test]
    fn pr9_accumulates_the_whole_division() {
        let lib = SpecLibrary::load();
        let steps = sequential_division_2(&lib);
        let pr9 = &steps[5].colimit.apex;
        // Something from each block along the chain.
        for op in ["record", "next", "NonBlockingRule", "ElectBackup", "TimeoutAt"] {
            assert!(pr9.signature.op(&Sym::new(op)).is_some(), "PR9 missing op {op}");
        }
    }

    #[test]
    fn mvcc_refinement_composes_and_commutes() {
        let lib = SpecLibrary::load();
        let step = mvcc_refinement(&lib);
        assert!(step.commutes, "MVCC refinement does not commute");
        assert_eq!(step.open_obligations, 0, "MVCC refinement has open obligations");
        let apex = &step.colimit.apex;
        // The apex carries both the Snapshot block's recorded-state
        // property and the store's visibility/GC vocabulary.
        assert!(apex.property(&"Globprocstateinfo".into()).is_some());
        for op in ["install", "visible", "snapread", "collected"] {
            assert!(apex.signature.op(&Sym::new(op)).is_some(), "apex missing op {op}");
        }
    }

    #[test]
    fn render_mentions_every_step() {
        let lib = SpecLibrary::load();
        let text = render(&sequential_division_1(&lib));
        for name in ["CONTROLLER", "PR1", "PR2", "PR3", "PR4"] {
            assert!(text.contains(name));
        }
    }
}
