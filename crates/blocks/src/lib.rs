//! # mcv-blocks
//!
//! The thesis' building-block protocol specifications (Table 3.1) and
//! their category-theoretic composition into the three-phase-commit
//! protocol's global properties:
//!
//! - [`specs`] — the Chapter 5 `spec … endspec` scripts, parsed into
//!   [`mcv_core::Spec`]s (plus requirement-derived specs for the blocks
//!   Chapter 5 leaves unscripted);
//! - [`registry`] — Table 3.1 as a machine-readable inventory;
//! - [`pipeline`] — the colimit chains of Figures 3.4/3.5
//!   (`CONTROLLER → PR1 → … → PR9`);
//! - [`modules`] — the algebraic-module compositions of Figures
//!   4.3–4.28, with commutativity certificates;
//! - [`properties`] — the three `prove … using …` commands of
//!   Chapter 5 replayed on the resolution prover, plus the consistency
//!   audit (which exposes that the thesis' CSM proof is vacuous: its
//!   support set is contradictory);
//! - [`traceability`] — the Figure 4.1/4.9/4.17 dependency diagrams and
//!   the modular-vs-monolithic re-verification experiment.
//!
//! # Examples
//!
//! Replay Chapter 5's first proof command:
//!
//! ```
//! use mcv_blocks::{SpecLibrary, properties};
//! let lib = SpecLibrary::load();
//! let p1 = &properties::chapter5_commands()[0];
//! let outcome = properties::replay(&lib, p1);
//! assert!(outcome.proved());
//! assert!(!outcome.vacuous);
//! ```

#![warn(missing_docs)]

pub mod modules;
pub mod pipeline;
pub mod properties;
pub mod registry;
pub mod script_runner;
pub mod specs;
pub mod traceability;

pub use specs::SpecLibrary;
