//! The building-block specifications of Table 3.1, transcribed from the
//! thesis' Chapter 5 Specware scripts (with OCR damage repaired and the
//! record-sort declarations of `Messages`/`Procstate` simplified to
//! abstract sorts — the axioms never project their fields).
//!
//! Blocks without Chapter 5 scripts (voting/election, termination,
//! failure/timeout management) are formalized here from their
//! Section 3.5.1 requirement lists (`VOTING_SRC`, `TERMINATION_SRC`,
//! `FAILURETIMEOUT_SRC`); Table 3.1 marks them `req.`.

use mcv_core::{parse_spec, SpecRef};
use std::sync::Arc;

/// Chapter 5 text of the basic building-block primitives (`BBB`).
pub const BBB_SRC: &str = r#"
spec
sort Clockvalues = Nat
sort LocalClockvals = Clockvalues
sort Processors
sort Index = Nat
sort Messages
sort Procstate
op Correct : Processors->Boolean
op InOrder : Messages->Boolean
op Broadcast : Processors*Messages*Clockvalues->Boolean
op Deliver : Processors*Messages*Clockvalues->Boolean
endspec
"#;

/// Chapter 5 text of the `RELIABLEBROADCAST` protocol.
pub const RELIABLEBROADCAST_SRC: &str = r#"
spec
import BBB
sort ReliableNetwork = Boolean
sort BroadcastDelay = Clockvalues
sort BroadcastBound = Clockvalues
op Clockdelay : Clockvalues*BroadcastDelay->Clockvalues
op Clockbound : Clockvalues*BroadcastDelay*BroadcastBound->Clockvalues
op TermBroad : Processors*Messages*Clockvalues->Boolean
op ValiBroad : Processors*Messages*Clockvalues->Boolean
op AgreeBroad : Processors*Messages*Clockvalues->Boolean
axiom Broadcast is
fa(p:Processors, m:Messages, T:Clockvalues)
~(Deliver(p, m, T)) & Broadcast(p, m, T)
axiom Deliver is
fa(p:Processors, m:Messages, T:Clockvalues)
~(Broadcast(p, m, T)) & Deliver(p, m, T)
axiom Termbroad is
ex(p, m, T) Correct(p) & Broadcast(p, m, T) =>
(fa (q, i:BroadcastDelay) Correct(q) & Deliver(q, m, (Clockdelay(T, i))))
axiom Valibroad is
ex(p, m, T) Correct(p) & Broadcast(p, m, T) =>
(fa (q, i:BroadcastDelay, j:BroadcastBound) Correct(q) &
Deliver(q, m, (Clockbound(T, i, j))) & i < j)
axiom Agreebroad is
ex(p) fa(m:Messages, T:Clockvalues) Deliver(p, m, T) =>
(fa (q, i:BroadcastDelay, j:BroadcastBound)
Deliver(q, m, Clockbound(T, i, j)))
endspec
"#;

/// Chapter 5 text of the `CONSENSUS` protocol.
pub const CONSENSUS_SRC: &str = r#"
spec
import RELIABLEBROADCAST
sort ProcDeci = Boolean
op Decision : Processors*ProcDeci*Clockvalues->Boolean
op Proposal : Processors*ProcDeci*Clockvalues->Boolean
op Valiconsensus : Processors*ProcDeci*Clockvalues->Boolean
op Agreeconsensus : Processors*ProcDeci*Clockvalues->Boolean
axiom Proposal is
fa(p:Processors, v:ProcDeci, T:Clockvalues)
~(Decision(p, v, T)) & Proposal(p, v, T)
axiom Decision is
fa(p:Processors, v:ProcDeci, T:Clockvalues)
~(Proposal(p, v, T)) & Decision(p, v, T)
axiom Valiconsensus is
fa(p, q:Processors, T, i, j:Clockvalues, m:Messages) ex(v:ProcDeci)
ValiBroad(p, m, T) & Decision(p, v, T) => Proposal(q, v, T)
axiom Agreeconsensus is
fa(p, q:Processors, v:ProcDeci, T, i, j:Clockvalues, m:Messages)
AgreeBroad(p, m, T) & Decision(p, v, T) => Decision(q, v, T)
endspec
"#;

/// Chapter 5 text of the `UNDOREDO` protocol.
pub const UNDOREDO_SRC: &str = r#"
spec
import CONSENSUS
sort Transactions = Boolean
sort Valstabstorage = Boolean
sort Currentstatevalue = Nat
sort Newstatevalue = Nat
op Log : Transactions*Valstabstorage*Newstatevalue->Boolean
op Undo : Transactions*ProcDeci*Valstabstorage*Currentstatevalue->Boolean
op Redo : Transactions*ProcDeci*Valstabstorage*Newstatevalue->Boolean
op Storevalues : Transactions*Valstabstorage*ProcDeci->Boolean
axiom Undo is
fa(t:Transactions, a:ProcDeci, X:Valstabstorage, y:Currentstatevalue)
~(Redo(t, a, X, y)) & Undo(t, a, X, y)
axiom Redo is
fa(t:Transactions, a:ProcDeci, X:Valstabstorage, y:Currentstatevalue)
~(Undo(t, a, X, y)) & Redo(t, a, X, y)
axiom Log is
fa(t:Transactions, a:ProcDeci, X:Valstabstorage)
fa(y:Currentstatevalue, z:Newstatevalue)
~(Undo(t, a, X, y)) & ~(Redo(t, a, X, y)) => Log(t, X, z)
axiom Storevalues is
fa(p, q:Processors) fa(T:Clockvalues, t:Transactions)
fa(commit, abort:ProcDeci)
fa(y:Currentstatevalue, z:Newstatevalue, X:Valstabstorage)
Agreeconsensus(p, commit, T) & Undo(t, abort, X, y) &
Redo(t, commit, X, z) => Log(t, X, z)
endspec
"#;

/// Chapter 5 text of the `TWOPHASELOCK` protocol, including the
/// `Serialize` theorem (global property 1).
pub const TWOPHASELOCK_SRC: &str = r#"
spec
import UNDOREDO
sort Transactionid
sort CurrentData
sort PreviousData
op Read : Transactions*CurrentData*Valstabstorage->Boolean
op Write : Transactions*CurrentData*Valstabstorage->Boolean
op Locking : Transactionid*CurrentData->Boolean
op Unlock : Transactionid*PreviousData->Boolean
op Readlock : Transactions*CurrentData*Valstabstorage->Boolean
op Writelock : Transactions*CurrentData*Valstabstorage->Boolean
axiom Read is
fa(t:Transactions, Y:CurrentData, X:Valstabstorage)
~(Write(t, Y, X)) & Read(t, Y, X)
axiom Write is
fa(t:Transactions, Y:CurrentData, X:Valstabstorage)
~(Read(t, Y, X)) & Write(t, Y, X)
axiom Locking is
fa(N:Transactionid, Y:CurrentData, Z:PreviousData)
(Unlock(N, Z)) & Locking(N, Y)
axiom Unlock is
fa(N:Transactionid, Y:CurrentData, Z:PreviousData)
~(Locking(N, Y)) & Unlock(N, Z)
axiom Readlock is
fa(p, q:Processors) fa(t:Transactions, N:Transactionid, X:Valstabstorage)
fa(Y:CurrentData, Z:PreviousData, z:Newstatevalue) Log(t, X, z) &
~(Write(t, Y, X)) & ~(Locking(N, Y)) & Unlock(N, Z) => Read(t, Y, X) &
Locking(N, Y)
axiom Writelock is
fa(p, q:Processors) fa(t:Transactions, N:Transactionid, X:Valstabstorage)
fa(Y:CurrentData, Z:PreviousData, z:Newstatevalue) Log(t, X, z) &
~(Read(t, Y, X)) & ~(Locking(N, Y)) & Unlock(N, Z) => Write(t, Y, X) &
Locking(N, Y)
theorem Serialize is
fa(p, q:Processors, T:Clockvalues, m:Messages, t:Transactions)
fa(i:BroadcastDelay, j:BroadcastBound)
fa(v, commit, abort:ProcDeci, N:Transactionid, X:Valstabstorage)
fa(y:Currentstatevalue, z:Newstatevalue, Y:CurrentData, Z:PreviousData) (
if((Deliver(p, m, T) => Deliver(q, m, (Clockbound(T, i, j)))) &
(AgreeBroad(p, m, T) & Decision(p, v, T) => AgreeBroad(q, m, (Clockbound(T, i, j)))
& Decision(q, v, T)) & (Agreeconsensus(p, commit, T) & Undo(t, abort, X, y)
& Redo(t, commit, X, z) => Log(t, X, z)))
then(Log(t, X, z) & (~(Write(t, Y, X))) & ~(Locking(N, Y)) &
Unlock(N, Z) => Read(t, Y, X) & Locking(N, Y))
else(Log(t, X, z) & (~(Read(t, Y, X))) & ~(Locking(N, Y)) &
Unlock(N, Z) => Write(t, Y, X) & Locking(N, Y)))
endspec
"#;

/// Chapter 5 text of the `SNAPSHOT` protocol.
pub const SNAPSHOT_SRC: &str = r#"
spec
import CONSENSUS
sort States
sort Channel
sort Null = Messages
sort Statestabstorage = Boolean
op sending : Processors*Messages*Channel*Processors*Clockvalues->Boolean
op reception : Processors*Messages*Channel*Processors*Clockvalues->Boolean
op record : Processors*States*Messages*Statestabstorage->Boolean
axiom sending is
fa(p, q:Processors, M:Messages, c:Channel, T:Clockvalues)
~(reception(p, M, c, q, T)) & sending(p, M, c, q, T)
axiom reception is
fa(p, q:Processors, M:Messages, c:Channel, T:Clockvalues)
~(sending(p, M, c, q, T)) & reception(p, M, c, q, T)
axiom record is
fa(p, q:Processors, M:Messages, c:Channel, T:Clockvalues)
fa(s:States, X:Statestabstorage) record(p, s, M, X)
axiom Globprocstateinfo is
fa(p, q:Processors) fa(m, M, N, Null:Messages) fa(c:Channel, T, T':Clockvalues)
fa(s, S:States, commit:ProcDeci) fa(X:Statestabstorage)
Agreeconsensus(p, commit, T) & sending(p, M, c, q, T) & record(p, s, N, X)
& ~(sending(p, m, c, q, T')) => reception(q, M, c, p, T) =>
(if(~(record(q, s, M, X)))
then (record(q, s, M, X) & record(q, S, Null, X))
else (record(q, s, m, X) & record(q, s, N, X) & ~(reception(q, M, c, p, T))))
endspec
"#;

/// The executable multi-version store (`mcv-mvcc`) as an instance of
/// the `SNAPSHOT` block: the recorded-state vocabulary refined with
/// timestamped version installs, snapshot visibility, first-committer
/// exclusion, and watermark garbage collection — the formal face of
/// the `IsolationLevel` knob in `mcv-engine`.
pub const MVCCSNAPSHOT_SRC: &str = r#"
spec
import SNAPSHOT
sort Versions
sort Timestamps
op install : Processors*States*Versions*Timestamps->Boolean
op visible : Versions*Timestamps*Timestamps->Boolean
op snapread : Processors*States*Versions*Timestamps->Boolean
op collected : Processors*Versions*Timestamps->Boolean
axiom Installrecords is
fa(p:Processors, s:States, M:Messages, X:Statestabstorage)
fa(v:Versions, T:Timestamps)
install(p, s, v, T) => record(p, s, M, X)
axiom Snapshotvisibility is
fa(p:Processors, s:States, v:Versions, T, B:Timestamps)
install(p, s, v, T) & visible(v, T, B) => snapread(p, s, v, B)
axiom Firstcommitterwins is
fa(p, q:Processors, s:States, v, w:Versions, T:Timestamps)
~(install(q, s, w, T)) & install(p, s, v, T)
axiom Gcwatermark is
fa(p:Processors, s:States, v:Versions, T, B, W:Timestamps)
collected(p, v, W) & visible(v, T, B) => ~(snapread(p, s, v, B))
endspec
"#;

/// Chapter 5 text of the `DECISIONMAKING` protocol, including the `CSM`
/// theorem (global property 2).
pub const DECISIONMAKING_SRC: &str = r#"
spec
import SNAPSHOT
op next : ProcDeci*ProcDeci->Boolean
op adjacent : ProcDeci*ProcDeci->Boolean
op inconsistent : ProcDeci*ProcDeci->Boolean
op neg : ProcDeci->ProcDeci
axiom next is
fa(commit, abort:ProcDeci) ~(adjacent(~(commit), commit)) &
next(commit, abort)
axiom adjacent is
fa(commit, abort:ProcDeci) ~(next(commit, abort)) &
adjacent(~(commit), commit)
axiom inconsistent is
fa(commit, abort:ProcDeci) adjacent(commit, commit) &
next(commit, abort)
axiom Constateinfo is
fa(p, q:Processors) fa(commit, abort:ProcDeci, s:States, M:Messages)
fa(X:Statestabstorage) record(q, s, M, X) & (~(next(commit, abort))) &
adjacent(~(commit), commit)
theorem CSM is
fa(p, q:Processors, T:Clockvalues, m, M, N, Null:Messages, c:Channel)
fa(i:BroadcastDelay, j:BroadcastBound, s, S:States)
fa(v, commit, abort:ProcDeci, X:Statestabstorage)
(
if((Deliver(p, m, T) => Deliver(q, m, (Clockbound(T, i, j)))) &
(AgreeBroad(p, m, T) & Decision(p, v, T) => AgreeBroad(q, m, (Clockbound(T, i, j)))
& Decision(q, v, T)) & ((Agreeconsensus(p, commit, T) & record(q, s, M, X)
& record(q, S, Null, X)) or (record(q, s, M, X) & record(q, s, N, X) &
(~(reception(q, M, c, p, T))))))
then(record(q, s, M, X) & (~(next(commit, abort))) &
adjacent(~(commit), commit))
else(inconsistent(commit, abort)))
endspec
"#;

/// Chapter 5 text of the `CHECKPOINTING` protocol.
pub const CHECKPOINTING_SRC: &str = r#"
spec
import TWOPHASELOCK
op C : Processors*Clockvalues->LocalClockvals
op receive : Processors*Messages*Processors*Clockvalues->Boolean
op send : Processors*Messages*Processors*Clockvalues->Boolean
op log : Processors*Messages*Clockvalues->Boolean
op Ckpt : Processors*LocalClockvals->Boolean
op ckpt : Processors*Clockvalues->Boolean
op Store : Processors*LocalClockvals->Boolean
op store : Processors*Clockvalues->Boolean
op Pi : Processors*Clockvalues->Boolean
op PI : Processors*LocalClockvals->Boolean
op Checkpoint : Processors*Clockvalues->Boolean
axiom receive is
fa(p, q:Processors, m:Messages, T:Clockvalues)
~(send(p, m, q, T)) & receive(p, m, q, T)
axiom send is
fa(p, q:Processors, m:Messages, T:Clockvalues)
~(receive(p, m, q, T)) & send(p, m, q, T)
axiom log is
fa(p, q:Processors, m:Messages, T:Clockvalues)
receive(p, m, q, T) & log(p, m, T)
axiom Ckpt is
fa(p:Processors, T:Clockvalues, S:LocalClockvals)
~(ckpt(p, T)) & Ckpt(p, S)
axiom ckpt is
fa(p:Processors, T:Clockvalues, S:LocalClockvals)
~(Ckpt(p, S)) & ckpt(p, T)
axiom Store is
fa(p:Processors, T:Clockvalues, S:LocalClockvals)
~(store(p, T)) & Store(p, S)
axiom store is
fa(p:Processors, T:Clockvalues, S:LocalClockvals)
~(Store(p, S)) & store(p, T)
axiom Pi is
fa(p:Processors, T:Clockvalues, S:LocalClockvals)
~(PI(p, S)) & Pi(p, T)
axiom PI is
fa(p:Processors, T:Clockvalues, S:LocalClockvals)
~(Pi(p, T)) & PI(p, S)
axiom Logging is
fa(m:Messages) fa(p, q:Processors)
fa(e, T:Clockvalues, S:LocalClockvals, i:BroadcastDelay, j:BroadcastBound)
fa(t:Transactions, Y:CurrentData, X:Valstabstorage)
Readlock(t, Y, X) & ~(Writelock(t, Y, X)) &
(S - i - e) < (C(p, T)) & (C(p, T) <= S) =>
(receive(p, m, q, T) => log(p, m, T))
axiom Checkpoint is
fa(m:Messages) fa(p:Processors) fa(n:Index)
fa(e, T:Clockvalues, S:LocalClockvals, i:BroadcastDelay, j:BroadcastBound)
fa(t:Transactions, Y:CurrentData, X:Valstabstorage)
~(Readlock(t, Y, X)) & Writelock(t, Y, X) &
(S - i - e) < (C(p, T)) & (C(p, T) <= S) =>
(if (ex(m) log(p, m, T) & (C(p, T) < S))
then (ckpt(p, T) & store(p, T) & Pi(p, T))
else (Ckpt(p, S) & Store(p, S) & PI(p, S)))
endspec
"#;

/// Chapter 5 text of the `ROLLBACKRECOVERY` protocol, including the
/// `RBR` theorem (global property 3).
pub const ROLLBACKRECOVERY_SRC: &str = r#"
spec
import CHECKPOINTING
op CorrecttoFailure : Processors*Clockvalues->Boolean
op Rollback : Index*Clockvalues->Boolean
op Restore : Index*Clockvalues->Boolean
op Recover : Index*Clockvalues->Boolean
op rollback : Index*LocalClockvals->Boolean
op restore : Index*LocalClockvals->Boolean
op recover : Index*LocalClockvals->Boolean
axiom CorrecttoFailure is
fa(p:Processors, T:Clockvalues)
Correct(p) & CorrecttoFailure(p, T)
axiom Rollback is
fa(n:Index, T:Clockvalues)
~(Restore(n, T)) & Rollback(n, T)
axiom Restore is
fa(n:Index, T:Clockvalues)
~(Rollback(n, T)) & Restore(n, T)
axiom rollback is
fa(n:Index, S:LocalClockvals)
~(restore(n, S)) & rollback(n, S)
axiom restore is
fa(n:Index, S:LocalClockvals)
~(rollback(n, S)) & restore(n, S)
axiom Recover is
fa(p:Processors, n:Index) fa(e, T:Clockvalues)
fa(i:BroadcastDelay, j:BroadcastBound, S:LocalClockvals) Checkpoint(p, T)
& ((S - i - e) < C(p, T)) & (C(p, T) <= S) & CorrecttoFailure(p, T) &
(ckpt(p, T) => Rollback(n, T) => Restore(n, T))
axiom recover is
fa(p:Processors, n:Index) fa(e, T:Clockvalues)
fa(i:BroadcastDelay, j:BroadcastBound, S:LocalClockvals) Checkpoint(p, T)
& ((S - i - e) < C(p, T)) & (C(p, T) <= S) & CorrecttoFailure(p, T) &
(Ckpt(p, S) => rollback(n, S) => restore(n, S))
theorem RBR is
fa(p, q:Processors, T:Clockvalues, m:Messages, t:Transactions, n:Index)
fa(i:BroadcastDelay, j:BroadcastBound, S:LocalClockvals)
fa(v, commit, abort:ProcDeci, N:Transactionid, X:Valstabstorage)
fa(y:Currentstatevalue, z:Newstatevalue, Y:CurrentData, Z:PreviousData)
(
if((Deliver(p, m, T) => Deliver(q, m, (Clockbound(T, i, j)))) &
(AgreeBroad(p, m, T) & Decision(p, v, T) => AgreeBroad(q, m, (Clockbound(T, i, j)))
& Decision(q, v, T)) & (Agreeconsensus(p, commit, T) & Undo(t, abort, X, y) &
Redo(t, commit, X, z) => Log(t, X, z)) &
((Log(t, X, z) & (~(Write(t, Y, X))) & (~(Locking(N, Y))) & Unlock(N, Z) =>
Read(t, Y, X) & Locking(N, Y)) or
(Log(t, X, z) & (~(Read(t, Y, X))) & (~(Locking(N, Y))) & Unlock(N, Z) =>
Write(t, Y, X) & Locking(N, Y))) &
((~(Readlock(t, Y, X)) & Writelock(t, Y, X) & ckpt(p, T) & store(p, T) &
Pi(p, T)) or (Ckpt(p, S) & Store(p, S) & PI(p, S))))
then(ckpt(p, T) => Rollback(n, T) => Restore(n, T))
else(Ckpt(p, S) => rollback(n, S) => restore(n, S)))
endspec
"#;

/// Authored spec (no Chapter 5 script exists): the voting / election
/// protocol, from its Section 3.5.1 requirements.
pub const VOTING_SRC: &str = r#"
spec
import CONSENSUS
sort Sites = Processors
op Operational : Sites*Clockvalues->Boolean
op FailedSite : Sites*Clockvalues->Boolean
op IsCoordinator : Sites*Clockvalues->Boolean
op ElectBackup : Sites*Clockvalues->Boolean
op LowerId : Sites*Sites->Boolean
op InvokeTermination : Sites*Clockvalues->Boolean
axiom FailureTriggersElection is
fa(c:Sites, T:Clockvalues) IsCoordinator(c, T) & FailedSite(c, T) =>
(ex(b:Sites) Operational(b, T) & ElectBackup(b, T))
axiom LowestOperationalWins is
fa(a, b:Sites, T:Clockvalues) ElectBackup(a, T) & ElectBackup(b, T) &
LowerId(a, b) => IsCoordinator(a, T)
axiom BackupIsOperational is
fa(b:Sites, T:Clockvalues) ElectBackup(b, T) => Operational(b, T)
axiom ElectionFollowsTermination is
fa(c:Sites, T:Clockvalues) InvokeTermination(c, T) & FailedSite(c, T) =>
(ex(b:Sites) ElectBackup(b, T))
endspec
"#;

/// Authored spec: the termination protocol, from its Section 3.5.1
/// requirements.
pub const TERMINATION_SRC: &str = r#"
spec
import DECISIONMAKING
sort Sites = Processors
op OperationalState : Sites*States*Clockvalues->Boolean
op NonBlockingRule : States->Boolean
op TerminateTemporarily : Clockvalues->Boolean
op TerminatePermanently : Clockvalues->Boolean
op BackupNeeded : Clockvalues->Boolean
axiom TemporaryOnRuleHolding is
fa(T:Clockvalues) (ex(s0:Sites, st:States) OperationalState(s0, st, T) &
NonBlockingRule(st)) => TerminateTemporarily(T)
axiom PermanentOnRuleFailing is
fa(T:Clockvalues) (fa(s0:Sites, st:States) OperationalState(s0, st, T) =>
~(NonBlockingRule(st))) => TerminatePermanently(T)
axiom TerminationElectsBackup is
fa(T:Clockvalues) TerminateTemporarily(T) => BackupNeeded(T)
endspec
"#;

/// Authored spec: failure / time-out management, from its Section 3.5.1
/// requirements.
pub const FAILURETIMEOUT_SRC: &str = r#"
spec
import BBB
sort Delta = Clockvalues
sort DriftRate
op Operational : Processors*Clockvalues->Boolean
op Failed : Processors*Clockvalues->Boolean
op Responds : Processors*Processors*Messages*Clockvalues->Boolean
op TwoDelta : Delta->Clockvalues
op TimeoutAt : Processors*Clockvalues->Boolean
op DriftAdjusted : Delta*DriftRate->Delta
op NotifiedOfFailure : Processors*Processors*Clockvalues->Boolean
axiom OperationalXorFailed is
fa(p:Processors, T:Clockvalues) ~(Operational(p, T) & Failed(p, T))
axiom SilenceImpliesCrash is
fa(p, q:Processors, m:Messages, T:Clockvalues, d:Delta)
~(Responds(q, p, m, TwoDelta(d))) & TimeoutAt(p, TwoDelta(d)) => Failed(q, T)
axiom MessagesBeforeFailureNotice is
fa(p, q:Processors, m:Messages, T:Clockvalues)
NotifiedOfFailure(p, q, T) => (fa(T0:Clockvalues) Deliver(p, m, T0))
endspec
"#;

/// Parses and caches the whole Chapter 5 spec chain, in dependency
/// order.
#[derive(Debug, Clone)]
pub struct SpecLibrary {
    /// `BBB` primitives.
    pub bbb: SpecRef,
    /// Reliable broadcast.
    pub reliable_broadcast: SpecRef,
    /// Consensus.
    pub consensus: SpecRef,
    /// Undo/redo logging.
    pub undoredo: SpecRef,
    /// Two-phase locking (carries theorem `Serialize`).
    pub two_phase_lock: SpecRef,
    /// Snapshot.
    pub snapshot: SpecRef,
    /// The executable multi-version store as a `SNAPSHOT` instance.
    pub mvcc_snapshot: SpecRef,
    /// Decision making (carries theorem `CSM`).
    pub decision_making: SpecRef,
    /// Checkpointing.
    pub checkpointing: SpecRef,
    /// Roll-back recovery (carries theorem `RBR`).
    pub rollback_recovery: SpecRef,
    /// Voting / election (authored from requirements).
    pub voting: SpecRef,
    /// Termination (authored from requirements).
    pub termination: SpecRef,
    /// Failure / time-out management (authored from requirements).
    pub failure_timeout: SpecRef,
}

impl SpecLibrary {
    /// Parses every block.
    ///
    /// # Panics
    ///
    /// Panics if any embedded spec text fails to parse — the texts are
    /// compile-time constants covered by tests, so a panic indicates a
    /// build defect, not user error.
    pub fn load() -> Self {
        fn must(name: &str, src: &str, imports: &[SpecRef]) -> SpecRef {
            match parse_spec(name, src, imports) {
                Ok(s) => Arc::new(s),
                Err(errs) => panic!("spec {name} failed to parse: {errs:?}"),
            }
        }
        let bbb = must("BBB", BBB_SRC, &[]);
        let reliable_broadcast =
            must("RELIABLEBROADCAST", RELIABLEBROADCAST_SRC, std::slice::from_ref(&bbb));
        let consensus = must("CONSENSUS", CONSENSUS_SRC, std::slice::from_ref(&reliable_broadcast));
        let undoredo = must("UNDOREDO", UNDOREDO_SRC, std::slice::from_ref(&consensus));
        let two_phase_lock =
            must("TWOPHASELOCK", TWOPHASELOCK_SRC, std::slice::from_ref(&undoredo));
        let snapshot = must("SNAPSHOT", SNAPSHOT_SRC, std::slice::from_ref(&consensus));
        let mvcc_snapshot = must("MVCCSNAPSHOT", MVCCSNAPSHOT_SRC, std::slice::from_ref(&snapshot));
        let decision_making =
            must("DECISIONMAKING", DECISIONMAKING_SRC, std::slice::from_ref(&snapshot));
        let checkpointing =
            must("CHECKPOINTING", CHECKPOINTING_SRC, std::slice::from_ref(&two_phase_lock));
        let rollback_recovery =
            must("ROLLBACKRECOVERY", ROLLBACKRECOVERY_SRC, std::slice::from_ref(&checkpointing));
        let voting = must("VOTING", VOTING_SRC, std::slice::from_ref(&consensus));
        let termination =
            must("TERMINATION", TERMINATION_SRC, std::slice::from_ref(&decision_making));
        let failure_timeout =
            must("FAILURETIMEOUT", FAILURETIMEOUT_SRC, std::slice::from_ref(&bbb));
        SpecLibrary {
            bbb,
            reliable_broadcast,
            consensus,
            undoredo,
            two_phase_lock,
            snapshot,
            mvcc_snapshot,
            decision_making,
            checkpointing,
            rollback_recovery,
            voting,
            termination,
            failure_timeout,
        }
    }

    /// All specs with their names, in dependency order.
    pub fn all(&self) -> Vec<&SpecRef> {
        vec![
            &self.bbb,
            &self.reliable_broadcast,
            &self.consensus,
            &self.undoredo,
            &self.two_phase_lock,
            &self.snapshot,
            &self.mvcc_snapshot,
            &self.decision_making,
            &self.checkpointing,
            &self.rollback_recovery,
            &self.voting,
            &self.termination,
            &self.failure_timeout,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_parse() {
        let lib = SpecLibrary::load();
        assert_eq!(lib.all().len(), 13);
    }

    #[test]
    fn mvcc_snapshot_refines_the_snapshot_block() {
        let lib = SpecLibrary::load();
        // The instance sees the parent's vocabulary through the import…
        assert!(lib.mvcc_snapshot.signature.op(&"record".into()).is_some());
        assert!(lib.mvcc_snapshot.signature.op(&"sending".into()).is_some());
        // …and adds the executable store's own ops.
        assert!(lib.mvcc_snapshot.signature.op(&"install".into()).is_some());
        assert!(lib.mvcc_snapshot.signature.op(&"visible".into()).is_some());
        assert!(lib.mvcc_snapshot.signature.op(&"collected".into()).is_some());
    }

    #[test]
    fn all_specs_are_well_formed() {
        let lib = SpecLibrary::load();
        for spec in lib.all() {
            let issues = spec.check();
            assert!(issues.is_empty(), "{}: {issues:?}", spec.name);
        }
    }

    #[test]
    fn chapter5_axiom_counts_match_thesis() {
        let lib = SpecLibrary::load();
        assert_eq!(lib.reliable_broadcast.axioms().count(), 5);
        // CONSENSUS: 5 imported + 4 own.
        assert_eq!(lib.consensus.axioms().count(), 9);
        assert_eq!(lib.two_phase_lock.theorems().count(), 1);
        assert_eq!(lib.decision_making.theorems().count(), 1);
        // ROLLBACKRECOVERY inherits Serialize through the import chain
        // and adds RBR.
        assert!(lib.rollback_recovery.property(&"RBR".into()).is_some());
        assert!(lib.rollback_recovery.property(&"Serialize".into()).is_some());
    }

    #[test]
    fn imports_propagate_vocabulary() {
        let lib = SpecLibrary::load();
        // TWOPHASELOCK sees Deliver (BBB) through the chain.
        assert!(lib.two_phase_lock.signature.op(&"Deliver".into()).is_some());
        // ROLLBACKRECOVERY sees everything.
        assert!(lib.rollback_recovery.signature.op(&"Readlock".into()).is_some());
        assert!(lib.rollback_recovery.signature.op(&"Agreeconsensus".into()).is_some());
    }

    #[test]
    fn serialize_theorem_shape() {
        let lib = SpecLibrary::load();
        let thm = lib.two_phase_lock.property(&"Serialize".into()).unwrap();
        let text = thm.formula.to_string();
        assert!(text.contains("Clockbound"));
        assert!(text.contains("if"));
    }
}
