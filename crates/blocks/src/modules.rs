//! The module-level compositions of Chapter 4 (Figures 4.3–4.28):
//! each building block as an algebraic module `(PAR, EXP, IMP, BOD)`
//! with the four mapping morphisms, composed pairwise per Figure 2.4
//! with machine-checked certificates.
//!
//! Interfaces follow the thesis' figures: a module's *export* carries
//! the properties it guarantees (`AgreeBroad`, `Storevalues`,
//! `Writelock`, …), its *import* the properties it assumes from the
//! block below, and the common *parameter* part holds the shared sorts
//! (processors, messages, clock values).

use crate::specs::SpecLibrary;
use mcv_core::{SpecBuilder, SpecMorphism, SpecRef};
use mcv_logic::{Sort, Sym};
use mcv_module::{CompositionCertificate, Module};

/// Builds every module and the Chapter 4 composition chains.
#[derive(Debug)]
pub struct ModuleFactory {
    lib: SpecLibrary,
    par: SpecRef,
}

/// A labeled composition result (one of Figures 4.4–4.28).
#[derive(Debug)]
pub struct ComposedStep {
    /// Figure label, e.g. "Fig 4.4 CONTROLLER".
    pub label: String,
    /// The composed module.
    pub module: Module,
    /// The certificate of Figure 2.4's conditions.
    pub certificate: CompositionCertificate,
}

impl ModuleFactory {
    /// A factory over a parsed spec library.
    pub fn new(lib: SpecLibrary) -> Self {
        let par = SpecBuilder::new("BASEPARAMS")
            .sort(Sort::new("Processors"))
            .sort(Sort::new("Messages"))
            .sort_alias(Sort::new("Clockvalues"), Sort::new("Nat"))
            .build_ref()
            .expect("static spec");
        ModuleFactory { lib, par }
    }

    /// The shared parameter spec (Figure 2.3's `R`).
    pub fn parameters(&self) -> &SpecRef {
        &self.par
    }

    fn base_sorts(&self, b: SpecBuilder) -> SpecBuilder {
        b.sort(Sort::new("Processors"))
            .sort(Sort::new("Messages"))
            .sort_alias(Sort::new("Clockvalues"), Sort::new("Nat"))
    }

    /// Builds a module from an export interface, an import interface,
    /// and the block's own axioms (copied from the Chapter 5 spec named
    /// `axiom_source`).
    fn module(
        &self,
        name: &str,
        exp: SpecRef,
        imp: SpecRef,
        axiom_source: &SpecRef,
        own_axioms: &[&str],
    ) -> Module {
        let mut bod = SpecBuilder::new(format!("{name}_BOD")).import(&imp).import(&exp);
        for ax in own_axioms {
            let p = axiom_source
                .property(&Sym::new(*ax))
                .unwrap_or_else(|| panic!("{name}: axiom {ax} not in {}", axiom_source.name));
            bod = bod.property(p.clone());
        }
        let bod = bod.build_ref().unwrap_or_else(|e| panic!("{name} body: {e:?}"));
        let f = SpecMorphism::new("f", self.par.clone(), exp.clone(), [], [])
            .unwrap_or_else(|e| panic!("{name} f: {e}"));
        let g = SpecMorphism::new("g", self.par.clone(), imp.clone(), [], [])
            .unwrap_or_else(|e| panic!("{name} g: {e}"));
        let h = SpecMorphism::new("h", exp.clone(), bod.clone(), [], [])
            .unwrap_or_else(|e| panic!("{name} h: {e}"));
        let k = SpecMorphism::new("k", imp.clone(), bod.clone(), [], [])
            .unwrap_or_else(|e| panic!("{name} k: {e}"));
        Module::new(name, self.par.clone(), exp, imp, bod, f, g, h, k)
            .unwrap_or_else(|e| panic!("{name}: {e}"))
    }

    /// The broadcast module (Figure 4.3 left): exports the reliable-
    /// broadcast properties, imports the Time/Failure/Communication/
    /// Model primitives.
    pub fn broadcast(&self) -> Module {
        let exp = self
            .base_sorts(SpecBuilder::new("A_BROADCAST"))
            .sort_alias(Sort::new("BroadcastDelay"), Sort::new("Clockvalues"))
            .sort_alias(Sort::new("BroadcastBound"), Sort::new("Clockvalues"))
            .predicate("Correct", vec![Sort::new("Processors")])
            .predicate(
                "Broadcast",
                vec![Sort::new("Processors"), Sort::new("Messages"), Sort::new("Clockvalues")],
            )
            .predicate(
                "Deliver",
                vec![Sort::new("Processors"), Sort::new("Messages"), Sort::new("Clockvalues")],
            )
            .op(
                "Clockdelay",
                vec![Sort::new("Clockvalues"), Sort::new("BroadcastDelay")],
                Sort::new("Clockvalues"),
            )
            .op(
                "Clockbound",
                vec![
                    Sort::new("Clockvalues"),
                    Sort::new("BroadcastDelay"),
                    Sort::new("BroadcastBound"),
                ],
                Sort::new("Clockvalues"),
            )
            .predicate(
                "TermBroad",
                vec![Sort::new("Processors"), Sort::new("Messages"), Sort::new("Clockvalues")],
            )
            .predicate(
                "ValiBroad",
                vec![Sort::new("Processors"), Sort::new("Messages"), Sort::new("Clockvalues")],
            )
            .predicate(
                "AgreeBroad",
                vec![Sort::new("Processors"), Sort::new("Messages"), Sort::new("Clockvalues")],
            )
            .build_ref()
            .expect("static spec");
        let imp = self
            .base_sorts(SpecBuilder::new("B_BROADCAST"))
            .predicate("Time", vec![Sort::new("Clockvalues")])
            .predicate("Failure", vec![Sort::new("Processors")])
            .predicate("Communication", vec![Sort::new("Processors"), Sort::new("Processors")])
            .predicate("Model", vec![])
            .build_ref()
            .expect("static spec");
        self.module(
            "BROADCAST",
            exp,
            imp,
            &self.lib.reliable_broadcast,
            &["Broadcast", "Deliver", "Termbroad", "Valibroad", "Agreebroad"],
        )
    }

    /// The consensus module (Figure 4.3 right): exports the consensus
    /// properties, imports the broadcast properties.
    pub fn consensus(&self) -> Module {
        let exp = self
            .base_sorts(SpecBuilder::new("A_CONSENSUS"))
            .sort_alias(Sort::new("ProcDeci"), Sort::new("Boolean"))
            .predicate(
                "Decision",
                vec![Sort::new("Processors"), Sort::new("ProcDeci"), Sort::new("Clockvalues")],
            )
            .predicate(
                "Proposal",
                vec![Sort::new("Processors"), Sort::new("ProcDeci"), Sort::new("Clockvalues")],
            )
            .predicate(
                "Valiconsensus",
                vec![Sort::new("Processors"), Sort::new("ProcDeci"), Sort::new("Clockvalues")],
            )
            .predicate(
                "Agreeconsensus",
                vec![Sort::new("Processors"), Sort::new("ProcDeci"), Sort::new("Clockvalues")],
            )
            .build_ref()
            .expect("static spec");
        let imp = self
            .base_sorts(SpecBuilder::new("B_CONSENSUS"))
            .sort_alias(Sort::new("BroadcastDelay"), Sort::new("Clockvalues"))
            .sort_alias(Sort::new("BroadcastBound"), Sort::new("Clockvalues"))
            .predicate(
                "ValiBroad",
                vec![Sort::new("Processors"), Sort::new("Messages"), Sort::new("Clockvalues")],
            )
            .predicate(
                "AgreeBroad",
                vec![Sort::new("Processors"), Sort::new("Messages"), Sort::new("Clockvalues")],
            )
            .build_ref()
            .expect("static spec");
        self.module(
            "CONSENSUS",
            exp,
            imp,
            &self.lib.consensus,
            &["Proposal", "Decision", "Valiconsensus", "Agreeconsensus"],
        )
    }

    /// The undo/redo logging module (Figure 4.5 right).
    pub fn undoredo(&self) -> Module {
        let exp = self
            .base_sorts(SpecBuilder::new("A_UNDOREDO"))
            .sort_alias(Sort::new("ProcDeci"), Sort::new("Boolean"))
            .sort_alias(Sort::new("Transactions"), Sort::new("Boolean"))
            .sort_alias(Sort::new("Valstabstorage"), Sort::new("Boolean"))
            .sort_alias(Sort::new("Currentstatevalue"), Sort::new("Nat"))
            .sort_alias(Sort::new("Newstatevalue"), Sort::new("Nat"))
            .predicate(
                "Log",
                vec![
                    Sort::new("Transactions"),
                    Sort::new("Valstabstorage"),
                    Sort::new("Newstatevalue"),
                ],
            )
            .predicate(
                "Undo",
                vec![
                    Sort::new("Transactions"),
                    Sort::new("ProcDeci"),
                    Sort::new("Valstabstorage"),
                    Sort::new("Currentstatevalue"),
                ],
            )
            .predicate(
                "Redo",
                vec![
                    Sort::new("Transactions"),
                    Sort::new("ProcDeci"),
                    Sort::new("Valstabstorage"),
                    Sort::new("Newstatevalue"),
                ],
            )
            .predicate(
                "Storevalues",
                vec![Sort::new("Transactions"), Sort::new("Valstabstorage"), Sort::new("ProcDeci")],
            )
            .build_ref()
            .expect("static spec");
        let imp = self
            .base_sorts(SpecBuilder::new("B_UNDOREDO"))
            .sort_alias(Sort::new("ProcDeci"), Sort::new("Boolean"))
            .predicate(
                "Decision",
                vec![Sort::new("Processors"), Sort::new("ProcDeci"), Sort::new("Clockvalues")],
            )
            .predicate(
                "Agreeconsensus",
                vec![Sort::new("Processors"), Sort::new("ProcDeci"), Sort::new("Clockvalues")],
            )
            .build_ref()
            .expect("static spec");
        self.module(
            "UNDOREDO",
            exp,
            imp,
            &self.lib.undoredo,
            &["Undo", "Redo", "Log", "Storevalues"],
        )
    }

    /// The two-phase-locking module (Figure 4.7 right).
    pub fn two_phase_lock(&self) -> Module {
        let exp = self
            .base_sorts(SpecBuilder::new("A_TWOPHASELOCK"))
            .sort_alias(Sort::new("Transactions"), Sort::new("Boolean"))
            .sort_alias(Sort::new("Valstabstorage"), Sort::new("Boolean"))
            .sort_alias(Sort::new("Newstatevalue"), Sort::new("Nat"))
            .sort(Sort::new("Transactionid"))
            .sort(Sort::new("CurrentData"))
            .sort(Sort::new("PreviousData"))
            .predicate(
                "Read",
                vec![
                    Sort::new("Transactions"),
                    Sort::new("CurrentData"),
                    Sort::new("Valstabstorage"),
                ],
            )
            .predicate(
                "Write",
                vec![
                    Sort::new("Transactions"),
                    Sort::new("CurrentData"),
                    Sort::new("Valstabstorage"),
                ],
            )
            .predicate("Locking", vec![Sort::new("Transactionid"), Sort::new("CurrentData")])
            .predicate("Unlock", vec![Sort::new("Transactionid"), Sort::new("PreviousData")])
            .predicate(
                "Readlock",
                vec![
                    Sort::new("Transactions"),
                    Sort::new("CurrentData"),
                    Sort::new("Valstabstorage"),
                ],
            )
            .predicate(
                "Writelock",
                vec![
                    Sort::new("Transactions"),
                    Sort::new("CurrentData"),
                    Sort::new("Valstabstorage"),
                ],
            )
            .build_ref()
            .expect("static spec");
        let imp = self
            .base_sorts(SpecBuilder::new("B_TWOPHASELOCK"))
            .sort_alias(Sort::new("ProcDeci"), Sort::new("Boolean"))
            .sort_alias(Sort::new("Transactions"), Sort::new("Boolean"))
            .sort_alias(Sort::new("Valstabstorage"), Sort::new("Boolean"))
            .sort_alias(Sort::new("Newstatevalue"), Sort::new("Nat"))
            .predicate(
                "Log",
                vec![
                    Sort::new("Transactions"),
                    Sort::new("Valstabstorage"),
                    Sort::new("Newstatevalue"),
                ],
            )
            .predicate(
                "Storevalues",
                vec![Sort::new("Transactions"), Sort::new("Valstabstorage"), Sort::new("ProcDeci")],
            )
            .build_ref()
            .expect("static spec");
        self.module(
            "TWOPHASELOCK",
            exp,
            imp,
            &self.lib.two_phase_lock,
            &["Read", "Write", "Locking", "Unlock", "Readlock", "Writelock"],
        )
    }

    /// The snapshot module (Figure 4.13 right).
    pub fn snapshot(&self) -> Module {
        let exp = self
            .base_sorts(SpecBuilder::new("A_SNAPSHOT"))
            .sort(Sort::new("States"))
            .sort(Sort::new("Channel"))
            .sort_alias(Sort::new("Statestabstorage"), Sort::new("Boolean"))
            .predicate(
                "sending",
                vec![
                    Sort::new("Processors"),
                    Sort::new("Messages"),
                    Sort::new("Channel"),
                    Sort::new("Processors"),
                    Sort::new("Clockvalues"),
                ],
            )
            .predicate(
                "reception",
                vec![
                    Sort::new("Processors"),
                    Sort::new("Messages"),
                    Sort::new("Channel"),
                    Sort::new("Processors"),
                    Sort::new("Clockvalues"),
                ],
            )
            .predicate(
                "record",
                vec![
                    Sort::new("Processors"),
                    Sort::new("States"),
                    Sort::new("Messages"),
                    Sort::new("Statestabstorage"),
                ],
            )
            .build_ref()
            .expect("static spec");
        let imp = self
            .base_sorts(SpecBuilder::new("B_SNAPSHOT"))
            .sort_alias(Sort::new("ProcDeci"), Sort::new("Boolean"))
            .predicate(
                "Agreeconsensus",
                vec![Sort::new("Processors"), Sort::new("ProcDeci"), Sort::new("Clockvalues")],
            )
            .build_ref()
            .expect("static spec");
        self.module(
            "SNAPSHOT",
            exp,
            imp,
            &self.lib.snapshot,
            &["sending", "reception", "record", "Globprocstateinfo"],
        )
    }

    /// The decision-making module (Figure 4.15 right).
    pub fn decision_making(&self) -> Module {
        let exp = self
            .base_sorts(SpecBuilder::new("A_DECISIONMAKING"))
            .sort_alias(Sort::new("ProcDeci"), Sort::new("Boolean"))
            .predicate("next", vec![Sort::new("ProcDeci"), Sort::new("ProcDeci")])
            .predicate("adjacent", vec![Sort::new("ProcDeci"), Sort::new("ProcDeci")])
            .predicate("inconsistent", vec![Sort::new("ProcDeci"), Sort::new("ProcDeci")])
            .op("neg", vec![Sort::new("ProcDeci")], Sort::new("ProcDeci"))
            .build_ref()
            .expect("static spec");
        let imp = self
            .base_sorts(SpecBuilder::new("B_DECISIONMAKING"))
            .sort(Sort::new("States"))
            .sort_alias(Sort::new("Statestabstorage"), Sort::new("Boolean"))
            .predicate(
                "record",
                vec![
                    Sort::new("Processors"),
                    Sort::new("States"),
                    Sort::new("Messages"),
                    Sort::new("Statestabstorage"),
                ],
            )
            .build_ref()
            .expect("static spec");
        self.module(
            "DECISIONMAKING",
            exp,
            imp,
            &self.lib.decision_making,
            &["next", "adjacent", "inconsistent", "Constateinfo"],
        )
    }

    /// The checkpointing module (Figure 4.25 right).
    pub fn checkpointing(&self) -> Module {
        let exp = self
            .base_sorts(SpecBuilder::new("A_CHECKPOINTING"))
            .sort_alias(Sort::new("LocalClockvals"), Sort::new("Clockvalues"))
            .sort_alias(Sort::new("Index"), Sort::new("Nat"))
            .op(
                "C",
                vec![Sort::new("Processors"), Sort::new("Clockvalues")],
                Sort::new("LocalClockvals"),
            )
            .predicate(
                "log",
                vec![Sort::new("Processors"), Sort::new("Messages"), Sort::new("Clockvalues")],
            )
            .predicate("Ckpt", vec![Sort::new("Processors"), Sort::new("LocalClockvals")])
            .predicate("ckpt", vec![Sort::new("Processors"), Sort::new("Clockvalues")])
            .predicate("Store", vec![Sort::new("Processors"), Sort::new("LocalClockvals")])
            .predicate("store", vec![Sort::new("Processors"), Sort::new("Clockvalues")])
            .predicate("Pi", vec![Sort::new("Processors"), Sort::new("Clockvalues")])
            .predicate("PI", vec![Sort::new("Processors"), Sort::new("LocalClockvals")])
            .predicate("Checkpoint", vec![Sort::new("Processors"), Sort::new("Clockvalues")])
            .build_ref()
            .expect("static spec");
        let imp = self
            .base_sorts(SpecBuilder::new("B_CHECKPOINTING"))
            .sort_alias(Sort::new("Transactions"), Sort::new("Boolean"))
            .sort_alias(Sort::new("Valstabstorage"), Sort::new("Boolean"))
            .sort(Sort::new("CurrentData"))
            .predicate(
                "Readlock",
                vec![
                    Sort::new("Transactions"),
                    Sort::new("CurrentData"),
                    Sort::new("Valstabstorage"),
                ],
            )
            .predicate(
                "Writelock",
                vec![
                    Sort::new("Transactions"),
                    Sort::new("CurrentData"),
                    Sort::new("Valstabstorage"),
                ],
            )
            .build_ref()
            .expect("static spec");
        // `receive`/`send` live in the block's own axioms; declare them
        // in the export so the body is closed.
        let exp = {
            let mut b = SpecBuilder::new("A_CHECKPOINTING2").import(&exp);
            b = b
                .sort_alias(Sort::new("BroadcastDelay"), Sort::new("Clockvalues"))
                .sort_alias(Sort::new("BroadcastBound"), Sort::new("Clockvalues"))
                .predicate(
                    "receive",
                    vec![
                        Sort::new("Processors"),
                        Sort::new("Messages"),
                        Sort::new("Processors"),
                        Sort::new("Clockvalues"),
                    ],
                )
                .predicate(
                    "send",
                    vec![
                        Sort::new("Processors"),
                        Sort::new("Messages"),
                        Sort::new("Processors"),
                        Sort::new("Clockvalues"),
                    ],
                );
            b.build_ref().expect("static spec")
        };
        self.module(
            "CHECKPOINTING",
            exp,
            imp,
            &self.lib.checkpointing,
            &[
                "receive",
                "send",
                "log",
                "Ckpt",
                "ckpt",
                "Store",
                "store",
                "Pi",
                "PI",
                "Logging",
                "Checkpoint",
            ],
        )
    }

    /// The rollback-recovery module (Figure 4.27 right).
    pub fn recovery(&self) -> Module {
        let exp = self
            .base_sorts(SpecBuilder::new("A_RECOVERY"))
            .sort_alias(Sort::new("Index"), Sort::new("Nat"))
            .sort_alias(Sort::new("LocalClockvals"), Sort::new("Clockvalues"))
            .predicate("CorrecttoFailure", vec![Sort::new("Processors"), Sort::new("Clockvalues")])
            .predicate("Rollback", vec![Sort::new("Index"), Sort::new("Clockvalues")])
            .predicate("Restore", vec![Sort::new("Index"), Sort::new("Clockvalues")])
            .predicate("Recover", vec![Sort::new("Index"), Sort::new("Clockvalues")])
            .predicate("rollback", vec![Sort::new("Index"), Sort::new("LocalClockvals")])
            .predicate("restore", vec![Sort::new("Index"), Sort::new("LocalClockvals")])
            .predicate("recover", vec![Sort::new("Index"), Sort::new("LocalClockvals")])
            .predicate("Correct", vec![Sort::new("Processors")])
            .build_ref()
            .expect("static spec");
        let imp = self
            .base_sorts(SpecBuilder::new("B_RECOVERY"))
            .sort_alias(Sort::new("LocalClockvals"), Sort::new("Clockvalues"))
            .sort_alias(Sort::new("BroadcastDelay"), Sort::new("Clockvalues"))
            .sort_alias(Sort::new("BroadcastBound"), Sort::new("Clockvalues"))
            .op(
                "C",
                vec![Sort::new("Processors"), Sort::new("Clockvalues")],
                Sort::new("LocalClockvals"),
            )
            .predicate("Checkpoint", vec![Sort::new("Processors"), Sort::new("Clockvalues")])
            .predicate("ckpt", vec![Sort::new("Processors"), Sort::new("Clockvalues")])
            .predicate("Ckpt", vec![Sort::new("Processors"), Sort::new("LocalClockvals")])
            .build_ref()
            .expect("static spec");
        self.module(
            "RECOVERY",
            exp,
            imp,
            &self.lib.rollback_recovery,
            &[
                "CorrecttoFailure",
                "Rollback",
                "Restore",
                "rollback",
                "restore",
                "Recover",
                "recover",
            ],
        )
    }

    fn connect(&self, label: &str, consumer: &Module, provider: &Module) -> ComposedStep {
        let s = SpecMorphism::new_lenient("s", consumer.imp.clone(), provider.exp.clone(), [], [])
            .unwrap_or_else(|e| panic!("{label} s: {e}"));
        let t = SpecMorphism::new("t", consumer.par.clone(), provider.par.clone(), [], [])
            .unwrap_or_else(|e| panic!("{label} t: {e}"));
        let (module, certificate) =
            Module::compose(label_to_name(label), consumer, provider, &s, &t)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
        ComposedStep { label: label.to_owned(), module, certificate }
    }

    /// Figures 4.3/4.4 (= 4.11/4.12 = 4.19/4.20): the controller.
    pub fn controller(&self) -> ComposedStep {
        self.connect("Fig 4.4 CONTROLLER", &self.consensus(), &self.broadcast())
    }

    /// Figures 4.2–4.8: the serializability chain `PR1`, `PR2`.
    pub fn serializability_chain(&self) -> Vec<ComposedStep> {
        let controller = self.controller();
        let pr1 = self.connect("Fig 4.6 PR1", &self.undoredo(), &controller.module);
        let pr2 = self.connect("Fig 4.8 PR2", &self.two_phase_lock(), &pr1.module);
        vec![controller, pr1, pr2]
    }

    /// Figures 4.9–4.16: the consistent-state chain `PR5`, `PR6`.
    pub fn consistent_state_chain(&self) -> Vec<ComposedStep> {
        let controller = self.controller();
        let pr5 = self.connect("Fig 4.14 PR5", &self.snapshot(), &controller.module);
        let pr6 = self.connect("Fig 4.16 PR6", &self.decision_making(), &pr5.module);
        vec![controller, pr5, pr6]
    }

    /// Figures 4.17–4.28: the roll-back recovery chain `PR1`–`PR4`.
    pub fn rollback_chain(&self) -> Vec<ComposedStep> {
        let controller = self.controller();
        let pr1 = self.connect("Fig 4.22 PR1", &self.undoredo(), &controller.module);
        let pr2 = self.connect("Fig 4.24 PR2", &self.two_phase_lock(), &pr1.module);
        let pr3 = self.connect("Fig 4.26 PR3", &self.checkpointing(), &pr2.module);
        let pr4 = self.connect("Fig 4.28 PR4", &self.recovery(), &pr3.module);
        vec![controller, pr1, pr2, pr3, pr4]
    }
}

fn label_to_name(label: &str) -> String {
    label.split_whitespace().last().unwrap_or("COMPOSED").to_owned()
}

/// Renders a chain of composed steps.
pub fn render_chain(steps: &[ComposedStep]) -> String {
    let mut out = String::new();
    for s in steps {
        out.push_str(&format!(
            "{:<20} {}\n  compat: {}  body-pushout commutes: {}  composed commutes: {}\n",
            s.label,
            s.module.summary(),
            s.certificate.compatibility_holds,
            s.certificate.body_pushout_commutes,
            s.certificate.composed_commutes,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn factory() -> ModuleFactory {
        ModuleFactory::new(SpecLibrary::load())
    }

    #[test]
    fn every_block_module_commutes() {
        let f = factory();
        for m in [
            f.broadcast(),
            f.consensus(),
            f.undoredo(),
            f.two_phase_lock(),
            f.snapshot(),
            f.decision_making(),
            f.checkpointing(),
            f.recovery(),
        ] {
            assert!(m.commutes(), "{} does not commute", m.name);
        }
    }

    #[test]
    fn controller_composition_certificate_holds() {
        let f = factory();
        let c = f.controller();
        assert!(c.certificate.all_hold(), "{:?}", c.certificate);
        // Composed module: (R, A_CONSENSUS, B_BROADCAST, P12) per Fig 4.4.
        assert_eq!(c.module.exp.name.as_str(), "A_CONSENSUS");
        assert_eq!(c.module.imp.name.as_str(), "B_BROADCAST");
    }

    #[test]
    fn controller_body_has_both_blocks_properties() {
        let f = factory();
        let c = f.controller();
        assert!(c.module.bod.property(&"Agreebroad".into()).is_some());
        assert!(c.module.bod.property(&"Agreeconsensus".into()).is_some());
    }

    #[test]
    fn serializability_chain_certificates_hold() {
        let f = factory();
        let chain = f.serializability_chain();
        assert_eq!(chain.len(), 3);
        for s in &chain {
            assert!(s.certificate.all_hold(), "{}: {:?}", s.label, s.certificate);
        }
        // PR2's body stacks locking over logging over agreement.
        let pr2 = &chain[2].module;
        for p in ["Agreebroad", "Agreeconsensus", "Storevalues", "Readlock", "Writelock"] {
            assert!(pr2.bod.property(&Sym::new(p)).is_some(), "PR2 body missing {p}");
        }
    }

    #[test]
    fn consistent_state_chain_certificates_hold() {
        let f = factory();
        let chain = f.consistent_state_chain();
        for s in &chain {
            assert!(s.certificate.all_hold(), "{}: {:?}", s.label, s.certificate);
        }
        let pr6 = &chain[2].module;
        for p in ["Globprocstateinfo", "Constateinfo"] {
            assert!(pr6.bod.property(&Sym::new(p)).is_some(), "PR6 body missing {p}");
        }
    }

    #[test]
    fn rollback_chain_certificates_hold() {
        let f = factory();
        let chain = f.rollback_chain();
        assert_eq!(chain.len(), 5);
        for s in &chain {
            assert!(s.certificate.all_hold(), "{}: {:?}", s.label, s.certificate);
        }
        let pr4 = &chain[4].module;
        for p in ["Checkpoint", "Recover", "recover"] {
            assert!(pr4.bod.property(&Sym::new(p)).is_some(), "PR4 body missing {p}");
        }
    }

    #[test]
    fn render_includes_certificates() {
        let f = factory();
        let text = render_chain(&f.serializability_chain());
        assert!(text.contains("CONTROLLER"));
        assert!(text.contains("composed commutes: true"));
    }
}
