//! Traceability and change-impact analysis — the capability the thesis
//! motivates in Section 1.1.8 ("limit the number of proofs that have to
//! be re-checked when a change is made") and calls *backward
//! propagation* in Chapter 4.
//!
//! Regenerates the dependency diagrams of Figures 4.1, 4.9 and 4.17
//! (global property → sub-property → providing block) and quantifies
//! modular vs monolithic re-verification.

use crate::properties::{chapter5_commands, ProveCommand};
use crate::specs::SpecLibrary;
use mcv_logic::Sym;

/// The block each Chapter 5 axiom belongs to (its defining spec).
pub fn axiom_owner(lib: &SpecLibrary, axiom: &str) -> Option<String> {
    // The first spec in dependency order that carries the axiom is the
    // owner (imports propagate properties downstream).
    for spec in lib.all() {
        if spec.property(&Sym::new(axiom)).is_some() {
            return Some(spec.name.to_string());
        }
    }
    None
}

/// One sub-property dependency of a global property (one arrow of
/// Figure 4.1/4.9/4.17).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dependency {
    /// Sub-property (support axiom) name.
    pub axiom: String,
    /// The block (spec) providing it.
    pub block: String,
}

/// The dependency stack of a global property: which axiom of which
/// block each proof leans on.
pub fn dependency_stack(lib: &SpecLibrary, cmd: &ProveCommand) -> Vec<Dependency> {
    cmd.using
        .iter()
        .map(|a| Dependency {
            axiom: (*a).to_string(),
            block: axiom_owner(lib, a).unwrap_or_else(|| "?".to_string()),
        })
        .collect()
}

/// Renders one of the Figure 4.1/4.9/4.17 dependency diagrams.
pub fn render_dependencies(lib: &SpecLibrary, cmd: &ProveCommand) -> String {
    let mut out =
        format!("Global property {} (theorem {} in {}):\n", cmd.label, cmd.theorem, cmd.spec);
    for (i, d) in dependency_stack(lib, cmd).iter().enumerate() {
        out.push_str(&format!(
            "  sub-property {}: {:<20} provided by {}\n",
            i + 1,
            d.axiom,
            d.block
        ));
    }
    out
}

/// The effect of changing one block's axioms.
#[derive(Debug, Clone)]
pub struct ImpactReport {
    /// The changed block.
    pub changed_block: String,
    /// Proof commands whose support set touches the block (must be
    /// re-discharged).
    pub must_recheck: Vec<&'static str>,
    /// Proof commands untouched by the change.
    pub unaffected: Vec<&'static str>,
    /// Proofs re-checked under the modular discipline.
    pub modular_recheck: usize,
    /// Proofs re-checked monolithically (everything, always).
    pub monolithic_recheck: usize,
}

/// Computes which Chapter 5 proofs a change to `block` invalidates.
pub fn impact_of_change(lib: &SpecLibrary, block: &str) -> ImpactReport {
    let commands = chapter5_commands();
    let mut must = Vec::new();
    let mut unaffected = Vec::new();
    for cmd in &commands {
        let touches = cmd.using.iter().any(|a| axiom_owner(lib, a).as_deref() == Some(block));
        if touches {
            must.push(cmd.label);
        } else {
            unaffected.push(cmd.label);
        }
    }
    ImpactReport {
        changed_block: block.to_string(),
        modular_recheck: must.len(),
        monolithic_recheck: commands.len(),
        must_recheck: must,
        unaffected,
    }
}

/// Impact matrix over every block: the exp.mod experiment.
pub fn impact_matrix(lib: &SpecLibrary) -> Vec<ImpactReport> {
    lib.all().into_iter().map(|s| impact_of_change(lib, s.name.as_str())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axiom_owners_resolve_to_defining_specs() {
        let lib = SpecLibrary::load();
        assert_eq!(axiom_owner(&lib, "Agreebroad").as_deref(), Some("RELIABLEBROADCAST"));
        assert_eq!(axiom_owner(&lib, "Agreeconsensus").as_deref(), Some("CONSENSUS"));
        assert_eq!(axiom_owner(&lib, "Storevalues").as_deref(), Some("UNDOREDO"));
        assert_eq!(axiom_owner(&lib, "Readlock").as_deref(), Some("TWOPHASELOCK"));
        assert_eq!(axiom_owner(&lib, "Checkpoint").as_deref(), Some("CHECKPOINTING"));
        assert_eq!(axiom_owner(&lib, "Recover").as_deref(), Some("ROLLBACKRECOVERY"));
        assert_eq!(axiom_owner(&lib, "nonexistent"), None);
    }

    #[test]
    fn figure_4_1_dependency_stack() {
        let lib = SpecLibrary::load();
        let p1 = &chapter5_commands()[0];
        let deps = dependency_stack(&lib, p1);
        let blocks: Vec<&str> = deps.iter().map(|d| d.block.as_str()).collect();
        assert!(blocks.contains(&"RELIABLEBROADCAST"));
        assert!(blocks.contains(&"CONSENSUS"));
        assert!(blocks.contains(&"UNDOREDO"));
        assert!(blocks.contains(&"TWOPHASELOCK"));
    }

    #[test]
    fn broadcast_change_invalidates_everything() {
        // Every global property leans on Agreebroad (Figures 4.1/4.9/4.17
        // all bottom out at the broadcast block).
        let lib = SpecLibrary::load();
        let r = impact_of_change(&lib, "RELIABLEBROADCAST");
        assert_eq!(r.modular_recheck, 3);
    }

    #[test]
    fn lock_change_spares_consistent_state() {
        // Changing 2PL must not force re-proving CSM (p2): its support
        // has no TWOPHASELOCK axiom.
        let lib = SpecLibrary::load();
        let r = impact_of_change(&lib, "TWOPHASELOCK");
        assert!(r.must_recheck.contains(&"p1"));
        assert!(r.must_recheck.contains(&"p3"));
        assert!(r.unaffected.contains(&"p2"));
        assert!(r.modular_recheck < r.monolithic_recheck);
    }

    #[test]
    fn snapshot_change_only_hits_csm() {
        let lib = SpecLibrary::load();
        let r = impact_of_change(&lib, "SNAPSHOT");
        assert_eq!(r.must_recheck, vec!["p2"]);
        assert_eq!(r.modular_recheck, 1);
    }

    #[test]
    fn matrix_covers_all_blocks() {
        let lib = SpecLibrary::load();
        let m = impact_matrix(&lib);
        assert_eq!(m.len(), 13);
        // Blocks not referenced by any support set re-check nothing.
        let voting = m.iter().find(|r| r.changed_block == "VOTING").unwrap();
        assert_eq!(voting.modular_recheck, 0);
    }

    #[test]
    fn render_names_sub_properties() {
        let lib = SpecLibrary::load();
        let text = render_dependencies(&lib, &chapter5_commands()[0]);
        assert!(text.contains("Readlock"));
        assert!(text.contains("TWOPHASELOCK"));
    }
}
