//! Table 3.1 — the building blocks of 3PC — as a machine-readable
//! inventory, each block linking its formal spec, its Section 3.5.1
//! requirements, and the executable counterpart in this repository.

use crate::specs::SpecLibrary;
use mcv_core::SpecRef;

/// One row of Table 3.1.
#[derive(Debug, Clone)]
pub struct Block {
    /// Table number (1.x per the thesis' controller grouping).
    pub number: &'static str,
    /// Block name.
    pub name: &'static str,
    /// What the block does (Section 3.5.1 summary).
    pub role: &'static str,
    /// Requirements from Section 3.5.1.
    pub requirements: Vec<&'static str>,
    /// The formal specification.
    pub spec: SpecRef,
    /// Whether the spec text exists in Chapter 5 (`true`) or was
    /// authored here from the requirements (`false`).
    pub chapter5_script: bool,
    /// The executable counterpart (crate::module path).
    pub executable: &'static str,
}

/// The full Table 3.1 inventory.
pub fn blocks(lib: &SpecLibrary) -> Vec<Block> {
    vec![
        Block {
            number: "1",
            name: "Controller",
            role: "co-ordinates all activities of the entire 3PC protocol",
            requirements: vec![
                "recognize participant failures",
                "allow recovery from mid-commitment failure",
                "reliable broadcasting between sites",
                "uniform agreement procedure",
                "make committed actions permanent",
                "commitment executed at the end of a transaction",
                "collect local states into the global state vector",
            ],
            // The controller is the colimit of broadcast and consensus
            // (Figures 4.3/4.4); its spec is computed, but CONSENSUS
            // (which imports RELIABLEBROADCAST) is its Chapter 5 carrier.
            spec: lib.consensus.clone(),
            chapter5_script: true,
            executable: "mcv_commit::Site (coordinator role)",
        },
        Block {
            number: "1.1",
            name: "Broadcast",
            role: "reliable, atomic delivery of coordinator messages",
            requirements: vec![
                "termination: some correct process eventually delivers",
                "validity: delivered implies multicast to the group",
                "integrity: at most once, no duplication",
                "uniform agreement on delivery",
                "timeliness within Δ = (f+1)δ",
            ],
            spec: lib.reliable_broadcast.clone(),
            chapter5_script: true,
            executable: "mcv_sim::Ctx::broadcast over FIFO reliable channels",
        },
        Block {
            number: "1.2",
            name: "Consensus",
            role: "non-faulty participants agree on commit or abort",
            requirements: vec![
                "termination: every correct site decides",
                "integrity: decides at most once",
                "validity: decided value was proposed",
                "(uniform) agreement: no two (correct) sites differ",
            ],
            spec: lib.consensus.clone(),
            chapter5_script: true,
            executable: "mcv_commit::Site vote collection + decision broadcast",
        },
        Block {
            number: "2",
            name: "Snapshot",
            role: "maintains the global state vector of local states",
            requirements: vec![
                "global state never holds both commit and abort",
                "global transition on every local transition",
                "local transitions instantaneous and mutually exclusive",
                "exactly one local transition per global transition",
            ],
            spec: lib.snapshot.clone(),
            chapter5_script: true,
            executable: "mcv_commit::GlobalState; mcv_mvcc::MvccStore (MVCCSNAPSHOT instance)",
        },
        Block {
            number: "3",
            name: "Voting/Election",
            role: "assigns the coordinator; elects a backup on failure",
            requirements: vec![
                "invoked by the termination protocol on coordinator failure",
                "backup decides from its local state",
                "commit if concurrency set holds a commit state",
                "backup directs all sites to its local state, then decides",
            ],
            spec: lib.voting.clone(),
            chapter5_script: false,
            executable: "mcv_commit::Site bully election (lowest id wins)",
        },
        Block {
            number: "4",
            name: "Undo/Redo Logging",
            role: "stable-storage log for volatile loss and recovery",
            requirements: vec![
                "log kept in stable storage",
                "undo entry before writing",
                "redo entry before committing",
                "write actions to log before taking them",
                "functions across a second crash during recovery",
            ],
            spec: lib.undoredo.clone(),
            chapter5_script: true,
            executable: "mcv_txn::Wal",
        },
        Block {
            number: "5",
            name: "Two Phase Locking",
            role: "serializable data access during active transactions",
            requirements: vec![
                "one writer at a time (1-bit write-lock flag)",
                "write lock enforces complete mutual exclusion",
                "read counter for concurrent readers",
                "write-locked items admit no read locks",
                "all objects unlocked before finishing",
            ],
            spec: lib.two_phase_lock.clone(),
            chapter5_script: true,
            executable: "mcv_txn::LockManager",
        },
        Block {
            number: "6",
            name: "Checkpointing",
            role: "tentative/permanent checkpoints for rollback recovery",
            requirements: vec![
                "no domino effect",
                "checkpoints form a consistent system state",
                "no message consumed across checkpoint boundaries",
                "periodic with period Π > β + δ",
            ],
            spec: lib.checkpointing.clone(),
            chapter5_script: true,
            executable: "mcv_txn::CheckpointStore + SiteDb::checkpoint",
        },
        Block {
            number: "7",
            name: "Recovery",
            role: "rolls a failed site back to its checkpointed state",
            requirements: vec![
                "restore from stable checkpoint and replay logged messages",
                "roll back dependent processes",
                "externalize messages only when never undone",
                "recovered site rejoins the transaction",
            ],
            spec: lib.rollback_recovery.clone(),
            chapter5_script: true,
            executable: "mcv_txn::SiteDb::recover + mcv_commit DecisionReq",
        },
        Block {
            number: "8",
            name: "Decision Making",
            role: "checks global-state consistency rules; triggers termination",
            requirements: vec![
                "no local state whose concurrency set has commit and abort",
                "no non-committable state concurrent with a commit",
                "terminate the transaction if either rule fails",
            ],
            spec: lib.decision_making.clone(),
            chapter5_script: true,
            executable: "mcv_commit::termination_decision + GlobalState rules",
        },
        Block {
            number: "9",
            name: "Termination",
            role: "terminates or re-coordinates a transaction after failure",
            requirements: vec![
                "temporary termination while the non-blocking rule holds",
                "permanent termination when no operational site satisfies it",
                "aid electing a backup coordinator",
            ],
            spec: lib.termination.clone(),
            chapter5_script: false,
            executable: "mcv_commit::Site::finish_termination",
        },
        Block {
            number: "10",
            name: "Failure/Time-out Management",
            role: "failure model and timeout detection",
            requirements: vec![
                "operational iff behaving per the specification",
                "explicit failure model",
                "drift-adjusted timeouts (1+ρ)δ",
                "silence for 2δ implies crash",
                "all pre-crash messages delivered before failure notice",
            ],
            spec: lib.failure_timeout.clone(),
            chapter5_script: false,
            executable: "mcv_sim timers + mcv_commit timeout transitions",
        },
    ]
}

/// Renders Table 3.1.
pub fn render_table(lib: &SpecLibrary) -> String {
    let mut out = String::from(
        "Table 3.1: Various Building Blocks of 3PC\n\
         #     Block                         sorts  ops  axioms  thms  Ch.5  executable counterpart\n",
    );
    for b in blocks(lib) {
        out.push_str(&format!(
            "{:<5} {:<29} {:>5} {:>4} {:>7} {:>5}  {:<4}  {}\n",
            b.number,
            b.name,
            b.spec.signature.sort_count(),
            b.spec.signature.op_count(),
            b.spec.axioms().count(),
            b.spec.theorems().count(),
            if b.chapter5_script { "yes" } else { "req." },
            b.executable,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_blocks_in_the_table() {
        let lib = SpecLibrary::load();
        assert_eq!(blocks(&lib).len(), 12);
    }

    #[test]
    fn every_block_has_requirements_and_a_spec() {
        let lib = SpecLibrary::load();
        for b in blocks(&lib) {
            assert!(!b.requirements.is_empty(), "{}", b.name);
            assert!(b.spec.signature.op_count() > 0, "{}", b.name);
        }
    }

    #[test]
    fn render_includes_all_rows() {
        let lib = SpecLibrary::load();
        let table = render_table(&lib);
        assert!(table.contains("Two Phase Locking"));
        assert!(table.contains("Failure/Time-out Management"));
        assert_eq!(table.lines().count(), 2 + 12);
    }
}
