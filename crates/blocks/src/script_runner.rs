//! The thesis' Chapter 5 *processing scripts*, reconstructed statement
//! by statement (spec → translate → spec → morphism → diagram → colimit
//! → … → prove) and run through the [`mcv_core::ScriptEngine`]
//! interpreter.
//!
//! The spec bodies are the corrected Chapter 5 texts from
//! [`crate::specs`]; the command glue (translations with their full
//! identity maplets, morphisms, diagrams, colimits, `print`, `prove`)
//! follows the thesis' §5.1.1–§5.1.3 listings. Deviations are noted in
//! `EXPERIMENTS.md` (imports reference the spec names directly rather
//! than the `…toALLTRANSLATION` aliases, which are identity
//! translations and are still executed for fidelity).

use crate::specs;
use mcv_core::{ScriptEngine, ScriptError, ScriptEventKind};

fn stmt(name: &str, src: &str) -> String {
    format!("{name} = {}\n", src.trim())
}

/// Shared prologue: primitives through the composed controller.
fn prologue() -> String {
    let mut s = String::new();
    s.push_str(&stmt("BBB", specs::BBB_SRC));
    s.push_str(
        "BBBtoALLTRANSLATION = translate(BBB) by\n\
         {Clockvalues +-> Clockvalues, LocalClockvals +-> LocalClockvals,\n\
         Processors +-> Processors, Index +-> Index, Messages +-> Messages,\n\
         Procstate +-> Procstate, Correct +-> Correct, InOrder +-> InOrder,\n\
         Broadcast +-> Broadcast, Deliver +-> Deliver}\n",
    );
    s.push_str(&stmt("RELIABLEBROADCAST", specs::RELIABLEBROADCAST_SRC));
    s.push_str(
        "RELBROADtoALLTRANSLATION = translate(RELIABLEBROADCAST) by\n\
         {Broadcast +-> Broadcast, Deliver +-> Deliver,\n\
         ReliableNetwork +-> ReliableNetwork, BroadcastDelay +-> BroadcastDelay,\n\
         BroadcastBound +-> BroadcastBound, TermBroad +-> TermBroad,\n\
         ValiBroad +-> ValiBroad, AgreeBroad +-> AgreeBroad}\n",
    );
    s.push_str(&stmt("CONSENSUS", specs::CONSENSUS_SRC));
    s.push_str(
        "RELBROADtoCONSENSUS = morphism RELIABLEBROADCAST->CONSENSUS\n\
         {Broadcast +-> Broadcast, Deliver +-> Deliver, TermBroad +-> TermBroad,\n\
         ValiBroad +-> ValiBroad, AgreeBroad +-> AgreeBroad}\n",
    );
    s.push_str(
        "CONSEN = diagram {\n\
         a +-> RELIABLEBROADCAST,\n\
         b +-> CONSENSUS,\n\
         i : a->b +-> morphism RELIABLEBROADCAST->CONSENSUS\n\
         {Broadcast +-> Broadcast, Deliver +-> Deliver, TermBroad +-> TermBroad,\n\
         ValiBroad +-> ValiBroad, AgreeBroad +-> AgreeBroad}}\n",
    );
    s.push_str("CONSENT = colimit CONSEN\n");
    s
}

/// §5.1.1 — the serializability-of-transactions script, ending with
/// `p1 = prove Serialize …`.
pub fn serializability_script() -> String {
    let mut s = prologue();
    s.push_str(&stmt("UNDOREDO", specs::UNDOREDO_SRC));
    s.push_str(
        "CONSENTtoUNDOREDO = morphism CONSENSUS-->UNDOREDO\n\
         {Valiconsensus +-> Valiconsensus, Agreeconsensus +-> Agreeconsensus,\n\
         Decision +-> Decision, Proposal +-> Proposal}\n",
    );
    s.push_str(
        "UNRE = diagram {\n\
         a +-> CONSENSUS,\n\
         b +-> UNDOREDO,\n\
         i : a->b +-> morphism CONSENSUS-->UNDOREDO\n\
         {Valiconsensus +-> Valiconsensus, Agreeconsensus +-> Agreeconsensus,\n\
         Decision +-> Decision, Proposal +-> Proposal}}\n",
    );
    s.push_str("UNREDO = colimit UNRE\n");
    s.push_str(&stmt("TWOPHASELOCK", specs::TWOPHASELOCK_SRC));
    s.push_str(
        "UNREDOtoTWOPHASELOCK = morphism UNDOREDO->TWOPHASELOCK\n\
         {Undo +-> Undo, Redo +-> Redo, Storevalues +-> Storevalues}\n",
    );
    s.push_str(
        "TLOCK = diagram {\n\
         a +-> UNDOREDO,\n\
         b +-> TWOPHASELOCK,\n\
         i : a->b +-> morphism UNDOREDO->TWOPHASELOCK\n\
         {Undo +-> Undo, Redo +-> Redo, Storevalues +-> Storevalues}}\n",
    );
    s.push_str("TPL = colimit TLOCK\n");
    s.push_str("foo = print TPL\n");
    s.push_str(
        "p1 = prove Serialize in TWOPHASELOCK using Agreebroad Agreeconsensus \
         Storevalues Readlock Writelock\n",
    );
    s
}

/// §5.1.2 — the consistent-state-maintenance script, ending with
/// `p2 = prove CSM …`.
pub fn csm_script() -> String {
    let mut s = prologue();
    s.push_str(&stmt("SNAPSHOT", specs::SNAPSHOT_SRC));
    s.push_str(
        "CONSENTtoSNAPSHOT = morphism CONSENSUS-->SNAPSHOT\n\
         {Decision ++> Decision, Proposal ++> Proposal,\n\
         Valiconsensus ++> Valiconsensus, Agreeconsensus ++> Agreeconsensus}\n",
    );
    s.push_str(
        "SNAPS = diagram {\n\
         a ++> CONSENSUS,\n\
         b ++> SNAPSHOT,\n\
         i : a->b ++> morphism CONSENSUS->SNAPSHOT\n\
         {Decision ++> Decision, Proposal ++> Proposal,\n\
         Valiconsensus ++> Valiconsensus, Agreeconsensus ++> Agreeconsensus}}\n",
    );
    s.push_str("SNAP = colimit SNAPS\n");
    s.push_str(&stmt("DECISIONMAKING", specs::DECISIONMAKING_SRC));
    s.push_str(
        "SNAPtoDECISIONMAKING = morphism SNAPSHOT->DECISIONMAKING\n\
         {sending ++> sending, reception ++> reception, record ++> record}\n",
    );
    s.push_str(
        "DECMAK = diagram {\n\
         a ++> SNAPSHOT,\n\
         b ++> DECISIONMAKING,\n\
         i : a->b ++> morphism SNAPSHOT->DECISIONMAKING\n\
         {sending ++> sending, reception ++> reception, record ++> record}}\n",
    );
    s.push_str("DECISION = colimit DECMAK\n");
    s.push_str("foo = print DECISION\n");
    s.push_str(
        "p2 = prove CSM in DECISIONMAKING using Agreebroad Agreeconsensus \
         Globprocstateinfo Constateinfo inconsistent\n",
    );
    s
}

/// §5.1.3 — the roll-back-recovery script, ending with
/// `p3 = prove RBR …`.
pub fn rbr_script() -> String {
    let mut s = prologue();
    s.push_str(&stmt("UNDOREDO", specs::UNDOREDO_SRC));
    s.push_str(
        "CONSENTtoUNDOREDO = morphism CONSENSUS-->UNDOREDO\n\
         {Valiconsensus +-> Valiconsensus, Agreeconsensus +-> Agreeconsensus,\n\
         Decision +-> Decision, Proposal +-> Proposal}\n",
    );
    s.push_str(
        "UNRE = diagram {\n\
         a +-> CONSENSUS,\n\
         b +-> UNDOREDO,\n\
         i : a->b +-> morphism CONSENSUS-->UNDOREDO\n\
         {Valiconsensus +-> Valiconsensus, Agreeconsensus +-> Agreeconsensus,\n\
         Decision +-> Decision, Proposal +-> Proposal}}\n",
    );
    s.push_str("UNREDO = colimit UNRE\n");
    s.push_str(&stmt("TWOPHASELOCK", specs::TWOPHASELOCK_SRC));
    s.push_str(
        "UNREDOtoTWOPHASELOCK = morphism UNDOREDO->TWOPHASELOCK\n\
         {Undo +-> Undo, Redo +-> Redo, Storevalues +-> Storevalues}\n",
    );
    s.push_str(
        "TPLock = diagram {\n\
         a +-> UNDOREDO,\n\
         b +-> TWOPHASELOCK,\n\
         i : a->b +-> morphism UNDOREDO->TWOPHASELOCK\n\
         {Undo +-> Undo, Redo +-> Redo, Storevalues +-> Storevalues}}\n",
    );
    s.push_str("TPL = colimit TPLock\n");
    s.push_str(&stmt("CHECKPOINTING", specs::CHECKPOINTING_SRC));
    s.push_str(
        "TPLtoCHECKPOINTING = morphism TWOPHASELOCK->CHECKPOINTING\n\
         {Read +-> Read, Write +-> Write, Locking +-> Locking, Unlock +-> Unlock,\n\
         Readlock +-> Readlock, Writelock +-> Writelock}\n",
    );
    s.push_str(
        "CKPOINTING = diagram {\n\
         a +-> TWOPHASELOCK,\n\
         b +-> CHECKPOINTING,\n\
         i : a->b +-> morphism TWOPHASELOCK->CHECKPOINTING\n\
         {Read +-> Read, Write +-> Write, Locking +-> Locking,\n\
         Unlock +-> Unlock, Readlock +-> Readlock, Writelock +-> Writelock}}\n",
    );
    s.push_str("CKPT = colimit CKPOINTING\n");
    s.push_str(&stmt("ROLLBACKRECOVERY", specs::ROLLBACKRECOVERY_SRC));
    s.push_str(
        "CKPTtoROLLBACKRECOVERY = morphism CHECKPOINTING->ROLLBACKRECOVERY\n\
         {receive +-> receive, log +-> log, Ckpt +-> Ckpt, ckpt +-> ckpt,\n\
         Store +-> Store, store +-> store, Pi +-> Pi, PI +-> PI,\n\
         Checkpoint +-> Checkpoint}\n",
    );
    s.push_str(
        "RCOV = diagram {\n\
         a +-> CHECKPOINTING,\n\
         b +-> ROLLBACKRECOVERY,\n\
         i : a->b +-> morphism CHECKPOINTING->ROLLBACKRECOVERY\n\
         {receive +-> receive, log +-> log, Ckpt +-> Ckpt, ckpt +-> ckpt,\n\
         Store +-> Store, store +-> store, Pi +-> Pi, PI +-> PI,\n\
         Checkpoint +-> Checkpoint}}\n",
    );
    s.push_str("RECO = colimit RCOV\n");
    s.push_str("foo = print RECO\n");
    s.push_str(
        "p3 = prove RBR in ROLLBACKRECOVERY using Agreebroad Agreeconsensus \
         Storevalues Readlock Writelock Checkpoint Recover recover\n",
    );
    s
}

/// Outcome of running one Chapter 5 script.
#[derive(Debug)]
pub struct ScriptRun {
    /// Section label (`5.1.1`, `5.1.2`, `5.1.3`).
    pub section: &'static str,
    /// All events in order.
    pub events: Vec<ScriptEventKind>,
    /// The final `prove` result `(label, proved, vacuous)`.
    pub proof: Option<(String, bool, bool)>,
}

/// Runs one script source.
///
/// # Errors
///
/// Propagates the interpreter's [`ScriptError`].
pub fn run_script(section: &'static str, source: &str) -> Result<ScriptRun, ScriptError> {
    let mut engine = ScriptEngine::new();
    let events = engine.run(source)?;
    let proof = events.iter().rev().find_map(|e| match e {
        ScriptEventKind::Proved { label, proved, vacuous, .. } => {
            Some((label.clone(), *proved, *vacuous))
        }
        _ => None,
    });
    Ok(ScriptRun { section, events, proof })
}

/// Runs all three Chapter 5 scripts.
///
/// # Errors
///
/// Propagates the first failing script's [`ScriptError`].
pub fn run_chapter5_scripts() -> Result<Vec<ScriptRun>, ScriptError> {
    Ok(vec![
        run_script("5.1.1", &serializability_script())?,
        run_script("5.1.2", &csm_script())?,
        run_script("5.1.3", &rbr_script())?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializability_script_proves_p1() {
        let run = run_script("5.1.1", &serializability_script()).expect("script runs");
        let (label, proved, vacuous) = run.proof.expect("p1 ran");
        assert_eq!(label, "p1");
        assert!(proved);
        assert!(!vacuous);
    }

    #[test]
    fn csm_script_proves_p2_vacuously() {
        let run = run_script("5.1.2", &csm_script()).expect("script runs");
        let (label, proved, vacuous) = run.proof.expect("p2 ran");
        assert_eq!(label, "p2");
        assert!(proved);
        assert!(vacuous);
    }

    #[test]
    fn rbr_script_proves_p3() {
        let run = run_script("5.1.3", &rbr_script()).expect("script runs");
        let (label, proved, vacuous) = run.proof.expect("p3 ran");
        assert_eq!(label, "p3");
        assert!(proved);
        assert!(!vacuous);
    }

    #[test]
    fn script_colimits_match_the_pipeline_api() {
        // The script-built TPL colimit and the pipeline's PR2 carry the
        // same properties.
        let mut engine = mcv_core::ScriptEngine::new();
        engine.run(&serializability_script()).expect("script runs");
        let tpl = engine.spec("TPL").expect("TPL bound").clone();
        let lib = crate::SpecLibrary::load();
        let pr2 = &crate::pipeline::sequential_division_1(&lib)[2].colimit.apex;
        for prop in
            ["Agreebroad", "Agreeconsensus", "Storevalues", "Readlock", "Writelock", "Serialize"]
        {
            let sym = mcv_logic::Sym::new(prop);
            assert_eq!(
                tpl.property(&sym).is_some(),
                pr2.property(&sym).is_some(),
                "{prop} presence differs"
            );
        }
    }

    #[test]
    fn scripts_emit_print_events() {
        let run = run_script("5.1.1", &serializability_script()).expect("script runs");
        assert!(run
            .events
            .iter()
            .any(|e| matches!(e, ScriptEventKind::Printed(t) if t.contains("= spec"))));
    }
}
