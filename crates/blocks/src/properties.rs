//! The three global properties of the 3PC protocol and their proofs,
//! replaying Chapter 5's `prove <thm> in <spec> using <axioms…>`
//! commands with the resolution prover, plus the consistency audit the
//! thesis never ran.

use crate::specs::SpecLibrary;
use mcv_core::SpecRef;
use mcv_logic::{Formula, NamedFormula, ProofResult, Prover, ProverConfig, Sym};
use std::time::Duration;

/// One `prove … using …` command from Chapter 5.
#[derive(Debug, Clone)]
pub struct ProveCommand {
    /// Command label (`p1`, `p2`, `p3` in the thesis).
    pub label: &'static str,
    /// Theorem name.
    pub theorem: &'static str,
    /// Spec the theorem lives in.
    pub spec: &'static str,
    /// The support set (`using` clause).
    pub using: Vec<&'static str>,
}

/// The three proof commands of Chapter 5, verbatim.
pub fn chapter5_commands() -> Vec<ProveCommand> {
    vec![
        ProveCommand {
            label: "p1",
            theorem: "Serialize",
            spec: "TWOPHASELOCK",
            using: vec!["Agreebroad", "Agreeconsensus", "Storevalues", "Readlock", "Writelock"],
        },
        ProveCommand {
            label: "p2",
            theorem: "CSM",
            spec: "DECISIONMAKING",
            using: vec![
                "Agreebroad",
                "Agreeconsensus",
                "Globprocstateinfo",
                "Constateinfo",
                "inconsistent",
            ],
        },
        ProveCommand {
            label: "p3",
            theorem: "RBR",
            spec: "ROLLBACKRECOVERY",
            using: vec![
                "Agreebroad",
                "Agreeconsensus",
                "Storevalues",
                "Readlock",
                "Writelock",
                "Checkpoint",
                "Recover",
                "recover",
            ],
        },
    ]
}

/// Outcome of replaying one proof command.
#[derive(Debug)]
pub struct ProveOutcome {
    /// The command.
    pub command: ProveCommand,
    /// Prover result.
    pub result: ProofResult,
    /// Whether the *support set alone* is contradictory (proving `false`
    /// from just the `using` axioms succeeds) — a soundness audit the
    /// thesis did not perform.
    pub support_set_inconsistent: bool,
    /// The theorem holds only because the support set is contradictory
    /// (anything follows from ⊥). Under a strict set-of-support
    /// strategy the direct proof does not exist.
    pub vacuous: bool,
}

impl ProveOutcome {
    /// Whether the theorem was proved (possibly vacuously).
    pub fn proved(&self) -> bool {
        self.result.is_proved()
    }
}

fn spec_by_name<'a>(lib: &'a SpecLibrary, name: &str) -> &'a SpecRef {
    lib.all()
        .into_iter()
        .find(|s| s.name.as_str() == name)
        .unwrap_or_else(|| panic!("unknown spec {name}"))
}

/// The support axioms of a command, pulled from the spec.
pub fn support_axioms(lib: &SpecLibrary, cmd: &ProveCommand) -> Vec<NamedFormula> {
    let spec = spec_by_name(lib, cmd.spec);
    cmd.using
        .iter()
        .map(|name| {
            let p = spec
                .property(&Sym::new(*name))
                .unwrap_or_else(|| panic!("axiom {name} not found in {}", cmd.spec));
            NamedFormula::new(p.name.to_string(), p.formula.clone())
        })
        .collect()
}

/// A prover tuned for the Chapter 5 goals (large clause sets from the
/// `if/then/else` distribution).
pub fn chapter5_prover() -> Prover {
    Prover::with_config(ProverConfig {
        max_clauses: 400_000,
        max_weight: 120,
        timeout: Duration::from_secs(60),
        ..ProverConfig::default()
    })
}

/// Replays one proof command.
///
/// A consistency pre-check runs first: if the support set alone proves
/// `false`, the theorem follows vacuously and that refutation is
/// returned (with [`ProveOutcome::vacuous`] set). SNARK behind Specware
/// accepts such "proofs" silently; we surface them.
pub fn replay(lib: &SpecLibrary, cmd: &ProveCommand) -> ProveOutcome {
    let _span = mcv_obs::Span::enter("properties.replay");
    mcv_obs::counter("properties.replays", 1);
    let spec = spec_by_name(lib, cmd.spec);
    let theorem = spec
        .property(&Sym::new(cmd.theorem))
        .unwrap_or_else(|| panic!("theorem {} not found in {}", cmd.theorem, cmd.spec));
    let axioms = support_axioms(lib, cmd);
    let prover = chapter5_prover();
    let consistency = prover.prove(&axioms, &Formula::False);
    let support_set_inconsistent = consistency.is_proved();
    if support_set_inconsistent {
        mcv_obs::counter("properties.vacuous", 1);
        return ProveOutcome {
            command: cmd.clone(),
            result: consistency,
            support_set_inconsistent,
            vacuous: true,
        };
    }
    let result = prover.prove(&axioms, &theorem.formula);
    if result.is_proved() {
        mcv_obs::counter("properties.proved", 1);
    }
    ProveOutcome { command: cmd.clone(), result, support_set_inconsistent, vacuous: false }
}

/// Replays all three Chapter 5 proofs.
pub fn replay_all(lib: &SpecLibrary) -> Vec<ProveOutcome> {
    chapter5_commands().iter().map(|c| replay(lib, c)).collect()
}

/// Positive consistency certificate: a finite model of a proof
/// command's support set (the thesis never produced one; together with
/// the refutation-based audit this decides vacuity both ways).
pub fn satisfiability_certificate(
    lib: &SpecLibrary,
    cmd: &ProveCommand,
) -> Option<mcv_logic::Model> {
    let axioms = support_axioms(lib, cmd);
    mcv_logic::find_model(&axioms, &mcv_logic::ModelConfig::default())
}

/// A pair of axioms found to be jointly contradictory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContradictoryPair {
    /// The spec both axioms live in.
    pub spec: String,
    /// First axiom.
    pub a: String,
    /// Second axiom.
    pub b: String,
}

/// Audits every spec for pairwise-contradictory axioms (e.g. the
/// `Broadcast`/`Deliver` pair, which assert `~Deliver ∧ Broadcast` and
/// `~Broadcast ∧ Deliver` for all arguments). The thesis' axioms pass
/// SNARK's per-proof use because each `using` clause selects a subset;
/// the audit makes the latent inconsistencies visible.
pub fn consistency_audit(lib: &SpecLibrary) -> Vec<ContradictoryPair> {
    let prover = Prover::with_config(ProverConfig {
        max_clauses: 20_000,
        max_weight: 60,
        timeout: Duration::from_secs(5),
        ..ProverConfig::default()
    });
    let mut out = Vec::new();
    for spec in lib.all() {
        let own: Vec<_> = spec.axioms().collect();
        for (i, a) in own.iter().enumerate() {
            for b in own.iter().skip(i + 1) {
                let axioms = vec![
                    NamedFormula::new(a.name.to_string(), a.formula.clone()),
                    NamedFormula::new(b.name.to_string(), b.formula.clone()),
                ];
                if prover.prove(&axioms, &Formula::False).is_proved() {
                    let pair = ContradictoryPair {
                        spec: spec.name.to_string(),
                        a: a.name.to_string(),
                        b: b.name.to_string(),
                    };
                    // Imported axiom pairs recur in downstream specs;
                    // keep the first sighting only.
                    if !out.iter().any(|p: &ContradictoryPair| p.a == pair.a && p.b == pair.b) {
                        out.push(pair);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p1_serializability_is_proved() {
        let lib = SpecLibrary::load();
        let out = replay(&lib, &chapter5_commands()[0]);
        assert!(out.proved(), "{:?}", out.result);
    }

    #[test]
    fn p2_consistent_state_is_proved_but_only_vacuously() {
        let lib = SpecLibrary::load();
        let out = replay(&lib, &chapter5_commands()[1]);
        assert!(out.proved(), "{:?}", out.result);
        // The reproduction finding: the proof exists only because the
        // support set is contradictory.
        assert!(out.vacuous);
    }

    #[test]
    fn p3_rollback_recovery_is_proved() {
        let lib = SpecLibrary::load();
        let out = replay(&lib, &chapter5_commands()[2]);
        assert!(out.proved(), "{:?}", out.result);
    }

    #[test]
    fn p2_support_set_is_contradictory() {
        // The reproduction finding: CSM's support set contains both
        // Constateinfo (asserting ~next(c,a)) and inconsistent
        // (asserting next(c,a)); the proof goes through vacuously.
        let lib = SpecLibrary::load();
        let out = replay(&lib, &chapter5_commands()[1]);
        assert!(out.support_set_inconsistent);
    }

    #[test]
    fn p1_support_set_consistency() {
        let lib = SpecLibrary::load();
        let out = replay(&lib, &chapter5_commands()[0]);
        // Serializability's support set has no contradiction within the
        // prover's budget.
        assert!(!out.support_set_inconsistent);
    }

    #[test]
    fn audit_finds_the_broadcast_deliver_contradiction() {
        let lib = SpecLibrary::load();
        let pairs = consistency_audit(&lib);
        assert!(
            pairs.iter().any(|p| (p.a == "Broadcast" && p.b == "Deliver")
                || (p.a == "Deliver" && p.b == "Broadcast")),
            "{pairs:?}"
        );
        // next/adjacent is another contradictory pair.
        assert!(
            pairs.iter().any(|p| (p.a == "next" && p.b == "adjacent")
                || (p.a == "adjacent" && p.b == "next")
                || (p.a == "adjacent" && p.b == "inconsistent")
                || (p.a == "Constateinfo" && p.b == "inconsistent")),
            "{pairs:?}"
        );
    }

    #[test]
    fn p1_and_p3_support_sets_have_finite_models() {
        // Positive certificates: p1 and p3 are non-vacuous because their
        // support sets have models; p2's has none within the bounds.
        let lib = SpecLibrary::load();
        let cmds = chapter5_commands();
        assert!(satisfiability_certificate(&lib, &cmds[0]).is_some(), "p1 support unsat?");
        assert!(satisfiability_certificate(&lib, &cmds[2]).is_some(), "p3 support unsat?");
        assert!(satisfiability_certificate(&lib, &cmds[1]).is_none(), "p2 support sat?");
    }

    #[test]
    fn herbrand_cross_validates_where_tractable() {
        // The second proof method (Herbrand instantiation + DPLL) agrees
        // with resolution on a single-axiom consequence; on the full
        // multi-axiom support set its grounding blows past the budget
        // (9-variable axioms), which is exactly why resolution - whose
        // unification instantiates lazily - is the primary method.
        use mcv_logic::{parse_formula, prove_by_herbrand, HerbrandConfig, Prover};
        let lib = SpecLibrary::load();
        let all = support_axioms(&lib, &chapter5_commands()[0]);
        let storevalues: Vec<_> = all.iter().filter(|a| a.name == "Storevalues").cloned().collect();
        assert_eq!(storevalues.len(), 1);
        let goal = parse_formula(
            "Agreeconsensus(p0(), c0(), t0()) & Undo(t0(), a0(), t0(), t0()) & Redo(t0(), c0(), t0(), t0()) => Log(t0(), t0(), t0())",
        )
        .expect("well-formed");
        let res = Prover::new().prove(&storevalues, &goal).is_proved();
        let her = prove_by_herbrand(
            &storevalues,
            &goal,
            &HerbrandConfig { max_level: 0, max_instances: 2_000_000 },
        )
        .is_proved();
        assert!(res, "resolution failed");
        assert!(her, "herbrand failed");
        // On the full support set the grounding is out of budget:
        // resolution still proves, Herbrand honestly reports Unknown.
        assert!(Prover::new().prove(&all, &goal).is_proved());
        assert!(!prove_by_herbrand(&all, &goal, &HerbrandConfig::default()).is_proved());
    }

    #[test]
    fn ablations_are_essential_for_chapter5() {
        // DESIGN.md's ablation targets, measured: without forward
        // subsumption OR with FIFO (breadth-first) given-clause
        // selection, the Serialize proof no longer fits a 2-second
        // budget that the full strategy clears in milliseconds.
        use mcv_logic::{Prover, ProverConfig, Selection};
        use std::time::Duration;
        let lib = SpecLibrary::load();
        let cmd = &chapter5_commands()[0];
        let axioms = support_axioms(&lib, cmd);
        let thm = lib
            .two_phase_lock
            .property(&"Serialize".into())
            .expect("theorem present")
            .formula
            .clone();
        let budget = Duration::from_secs(2);
        let fast = Prover::with_config(ProverConfig { timeout: budget, ..ProverConfig::default() })
            .prove(&axioms, &thm);
        assert!(fast.is_proved(), "full strategy should prove within 2s");
        let no_sub = Prover::with_config(ProverConfig {
            use_subsumption: false,
            timeout: budget,
            ..ProverConfig::default()
        })
        .prove(&axioms, &thm);
        assert!(!no_sub.is_proved(), "subsumption should be essential");
        let fifo = Prover::with_config(ProverConfig {
            selection: Selection::Fifo,
            timeout: budget,
            ..ProverConfig::default()
        })
        .prove(&axioms, &thm);
        assert!(!fifo.is_proved(), "lightest-first selection should be essential");
    }

    #[test]
    fn wrong_support_set_fails_to_prove() {
        // Dropping Readlock/Writelock from p1's support must leave the
        // Serialize theorem unproved (no vacuous success).
        let lib = SpecLibrary::load();
        let cmd = ProveCommand {
            label: "p1-ablate",
            theorem: "Serialize",
            spec: "TWOPHASELOCK",
            using: vec!["Agreebroad", "Agreeconsensus", "Storevalues"],
        };
        let out = replay(&lib, &cmd);
        assert!(!out.proved(), "{:?}", out.result);
    }
}
