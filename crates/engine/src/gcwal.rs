//! Group-commit write-ahead logging.
//!
//! Wraps [`mcv_txn::ForcedWal`] behind a mutex and models the force as
//! a device operation with configurable latency. In group-commit mode
//! a dedicated log-writer thread serializes the pending tail once per
//! device operation and every commit that arrived while the device was
//! busy rides the next force — so under concurrency
//! `forces < commits`. With group commit off, every committer pays a
//! full device operation of its own (`forces == commits`), which is
//! the baseline the `exp.gc` experiment compares against.
//!
//! Commit acknowledgements wait on a durable cursor that only advances
//! *after* the device latency has elapsed — a commit is never acked
//! before its log record is durable.

use mcv_txn::{LogRecord, TxnId};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Process-wide wal-identity allocator: each [`GroupWal`] gets a
/// distinct id so traces with several concurrent logs (one per shard
/// in `mcv-dist`) keep their overlapping lsn spaces apart.
#[derive(Debug)]
pub(crate) struct GroupWal {
    inner: Mutex<GwInner>,
    /// Wakes the log-writer thread (group mode).
    work: Condvar,
    /// Wakes committers waiting for durability.
    forced: Condvar,
    group: bool,
    force_latency: Duration,
    /// How long the writer dwells after the first force request before
    /// serializing, so committers that are a few microseconds behind
    /// make this batch instead of the next (the classic group-commit
    /// timer).
    group_window: Duration,
    /// Causal trace sink captured at engine construction; `None` means
    /// every record call below is a no-op branch.
    trace: Option<Arc<mcv_trace::Recorder>>,
    /// This log's identity in trace events.
    wal_id: u64,
    /// Mark name (`wal.force.<id>`) under which the latest force's
    /// cause is published, so commit acks cite *this* log's force.
    mark: String,
    /// Time origin for the force-window atomics below.
    epoch: Instant,
    /// Start/end of the most recent device operation, nanoseconds
    /// since `epoch` (relaxed; published by the writer so timed
    /// committers can split their wait into batching dwell vs device
    /// time without taking a lock).
    force_start_ns: AtomicU64,
    force_end_ns: AtomicU64,
}

#[derive(Debug, Default)]
struct GwInner {
    log: mcv_txn::ForcedWal,
    /// Highest LSN some committer asked to have forced.
    requested: usize,
    /// Records that are durable (serialized *and* past device latency).
    durable: usize,
    /// A device operation is in flight (serializes forces in
    /// per-commit mode).
    forcing: bool,
    shutdown: bool,
    /// Commit records appended.
    commits: u64,
    /// Device operations performed.
    forces: u64,
}

impl GroupWal {
    pub(crate) fn new(
        group: bool,
        force_latency: Duration,
        group_window: Duration,
        trace: Option<Arc<mcv_trace::Recorder>>,
    ) -> Self {
        let wal_id = trace.as_ref().map(|t| t.next_wal_id()).unwrap_or(0);
        GroupWal {
            inner: Mutex::new(GwInner::default()),
            work: Condvar::new(),
            forced: Condvar::new(),
            group,
            force_latency,
            group_window,
            trace,
            wal_id,
            mark: format!("wal.force.{wal_id}"),
            epoch: Instant::now(),
            force_start_ns: AtomicU64::new(0),
            force_end_ns: AtomicU64::new(0),
        }
    }

    /// Nanoseconds since this log's construction (the force-window
    /// time base).
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The mark name carrying this log's latest force cause.
    pub(crate) fn force_mark(&self) -> &str {
        &self.mark
    }

    /// Records a `WalAppend` trace event for `rec` at `lsn`.
    fn trace_append(&self, rec: &LogRecord, lsn: usize) {
        let Some(t) = &self.trace else { return };
        let (txn, what) = match rec {
            LogRecord::Update { txn, .. } => (*txn, "update"),
            LogRecord::Commit { txn } => (*txn, "commit"),
            LogRecord::Abort { txn } => (*txn, "abort"),
            LogRecord::CheckpointDone { .. } => (TxnId(0), "checkpoint"),
        };
        // Cite the thread's ambient cause (e.g. the delivered message a
        // dist node is processing) so cross-thread commit chains stay
        // decomposable; engine-only worker threads carry no context.
        t.record(
            t.lane(),
            0,
            mcv_trace::context(),
            mcv_trace::EventKind::WalAppend {
                txn: txn.0,
                lsn: lsn as u64,
                what: what.to_owned(),
                wal: self.wal_id,
            },
        );
    }

    /// Records a `WalForce` trace event covering `upto` and publishes
    /// it under this log's `wal.force.<id>` mark so commit acks can
    /// cite it (and only it — other shards' logs have their own marks).
    fn trace_force(&self, upto: usize) {
        let Some(t) = &self.trace else { return };
        let c = t.record(
            t.lane(),
            0,
            None,
            mcv_trace::EventKind::WalForce { upto: upto as u64, wal: self.wal_id },
        );
        t.set_mark(&self.mark, c);
    }

    /// Appends a record without forcing (updates, aborts); returns its
    /// log sequence number.
    pub(crate) fn append(&self, rec: LogRecord) -> usize {
        let mut g = self.inner.lock().expect("wal mutex");
        let lsn = g.log.append(rec.clone());
        drop(g);
        self.trace_append(&rec, lsn);
        lsn
    }

    /// Appends `txn`'s commit record *without* waiting for durability
    /// and returns its log sequence number. Pairs with
    /// [`GroupWal::wait_durable`]: a staged-commit batch appends every
    /// record first, then pays one durability wait covering the highest
    /// LSN — the group-commit dwell lifted up to the caller.
    pub(crate) fn append_commit(&self, txn: TxnId) -> usize {
        let mut g = self.inner.lock().expect("wal mutex");
        let lsn = g.log.append(LogRecord::Commit { txn });
        g.commits += 1;
        drop(g);
        self.trace_append(&LogRecord::Commit { txn }, lsn);
        lsn
    }

    /// Blocks until every record up to `upto` is durable. In group mode
    /// one force request covers the whole staged tail; in per-commit
    /// mode the caller pays device operations until the cursor catches
    /// up (typically one covering everything staged so far).
    pub(crate) fn wait_durable(&self, upto: usize) {
        let mut g = self.inner.lock().expect("wal mutex");
        if self.group {
            g.requested = g.requested.max(upto);
            self.work.notify_one();
            while g.durable < upto && !g.shutdown {
                g = self.forced.wait(g).expect("wal mutex");
            }
        } else {
            loop {
                if g.durable >= upto || g.shutdown {
                    return;
                }
                if g.forcing {
                    g = self.forced.wait(g).expect("wal mutex");
                    continue;
                }
                g.forcing = true;
                g.log.force();
                let target = g.log.forced_records();
                g.forces += 1;
                drop(g);
                self.sleep_device();
                // Recorded before the durable cursor moves, so the
                // force always precedes the acks it enables.
                self.trace_force(target);
                g = self.inner.lock().expect("wal mutex");
                g.durable = g.durable.max(target);
                g.forcing = false;
                self.forced.notify_all();
            }
        }
    }

    /// Appends `txn`'s commit record and blocks until it is durable.
    pub(crate) fn append_commit_and_wait(&self, txn: TxnId) {
        self.commit_and_wait(txn, false);
    }

    /// Like [`GroupWal::append_commit_and_wait`], but also measures how
    /// the durability wait splits into `(dwell_ns, force_ns)`: batching
    /// dwell (waiting for a device operation to start / queueing for
    /// the device) vs the device operation that covered this record.
    pub(crate) fn append_commit_and_wait_timed(&self, txn: TxnId) -> (u64, u64) {
        self.commit_and_wait(txn, true)
    }

    fn commit_and_wait(&self, txn: TxnId, timed: bool) -> (u64, u64) {
        let mut g = self.inner.lock().expect("wal mutex");
        let lsn = g.log.append(LogRecord::Commit { txn });
        g.commits += 1;
        if self.trace.is_some() {
            drop(g);
            self.trace_append(&LogRecord::Commit { txn }, lsn);
            g = self.inner.lock().expect("wal mutex");
        }
        if self.group {
            let t0 = if timed { self.now_ns() } else { 0 };
            g.requested = g.requested.max(lsn);
            self.work.notify_one();
            while g.durable < lsn && !g.shutdown {
                g = self.forced.wait(g).expect("wal mutex");
            }
            if !timed {
                return (0, 0);
            }
            let t1 = self.now_ns();
            let total = t1.saturating_sub(t0);
            // Overlap of our wait with the force window the writer
            // published. If a new operation already started (start >
            // end), it is still in flight and bounded by our ack time.
            let fs = self.force_start_ns.load(Ordering::Relaxed);
            let fe = self.force_end_ns.load(Ordering::Relaxed);
            let (ws, we) = if fe >= fs { (fs, fe) } else { (fs, t1) };
            let force = we.min(t1).saturating_sub(ws.max(t0)).min(total);
            (total - force, force)
        } else {
            // Per-commit force: this committer always pays one full
            // device operation, even if a concurrent force already
            // covered its record (an fsync per commit is the point of
            // the baseline).
            let t0 = if timed { self.now_ns() } else { 0 };
            while g.forcing {
                g = self.forced.wait(g).expect("wal mutex");
            }
            let t1 = if timed { self.now_ns() } else { 0 };
            g.forcing = true;
            g.log.force();
            let target = g.log.forced_records();
            g.forces += 1;
            drop(g);
            self.sleep_device();
            // Recorded before the durable cursor moves, so the force
            // always precedes the ack it enables in the trace.
            self.trace_force(target);
            let mut g = self.inner.lock().expect("wal mutex");
            g.durable = g.durable.max(target);
            g.forcing = false;
            self.forced.notify_all();
            if timed {
                (t1 - t0, self.now_ns().saturating_sub(t1))
            } else {
                (0, 0)
            }
        }
    }

    /// The log-writer loop (group mode). Runs until shutdown; each
    /// iteration serializes the entire pending tail in one device
    /// operation, so commits queued during the previous operation's
    /// latency are batched.
    pub(crate) fn writer_loop(&self) {
        loop {
            {
                let mut g = self.inner.lock().expect("wal mutex");
                while !g.shutdown && g.requested <= g.log.forced_records() {
                    g = self.work.wait(g).expect("wal mutex");
                }
                if g.shutdown && g.requested <= g.log.forced_records() {
                    return;
                }
                if !self.group_window.is_zero() {
                    // Dwell with the mutex free so near-simultaneous
                    // committers land in this batch, then serialize.
                    drop(g);
                    std::thread::sleep(self.group_window);
                    g = self.inner.lock().expect("wal mutex");
                }
                g.log.force();
                g.forces += 1;
            }
            // Device busy: latency elapses with the mutex free, so new
            // commit records accumulate for the next batch.
            self.force_start_ns.store(self.now_ns(), Ordering::Relaxed);
            self.sleep_device();
            self.force_end_ns.store(self.now_ns(), Ordering::Relaxed);
            let mut g = self.inner.lock().expect("wal mutex");
            let target = g.log.forced_records();
            if self.trace.is_some() {
                // Recorded before the durable cursor moves, so the
                // force always precedes the acks it enables.
                drop(g);
                self.trace_force(target);
                g = self.inner.lock().expect("wal mutex");
            }
            g.durable = g.durable.max(target);
            self.forced.notify_all();
        }
    }

    fn sleep_device(&self) {
        if !self.force_latency.is_zero() {
            std::thread::sleep(self.force_latency);
        }
    }

    /// Stops the writer thread and releases any waiting committers.
    pub(crate) fn shutdown(&self) {
        let mut g = self.inner.lock().expect("wal mutex");
        g.shutdown = true;
        self.work.notify_all();
        self.forced.notify_all();
    }

    /// The bytes a crash at this instant would leave on disk.
    pub(crate) fn durable_image(&self) -> Vec<u8> {
        self.inner.lock().expect("wal mutex").log.durable_image().to_vec()
    }

    /// Transactions with a commit record appended (volatile view, for
    /// oracle filtering; use [`GroupWal::durable_image`] for the
    /// crash-surviving set).
    pub(crate) fn committed(&self) -> BTreeSet<TxnId> {
        self.inner.lock().expect("wal mutex").log.wal().committed()
    }

    /// `(commit records, device operations, total records)`.
    pub(crate) fn stats(&self) -> (u64, u64, u64) {
        let g = self.inner.lock().expect("wal mutex");
        (g.commits, g.forces, g.log.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn per_commit_mode_forces_once_per_commit() {
        let wal = GroupWal::new(false, Duration::ZERO, Duration::ZERO, None);
        for t in 1..=5 {
            wal.append(LogRecord::Update {
                txn: TxnId(t),
                item: "X".into(),
                old: 0,
                new: t as i64,
            });
            wal.append_commit_and_wait(TxnId(t));
        }
        let (commits, forces, _) = wal.stats();
        assert_eq!(commits, 5);
        assert_eq!(forces, 5);
    }

    #[test]
    fn group_mode_batches_concurrent_commits() {
        let wal = Arc::new(GroupWal::new(true, Duration::from_millis(2), Duration::ZERO, None));
        let writer = {
            let wal = Arc::clone(&wal);
            std::thread::spawn(move || wal.writer_loop())
        };
        let committers: Vec<_> = (1..=8)
            .map(|t| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    wal.append(LogRecord::Update {
                        txn: TxnId(t),
                        item: "X".into(),
                        old: 0,
                        new: t as i64,
                    });
                    wal.append_commit_and_wait(TxnId(t));
                })
            })
            .collect();
        for c in committers {
            c.join().expect("committer");
        }
        let (commits, forces, _) = wal.stats();
        assert_eq!(commits, 8);
        assert!(forces >= 1, "at least one device op");
        assert!(forces < commits, "group commit must batch: {forces} forces / {commits} commits");
        // Every committer was acked only after its record became durable.
        let crash = mcv_txn::Wal::from_bytes_lossy(&wal.durable_image());
        assert_eq!(crash.committed().len(), 8);
        wal.shutdown();
        writer.join().expect("writer");
    }
}
