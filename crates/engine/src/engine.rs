//! The engine proper: transaction handles over sharded 2PL, blocking
//! lock acquisition with cross-shard deadlock detection, undo/redo
//! logging with group commit, and history sampling for the
//! serializability oracle.

use crate::deadlock::WaitGraph;
use crate::gcwal::GroupWal;
use crate::shard::{Shard, TryAcquire};
use mcv_mvcc::{IsolationLevel, MvccStore};
use mcv_obs::{Histogram, MetricsSnapshot};
use mcv_prof::Phase;
use mcv_txn::{
    shard_of, youngest_victim, History, Item, LockMode, LogRecord, OpKind, TxnId, Value,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of lock-table / data shards.
    pub shards: usize,
    /// Batch commit-record forces through a dedicated log-writer
    /// thread (`true`) or force once per commit (`false`).
    pub group_commit: bool,
    /// Modeled device latency of one log force, in microseconds. The
    /// engine sleeps this long per device operation, which is what
    /// group commit amortizes; 0 disables the sleep (unit tests).
    pub force_latency_us: u64,
    /// Group-commit dwell: after the first force request of a batch,
    /// the log writer waits this long before serializing so commits a
    /// few microseconds behind join the batch. Only meaningful with
    /// `group_commit` and a non-zero `force_latency_us`.
    pub group_window_us: u64,
    /// Sample every `n`-th transaction into the history fed to the
    /// conflict-serializability oracle (0 disables sampling).
    pub sample_every: u64,
    /// Stop admitting new transactions into the sample once this many
    /// operations were recorded (bounds oracle cost).
    pub sample_cap_ops: usize,
    /// Concurrency-control regime. [`IsolationLevel::Serializable2pl`]
    /// is the engine's original all-2PL path; the MVCC levels serve
    /// reads from version chains (zero lock-table traffic on reads —
    /// see `engine.locks.read_acquisitions`) while writes keep taking
    /// exclusive 2PL locks.
    pub isolation: IsolationLevel,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 16,
            group_commit: true,
            force_latency_us: 0,
            group_window_us: 0,
            sample_every: 1,
            sample_cap_ops: 20_000,
            isolation: IsolationLevel::Serializable2pl,
        }
    }
}

/// Why a transaction operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The transaction was chosen as a deadlock victim and must abort;
    /// `victim` names the transaction the detector selected (always
    /// the youngest of the cycle, and here always the caller).
    Deadlock {
        /// The transaction that must abort.
        victim: TxnId,
    },
    /// The handle was already committed or aborted.
    Finished(TxnId),
    /// MVCC certification failed: `item` was overwritten by a
    /// transaction that committed after this transaction's snapshot
    /// (first-committer-wins for written items, rw-antidependency for
    /// read items under SSI). The caller must abort and may retry with
    /// a fresh transaction, like a deadlock victim.
    Certification {
        /// The transaction that lost certification.
        txn: TxnId,
        /// The item whose newer committed version caused the failure.
        item: Item,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Deadlock { victim } => {
                write!(f, "deadlock: transaction {} selected as victim", victim.0)
            }
            EngineError::Finished(t) => write!(f, "transaction {} already finished", t.0),
            EngineError::Certification { txn, item } => {
                write!(f, "certification: transaction {} lost {item} to a first committer", txn.0)
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[derive(Debug, Default)]
struct Sampler {
    ops: Vec<mcv_txn::Op>,
    txns: BTreeSet<TxnId>,
}

#[derive(Debug, Default)]
struct EngineCounters {
    committed: AtomicU64,
    aborted: AtomicU64,
    conflicts: AtomicU64,
    /// Shared (read) 2PL locks granted — stays at zero on the MVCC
    /// read path, which is the "snapshot reads take no locks" metric
    /// assertion.
    read_acquisitions: AtomicU64,
    /// Reads served from version chains.
    snapshot_reads: AtomicU64,
    /// Commit-time certification failures (FCW or SSI read-set).
    cert_aborts: AtomicU64,
    /// Snapshots pinned by SI/SSI transactions.
    snapshots: AtomicU64,
}

#[derive(Debug)]
pub(crate) struct Inner {
    cfg: EngineConfig,
    shards: Vec<Shard>,
    graph: WaitGraph,
    wal: Arc<GroupWal>,
    writer: Mutex<Option<JoinHandle<()>>>,
    next_txn: AtomicU64,
    sampler: Mutex<Sampler>,
    counters: EngineCounters,
    /// Version chains + timestamp authority for the MVCC isolation
    /// levels (constructed unconditionally; idle under 2PL).
    mvcc: MvccStore,
    /// Causal trace sink captured from the constructing thread at
    /// [`Engine::new`]; shared by all worker threads. `None` makes
    /// every trace branch in the hot paths a single cheap test.
    trace: Option<Arc<mcv_trace::Recorder>>,
    /// Phase profiler captured the same way (`mcv_prof::installed` at
    /// construction); `None` keeps every timing branch a cheap test.
    prof: Option<mcv_prof::Profiler>,
}

/// A multi-threaded transaction engine. Cheap to clone (`Arc` inside);
/// clones share all state.
///
/// # Examples
///
/// ```
/// use mcv_engine::{Engine, EngineConfig};
/// let engine = Engine::new(EngineConfig::default());
/// let mut t = engine.begin();
/// t.write("X", 7)?;
/// assert_eq!(t.read("X")?, 7);
/// t.commit()?;
/// assert!(engine.sampled_history().is_conflict_serializable());
/// # Ok::<(), mcv_engine::EngineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    inner: Arc<Inner>,
}

impl Engine {
    /// Builds an engine and, in group-commit mode, starts its
    /// log-writer thread.
    pub fn new(cfg: EngineConfig) -> Engine {
        assert!(cfg.shards > 0, "engine needs at least one shard");
        let trace = mcv_trace::installed();
        let prof = mcv_prof::installed();
        let wal = Arc::new(GroupWal::new(
            cfg.group_commit,
            Duration::from_micros(cfg.force_latency_us),
            Duration::from_micros(cfg.group_window_us),
            trace.clone(),
        ));
        let writer = if cfg.group_commit {
            let wal = Arc::clone(&wal);
            Some(std::thread::spawn(move || wal.writer_loop()))
        } else {
            None
        };
        let shards = (0..cfg.shards).map(|_| Shard::default()).collect();
        let mvcc = MvccStore::new(cfg.shards);
        Engine {
            inner: Arc::new(Inner {
                cfg,
                shards,
                graph: WaitGraph::default(),
                wal,
                writer: Mutex::new(writer),
                next_txn: AtomicU64::new(1),
                sampler: Mutex::new(Sampler::default()),
                counters: EngineCounters::default(),
                mvcc,
                trace,
                prof,
            }),
        }
    }

    /// Starts a transaction.
    pub fn begin(&self) -> Txn {
        let id = TxnId(self.inner.next_txn.fetch_add(1, Ordering::Relaxed));
        self.make_txn(id)
    }

    /// Starts a transaction under a caller-assigned id — the
    /// participant hook for distributed commit (`mcv-dist`), where the
    /// coordinator names the global transaction and every shard must
    /// log the same id. Callers own the id-space split: externally
    /// assigned ids must not collide with the engine's own allocator
    /// (which counts up from 1) — `mcv-dist` starts global ids at a
    /// high base for this reason.
    pub fn begin_at(&self, id: TxnId) -> Txn {
        self.make_txn(id)
    }

    fn make_txn(&self, id: TxnId) -> Txn {
        // The sampled-history oracle is single-version: it assumes each
        // read conflicts with the latest preceding write. MVCC reads
        // observe *older* versions by design, so feeding them to the
        // conflict checker would manufacture false cycles — sampling is
        // 2PL-only.
        let sampled = if self.inner.cfg.isolation.is_mvcc() || self.inner.cfg.sample_every == 0 {
            false
        } else if id.0.is_multiple_of(self.inner.cfg.sample_every) {
            let mut s = self.inner.sampler.lock().expect("sampler mutex");
            if s.ops.len() < self.inner.cfg.sample_cap_ops {
                s.txns.insert(id);
                true
            } else {
                false
            }
        } else {
            false
        };
        let snapshot = if self.inner.cfg.isolation.pins_snapshot() {
            let ts = self.inner.mvcc.begin_snapshot();
            self.inner.counters.snapshots.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = &self.inner.trace {
                t.record(t.lane(), 0, None, mcv_trace::EventKind::SnapshotOpen { txn: id.0, ts });
            }
            Some(ts)
        } else {
            None
        };
        Txn {
            engine: self.clone(),
            id,
            sampled,
            snapshot,
            write_buf: Vec::new(),
            read_set: BTreeSet::new(),
            undo: Vec::new(),
            touched: BTreeSet::new(),
            ever_blocked: false,
            active: true,
            prof: self.inner.prof.as_ref().map(|_| ProfState {
                begin: Instant::now(),
                timeline: mcv_prof::Timeline::new(id.0),
            }),
        }
    }

    /// Completes a batch of staged commits against this engine: one
    /// durability wait covering the batch's highest LSN, then per
    /// transaction the commit acknowledgement (trace event citing the
    /// covering force), lock release, and counters. The whole batch
    /// shares a single modeled device force where the serial path pays
    /// one per transaction.
    ///
    /// Every staged commit must come from this engine; staged commits
    /// from MVCC fallbacks (lsn 0) are already durable and only tally.
    pub fn finish_commits(&self, batch: Vec<StagedCommit>) {
        let Some(max_lsn) = batch.iter().map(|s| s.lsn).max() else { return };
        let wait0 = Instant::now();
        if max_lsn > 0 {
            self.inner.wal.wait_durable(max_lsn);
        }
        let wait_ns = wait0.elapsed().as_nanos() as u64;
        for mut s in batch {
            if s.lsn == 0 {
                continue; // MVCC fallback: committed in full already.
            }
            if let Some(t) = &self.inner.trace {
                // The ack was enabled by the device force covering our
                // commit record; the `wal.force` mark is published
                // before the durable cursor advances, so it is in place
                // by the time the wait above returns.
                let cause = t.mark(self.inner.wal.force_mark());
                t.record(t.lane(), 0, cause, mcv_trace::EventKind::Commit { txn: s.id.0 });
            }
            self.release_locks(s.id, &s.touched, s.ever_blocked);
            self.inner.counters.committed.fetch_add(1, Ordering::Relaxed);
            if let Some(state) = s.prof.take() {
                if let Some(profiler) = &self.inner.prof {
                    let mut tl = state.timeline;
                    tl.add(Phase::WalForce, wait_ns);
                    tl.total_ns = state.begin.elapsed().as_nanos() as u64;
                    profiler.record(&tl);
                }
            }
        }
    }

    /// The committed value of `item` (callers must ensure no writer is
    /// concurrently active on it — intended for quiesced inspection).
    pub fn value(&self, item: &str) -> Value {
        let s = shard_of(item, self.inner.cfg.shards);
        self.inner.shards[s].state.lock().expect("shard mutex").value(item)
    }

    /// Snapshot of all items across shards (quiesced inspection).
    pub fn state(&self) -> BTreeMap<Item, Value> {
        let mut out = BTreeMap::new();
        for shard in &self.inner.shards {
            out.extend(shard.state.lock().expect("shard mutex").data().clone());
        }
        out
    }

    /// The bytes a crash at this instant would leave on the log
    /// device. Feed to [`mcv_txn::Wal::from_bytes_lossy`] +
    /// [`mcv_txn::Wal::recover`] to rebuild the committed-prefix state.
    pub fn durable_image(&self) -> Vec<u8> {
        self.inner.wal.durable_image()
    }

    /// Transactions with a commit record in the (volatile) log.
    pub fn committed_ids(&self) -> BTreeSet<TxnId> {
        self.inner.wal.committed()
    }

    /// The sampled history projected onto committed transactions.
    ///
    /// Per-item operation order in the sample matches the real
    /// execution order (ops are recorded while the item's 2PL lock is
    /// held), and a projection of a history onto a transaction subset
    /// preserves conflict-graph edges among that subset — so a cycle
    /// here is a genuine serializability violation.
    pub fn sampled_history(&self) -> History {
        let committed = self.inner.wal.committed();
        let s = self.inner.sampler.lock().expect("sampler mutex");
        let mut h = History::new();
        for op in &s.ops {
            if committed.contains(&op.txn) {
                h.push(op.txn, op.item.clone(), op.kind);
            }
        }
        h
    }

    /// Number of transactions admitted into the sample.
    pub fn sampled_txns(&self) -> usize {
        self.inner.sampler.lock().expect("sampler mutex").txns.len()
    }

    /// A point-in-time metrics snapshot under `engine.*` names,
    /// suitable for [`mcv_obs`] absorption. Counters here are
    /// scheduling-dependent (thread interleavings vary), so benches
    /// report them as facts, not as determinism-checked metrics.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let (commits, forces, records) = self.inner.wal.stats();
        let deadlocks = {
            let g = self.inner.graph.m.lock().expect("graph mutex");
            g.deadlocks
        };
        let sampler = self.inner.sampler.lock().expect("sampler mutex");
        let mut counters = BTreeMap::new();
        counters.insert(
            "engine.txn.committed".to_owned(),
            self.inner.counters.committed.load(Ordering::Relaxed),
        );
        counters.insert(
            "engine.txn.aborted".to_owned(),
            self.inner.counters.aborted.load(Ordering::Relaxed),
        );
        counters.insert(
            "engine.locks.conflicts".to_owned(),
            self.inner.counters.conflicts.load(Ordering::Relaxed),
        );
        counters.insert("engine.locks.deadlocks".to_owned(), deadlocks);
        counters.insert(
            "engine.locks.read_acquisitions".to_owned(),
            self.inner.counters.read_acquisitions.load(Ordering::Relaxed),
        );
        counters.insert(
            "engine.mvcc.snapshot_reads".to_owned(),
            self.inner.counters.snapshot_reads.load(Ordering::Relaxed),
        );
        counters.insert(
            "engine.mvcc.cert_aborts".to_owned(),
            self.inner.counters.cert_aborts.load(Ordering::Relaxed),
        );
        counters.insert(
            "engine.mvcc.snapshots".to_owned(),
            self.inner.counters.snapshots.load(Ordering::Relaxed),
        );
        counters.insert(
            "engine.mvcc.versions_installed".to_owned(),
            self.inner.mvcc.versions_installed(),
        );
        counters
            .insert("engine.mvcc.gc_collected".to_owned(), self.inner.mvcc.versions_collected());
        counters.insert("engine.wal.commits".to_owned(), commits);
        counters.insert("engine.wal.forces".to_owned(), forces);
        counters.insert("engine.wal.records".to_owned(), records);
        counters.insert("engine.sample.ops".to_owned(), sampler.ops.len() as u64);
        counters.insert("engine.sample.txns".to_owned(), sampler.txns.len() as u64);
        MetricsSnapshot { counters, gauges: BTreeMap::new(), histograms: BTreeMap::new() }
    }

    /// Blocking lock acquisition with deadlock handling. Returns the
    /// shard index and whether the request ever blocked.
    fn lock(&self, txn: TxnId, item: &str, mode: LockMode) -> Result<(usize, bool), EngineError> {
        let inner = &*self.inner;
        let s = shard_of(item, inner.cfg.shards);
        // Fast path: no prior conflict on this request means no doom
        // flag to check and no stale waits-for edges to clear, so an
        // immediate grant never needs the global graph mutex.
        let mut was_blocked = false;
        loop {
            // Read the epoch *before* trying, so a release between the
            // failed try and the wait below moves the epoch and the
            // wait falls through — no lost wakeup. Until this request
            // has actually blocked, the txn has no out-edges (and so
            // cannot be a cycle victim of *this* request): the atomic
            // epoch hint suffices and the global mutex is skipped.
            let ep = if was_blocked {
                let mut g = inner.graph.m.lock().expect("graph mutex");
                if g.is_doomed(txn) {
                    g.undoom(txn);
                    g.clear_waiting(txn);
                    drop(g);
                    inner.shards[s].state.lock().expect("shard mutex").dequeue(txn, item);
                    return Err(EngineError::Deadlock { victim: txn });
                }
                g.epoch
            } else {
                inner.graph.epoch_hint()
            };
            let attempt =
                inner.shards[s].state.lock().expect("shard mutex").try_or_enqueue(txn, item, mode);
            match attempt {
                TryAcquire::Granted => {
                    if was_blocked {
                        let mut g = inner.graph.m.lock().expect("graph mutex");
                        g.clear_waiting(txn);
                    }
                    return Ok((s, was_blocked));
                }
                TryAcquire::Blocked(blockers) => {
                    was_blocked = true;
                    inner.counters.conflicts.fetch_add(1, Ordering::Relaxed);
                    let mut g = inner.graph.m.lock().expect("graph mutex");
                    if g.is_doomed(txn) {
                        // Re-check under the graph mutex: doomed while
                        // we were enqueueing.
                        g.undoom(txn);
                        g.clear_waiting(txn);
                        drop(g);
                        inner.shards[s].state.lock().expect("shard mutex").dequeue(txn, item);
                        return Err(EngineError::Deadlock { victim: txn });
                    }
                    g.set_edges(txn, blockers);
                    if let Some(cycle) = g.cycle_from(txn) {
                        g.deadlocks += 1;
                        let victim = youngest_victim(&cycle);
                        if victim == txn {
                            g.clear_waiting(txn);
                            drop(g);
                            inner.shards[s].state.lock().expect("shard mutex").dequeue(txn, item);
                            return Err(EngineError::Deadlock { victim });
                        }
                        g.doom(victim);
                        inner.graph.bump_epoch(&mut g);
                        inner.graph.cv.notify_all();
                    }
                    while g.epoch == ep && !g.is_doomed(txn) {
                        g = inner.graph.cv.wait(g).expect("graph mutex");
                    }
                    // Loop: either the world changed (retry the
                    // acquire) or we are doomed (handled at the top).
                }
            }
        }
    }

    /// Releases every lock of `txn` and wakes waiters. `touched` names
    /// the shards `txn` ever locked in. When the txn never conflicted
    /// (`ever_blocked` false) and nobody is queued behind it, there is
    /// no graph state to clean and nobody to wake — skip the global
    /// mutex entirely.
    fn release_locks(&self, txn: TxnId, touched: &BTreeSet<usize>, ever_blocked: bool) {
        let mut had_waiters = false;
        let mut released = self.inner.trace.as_ref().map(|_| Vec::new());
        for &s in touched {
            had_waiters |= self.inner.shards[s]
                .state
                .lock()
                .expect("shard mutex")
                .release_all(txn, released.as_mut());
        }
        if let (Some(t), Some(items)) = (&self.inner.trace, released) {
            for item in items {
                let c = t.record(
                    t.lane(),
                    0,
                    None,
                    mcv_trace::EventKind::LockRelease { txn: txn.0, item: item.clone() },
                );
                // Published so a later blocked acquire of the same item
                // can cite the release that unblocked it.
                t.set_mark(&format!("release:{item}"), c);
            }
        }
        if ever_blocked || had_waiters {
            let mut g = self.inner.graph.m.lock().expect("graph mutex");
            g.forget(txn);
            self.inner.graph.bump_epoch(&mut g);
            self.inner.graph.cv.notify_all();
        }
    }

    fn sample(&self, txn: TxnId, item: &str, kind: OpKind) {
        let mut s = self.inner.sampler.lock().expect("sampler mutex");
        s.ops.push(mcv_txn::Op { txn, item: item.to_owned(), kind });
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        self.wal.shutdown();
        if let Some(writer) = self.writer.lock().expect("writer mutex").take() {
            let _ = writer.join();
        }
    }
}

/// A transaction handle. Dropped without [`Txn::commit`] ⇒ aborts
/// (undo images restored, locks released).
#[derive(Debug)]
pub struct Txn {
    engine: Engine,
    id: TxnId,
    sampled: bool,
    /// Begin timestamp of the pinned snapshot (SI/SSI only).
    snapshot: Option<u64>,
    /// MVCC writes, buffered in write order until commit installs them
    /// at one commit timestamp (empty under 2PL).
    write_buf: Vec<(Item, Value)>,
    /// Items read under SSI, validated against concurrent committers
    /// at commit time.
    read_set: BTreeSet<Item>,
    /// `(shard, item, before-image)` of the first write per item, in
    /// write order; rollback replays it in reverse.
    undo: Vec<(usize, Item, Value)>,
    touched: BTreeSet<usize>,
    /// Whether any acquisition of this txn ever blocked — if not, its
    /// release can skip the global waits-for graph.
    ever_blocked: bool,
    active: bool,
    /// Phase-attribution state (present only when the engine was built
    /// with a profiler installed). Flushed at commit; aborted
    /// transactions are not flushed.
    prof: Option<ProfState>,
}

/// Per-transaction profiling scratch: the begin instant anchoring the
/// total span plus the accumulating phase timeline.
#[derive(Debug)]
struct ProfState {
    begin: Instant,
    timeline: mcv_prof::Timeline,
}

/// A commit whose record is appended but not yet durable: the staged
/// half of a two-step commit ([`Txn::commit_stage`] →
/// [`Engine::finish_commits`]). Holding one keeps the transaction's
/// locks; dropping it without finishing leaks nothing but the locks
/// stay held until finished, so callers must always hand staged
/// commits to [`Engine::finish_commits`].
#[derive(Debug)]
pub struct StagedCommit {
    id: TxnId,
    lsn: usize,
    touched: BTreeSet<usize>,
    ever_blocked: bool,
    prof: Option<ProfState>,
}

impl StagedCommit {
    /// The staged transaction's id.
    pub fn id(&self) -> TxnId {
        self.id
    }
}

impl Txn {
    /// This transaction's id.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Reads `item`. Under 2PL this takes a shared lock (held to end
    /// of transaction); under the MVCC levels it is served from the
    /// version chains and touches no lock table at all.
    pub fn read(&mut self, item: &str) -> Result<Value, EngineError> {
        self.check_active()?;
        if self.engine.inner.cfg.isolation.is_mvcc() {
            let t0 = self.prof_now();
            let v = self.mvcc_read(item);
            self.prof_add(Phase::Execute, t0);
            return Ok(v);
        }
        let s = self.acquire(item, LockMode::Shared)?;
        let t0 = self.prof_now();
        self.engine.inner.counters.read_acquisitions.fetch_add(1, Ordering::Relaxed);
        let state = self.engine.inner.shards[s].state.lock().expect("shard mutex");
        let v = state.value(item);
        drop(state);
        if self.sampled {
            self.engine.sample(self.id, item, OpKind::Read);
        }
        self.prof_add(Phase::Execute, t0);
        Ok(v)
    }

    /// The lock-free MVCC read path: own buffered writes first, then
    /// the snapshot-visible (SI/SSI) or latest-committed (RC) version.
    fn mvcc_read(&mut self, item: &str) -> Value {
        if let Some((_, v)) = self.write_buf.iter().rev().find(|(i, _)| i == item) {
            return *v;
        }
        let inner = &self.engine.inner;
        let (v, ts) = match self.snapshot {
            Some(snap) => inner.mvcc.read_at(item, snap),
            None => inner.mvcc.read_latest(item),
        };
        inner.counters.snapshot_reads.fetch_add(1, Ordering::Relaxed);
        if inner.cfg.isolation.certifies_reads() {
            self.read_set.insert(item.to_owned());
        }
        if let Some(t) = &inner.trace {
            t.record(
                t.lane(),
                0,
                None,
                mcv_trace::EventKind::SnapshotRead { txn: self.id.0, item: item.to_owned(), ts },
            );
        }
        v
    }

    /// Writes `item` under an exclusive lock, logging undo/redo first
    /// (write-ahead: the update record is appended before the store).
    ///
    /// Under the MVCC levels the exclusive lock is still taken (writers
    /// block writers) but the write is buffered: versions install at a
    /// single commit timestamp after certification. SI/SSI check
    /// first-committer-wins eagerly here — losing early saves work —
    /// and authoritatively again at commit.
    pub fn write(&mut self, item: &str, value: Value) -> Result<(), EngineError> {
        self.check_active()?;
        if self.engine.inner.cfg.isolation.is_mvcc() {
            self.acquire(item, LockMode::Exclusive)?;
            let t0 = self.prof_now();
            if let Some(snap) = self.snapshot {
                if self.engine.inner.mvcc.latest_ts(item) > snap {
                    self.engine.inner.counters.cert_aborts.fetch_add(1, Ordering::Relaxed);
                    return Err(EngineError::Certification { txn: self.id, item: item.to_owned() });
                }
            }
            self.write_buf.push((item.to_owned(), value));
            self.prof_add(Phase::Execute, t0);
            return Ok(());
        }
        let s = self.acquire(item, LockMode::Exclusive)?;
        let t0 = self.prof_now();
        let old = self.engine.inner.shards[s].state.lock().expect("shard mutex").value(item);
        self.engine.inner.wal.append(LogRecord::Update {
            txn: self.id,
            item: item.to_owned(),
            old,
            new: value,
        });
        self.engine.inner.shards[s].state.lock().expect("shard mutex").set(item, value);
        self.undo.push((s, item.to_owned(), old));
        if self.sampled {
            self.engine.sample(self.id, item, OpKind::Write);
        }
        self.prof_add(Phase::Execute, t0);
        Ok(())
    }

    /// Commits: forces the commit record (batched under group commit),
    /// then releases all locks. Returns only after the commit record
    /// is durable.
    ///
    /// Under the MVCC levels commit additionally certifies the write
    /// set (SI/SSI, first-committer-wins) and the read set (SSI), and
    /// installs the buffered writes as versions at one fresh commit
    /// timestamp; a certification failure aborts the transaction and
    /// returns [`EngineError::Certification`].
    pub fn commit(mut self) -> Result<(), EngineError> {
        self.check_active()?;
        if self.engine.inner.cfg.isolation.is_mvcc() {
            return self.mvcc_commit();
        }
        if self.prof.is_some() {
            let (dwell_ns, force_ns) = self.engine.inner.wal.append_commit_and_wait_timed(self.id);
            self.prof_add_ns(Phase::WalDwell, dwell_ns);
            self.prof_add_ns(Phase::WalForce, force_ns);
        } else {
            self.engine.inner.wal.append_commit_and_wait(self.id);
        }
        let ack0 = self.prof_now();
        if let Some(t) = &self.engine.inner.trace {
            // The ack was enabled by the device force covering our
            // commit record; the `wal.force` mark is published before
            // the durable cursor advances, so it is in place by the
            // time the wait above returns.
            let cause = t.mark(self.engine.inner.wal.force_mark());
            t.record(t.lane(), 0, cause, mcv_trace::EventKind::Commit { txn: self.id.0 });
        }
        self.engine.release_locks(self.id, &self.touched, self.ever_blocked);
        self.engine.inner.counters.committed.fetch_add(1, Ordering::Relaxed);
        self.prof_add(Phase::CommitAck, ack0);
        self.prof_flush();
        self.active = false;
        Ok(())
    }

    /// Stages a commit without waiting for durability: appends the
    /// commit record and returns a [`StagedCommit`] that still holds
    /// the transaction's locks. A batch of staged commits then pays
    /// **one** durability wait in [`Engine::finish_commits`] — the
    /// participant-side force batching of the multi-shot commit path
    /// (`mcv-dist`), where one modeled device force amortizes over
    /// every transaction delivered in the same transport batch.
    ///
    /// Only meaningful under 2PL; the MVCC levels have their own
    /// commit critical section and fall back to a full [`Txn::commit`]
    /// (the returned stage is already finished and waits on nothing).
    pub fn commit_stage(mut self) -> Result<StagedCommit, EngineError> {
        self.check_active()?;
        if self.engine.inner.cfg.isolation.is_mvcc() {
            let id = self.id;
            self.mvcc_commit()?;
            return Ok(StagedCommit {
                id,
                lsn: 0,
                touched: BTreeSet::new(),
                ever_blocked: false,
                prof: None,
            });
        }
        let lsn = self.engine.inner.wal.append_commit(self.id);
        let staged = StagedCommit {
            id: self.id,
            lsn,
            touched: std::mem::take(&mut self.touched),
            ever_blocked: self.ever_blocked,
            prof: self.prof.take(),
        };
        // The commit record is in the log: the transaction is decided,
        // so the drop guard must not roll it back.
        self.active = false;
        Ok(staged)
    }

    /// The MVCC commit critical section: certify under the store's
    /// commit lock, log and mirror the writes, wait for durability,
    /// install the versions, publish the timestamp, GC the touched
    /// chains.
    fn mvcc_commit(&mut self) -> Result<(), EngineError> {
        let engine = self.engine.clone();
        let inner = &*engine.inner;
        if self.write_buf.is_empty() {
            // Read-only: nothing to certify, log, or install. (Safe to
            // skip SSI validation: with every *writer* validated
            // read-current at commit, writer serialization order equals
            // commit order, and a read-only snapshot is a consistent
            // prefix of it.)
            if let Some(t) = &inner.trace {
                t.record(t.lane(), 0, None, mcv_trace::EventKind::Commit { txn: self.id.0 });
            }
            self.finish_snapshot();
            self.engine.release_locks(self.id, &self.touched, self.ever_blocked);
            inner.counters.committed.fetch_add(1, Ordering::Relaxed);
            self.prof_flush();
            self.active = false;
            return Ok(());
        }
        // Last-wins dedup in first-write order: one version per item
        // per commit timestamp.
        let mut writes: Vec<(Item, Value)> = Vec::with_capacity(self.write_buf.len());
        for (item, value) in &self.write_buf {
            match writes.iter_mut().find(|(i, _)| i == item) {
                Some(slot) => slot.1 = *value,
                None => writes.push((item.clone(), *value)),
            }
        }

        let cert0 = self.prof_now();
        let guard = inner.mvcc.commit_lock();
        let snap = self.snapshot.unwrap_or(0);
        let conflict = if inner.cfg.isolation.certifies_writes() {
            writes.iter().map(|(i, _)| i).find(|i| inner.mvcc.latest_ts(i) > snap).or_else(|| {
                if inner.cfg.isolation.certifies_reads() {
                    self.read_set.iter().find(|i| inner.mvcc.latest_ts(i) > snap)
                } else {
                    None
                }
            })
        } else {
            None
        };
        if let Some(item) = conflict {
            let item = item.clone();
            drop(guard);
            inner.counters.cert_aborts.fetch_add(1, Ordering::Relaxed);
            self.rollback();
            return Err(EngineError::Certification { txn: self.id, item });
        }
        self.prof_add(Phase::Certify, cert0);

        let exec0 = self.prof_now();
        let ts = inner.mvcc.last_committed() + 1;
        // WAL first (updates then commit, in timestamp order across
        // committers since the commit lock is held), mirroring into the
        // shard stores so `state()` / recovery equivalence see the same
        // world the version chains do.
        for (item, value) in &writes {
            let s = shard_of(item, inner.cfg.shards);
            let old = inner.shards[s].state.lock().expect("shard mutex").value(item);
            inner.wal.append(LogRecord::Update {
                txn: self.id,
                item: item.clone(),
                old,
                new: *value,
            });
            inner.shards[s].state.lock().expect("shard mutex").set(item, *value);
        }
        self.prof_add(Phase::Execute, exec0);
        if self.prof.is_some() {
            let (dwell_ns, force_ns) = inner.wal.append_commit_and_wait_timed(self.id);
            self.prof_add_ns(Phase::WalDwell, dwell_ns);
            self.prof_add_ns(Phase::WalForce, force_ns);
        } else {
            inner.wal.append_commit_and_wait(self.id);
        }
        let ack0 = self.prof_now();
        // Versions install only after the commit record is durable, so
        // even ReadCommitted (which reads chain heads) never observes
        // an unacknowledged write.
        for (item, value) in &writes {
            inner.mvcc.install(item, ts, *value, self.id);
            if let Some(t) = &inner.trace {
                t.record(
                    t.lane(),
                    0,
                    None,
                    mcv_trace::EventKind::VersionInstall { txn: self.id.0, item: item.clone(), ts },
                );
            }
        }
        inner.mvcc.advance(ts);
        inner.mvcc.gc_items(writes.iter().map(|(i, _)| i.as_str()));
        drop(guard);

        if let Some(t) = &inner.trace {
            let cause = t.mark(inner.wal.force_mark());
            t.record(t.lane(), 0, cause, mcv_trace::EventKind::Commit { txn: self.id.0 });
        }
        self.finish_snapshot();
        self.engine.release_locks(self.id, &self.touched, self.ever_blocked);
        inner.counters.committed.fetch_add(1, Ordering::Relaxed);
        self.prof_add(Phase::CommitAck, ack0);
        self.prof_flush();
        self.active = false;
        Ok(())
    }

    /// Deregisters the pinned snapshot (idempotent).
    fn finish_snapshot(&mut self) {
        if let Some(ts) = self.snapshot.take() {
            self.engine.inner.mvcc.end_snapshot(ts);
        }
    }

    /// Aborts: restores before-images (still under this transaction's
    /// exclusive locks), logs the abort, releases locks.
    pub fn abort(mut self) {
        self.rollback();
    }

    fn check_active(&self) -> Result<(), EngineError> {
        if self.active {
            Ok(())
        } else {
            Err(EngineError::Finished(self.id))
        }
    }

    /// A timestamp only when profiling, so the disabled path never
    /// touches the clock.
    fn prof_now(&self) -> Option<Instant> {
        self.prof.as_ref().map(|_| Instant::now())
    }

    /// Attributes the time since `t0` to `phase`.
    fn prof_add(&mut self, phase: Phase, t0: Option<Instant>) {
        if let (Some(p), Some(t0)) = (&mut self.prof, t0) {
            p.timeline.add(phase, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Attributes an externally measured duration to `phase`.
    fn prof_add_ns(&mut self, phase: Phase, ns: u64) {
        if let Some(p) = &mut self.prof {
            p.timeline.add(phase, ns);
        }
    }

    /// Stamps the anchor span and records the timeline into the
    /// engine's profiler ring. Called on the commit paths only:
    /// aborted transactions are not flushed.
    fn prof_flush(&mut self) {
        if let Some(state) = self.prof.take() {
            if let Some(profiler) = &self.engine.inner.prof {
                let mut t = state.timeline;
                t.total_ns = state.begin.elapsed().as_nanos() as u64;
                profiler.record(&t);
            }
        }
    }

    fn acquire(&mut self, item: &str, mode: LockMode) -> Result<usize, EngineError> {
        let t0 = self.prof_now();
        match self.engine.lock(self.id, item, mode) {
            Ok((s, blocked)) => {
                self.prof_add(Phase::LockWait, t0);
                self.ever_blocked |= blocked;
                self.touched.insert(s);
                if let Some(t) = &self.engine.inner.trace {
                    // A grant after blocking was enabled by the prior
                    // holder's release — cite it so the wait shows up
                    // as a causal edge between the two transactions. An
                    // uncontended grant cites the thread's ambient
                    // cause (the delivered message a dist node is
                    // processing), if any.
                    let cause = if blocked {
                        t.mark(&format!("release:{item}"))
                    } else {
                        mcv_trace::context()
                    };
                    t.record(
                        t.lane(),
                        0,
                        cause,
                        mcv_trace::EventKind::LockAcquire {
                            txn: self.id.0,
                            item: item.to_owned(),
                            exclusive: matches!(mode, LockMode::Exclusive),
                        },
                    );
                }
                Ok(s)
            }
            Err(e) => {
                // A deadlock victim necessarily blocked; make sure the
                // rollback takes the full graph-cleanup path.
                self.ever_blocked = true;
                if let Some(t) = &self.engine.inner.trace {
                    t.record(
                        t.lane(),
                        0,
                        None,
                        mcv_trace::EventKind::LockAbort { txn: self.id.0, item: item.to_owned() },
                    );
                }
                Err(e)
            }
        }
    }

    fn rollback(&mut self) {
        if !self.active {
            return;
        }
        for (s, item, before) in self.undo.iter().rev() {
            self.engine.inner.shards[*s].state.lock().expect("shard mutex").set(item, *before);
        }
        self.engine.inner.wal.append(LogRecord::Abort { txn: self.id });
        if let Some(t) = &self.engine.inner.trace {
            t.record(t.lane(), 0, None, mcv_trace::EventKind::Abort { txn: self.id.0 });
        }
        self.finish_snapshot();
        self.engine.release_locks(self.id, &self.touched, self.ever_blocked);
        self.engine.inner.counters.aborted.fetch_add(1, Ordering::Relaxed);
        self.active = false;
    }
}

impl Drop for Txn {
    fn drop(&mut self) {
        self.rollback();
    }
}

/// Builds the default latency histogram used by drivers: microsecond
/// buckets from 50µs to ~16s.
pub fn latency_histogram() -> Histogram {
    Histogram::with_bounds(vec![
        50, 100, 200, 400, 800, 1_600, 3_200, 6_400, 12_800, 25_600, 51_200, 102_400, 204_800,
        409_600, 819_200, 1_638_400, 4_000_000, 16_000_000,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_transaction_commit_is_durable() {
        let engine = Engine::new(EngineConfig { group_commit: false, ..Default::default() });
        let mut t = engine.begin();
        t.write("X", 42).expect("write");
        t.commit().expect("commit");
        let crash = mcv_txn::Wal::from_bytes_lossy(&engine.durable_image());
        assert_eq!(crash.recover().get("X"), Some(&42));
    }

    #[test]
    fn abort_restores_before_image_and_leaves_no_durable_commit() {
        let engine = Engine::new(EngineConfig { group_commit: false, ..Default::default() });
        let mut t = engine.begin();
        t.write("X", 1).expect("write");
        t.commit().expect("commit");
        let mut t = engine.begin();
        t.write("X", 99).expect("write");
        t.abort();
        assert_eq!(engine.value("X"), 1);
        let crash = mcv_txn::Wal::from_bytes_lossy(&engine.durable_image());
        assert_eq!(crash.recover().get("X"), Some(&1));
    }

    #[test]
    fn drop_without_commit_aborts() {
        let engine = Engine::new(EngineConfig { group_commit: false, ..Default::default() });
        {
            let mut t = engine.begin();
            t.write("X", 5).expect("write");
        }
        assert_eq!(engine.value("X"), 0);
        assert_eq!(engine.metrics_snapshot().counter("engine.txn.aborted"), 1);
    }

    #[test]
    fn concurrent_counter_increments_are_all_applied() {
        // 4 threads × 25 read-modify-write increments on one item:
        // strict 2PL must serialize them, so the final value is exactly
        // the number of committed increments.
        let engine = Engine::new(EngineConfig { group_commit: true, ..Default::default() });
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let engine = engine.clone();
                std::thread::spawn(move || {
                    let mut done = 0u32;
                    while done < 25 {
                        let mut t = engine.begin();
                        let r = t.read("ctr").and_then(|v| t.write("ctr", v + 1));
                        match r {
                            Ok(()) => {
                                t.commit().expect("commit");
                                done += 1;
                            }
                            Err(_) => t.abort(),
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("thread");
        }
        assert_eq!(engine.value("ctr"), 100);
        let crash = mcv_txn::Wal::from_bytes_lossy(&engine.durable_image());
        assert_eq!(crash.recover().get("ctr"), Some(&100));
        assert!(engine.sampled_history().is_conflict_serializable());
    }

    #[test]
    fn two_thread_deadlock_is_broken_and_youngest_dies() {
        use std::sync::Barrier;
        let engine = Engine::new(EngineConfig { group_commit: false, ..Default::default() });
        let barrier = Arc::new(Barrier::new(2));
        let mut handles = Vec::new();
        for order in 0..2u8 {
            let engine = engine.clone();
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let (first, second) = if order == 0 { ("A", "B") } else { ("B", "A") };
                let mut t = engine.begin();
                t.write(first, 1).expect("first write never deadlocks");
                barrier.wait();
                match t.write(second, 1) {
                    Ok(()) => {
                        t.commit().expect("commit");
                        (t_id_of(order), true)
                    }
                    Err(EngineError::Deadlock { victim }) => {
                        assert!(victim.0 > 0);
                        t.abort();
                        (t_id_of(order), false)
                    }
                    Err(e) => panic!("unexpected: {e}"),
                }
            }));
        }
        fn t_id_of(order: u8) -> u8 {
            order
        }
        let results: Vec<(u8, bool)> =
            handles.into_iter().map(|h| h.join().expect("thread")).collect();
        let committed = results.iter().filter(|(_, ok)| *ok).count();
        // Exactly one side must have aborted; the other commits.
        assert_eq!(committed, 1, "one victim, one survivor: {results:?}");
        let snap = engine.metrics_snapshot();
        assert!(snap.counter("engine.locks.deadlocks") >= 1);
        assert!(engine.sampled_history().is_conflict_serializable());
    }

    #[test]
    fn traced_engine_run_passes_hb_check_and_commits_cite_forces() {
        let ((), trace) = mcv_trace::record_trace(None, || {
            let engine = Engine::new(EngineConfig { group_commit: true, ..Default::default() });
            let threads: Vec<_> = (0..2)
                .map(|w| {
                    let engine = engine.clone();
                    std::thread::spawn(move || {
                        for i in 0..5 {
                            let mut t = engine.begin();
                            let r = t
                                .read("ctr")
                                .and_then(|v| t.write("ctr", v + 1))
                                .and_then(|()| t.write(&format!("w{w}.{i}"), i));
                            match r {
                                Ok(()) => t.commit().expect("commit"),
                                Err(_) => t.abort(),
                            }
                        }
                    })
                })
                .collect();
            for t in threads {
                t.join().expect("worker");
            }
        });
        let report = mcv_trace::check(&trace);
        assert!(report.ok(), "{}", report.summary());
        // Every commit ack cites the WAL force that made it durable.
        let commits: Vec<_> = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, mcv_trace::EventKind::Commit { .. }))
            .collect();
        assert!(!commits.is_empty());
        let index = trace.by_id();
        for c in &commits {
            let cause = c.cause.and_then(|id| index.get(&id).copied()).expect("commit has a cause");
            assert!(
                matches!(cause.kind, mcv_trace::EventKind::WalForce { .. }),
                "commit cause is a force, got {}",
                cause.kind
            );
        }
        // Worker lanes are distinct: events span at least 2 sites.
        let sites: BTreeSet<usize> = trace.events.iter().map(|e| e.site).collect();
        assert!(sites.len() >= 2, "expected multiple lanes, got {sites:?}");
    }

    #[test]
    fn sampled_history_reflects_committed_ops_only() {
        let engine = Engine::new(EngineConfig { group_commit: false, ..Default::default() });
        let mut a = engine.begin();
        a.write("X", 1).expect("write");
        a.commit().expect("commit");
        let mut b = engine.begin();
        b.write("X", 2).expect("write");
        b.abort();
        let h = engine.sampled_history();
        assert_eq!(h.len(), 1);
        assert_eq!(h.transactions().len(), 1);
    }
}
