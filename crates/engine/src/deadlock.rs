//! The global waits-for graph and cross-shard deadlock detection.
//!
//! Shards detect conflicts locally; cycles can span shards, so the
//! waits-for edges live in one process-wide structure. The edge set is
//! conservative — a blocked requester points at every current holder
//! *and* every earlier waiter of the item — which can doom a
//! transaction slightly early but never misses a real deadlock.
//!
//! Victim selection is delegated to [`mcv_txn::youngest_victim`] so the
//! engine and the single-threaded [`mcv_txn::LockManager`] abort the
//! same transaction for the same cycle (documented policy: youngest,
//! i.e. largest `TxnId`).

use mcv_txn::TxnId;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Waits-for graph plus the wakeup machinery for blocked requesters.
///
/// Lock-ordering discipline: threads never hold a shard mutex and this
/// mutex at the same time (acquire paths take them strictly in
/// sequence), so the two layers cannot deadlock against each other.
#[derive(Debug, Default)]
pub(crate) struct WaitGraph {
    pub(crate) m: Mutex<GraphInner>,
    pub(crate) cv: Condvar,
    /// Lock-free mirror of [`GraphInner::epoch`], so the uncontended
    /// acquire fast path can snapshot the epoch without touching the
    /// global mutex. Updated under `m` by [`WaitGraph::bump_epoch`]; a
    /// stale read only causes one spurious retry, never a lost wakeup.
    epoch_mirror: AtomicU64,
}

impl WaitGraph {
    /// Advances the epoch (mutex held via `g`) and mirrors it.
    pub(crate) fn bump_epoch(&self, g: &mut GraphInner) {
        g.epoch += 1;
        self.epoch_mirror.store(g.epoch, Ordering::Release);
    }

    /// Mutex-free epoch snapshot for the fast path.
    pub(crate) fn epoch_hint(&self) -> u64 {
        self.epoch_mirror.load(Ordering::Acquire)
    }
}

#[derive(Debug, Default)]
pub(crate) struct GraphInner {
    /// `t → set of transactions t waits for`.
    edges: BTreeMap<TxnId, BTreeSet<TxnId>>,
    /// Transactions chosen as deadlock victims that have not yet
    /// noticed; they abort at their next scheduling point.
    doomed: BTreeSet<TxnId>,
    /// Bumped on every lock release / victim selection; waiters re-run
    /// their acquisition attempt when it moves (prevents lost wakeups:
    /// the epoch is read *before* the try-acquire).
    pub(crate) epoch: u64,
    /// Cycles resolved (monotone counter for metrics).
    pub(crate) deadlocks: u64,
}

impl GraphInner {
    /// Replaces the out-edges of `t`.
    pub(crate) fn set_edges(&mut self, t: TxnId, blockers: impl IntoIterator<Item = TxnId>) {
        self.edges.insert(t, blockers.into_iter().collect());
    }

    /// Drops the out-edges of `t` (it is no longer waiting).
    pub(crate) fn clear_waiting(&mut self, t: TxnId) {
        self.edges.remove(&t);
    }

    /// Removes every trace of `t`: out-edges, in-edges, doom flag.
    /// Called when `t` commits or aborts.
    pub(crate) fn forget(&mut self, t: TxnId) {
        self.edges.remove(&t);
        for targets in self.edges.values_mut() {
            targets.remove(&t);
        }
        self.doomed.remove(&t);
    }

    /// Whether `t` has been selected as a deadlock victim.
    pub(crate) fn is_doomed(&self, t: TxnId) -> bool {
        self.doomed.contains(&t)
    }

    /// Marks `t` for abort at its next scheduling point.
    pub(crate) fn doom(&mut self, t: TxnId) {
        self.doomed.insert(t);
    }

    /// Clears the doom flag (the victim has acknowledged it).
    pub(crate) fn undoom(&mut self, t: TxnId) {
        self.doomed.remove(&t);
    }

    /// A waits-for cycle through `start`, if one exists (DFS).
    pub(crate) fn cycle_from(&self, start: TxnId) -> Option<Vec<TxnId>> {
        let mut path = vec![start];
        let mut on_path: BTreeSet<TxnId> = [start].into();
        let mut iters: Vec<std::collections::btree_set::Iter<'_, TxnId>> = Vec::new();
        static EMPTY: BTreeSet<TxnId> = BTreeSet::new();
        iters.push(self.edges.get(&start).unwrap_or(&EMPTY).iter());
        let mut visited: BTreeSet<TxnId> = BTreeSet::new();
        while let Some(it) = iters.last_mut() {
            match it.next() {
                Some(&next) => {
                    if next == start {
                        return Some(path.clone());
                    }
                    if on_path.contains(&next) || visited.contains(&next) {
                        continue;
                    }
                    path.push(next);
                    on_path.insert(next);
                    iters.push(self.edges.get(&next).unwrap_or(&EMPTY).iter());
                }
                None => {
                    let done = path.pop().expect("path tracks iters");
                    on_path.remove(&done);
                    visited.insert(done);
                    iters.pop();
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_two_party_cycle() {
        let mut g = GraphInner::default();
        g.set_edges(TxnId(1), [TxnId(2)]);
        g.set_edges(TxnId(2), [TxnId(1)]);
        let cycle = g.cycle_from(TxnId(1)).expect("cycle");
        assert!(cycle.contains(&TxnId(1)) && cycle.contains(&TxnId(2)));
        assert_eq!(mcv_txn::youngest_victim(&cycle), TxnId(2));
    }

    #[test]
    fn finds_cross_shard_three_party_cycle() {
        let mut g = GraphInner::default();
        g.set_edges(TxnId(1), [TxnId(2)]);
        g.set_edges(TxnId(2), [TxnId(3)]);
        g.set_edges(TxnId(3), [TxnId(1)]);
        assert!(g.cycle_from(TxnId(2)).is_some());
    }

    #[test]
    fn no_cycle_on_chains() {
        let mut g = GraphInner::default();
        g.set_edges(TxnId(1), [TxnId(2)]);
        g.set_edges(TxnId(2), [TxnId(3)]);
        assert!(g.cycle_from(TxnId(1)).is_none());
        g.forget(TxnId(2));
        assert!(g.cycle_from(TxnId(1)).is_none());
    }

    #[test]
    fn forget_removes_in_edges_too() {
        let mut g = GraphInner::default();
        g.set_edges(TxnId(1), [TxnId(2)]);
        g.set_edges(TxnId(2), [TxnId(1)]);
        g.forget(TxnId(1));
        assert!(g.cycle_from(TxnId(2)).is_none());
    }
}
