//! # mcv-engine
//!
//! A real concurrent transaction-processing engine over the [`mcv_txn`]
//! primitives — the repo's executable answer to "does the modular
//! theory survive actual threads?". Where [`mcv_txn::SiteDb`] models
//! one site single-threadedly and `mcv-sim` interleaves deterministic
//! steps, this crate runs genuinely parallel transactions and then
//! feeds what happened back into the thesis' own oracles.
//!
//! - [`Engine`] / [`Txn`] — sharded strict-2PL data store with
//!   blocking lock acquisition, cross-shard deadlock detection
//!   (youngest-victim policy shared with [`mcv_txn::LockManager`]),
//!   and undo/redo write-ahead logging;
//! - group-commit WAL — a dedicated log-writer thread batches commit
//!   forces so concurrent commits share device operations
//!   (`engine.wal.forces < engine.wal.commits`);
//! - [`Pool`] — bounded worker pool with blocking backpressure
//!   (`submit`) and a non-blocking admission path (`try_submit`) that
//!   sheds with a typed [`Shed`] error when the queue is full;
//! - [`run_driver`] — closed-loop workload drivers (uniform/zipfian
//!   read-write mixes, bank transfers, write-skew pairs) that record
//!   latency and throughput through [`mcv_obs`] and check every run
//!   against the serializability, recovery-equivalence, and bank-sum
//!   oracles;
//! - [`IsolationLevel`] — the 2PL path above, or the `mcv-mvcc`
//!   version-chain paths (ReadCommitted / SnapshotIsolation /
//!   SerializableSsi) where reads bypass the lock table entirely.
//!
//! # Examples
//!
//! ```
//! use mcv_engine::{run_driver, DriverConfig, Mix, WorkloadKind};
//! let report = run_driver(&DriverConfig {
//!     clients: 2,
//!     txns: 50,
//!     items: 32,
//!     workload: WorkloadKind::ReadWrite { mix: Mix::Uniform, write_pct: 50, ops_per_txn: 4 },
//!     ..Default::default()
//! });
//! assert_eq!(report.committed, 50);
//! assert!(report.serializable && report.recovered_matches);
//! ```

#![warn(missing_docs)]

mod deadlock;
#[allow(clippy::module_inception)]
mod engine;
mod gcwal;
mod pool;
mod shard;
mod workload;

pub use engine::{latency_histogram, Engine, EngineConfig, EngineError, StagedCommit, Txn};
pub use mcv_mvcc::IsolationLevel;
pub use pool::{Pool, Shed};
pub use workload::{
    run_driver, DriverConfig, DriverReport, KeyPicker, Mix, WorkloadKind, Zipfian,
    BANK_INITIAL_BALANCE,
};
