//! Closed-loop workload drivers over the engine.
//!
//! A driver admits a fixed number of transactions through the bounded
//! [`Pool`](crate::Pool), retries deadlock victims with fresh (younger)
//! transaction ids, records per-transaction latency, and — after the
//! run quiesces — checks the three oracles the thesis cares about:
//! conflict-serializability of the sampled history, the bank-transfer
//! sum invariant, and recovery equivalence (the durable log replays to
//! exactly the engine's quiesced state).

use crate::engine::{latency_histogram, Engine, EngineConfig, EngineError};
use crate::pool::Pool;
use mcv_obs::{Histogram, MetricsSnapshot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How items are chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mix {
    /// Uniform over all items.
    Uniform,
    /// Zipfian with skew `theta` (YCSB convention, `0 < theta < 1`;
    /// 0.99 is the YCSB default "hotspot" skew).
    Zipfian {
        /// Skew parameter.
        theta: f64,
    },
}

/// What each transaction does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadKind {
    /// `ops_per_txn` point operations, each a write with probability
    /// `write_pct`/100, items drawn by `mix`.
    ReadWrite {
        /// Item-selection distribution.
        mix: Mix,
        /// Percentage of operations that write.
        write_pct: u8,
        /// Operations per transaction.
        ops_per_txn: usize,
    },
    /// Transfer a random amount between two distinct accounts (read
    /// both, write both). The sum of all balances is invariant under
    /// every committed prefix — the driver's built-in consistency
    /// oracle.
    BankTransfer,
    /// The write-skew shape: each transaction picks one of `pairs`
    /// disjoint item pairs, reads *both* items, and writes exactly one
    /// (rng-chosen) side. Two concurrent transactions on the same pair
    /// writing opposite sides have disjoint write sets — invisible to
    /// first-committer-wins, so SnapshotIsolation commits both (write
    /// skew), while SSI's read-set validation and 2PL's shared locks
    /// refuse.
    WriteSkew {
        /// Number of disjoint item pairs (items `2p` and `2p+1` form
        /// pair `p`; the driver needs `items >= 2 * pairs`).
        pairs: usize,
    },
}

/// Parameters of one driver run.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Engine parameters.
    pub engine: EngineConfig,
    /// Worker threads (concurrent clients).
    pub clients: usize,
    /// Transactions to admit (committed count; deadlock retries do not
    /// consume admissions).
    pub txns: u64,
    /// Number of distinct items (accounts for [`WorkloadKind::BankTransfer`]).
    pub items: usize,
    /// The per-transaction behavior.
    pub workload: WorkloadKind,
    /// Root seed; each admission derives its own generator from it.
    pub seed: u64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            engine: EngineConfig::default(),
            clients: 4,
            txns: 1_000,
            items: 1_024,
            workload: WorkloadKind::ReadWrite { mix: Mix::Uniform, write_pct: 50, ops_per_txn: 8 },
            seed: 42,
        }
    }
}

/// Everything a driver run produced.
#[derive(Debug, Clone)]
pub struct DriverReport {
    /// Transactions committed.
    pub committed: u64,
    /// Deadlock-victim retries performed.
    pub retries: u64,
    /// Wall-clock duration of the admission-to-quiesce window, ns.
    pub elapsed_ns: u64,
    /// Per-transaction commit latency, µs.
    pub latency_us: Histogram,
    /// Engine + driver metrics (`engine.*` counters, `wall.*` extras).
    pub metrics: MetricsSnapshot,
    /// Verdict of the conflict-serializability oracle on the sampled
    /// committed history.
    pub serializable: bool,
    /// Transactions / operations in the sample the oracle saw.
    pub sampled_txns: usize,
    /// Operations in the sample.
    pub sampled_ops: usize,
    /// `Some(true)` when the bank-sum invariant held on the recovered
    /// state (`None` for non-bank workloads).
    pub bank_invariant_ok: Option<bool>,
    /// Whether replaying the durable log reproduces the engine's
    /// quiesced volatile state exactly.
    pub recovered_matches: bool,
    /// Commit records appended.
    pub commits: u64,
    /// Log-device operations performed.
    pub forces: u64,
}

impl DriverReport {
    /// Committed transactions per wall-clock second.
    pub fn throughput_tps(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.committed as f64 / (self.elapsed_ns as f64 / 1e9)
    }

    /// Whether every oracle passed.
    pub fn oracles_ok(&self) -> bool {
        self.serializable && self.recovered_matches && self.bank_invariant_ok.unwrap_or(true)
    }

    /// A human-readable multi-line summary.
    pub fn summary(&self) -> String {
        let fpc = if self.commits == 0 { 0.0 } else { self.forces as f64 / self.commits as f64 };
        let mut s = format!(
            "committed      {}\nretries        {}\nthroughput     {:.0} txn/s\n\
             latency p50    {} us\nlatency p95    {} us\nlatency p99    {} us\n\
             wal forces     {} ({:.3} per commit)\ndeadlocks      {}\n\
             serializable   {} ({} txns / {} ops sampled)\nrecovery match {}",
            self.committed,
            self.retries,
            self.throughput_tps(),
            self.latency_us.percentile(50.0),
            self.latency_us.percentile(95.0),
            self.latency_us.percentile(99.0),
            self.forces,
            fpc,
            self.metrics.counter("engine.locks.deadlocks"),
            self.serializable,
            self.sampled_txns,
            self.sampled_ops,
            self.recovered_matches,
        );
        if let Some(ok) = self.bank_invariant_ok {
            s.push_str(&format!("\nbank invariant {ok}"));
        }
        s
    }
}

// The skewed key generator lives in `mcv_txn::keys` so bench and
// engine share one definition; re-exported to keep this crate's public
// path stable.
pub use mcv_txn::{KeyPicker, Zipfian};

struct DriverShared {
    latency: Mutex<Histogram>,
    retries: AtomicU64,
}

/// Initial balance per bank account.
pub const BANK_INITIAL_BALANCE: i64 = 100;

fn item_name(i: usize) -> String {
    format!("item{i:05}")
}

/// Runs one closed-loop workload to completion and evaluates the
/// oracles. Deterministic in its transaction *specs* (seeded per
/// admission); interleavings and therefore counters are
/// scheduling-dependent.
pub fn run_driver(cfg: &DriverConfig) -> DriverReport {
    assert!(cfg.items >= 2, "driver needs at least two items");
    let engine = Engine::new(cfg.engine.clone());

    let bank = matches!(cfg.workload, WorkloadKind::BankTransfer);
    if bank {
        // Fund the accounts in chunks (one huge txn would hold every
        // lock; chunks keep the WAL's checkpointless replay honest).
        for chunk in (0..cfg.items).collect::<Vec<_>>().chunks(256) {
            let mut t = engine.begin();
            for &i in chunk {
                t.write(&item_name(i), BANK_INITIAL_BALANCE).expect("setup write");
            }
            t.commit().expect("setup commit");
        }
    }

    // Setup transactions (account funding) are not admissions; the
    // report counts workload commits only.
    let setup_commits = engine.metrics_snapshot().counter("engine.txn.committed");

    let shared = Arc::new(DriverShared {
        latency: Mutex::new(latency_histogram()),
        retries: AtomicU64::new(0),
    });
    let pool = Pool::new(cfg.clients, cfg.clients * 2);
    let start = Instant::now();
    for i in 0..cfg.txns {
        let engine = engine.clone();
        let shared = Arc::clone(&shared);
        let spec_seed = cfg.seed ^ (i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let workload = cfg.workload;
        let items = cfg.items;
        pool.submit(move || {
            let t0 = Instant::now();
            run_one(&engine, &shared, workload, items, spec_seed);
            let us = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
            shared.latency.lock().expect("latency mutex").record(us);
        });
    }
    pool.join();
    let elapsed_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;

    // Oracles, on the quiesced engine.
    let history = engine.sampled_history();
    let serializable = history.is_conflict_serializable();
    let sampled_txns = history.transactions().len();
    let sampled_ops = history.len();

    let recovered = mcv_txn::Wal::from_bytes_lossy(&engine.durable_image()).recover();
    let volatile = engine.state();
    let keys: std::collections::BTreeSet<&String> =
        recovered.keys().chain(volatile.keys()).collect();
    let recovered_matches = keys
        .into_iter()
        .all(|k| recovered.get(k).copied().unwrap_or(0) == volatile.get(k).copied().unwrap_or(0));

    let bank_invariant_ok = bank.then(|| {
        let total: i64 =
            (0..cfg.items).map(|i| recovered.get(&item_name(i)).copied().unwrap_or(0)).sum();
        total == BANK_INITIAL_BALANCE * cfg.items as i64
    });

    let mut metrics = engine.metrics_snapshot();
    let retries = shared.retries.load(Ordering::Relaxed);
    metrics.counters.insert("engine.txn.retries".to_owned(), retries);
    let latency = shared.latency.lock().expect("latency mutex").clone();
    metrics.histograms.insert("wall.engine.latency_us".to_owned(), latency.clone());
    let commits = metrics.counter("engine.wal.commits");
    let forces = metrics.counter("engine.wal.forces");
    let committed = metrics.counter("engine.txn.committed") - setup_commits;
    let mut report = DriverReport {
        committed,
        retries,
        elapsed_ns,
        latency_us: latency,
        metrics,
        serializable,
        sampled_txns,
        sampled_ops,
        bank_invariant_ok,
        recovered_matches,
        commits,
        forces,
    };
    report.metrics.gauges.insert("wall.engine.tput_tps".to_owned(), report.throughput_tps());
    report
}

/// Executes one transaction spec, retrying deadlock victims with a
/// fresh transaction until it commits.
fn run_one(
    engine: &Engine,
    shared: &DriverShared,
    workload: WorkloadKind,
    items: usize,
    seed: u64,
) {
    loop {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = engine.begin();
        match attempt(engine, t, &mut rng, workload, items) {
            Ok(()) => return,
            Err(EngineError::Deadlock { .. } | EngineError::Certification { .. }) => {
                shared.retries.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => panic!("driver transaction failed: {e}"),
        }
    }
}

fn attempt(
    _engine: &Engine,
    mut t: crate::engine::Txn,
    rng: &mut StdRng,
    workload: WorkloadKind,
    items: usize,
) -> Result<(), EngineError> {
    match workload {
        WorkloadKind::ReadWrite { mix, write_pct, ops_per_txn } => {
            let picker = match mix {
                Mix::Zipfian { theta } => KeyPicker::zipfian(items, theta),
                Mix::Uniform => KeyPicker::uniform(items),
            };
            for _ in 0..ops_per_txn {
                let name = item_name(picker.next(rng));
                if rng.gen_range(0..100u8) < write_pct {
                    let v = rng.gen_range(0..1_000_000i64);
                    match t.write(&name, v) {
                        Ok(()) => {}
                        Err(e) => {
                            t.abort();
                            return Err(e);
                        }
                    }
                } else {
                    match t.read(&name) {
                        Ok(_) => {}
                        Err(e) => {
                            t.abort();
                            return Err(e);
                        }
                    }
                }
            }
            t.commit()
        }
        WorkloadKind::BankTransfer => {
            let a = rng.gen_range(0..items);
            let mut b = rng.gen_range(0..items);
            if b == a {
                b = (a + 1) % items;
            }
            let amount = rng.gen_range(1..=10i64);
            let (na, nb) = (item_name(a), item_name(b));
            let result = (|| {
                let va = t.read(&na)?;
                let vb = t.read(&nb)?;
                t.write(&na, va - amount)?;
                t.write(&nb, vb + amount)?;
                Ok(())
            })();
            match result {
                Ok(()) => t.commit(),
                Err(e) => {
                    t.abort();
                    Err(e)
                }
            }
        }
        WorkloadKind::WriteSkew { pairs } => {
            assert!(pairs > 0 && items >= 2 * pairs, "write-skew needs items >= 2*pairs");
            let p = rng.gen_range(0..pairs);
            let (left, right) = (item_name(2 * p), item_name(2 * p + 1));
            let result = (|| {
                let a = t.read(&left)?;
                let b = t.read(&right)?;
                // Write exactly one side, derived from both reads — the
                // classic "on-call doctors" shape where the constraint
                // spans the pair but each writer touches half of it.
                let target = if rng.gen_bool(0.5) { &left } else { &right };
                t.write(target, a + b + 1)?;
                Ok(())
            })();
            match result {
                Ok(()) => t.commit(),
                Err(e) => {
                    t.abort();
                    Err(e)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::engine::EngineConfig;
    use mcv_mvcc::IsolationLevel;

    fn mvcc_cfg(isolation: IsolationLevel, workload: WorkloadKind, seed: u64) -> DriverConfig {
        DriverConfig {
            engine: EngineConfig { isolation, group_commit: true, ..Default::default() },
            clients: 4,
            txns: 200,
            items: 64,
            workload,
            seed,
        }
    }

    #[test]
    fn snapshot_isolation_run_takes_zero_read_locks() {
        let workload = WorkloadKind::ReadWrite { mix: Mix::Uniform, write_pct: 30, ops_per_txn: 6 };
        let report = run_driver(&mvcc_cfg(IsolationLevel::SnapshotIsolation, workload, 9));
        assert_eq!(report.committed, 200);
        assert!(report.recovered_matches, "MVCC commits must replay from the WAL");
        assert_eq!(report.metrics.counter("engine.locks.read_acquisitions"), 0);
        assert!(report.metrics.counter("engine.mvcc.snapshot_reads") > 0);
        assert!(report.metrics.counter("engine.mvcc.snapshots") > 0);
    }

    #[test]
    fn read_committed_run_replays_from_wal() {
        let workload = WorkloadKind::ReadWrite { mix: Mix::Uniform, write_pct: 50, ops_per_txn: 4 };
        let report = run_driver(&mvcc_cfg(IsolationLevel::ReadCommitted, workload, 10));
        assert_eq!(report.committed, 200);
        assert!(report.recovered_matches);
        assert_eq!(report.metrics.counter("engine.locks.read_acquisitions"), 0);
    }

    #[test]
    fn ssi_bank_run_keeps_the_invariant() {
        let cfg = DriverConfig {
            engine: EngineConfig {
                isolation: IsolationLevel::SerializableSsi,
                group_commit: true,
                ..Default::default()
            },
            clients: 4,
            txns: 150,
            items: 16,
            workload: WorkloadKind::BankTransfer,
            seed: 11,
        };
        let report = run_driver(&cfg);
        assert_eq!(report.bank_invariant_ok, Some(true));
        assert!(report.recovered_matches);
    }

    #[test]
    fn write_skew_workload_commits_under_every_level() {
        for isolation in [
            IsolationLevel::Serializable2pl,
            IsolationLevel::SnapshotIsolation,
            IsolationLevel::SerializableSsi,
        ] {
            let cfg = DriverConfig {
                engine: EngineConfig { isolation, group_commit: false, ..Default::default() },
                clients: 3,
                txns: 60,
                items: 8,
                workload: WorkloadKind::WriteSkew { pairs: 4 },
                seed: 12,
            };
            let report = run_driver(&cfg);
            assert_eq!(report.committed, 60, "under {isolation}");
            assert!(report.recovered_matches, "under {isolation}");
        }
    }

    #[test]
    fn uniform_read_write_run_passes_oracles() {
        let cfg = DriverConfig {
            engine: EngineConfig { group_commit: true, ..Default::default() },
            clients: 4,
            txns: 200,
            items: 64,
            workload: WorkloadKind::ReadWrite { mix: Mix::Uniform, write_pct: 50, ops_per_txn: 6 },
            seed: 1,
        };
        let report = run_driver(&cfg);
        assert_eq!(report.committed, 200);
        assert!(report.serializable, "history must be conflict-serializable");
        assert!(report.recovered_matches, "recovery must reproduce quiesced state");
        assert!(report.commits >= 200);
    }

    #[test]
    fn bank_transfer_run_preserves_total_balance() {
        let cfg = DriverConfig {
            engine: EngineConfig { group_commit: true, ..Default::default() },
            clients: 4,
            txns: 150,
            items: 16,
            workload: WorkloadKind::BankTransfer,
            seed: 3,
        };
        let report = run_driver(&cfg);
        assert_eq!(report.bank_invariant_ok, Some(true));
        assert!(report.serializable);
        assert!(report.recovered_matches);
    }

    #[test]
    fn zipfian_contended_run_stays_serializable() {
        let cfg = DriverConfig {
            engine: EngineConfig { shards: 4, group_commit: true, ..Default::default() },
            clients: 4,
            txns: 150,
            items: 8,
            workload: WorkloadKind::ReadWrite {
                mix: Mix::Zipfian { theta: 0.9 },
                write_pct: 60,
                ops_per_txn: 4,
            },
            seed: 5,
        };
        let report = run_driver(&cfg);
        assert_eq!(report.committed, 150);
        assert!(report.serializable);
    }
}
