//! A bounded worker pool with admission backpressure.
//!
//! `submit` blocks while the queue is full, so a fast producer cannot
//! build an unbounded backlog — the closed-loop drivers lean on this
//! to keep at most `queue_cap` transactions admitted but not started.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct Queue {
    jobs: VecDeque<Job>,
    cap: usize,
    closed: bool,
}

#[derive(Default)]
struct Shared {
    q: Mutex<Queue>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// A fixed-size worker pool over a bounded FIFO queue.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawns `workers` threads servicing a queue of at most
    /// `queue_cap` pending jobs.
    pub fn new(workers: usize, queue_cap: usize) -> Pool {
        assert!(workers > 0, "pool needs at least one worker");
        assert!(queue_cap > 0, "pool needs queue capacity");
        let shared = Arc::new(Shared {
            q: Mutex::new(Queue { jobs: VecDeque::new(), cap: queue_cap, closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        let workers = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || loop {
                    let job = {
                        let mut q = shared.q.lock().expect("pool mutex");
                        loop {
                            if let Some(job) = q.jobs.pop_front() {
                                shared.not_full.notify_one();
                                break job;
                            }
                            if q.closed {
                                return;
                            }
                            q = shared.not_empty.wait(q).expect("pool mutex");
                        }
                    };
                    job();
                })
            })
            .collect();
        Pool { shared, workers }
    }

    /// Enqueues `job`, blocking while the queue is at capacity
    /// (admission backpressure).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let mut q = self.shared.q.lock().expect("pool mutex");
        while q.jobs.len() >= q.cap {
            q = self.shared.not_full.wait(q).expect("pool mutex");
        }
        assert!(!q.closed, "submit after join");
        q.jobs.push_back(Box::new(job));
        self.shared.not_empty.notify_one();
    }

    /// Closes the queue, drains remaining jobs, and joins all workers.
    pub fn join(mut self) {
        {
            let mut q = self.shared.q.lock().expect("pool mutex");
            q.closed = true;
            self.shared.not_empty.notify_all();
        }
        for w in self.workers.drain(..) {
            w.join().expect("pool worker");
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // `join` drains `workers`; a straight drop still closes the
        // queue so workers exit rather than wait forever.
        let mut q = self.shared.q.lock().expect("pool mutex");
        q.closed = true;
        self.shared.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn runs_every_submitted_job() {
        let pool = Pool::new(4, 8);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let hits = Arc::clone(&hits);
            pool.submit(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        // One slow worker, capacity 2: the producer can never observe
        // more than 2 queued jobs.
        let pool = Pool::new(1, 2);
        let peak = Arc::new(AtomicU64::new(0));
        for _ in 0..10 {
            let peak = Arc::clone(&peak);
            let shared = Arc::clone(&pool.shared);
            pool.submit(move || {
                let depth = shared.q.lock().expect("pool mutex").jobs.len() as u64;
                peak.fetch_max(depth, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(1));
            });
        }
        pool.join();
        assert!(peak.load(Ordering::Relaxed) <= 2);
    }
}
