//! A bounded worker pool with admission backpressure.
//!
//! `submit` blocks while the queue is full, so a fast producer cannot
//! build an unbounded backlog — the closed-loop drivers lean on this
//! to keep at most `queue_cap` transactions admitted but not started.
//! `try_submit` is the open-loop admission path: it never blocks, and
//! returns a typed [`Shed`] error when the queue is at capacity so the
//! caller can apply an explicit load-shedding policy instead of
//! stalling the arrival process.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Admission rejected: the queue was at capacity when the job arrived.
///
/// Carries the observed depth and the configured capacity so shedding
/// policies can log or adapt (`retry-after` backoff scales on depth).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shed {
    /// Jobs queued (admitted but not started) at the rejection instant.
    pub depth: usize,
    /// The queue capacity the pool was built with.
    pub cap: usize,
}

impl std::fmt::Display for Shed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "admission shed: queue at capacity ({}/{})", self.depth, self.cap)
    }
}

impl std::error::Error for Shed {}

#[derive(Default)]
struct Queue {
    jobs: VecDeque<Job>,
    cap: usize,
    closed: bool,
}

#[derive(Default)]
struct Shared {
    q: Mutex<Queue>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// A fixed-size worker pool over a bounded FIFO queue.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawns `workers` threads servicing a queue of at most
    /// `queue_cap` pending jobs.
    pub fn new(workers: usize, queue_cap: usize) -> Pool {
        assert!(workers > 0, "pool needs at least one worker");
        assert!(queue_cap > 0, "pool needs queue capacity");
        let shared = Arc::new(Shared {
            q: Mutex::new(Queue { jobs: VecDeque::new(), cap: queue_cap, closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        let workers = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || loop {
                    let job = {
                        let mut q = shared.q.lock().expect("pool mutex");
                        loop {
                            if let Some(job) = q.jobs.pop_front() {
                                shared.not_full.notify_one();
                                break job;
                            }
                            if q.closed {
                                return;
                            }
                            q = shared.not_empty.wait(q).expect("pool mutex");
                        }
                    };
                    job();
                })
            })
            .collect();
        Pool { shared, workers }
    }

    /// Enqueues `job`, blocking while the queue is at capacity
    /// (admission backpressure).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let mut q = self.shared.q.lock().expect("pool mutex");
        while q.jobs.len() >= q.cap {
            q = self.shared.not_full.wait(q).expect("pool mutex");
        }
        assert!(!q.closed, "submit after join");
        q.jobs.push_back(Box::new(job));
        self.shared.not_empty.notify_one();
    }

    /// Attempts to enqueue `job` without blocking.
    ///
    /// Returns `Err(`[`Shed`]`)` when the queue is at capacity, leaving
    /// the job unqueued — the open-loop admission-control hook. `submit`
    /// semantics are unchanged: blocking callers still get backpressure.
    pub fn try_submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), Shed> {
        let mut q = self.shared.q.lock().expect("pool mutex");
        if q.jobs.len() >= q.cap {
            return Err(Shed { depth: q.jobs.len(), cap: q.cap });
        }
        assert!(!q.closed, "try_submit after join");
        q.jobs.push_back(Box::new(job));
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of jobs admitted but not yet started (queue depth).
    pub fn queued(&self) -> usize {
        self.shared.q.lock().expect("pool mutex").jobs.len()
    }

    /// Closes the queue, drains remaining jobs, and joins all workers.
    pub fn join(mut self) {
        {
            let mut q = self.shared.q.lock().expect("pool mutex");
            q.closed = true;
            self.shared.not_empty.notify_all();
        }
        for w in self.workers.drain(..) {
            w.join().expect("pool worker");
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // `join` drains `workers`; a straight drop still closes the
        // queue so workers exit rather than wait forever.
        let mut q = self.shared.q.lock().expect("pool mutex");
        q.closed = true;
        self.shared.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn runs_every_submitted_job() {
        let pool = Pool::new(4, 8);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let hits = Arc::clone(&hits);
            pool.submit(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        // One slow worker, capacity 2: the producer can never observe
        // more than 2 queued jobs.
        let pool = Pool::new(1, 2);
        let peak = Arc::new(AtomicU64::new(0));
        for _ in 0..10 {
            let peak = Arc::clone(&peak);
            let shared = Arc::clone(&pool.shared);
            pool.submit(move || {
                let depth = shared.q.lock().expect("pool mutex").jobs.len() as u64;
                peak.fetch_max(depth, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(1));
            });
        }
        pool.join();
        assert!(peak.load(Ordering::Relaxed) <= 2);
    }

    #[test]
    fn try_submit_sheds_under_contention_while_submit_blocks() {
        // One worker parked on a latch, capacity 2: after the worker
        // picks up the first job, exactly 2 more fit in the queue. A
        // burst of try_submits must shed the excess without blocking,
        // each Shed reporting a full queue; a subsequent blocking
        // submit must wait for the latch to drop and still run.
        let pool = Pool::new(1, 2);
        let latch = Arc::new((Mutex::new(true), Condvar::new()));
        let ran = Arc::new(AtomicU64::new(0));

        let (l, r) = (Arc::clone(&latch), Arc::clone(&ran));
        pool.submit(move || {
            let (m, cv) = &*l;
            let mut held = m.lock().expect("latch");
            while *held {
                held = cv.wait(held).expect("latch");
            }
            r.fetch_add(1, Ordering::Relaxed);
        });
        // Wait until the worker holds the first job so the queue is empty.
        while pool.queued() > 0 {
            std::thread::yield_now();
        }

        let mut accepted = 0;
        let mut shed = 0;
        for _ in 0..10 {
            let r = Arc::clone(&ran);
            match pool.try_submit(move || {
                r.fetch_add(1, Ordering::Relaxed);
            }) {
                Ok(()) => accepted += 1,
                Err(e) => {
                    assert_eq!(e, Shed { depth: 2, cap: 2 });
                    shed += 1;
                }
            }
        }
        assert_eq!(accepted, 2, "exactly the queue capacity is admitted");
        assert_eq!(shed, 8, "the rest is shed, never blocked");

        // Release the latch from a helper thread *after* the blocking
        // submit below has had a chance to park on the full queue.
        let l = Arc::clone(&latch);
        let releaser = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            let (m, cv) = &*l;
            *m.lock().expect("latch") = false;
            cv.notify_all();
        });
        let r = Arc::clone(&ran);
        pool.submit(move || {
            r.fetch_add(1, Ordering::Relaxed);
        });
        releaser.join().expect("releaser");
        pool.join();
        // latched job + 2 accepted try_submits + 1 blocking submit.
        assert_eq!(ran.load(Ordering::Relaxed), 4);
    }
}
