//! Per-shard state: a slice of the database plus its lock table.
//!
//! Items are partitioned across shards by [`mcv_txn::shard_of`]; each
//! shard is protected by one mutex, so lock-table operations on
//! different shards never contend. The lock table implements strict
//! 2PL with FIFO wait queues: a request is granted only when it is
//! compatible with the current holders *and* no earlier waiter is
//! still queued (no barging), which prevents writer starvation.

use mcv_txn::{Item, LockMode, TxnId, Value};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Mutex;

/// Lock state of one item.
#[derive(Debug, Default)]
struct LockEntry {
    sharers: BTreeSet<TxnId>,
    exclusive: Option<TxnId>,
    waiting: VecDeque<(TxnId, LockMode)>,
}

impl LockEntry {
    fn is_idle(&self) -> bool {
        self.sharers.is_empty() && self.exclusive.is_none() && self.waiting.is_empty()
    }
}

/// Outcome of a non-blocking acquisition attempt.
pub(crate) enum TryAcquire {
    /// The lock is held; proceed.
    Granted,
    /// Conflict. The requester was enqueued (once); the payload is the
    /// conservative waits-for edge set: current holders plus waiters
    /// queued ahead of the requester.
    Blocked(Vec<TxnId>),
}

/// One shard: data items plus their lock entries, under one mutex.
#[derive(Debug, Default)]
pub(crate) struct Shard {
    pub(crate) state: Mutex<ShardState>,
}

#[derive(Debug, Default)]
pub(crate) struct ShardState {
    data: BTreeMap<Item, Value>,
    locks: BTreeMap<Item, LockEntry>,
}

impl ShardState {
    /// The current value of `item` (0 if never written, matching the
    /// recovery semantics of an absent WAL entry).
    pub(crate) fn value(&self, item: &str) -> Value {
        self.data.get(item).copied().unwrap_or(0)
    }

    /// Overwrites `item`, returning the previous value.
    pub(crate) fn set(&mut self, item: &str, value: Value) -> Value {
        self.data.insert(item.to_owned(), value).unwrap_or(0)
    }

    /// All items of this shard (for state comparison after quiesce).
    pub(crate) fn data(&self) -> &BTreeMap<Item, Value> {
        &self.data
    }

    /// Tries to take `item` in `mode` for `txn`; enqueues on conflict.
    ///
    /// Re-entrant: a holder re-requesting a mode it already satisfies
    /// is granted immediately. An upgrade (shared → exclusive) is
    /// granted when `txn` is the sole sharer.
    pub(crate) fn try_or_enqueue(&mut self, txn: TxnId, item: &str, mode: LockMode) -> TryAcquire {
        let entry = self.locks.entry(item.to_owned()).or_default();
        let compatible = match mode {
            LockMode::Shared => entry.exclusive.is_none() || entry.exclusive == Some(txn),
            LockMode::Exclusive => {
                (entry.exclusive.is_none() || entry.exclusive == Some(txn))
                    && entry.sharers.iter().all(|s| *s == txn)
            }
        };
        let my_pos = entry.waiting.iter().position(|(t, _)| *t == txn);
        let ahead: Vec<TxnId> = entry
            .waiting
            .iter()
            .take(my_pos.unwrap_or(entry.waiting.len()))
            .map(|(t, _)| *t)
            .collect();
        if compatible && ahead.is_empty() {
            if let Some(p) = my_pos {
                entry.waiting.remove(p);
            }
            match mode {
                LockMode::Shared => {
                    if entry.exclusive != Some(txn) {
                        entry.sharers.insert(txn);
                    }
                }
                LockMode::Exclusive => {
                    entry.sharers.remove(&txn);
                    entry.exclusive = Some(txn);
                }
            }
            return TryAcquire::Granted;
        }
        match my_pos {
            Some(p) => entry.waiting[p].1 = mode,
            None => entry.waiting.push_back((txn, mode)),
        }
        let mut blockers: BTreeSet<TxnId> = ahead.into_iter().collect();
        blockers.extend(entry.sharers.iter().copied());
        if let Some(x) = entry.exclusive {
            blockers.insert(x);
        }
        blockers.remove(&txn);
        TryAcquire::Blocked(blockers.into_iter().collect())
    }

    /// Removes `txn`'s pending request on `item` (deadlock-victim
    /// cleanup); holders are untouched.
    pub(crate) fn dequeue(&mut self, txn: TxnId, item: &str) {
        if let Some(entry) = self.locks.get_mut(item) {
            entry.waiting.retain(|(t, _)| *t != txn);
            if entry.is_idle() {
                self.locks.remove(item);
            }
        }
    }

    /// Releases every lock and pending request of `txn` in this shard
    /// (strict 2PL: called only at commit/abort). Returns whether any
    /// entry `txn` was involved in still has waiters — callers only
    /// need the global wakeup path when it does. When `released` is
    /// given, the items `txn` actually *held* (not merely queued on)
    /// are appended to it, so the caller can trace the releases.
    pub(crate) fn release_all(&mut self, txn: TxnId, mut released: Option<&mut Vec<Item>>) -> bool {
        let mut had_waiters = false;
        self.locks.retain(|item, entry| {
            let held = entry.sharers.remove(&txn) | (entry.exclusive == Some(txn));
            let involved = held | entry.waiting.iter().any(|(t, _)| *t == txn);
            if entry.exclusive == Some(txn) {
                entry.exclusive = None;
            }
            entry.waiting.retain(|(t, _)| *t != txn);
            if involved && !entry.waiting.is_empty() {
                had_waiters = true;
            }
            if held {
                if let Some(out) = released.as_deref_mut() {
                    out.push(item.clone());
                }
            }
            !entry.is_idle()
        });
        had_waiters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: LockMode = LockMode::Shared;
    const X: LockMode = LockMode::Exclusive;

    fn granted(r: TryAcquire) -> bool {
        matches!(r, TryAcquire::Granted)
    }

    fn blockers(r: TryAcquire) -> Vec<TxnId> {
        match r {
            TryAcquire::Granted => panic!("expected Blocked"),
            TryAcquire::Blocked(b) => b,
        }
    }

    #[test]
    fn shared_locks_coexist_exclusive_blocks() {
        let mut s = ShardState::default();
        assert!(granted(s.try_or_enqueue(TxnId(1), "X", S)));
        assert!(granted(s.try_or_enqueue(TxnId(2), "X", S)));
        let b = blockers(s.try_or_enqueue(TxnId(3), "X", X));
        assert_eq!(b, vec![TxnId(1), TxnId(2)]);
    }

    #[test]
    fn fifo_queue_prevents_barging() {
        let mut s = ShardState::default();
        assert!(granted(s.try_or_enqueue(TxnId(1), "X", X)));
        let _ = s.try_or_enqueue(TxnId(2), "X", X);
        // T3's shared request is compatible with nothing held once T1
        // releases, but T2 is queued ahead — T3 must see T2 as a blocker.
        let b = blockers(s.try_or_enqueue(TxnId(3), "X", S));
        assert!(b.contains(&TxnId(2)));
        s.release_all(TxnId(1), None);
        // Head of queue gets through now.
        assert!(granted(s.try_or_enqueue(TxnId(2), "X", X)));
    }

    #[test]
    fn upgrade_granted_for_sole_sharer() {
        let mut s = ShardState::default();
        assert!(granted(s.try_or_enqueue(TxnId(1), "X", S)));
        assert!(granted(s.try_or_enqueue(TxnId(1), "X", X)));
        // And it is a real exclusive now.
        assert!(!granted(s.try_or_enqueue(TxnId(2), "X", S)));
    }

    #[test]
    fn release_all_clears_holds_and_queue_entries() {
        let mut s = ShardState::default();
        assert!(granted(s.try_or_enqueue(TxnId(1), "X", X)));
        let _ = s.try_or_enqueue(TxnId(2), "X", S);
        s.release_all(TxnId(1), None);
        s.release_all(TxnId(2), None);
        assert!(s.locks.is_empty());
    }

    #[test]
    fn dequeue_removes_only_the_waiter() {
        let mut s = ShardState::default();
        assert!(granted(s.try_or_enqueue(TxnId(1), "X", X)));
        let _ = s.try_or_enqueue(TxnId(2), "X", X);
        s.dequeue(TxnId(2), "X");
        s.release_all(TxnId(1), None);
        assert!(s.locks.is_empty());
    }
}
