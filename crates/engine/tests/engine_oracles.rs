//! End-to-end oracle tests of the concurrent engine.
//!
//! Three families, mirroring the thesis' global properties:
//! - **serializability** — every sampled concurrent history the engine
//!   produces must be conflict-serializable (property tested across
//!   random workload shapes);
//! - **recovery** — a crash at a random instant mid-run must recover
//!   to exactly a committed prefix: every acknowledged commit survives,
//!   no uncommitted write does, and the bank-sum invariant holds on the
//!   recovered state;
//! - **group commit** — batching must actually amortize: device
//!   operations stay strictly below commit count under concurrency.

use mcv_engine::{
    run_driver, DriverConfig, Engine, EngineConfig, EngineError, Mix, WorkloadKind,
    BANK_INITIAL_BALANCE,
};
use mcv_txn::{TxnId, Wal};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the workload shape, the engine's sampled committed
    /// history has an acyclic conflict graph and the durable log
    /// replays to the quiesced state.
    #[test]
    fn every_sampled_history_is_conflict_serializable(
        clients in 1usize..=4,
        txns in 40u64..=120,
        items in 4usize..=48,
        shards in 1usize..=16,
        write_pct in 0u8..=100,
        ops_per_txn in 1usize..=8,
        zipf in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mix = if zipf { Mix::Zipfian { theta: 0.9 } } else { Mix::Uniform };
        let cfg = DriverConfig {
            engine: EngineConfig { shards, group_commit: true, ..Default::default() },
            clients,
            txns,
            items,
            workload: WorkloadKind::ReadWrite { mix, write_pct, ops_per_txn },
            seed,
        };
        let report = run_driver(&cfg);
        prop_assert_eq!(report.committed, txns);
        prop_assert!(report.serializable,
            "non-serializable sampled history ({} txns / {} ops)",
            report.sampled_txns, report.sampled_ops);
        prop_assert!(report.recovered_matches,
            "durable log did not replay to the quiesced state");
    }

    /// Same property under the invariant-bearing bank workload.
    #[test]
    fn bank_runs_keep_invariant_and_serializability(
        clients in 2usize..=4,
        txns in 40u64..=100,
        items in 2usize..=24,
        seed in any::<u64>(),
    ) {
        let cfg = DriverConfig {
            engine: EngineConfig::default(),
            clients,
            txns,
            items,
            workload: WorkloadKind::BankTransfer,
            seed,
        };
        let report = run_driver(&cfg);
        prop_assert_eq!(report.bank_invariant_ok, Some(true));
        prop_assert!(report.serializable);
        prop_assert!(report.recovered_matches);
    }
}

/// A crash at a random instant recovers exactly the committed prefix.
///
/// Worker threads run bank transfers and record each commit in an
/// acknowledgement set *after* `commit()` returns. The main thread
/// "pulls the plug" at a random point by snapshotting the durable log
/// image. Reading the ack set strictly before taking the image gives
/// the one-way inclusion a real crash guarantees: every transaction
/// acknowledged before the crash instant has a durable commit record.
/// The recovered state must then satisfy the bank-sum invariant (it is
/// a committed prefix — transfers preserve the sum) and recovery must
/// be idempotent.
#[test]
fn kill_at_random_point_recovers_committed_prefix() {
    const ACCOUNTS: usize = 12;
    const WORKERS: usize = 4;
    for round in 0..5u64 {
        let engine = Engine::new(EngineConfig {
            shards: 8,
            group_commit: true,
            force_latency_us: 100,
            ..Default::default()
        });
        // Fund the accounts.
        let mut setup = engine.begin();
        for i in 0..ACCOUNTS {
            setup.write(&format!("acct{i:02}"), BANK_INITIAL_BALANCE).expect("fund");
        }
        setup.commit().expect("setup commit");

        let acked: Arc<Mutex<BTreeSet<TxnId>>> = Arc::new(Mutex::new(BTreeSet::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let workers: Vec<_> = (0..WORKERS)
            .map(|w| {
                let engine = engine.clone();
                let acked = Arc::clone(&acked);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(round * 100 + w as u64);
                    while !stop.load(Ordering::Relaxed) {
                        let a = rng.gen_range(0..ACCOUNTS);
                        let b = (a + 1 + rng.gen_range(0..ACCOUNTS - 1)) % ACCOUNTS;
                        let amt = rng.gen_range(1..=5i64);
                        let mut t = engine.begin();
                        let id = t.id();
                        let r = (|| {
                            let va = t.read(&format!("acct{a:02}"))?;
                            let vb = t.read(&format!("acct{b:02}"))?;
                            t.write(&format!("acct{a:02}"), va - amt)?;
                            t.write(&format!("acct{b:02}"), vb + amt)?;
                            Ok::<(), EngineError>(())
                        })();
                        match r {
                            Ok(()) => {
                                t.commit().expect("commit");
                                // The ack happens only after commit()
                                // returned, i.e. after durability.
                                acked.lock().expect("ack mutex").insert(id);
                            }
                            Err(_) => t.abort(),
                        }
                    }
                })
            })
            .collect();

        // Let the run make progress, then crash at an arbitrary point.
        let mut pause = StdRng::seed_from_u64(round);
        std::thread::sleep(std::time::Duration::from_millis(pause.gen_range(3..25)));
        let acked_at_crash: BTreeSet<TxnId> = acked.lock().expect("ack mutex").clone();
        let image = engine.durable_image();
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().expect("worker");
        }

        let crash_wal = Wal::from_bytes_lossy(&image);
        let durable_committed = crash_wal.committed();
        // 1. Every acknowledged commit survived the crash.
        assert!(
            acked_at_crash.is_subset(&durable_committed),
            "round {round}: acked commit lost: acked={} durable={}",
            acked_at_crash.len(),
            durable_committed.len()
        );
        // 2. No transaction is both committed and aborted.
        assert!(durable_committed.is_disjoint(&crash_wal.aborted()), "round {round}");
        // 3. The recovered state is a committed prefix: the transfer
        //    invariant holds exactly.
        let recovered = crash_wal.recover();
        let total: i64 = (0..ACCOUNTS)
            .map(|i| recovered.get(&format!("acct{i:02}")).copied().unwrap_or(0))
            .sum();
        assert_eq!(
            total,
            BANK_INITIAL_BALANCE * ACCOUNTS as i64,
            "round {round}: bank sum broken after crash-recovery"
        );
        // 4. Recovery is idempotent (second crash during recovery).
        assert_eq!(recovered, Wal::from_bytes_lossy(&image).recover(), "round {round}");
    }
}

/// Group commit must amortize: strictly fewer device operations than
/// commits when concurrent committers share forces, and a per-commit
/// baseline must not.
#[test]
fn group_commit_amortizes_forces_and_baseline_does_not() {
    let base = DriverConfig {
        clients: 4,
        txns: 120,
        items: 256,
        workload: WorkloadKind::ReadWrite { mix: Mix::Uniform, write_pct: 50, ops_per_txn: 4 },
        seed: 9,
        ..Default::default()
    };

    let grouped = run_driver(&DriverConfig {
        engine: EngineConfig { group_commit: true, force_latency_us: 300, ..Default::default() },
        ..base.clone()
    });
    assert!(grouped.oracles_ok());
    assert!(
        grouped.forces < grouped.commits,
        "group commit did not batch: {} forces for {} commits",
        grouped.forces,
        grouped.commits
    );

    let per_commit = run_driver(&DriverConfig {
        engine: EngineConfig { group_commit: false, force_latency_us: 300, ..Default::default() },
        ..base
    });
    assert!(per_commit.oracles_ok());
    assert_eq!(
        per_commit.forces, per_commit.commits,
        "baseline must force exactly once per commit"
    );
}

/// Deadlock victims are retried by the driver and never surface as
/// lost transactions, even under heavy symmetric contention.
#[test]
fn contended_bank_run_commits_every_admission() {
    let report = run_driver(&DriverConfig {
        engine: EngineConfig { shards: 2, ..Default::default() },
        clients: 4,
        txns: 200,
        items: 4,
        workload: WorkloadKind::BankTransfer,
        seed: 17,
    });
    assert_eq!(report.committed, 200);
    assert_eq!(report.bank_invariant_ok, Some(true));
    assert!(report.serializable);
    // With 4 accounts and random two-account transfers, deadlocks are
    // all but guaranteed; the driver must have absorbed them. The
    // engine's own counter additionally includes the funding setup.
    assert!(
        report.metrics.counter("engine.txn.committed") > report.committed,
        "engine counter should include setup commits on top of admissions"
    );
}
