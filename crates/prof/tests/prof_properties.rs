//! Determinism and conservation properties of the profiler: the
//! attribution table and the telemetry stream feed exact-gated facts
//! in `BENCH_prof.json`, so their deterministic shape must be a pure
//! function of their inputs — never of drain timing, wall clock, or
//! float formatting accidents.

use mcv_prof::{
    attribute_commits, strip_wall_all, telemetry_jsonl, AttributionTable, Phase, ProfSamples,
    TelemetryConfig, TelemetryStream, Timeline, PHASES,
};
use mcv_trace::{CausalTrace, Event, EventKind};
use proptest::prelude::*;

/// Synthetic harvested samples mirroring the recorder's contract: one
/// timeline per transaction (distinct ids), per-phase chunks that
/// never exceed the total (phases are disjoint slices of one
/// transaction's lifetime), plus optional anonymous `txn == 0`
/// entries (unanchored transport samples).
fn samples_strategy() -> impl Strategy<Value = ProfSamples> {
    (
        prop::collection::vec(
            (1_000u64..10_000_000, prop::collection::vec(0usize..8, 0..6), any::<bool>()),
            0..40,
        ),
        0u64..3,
    )
        .prop_map(|(specs, dropped)| {
            let timelines = specs
                .into_iter()
                .enumerate()
                .map(|(i, (total, picks, anonymous))| {
                    let mut t = Timeline::new(if anonymous { 0 } else { i as u64 + 1 });
                    t.total_ns = if anonymous { 0 } else { total };
                    let share = total / (picks.len().max(1) as u64 + 1);
                    for p in picks {
                        t.add(PHASES[p], share);
                    }
                    t
                })
                .collect();
            ProfSamples { timelines, dropped }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Same samples in, same table out — rendered text and JSON both,
    /// byte for byte. The table is what `exp.prof` prints and gates.
    #[test]
    fn attribution_is_a_pure_function_of_its_samples(samples in samples_strategy()) {
        let a = AttributionTable::from_samples(&samples);
        let b = AttributionTable::from_samples(&samples);
        prop_assert_eq!(a.render(), b.render());
        prop_assert_eq!(
            serde_json::to_string(&a.to_json()).unwrap(),
            serde_json::to_string(&b.to_json()).unwrap()
        );
    }

    /// Attributed and unattributed fractions partition the anchored
    /// time: both lie in [0, 1] and sum to 1 whenever any transaction
    /// anchored the table.
    #[test]
    fn fractions_partition_anchored_time(samples in samples_strategy()) {
        let t = AttributionTable::from_samples(&samples);
        prop_assert!((0.0..=1.0).contains(&t.attributed_frac), "{}", t.attributed_frac);
        prop_assert!((0.0..=1.0).contains(&t.unattributed_frac), "{}", t.unattributed_frac);
        if t.anchored_txns > 0 {
            let sum = t.attributed_frac + t.unattributed_frac;
            prop_assert!((sum - 1.0).abs() < 1e-9, "attributed + unattributed = {sum}");
        }
    }

    /// Per-phase nanosecond sums in the table equal the sums over the
    /// raw samples — aggregation loses nothing and invents nothing.
    #[test]
    fn phase_sums_are_conserved(samples in samples_strategy()) {
        let t = AttributionTable::from_samples(&samples);
        for (i, p) in PHASES.iter().enumerate() {
            let raw: u64 = samples
                .timelines
                .iter()
                .filter(|tl| tl.txn != 0)
                .map(|tl| tl.phase_ns[i])
                .sum();
            let row = t.row(p.name()).expect("every phase has a row");
            prop_assert_eq!(row.sum_ns, raw, "phase {}", p.name());
        }
    }
}

/// One telemetry observation at a virtual instant.
#[derive(Debug, Clone)]
enum Obs {
    Arrival(u64),
    Shed(u64),
    Abort(u64),
    Commit(u64, u64),
}

fn obs_strategy() -> impl Strategy<Value = Obs> {
    let at = 0u64..2_000;
    prop_oneof![
        at.clone().prop_map(Obs::Arrival),
        at.clone().prop_map(Obs::Shed),
        at.clone().prop_map(Obs::Abort),
        (at, 1_000u64..1_000_000).prop_map(|(t, l)| Obs::Commit(t, l)),
    ]
}

fn apply(stream: &mut TelemetryStream, obs: &Obs) {
    match obs {
        Obs::Arrival(t) => stream.observe_arrival(*t),
        Obs::Shed(t) => stream.observe_shed(*t),
        Obs::Abort(t) => stream.observe_abort(*t),
        Obs::Commit(t, lat) => stream.observe_commit(*t, *lat, None),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// No observation is ever lost, no matter how drains interleave
    /// with observes: the emitted windows account for every arrival,
    /// shed, abort, and commit exactly once (late observations fold
    /// into the next open window instead of vanishing).
    #[test]
    fn interleaved_drains_lose_nothing(
        ops in prop::collection::vec(
            prop_oneof![
                obs_strategy().prop_map(Some),
                (0u64..2_500).prop_map(|_| None), // drain point
            ],
            1..60,
        ),
        watermarks in prop::collection::vec(0u64..2_500, 0..10),
    ) {
        let mut stream = TelemetryStream::new(TelemetryConfig { window_us: 100 });
        let mut emitted = Vec::new();
        let mut wm = watermarks.into_iter();
        let (mut arrivals, mut sheds, mut aborts, mut commits) = (0u64, 0u64, 0u64, 0u64);
        for op in &ops {
            match op {
                Some(o) => {
                    match o {
                        Obs::Arrival(_) => arrivals += 1,
                        Obs::Shed(_) => sheds += 1,
                        Obs::Abort(_) => aborts += 1,
                        Obs::Commit(..) => commits += 1,
                    }
                    apply(&mut stream, o);
                }
                None => {
                    if let Some(w) = wm.next() {
                        emitted.extend(stream.drain_complete(w));
                    }
                }
            }
        }
        emitted.extend(stream.finish());
        prop_assert_eq!(emitted.iter().map(|s| s.arrivals).sum::<u64>(), arrivals);
        prop_assert_eq!(emitted.iter().map(|s| s.wall.sheds).sum::<u64>(), sheds);
        prop_assert_eq!(emitted.iter().map(|s| s.wall.aborts).sum::<u64>(), aborts);
        prop_assert_eq!(emitted.iter().map(|s| s.wall.commits).sum::<u64>(), commits);
        // Emitted windows are contiguous once the stream starts.
        for pair in emitted.windows(2) {
            prop_assert_eq!(pair[1].seq, pair[0].seq + 1);
        }
    }

    /// The wall-stripped JSONL stream is a pure function of the
    /// scheduled arrival times: latencies, drain watermarks, and
    /// completion outcomes never leak into the stripped bytes. The
    /// schedule is sorted, as the driver dispatches arrivals in order
    /// and only drains windows behind the dispatch point.
    #[test]
    fn stripped_jsonl_depends_only_on_the_schedule(
        at_us in prop::collection::vec(0u64..3_000, 1..40),
        latencies_a in prop::collection::vec(1_000u64..500_000, 40),
        latencies_b in prop::collection::vec(1_000u64..500_000, 40),
        watermark in 0u64..3_500,
    ) {
        let at_us = {
            let mut v = at_us;
            v.sort_unstable();
            v
        };
        let run = |latencies: &[u64], split: bool| {
            let mut s = TelemetryStream::new(TelemetryConfig { window_us: 250 });
            let mut out = Vec::new();
            for (i, &t) in at_us.iter().enumerate() {
                s.observe_arrival(t);
                s.observe_commit(t, latencies[i], None);
                if split && t > watermark {
                    out.extend(s.drain_complete(watermark));
                }
            }
            out.extend(s.finish());
            strip_wall_all(&mut out);
            telemetry_jsonl(&out)
        };
        prop_assert_eq!(run(&latencies_a, false), run(&latencies_b, true));
    }
}

fn ev(id: u64, site: usize, wall_us: u64, cause: Option<u64>, kind: EventKind) -> Event {
    Event { id, site, seq: 0, lamport: id, cause, time: 0, wall_ns: wall_us * 1_000, kind }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Critical-path segments tile the commit span exactly for any
    /// timing of the canonical lock → append → force → commit shape:
    /// the telescoping decomposition never gaps or double-counts, so
    /// phase fractions are well defined.
    #[test]
    fn path_segments_tile_the_span_for_any_timing(
        release_us in 1u64..500,
        acquire_gap in 1u64..100,
        append_gap in 1u64..100,
        force_gap in 1u64..1_000,
        ack_gap in 1u64..50,
    ) {
        let t_acq = release_us + acquire_gap;
        let t_app = t_acq + append_gap;
        let t_force = t_app + force_gap;
        let t_commit = t_force + ack_gap;
        let trace = CausalTrace {
            events: vec![
                ev(1, 0, 0, None,
                   EventKind::LockAcquire { txn: 1, item: "A".into(), exclusive: true }),
                ev(2, 1, release_us, None, EventKind::LockRelease { txn: 2, item: "B".into() }),
                ev(3, 0, t_acq, Some(2),
                   EventKind::LockAcquire { txn: 1, item: "B".into(), exclusive: true }),
                ev(4, 0, t_app, None,
                   EventKind::WalAppend { txn: 1, lsn: 1, what: "commit".into(), wal: 0 }),
                ev(5, 2, t_force, None, EventKind::WalForce { upto: 1, wal: 0 }),
                ev(6, 0, t_commit, Some(5), EventKind::Commit { txn: 1 }),
            ],
            dropped: 0,
        };
        let (table, paths) = attribute_commits(&trace);
        prop_assert_eq!(paths.len(), 1);
        let path = &paths[0];
        prop_assert_eq!(path.total_ns, t_commit * 1_000);
        let sum: u64 = path.segments.iter().map(|s| s.ns).sum();
        prop_assert_eq!(sum, path.total_ns, "{:#?}", path.segments);
        // Everything in this trace is classifiable; the lock hand-off
        // lands in lock_wait and the force dwell in wal_force.
        prop_assert!((table.attributed_frac - 1.0).abs() < 1e-9, "{}", table.render());
        let tl = path.timeline();
        prop_assert_eq!(tl.phase_ns[Phase::LockWait.index()], t_acq * 1_000);
        prop_assert_eq!(tl.phase_ns[Phase::WalForce.index()], force_gap * 1_000);
        prop_assert_eq!(tl.phase_ns[Phase::CommitAck.index()], ack_gap * 1_000);
    }
}
