//! Live telemetry for long load runs: periodic windowed snapshots
//! emitted as JSONL while the run is still going.
//!
//! Windows are keyed by the *virtual* (scheduled) arrival time of the
//! open-loop plan, not by wall clock — so the number of windows, their
//! sequence numbers, and the arrivals counted in each are functions of
//! the seed alone. Everything measured (completion counts, rates,
//! windowed percentiles, phase fractions) lives in the snapshot's
//! [`wall`](TelemetrySnapshot::wall) sub-object, which
//! [`TelemetrySnapshot::strip_wall`] resets — the same contract the
//! rest of the workspace uses for wall-clock data, so same-seed runs
//! produce byte-identical stripped streams.

use crate::attribution::latency_bounds;
use crate::phase::{Timeline, PHASES};
use mcv_obs::Histogram;
use std::collections::BTreeMap;

/// Telemetry stream configuration.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct TelemetryConfig {
    /// Window length in virtual microseconds.
    pub window_us: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        // One snapshot per virtual second.
        TelemetryConfig { window_us: 1_000_000 }
    }
}

/// Wall-clock-derived contents of one window. Reset wholesale by
/// [`TelemetrySnapshot::strip_wall`].
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TelemetryWall {
    /// Transactions that committed among this window's arrivals.
    pub commits: u64,
    /// Transactions that aborted among this window's arrivals.
    pub aborts: u64,
    /// Arrivals the admission controller shed.
    pub sheds: u64,
    /// Committed throughput over the window, per virtual second.
    pub commit_rate_per_s: f64,
    /// Windowed median commit latency, microseconds.
    pub p50_us: u64,
    /// Windowed tail commit latency, microseconds.
    pub p99_us: u64,
    /// Fraction of this window's attributed time per phase
    /// (phase name -> fraction of summed anchor latency).
    pub phase_frac: BTreeMap<String, f64>,
}

/// One telemetry window, serialized as a single JSONL line.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TelemetrySnapshot {
    /// Window sequence number (window index since virtual time 0).
    pub seq: u64,
    /// Window length in virtual microseconds.
    pub window_us: u64,
    /// Sessions scheduled to arrive inside this window.
    pub arrivals: u64,
    /// Measured (non-deterministic) window contents.
    pub wall: TelemetryWall,
}

impl TelemetrySnapshot {
    /// Resets every wall-clock-derived field, leaving only the
    /// seed-determined shape (seq, window, arrivals).
    pub fn strip_wall(&mut self) {
        self.wall = TelemetryWall::default();
    }
}

#[derive(Default)]
struct WindowAccum {
    arrivals: u64,
    commits: u64,
    aborts: u64,
    sheds: u64,
    latency: Option<Histogram>,
    total_ns: u64,
    phase_ns: [u64; 8],
}

/// Accumulates per-window stats from the load driver and releases
/// completed windows for JSONL emission.
pub struct TelemetryStream {
    config: TelemetryConfig,
    windows: BTreeMap<u64, WindowAccum>,
    /// Arrivals observed but not yet terminally resolved, keyed by
    /// their scheduled window. [`drain_complete`] refuses to emit a
    /// window that still owes a resolution: emitting early would force
    /// the eventual commit/abort into a later window, making the
    /// stream shape depend on worker timing instead of the seed.
    ///
    /// [`drain_complete`]: TelemetryStream::drain_complete
    pending: BTreeMap<u64, u64>,
    /// Next window sequence number to emit (windows are emitted
    /// contiguously, including empty ones, so the stream shape is
    /// deterministic).
    next_seq: u64,
    emitted_any: bool,
}

impl TelemetryStream {
    /// An empty stream.
    pub fn new(config: TelemetryConfig) -> Self {
        assert!(config.window_us > 0, "telemetry window must be positive");
        TelemetryStream {
            config,
            windows: BTreeMap::new(),
            pending: BTreeMap::new(),
            next_seq: 0,
            emitted_any: false,
        }
    }

    fn window_of(&self, virtual_us: u64) -> u64 {
        virtual_us / self.config.window_us
    }

    /// The accumulator for `virtual_us`, clamped to the oldest window
    /// not yet emitted: an observation racing a drain (a worker-thread
    /// completion landing after its window was streamed) folds into the
    /// next snapshot instead of vanishing into a never-emitted slot.
    fn slot(&mut self, virtual_us: u64) -> &mut WindowAccum {
        let seq = self.window_of(virtual_us).max(self.next_seq);
        self.windows.entry(seq).or_default()
    }

    /// A session was scheduled to arrive at `virtual_us`. Its window
    /// is held open until [`observe_resolved`] balances this call (or
    /// [`finish`] closes the run).
    ///
    /// [`observe_resolved`]: TelemetryStream::observe_resolved
    /// [`finish`]: TelemetryStream::finish
    pub fn observe_arrival(&mut self, virtual_us: u64) {
        *self.pending.entry(self.window_of(virtual_us)).or_default() += 1;
        self.slot(virtual_us).arrivals += 1;
    }

    /// The session scheduled at `virtual_us` reached a terminal state
    /// (commit, drop, deadline abandon, crash loss) — its window no
    /// longer waits on it.
    pub fn observe_resolved(&mut self, virtual_us: u64) {
        let w = self.window_of(virtual_us);
        if let Some(n) = self.pending.get_mut(&w) {
            *n -= 1;
            if *n == 0 {
                self.pending.remove(&w);
            }
        }
    }

    /// The session scheduled at `virtual_us` was shed by admission.
    pub fn observe_shed(&mut self, virtual_us: u64) {
        self.slot(virtual_us).sheds += 1;
    }

    /// The session scheduled at `virtual_us` aborted.
    pub fn observe_abort(&mut self, virtual_us: u64) {
        self.slot(virtual_us).aborts += 1;
    }

    /// The session scheduled at `virtual_us` committed with the given
    /// arrival-to-resolution latency and (optionally) its phase
    /// timeline.
    pub fn observe_commit(
        &mut self,
        virtual_us: u64,
        latency_ns: u64,
        timeline: Option<&Timeline>,
    ) {
        let w = self.slot(virtual_us);
        w.commits += 1;
        w.latency
            .get_or_insert_with(|| Histogram::with_bounds(latency_bounds()))
            .record(latency_ns / 1_000);
        if let Some(t) = timeline {
            w.total_ns += t.total_ns.max(latency_ns);
            for (i, ns) in t.phase_ns.iter().enumerate() {
                w.phase_ns[i] += ns;
            }
        } else {
            w.total_ns += latency_ns;
        }
    }

    fn snapshot(&mut self, seq: u64) -> TelemetrySnapshot {
        let w = self.windows.remove(&seq).unwrap_or_default();
        let mut phase_frac = BTreeMap::new();
        if w.total_ns > 0 {
            for (i, p) in PHASES.iter().enumerate() {
                if w.phase_ns[i] > 0 {
                    phase_frac
                        .insert(p.name().to_string(), w.phase_ns[i] as f64 / w.total_ns as f64);
                }
            }
        }
        let (p50_us, p99_us) = match &w.latency {
            Some(h) if !h.is_empty() => (h.percentile(50.0), h.percentile(99.0)),
            _ => (0, 0),
        };
        TelemetrySnapshot {
            seq,
            window_us: self.config.window_us,
            arrivals: w.arrivals,
            wall: TelemetryWall {
                commits: w.commits,
                aborts: w.aborts,
                sheds: w.sheds,
                commit_rate_per_s: w.commits as f64 * 1e6 / self.config.window_us as f64,
                p50_us,
                p99_us,
                phase_frac,
            },
        }
    }

    /// Releases every window that closed strictly before
    /// `virtual_now_us` *and* owes no pending resolution, oldest
    /// first, including empty gap windows (so the emitted sequence is
    /// contiguous). Call periodically from the pacer loop to stream
    /// snapshots while the run is live; a window whose sessions are
    /// still in flight is simply held until they resolve, so the
    /// emitted shape never depends on how slowly a worker finishes.
    pub fn drain_complete(&mut self, virtual_now_us: u64) -> Vec<TelemetrySnapshot> {
        let mut cutoff = self.window_of(virtual_now_us);
        if let Some(&open) = self.pending.keys().next() {
            cutoff = cutoff.min(open);
        }
        let mut out = Vec::new();
        while self.next_seq < cutoff {
            let seq = self.next_seq;
            self.next_seq += 1;
            // Suppress leading empty windows until the first activity.
            if !self.emitted_any && !self.windows.contains_key(&seq) {
                continue;
            }
            self.emitted_any = true;
            out.push(self.snapshot(seq));
        }
        out
    }

    /// Releases every remaining window (end of run). Anything still
    /// unresolved — only possible when the driver's hard cap fired —
    /// no longer holds its window open.
    pub fn finish(&mut self) -> Vec<TelemetrySnapshot> {
        self.pending.clear();
        let last = self.windows.keys().next_back().copied();
        match last {
            Some(last) => self.drain_complete((last + 1) * self.config.window_us),
            None => Vec::new(),
        }
    }
}

/// Serializes snapshots as JSONL, one window per line.
pub fn telemetry_jsonl(snapshots: &[TelemetrySnapshot]) -> String {
    let mut out = String::new();
    for s in snapshots {
        out.push_str(&serde_json::to_string(s).expect("telemetry snapshot serializes"));
        out.push('\n');
    }
    out
}

/// Strips wall-clock data from every snapshot (in place).
pub fn strip_wall_all(snapshots: &mut [TelemetrySnapshot]) {
    for s in snapshots {
        s.strip_wall();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;

    fn cfg(window_us: u64) -> TelemetryConfig {
        TelemetryConfig { window_us }
    }

    #[test]
    fn windows_are_keyed_by_virtual_time_and_emitted_contiguously() {
        let mut s = TelemetryStream::new(cfg(100));
        s.observe_arrival(10);
        s.observe_arrival(90);
        s.observe_arrival(250); // window 2; window 1 is an empty gap
        s.observe_commit(10, 5_000, None);
        s.observe_resolved(10);
        s.observe_resolved(90);
        s.observe_resolved(250);
        assert!(s.drain_complete(99).is_empty(), "window 0 still open");
        let first = s.drain_complete(300);
        assert_eq!(
            first.iter().map(|w| (w.seq, w.arrivals)).collect::<Vec<_>>(),
            vec![(0, 2), (1, 0), (2, 1)]
        );
        assert_eq!(first[0].wall.commits, 1);
        assert!(s.finish().is_empty());
    }

    #[test]
    fn unresolved_arrivals_hold_their_window_open() {
        let mut s = TelemetryStream::new(cfg(100));
        s.observe_arrival(10);
        s.observe_arrival(150);
        s.observe_resolved(150);
        // Virtual time is long past both windows, but window 0 still
        // owes a resolution — nothing may stream yet, or the eventual
        // commit would be forced into a window it never belonged to.
        assert!(s.drain_complete(1_000).is_empty());
        s.observe_commit(10, 9_000, None);
        s.observe_resolved(10);
        let out = s.drain_complete(200);
        assert_eq!(
            out.iter().map(|w| (w.seq, w.arrivals)).collect::<Vec<_>>(),
            vec![(0, 1), (1, 1)]
        );
        assert_eq!(out[0].wall.commits, 1, "the late commit stayed in its own window");
    }

    #[test]
    fn leading_empty_windows_are_suppressed() {
        let mut s = TelemetryStream::new(cfg(100));
        s.observe_arrival(520);
        let out = s.finish();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].seq, 5);
    }

    #[test]
    fn phase_fractions_and_percentiles_are_windowed() {
        let mut s = TelemetryStream::new(cfg(1_000));
        let mut t = Timeline::new(1);
        t.total_ns = 100_000;
        t.add(Phase::WalForce, 60_000);
        t.add(Phase::Execute, 40_000);
        s.observe_commit(5, 100_000, Some(&t));
        s.observe_commit(7, 300_000, None);
        s.observe_shed(9);
        let out = s.finish();
        assert_eq!(out.len(), 1);
        let w = &out[0].wall;
        assert_eq!(w.commits, 2);
        assert_eq!(w.sheds, 1);
        assert_eq!(w.commit_rate_per_s, 2_000.0);
        assert!(w.p99_us >= w.p50_us && w.p50_us > 0);
        let wf = w.phase_frac["wal_force"];
        // 60k of 400k total anchor time.
        assert!((wf - 0.15).abs() < 1e-9, "{wf}");
        assert!(!w.phase_frac.contains_key("lock_wait"));
    }

    #[test]
    fn strip_wall_leaves_only_the_deterministic_shape() {
        let mut s = TelemetryStream::new(cfg(100));
        s.observe_arrival(10);
        s.observe_commit(10, 123_456, None);
        s.observe_abort(20);
        let mut out = s.finish();
        strip_wall_all(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].arrivals, 1);
        assert_eq!(out[0].wall, TelemetryWall::default());
        let line = telemetry_jsonl(&out);
        assert!(line.contains("\"arrivals\":1"), "{line}");
        let reparsed: TelemetrySnapshot = serde_json::from_str(line.trim()).expect("round trips");
        assert_eq!(reparsed, out[0]);
    }
}
