//! Aggregation of harvested timelines into a time-attribution table:
//! per-phase histograms and the fraction of mean / p99 anchor latency
//! each phase accounts for, with the remainder reported explicitly.

use crate::phase::{Timeline, PHASES};
use crate::sink::ProfSamples;
use mcv_obs::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Microsecond-bucket bounds for phase and anchor histograms
/// (50µs .. 16s, the workspace's driver-latency bounds extended down
/// to 1µs so sub-lock-granularity phases still resolve).
pub(crate) fn latency_bounds() -> Vec<u64> {
    vec![
        1, 5, 10, 25, 50, 100, 200, 400, 800, 1_600, 3_200, 6_400, 12_800, 25_600, 51_200, 102_400,
        204_800, 409_600, 819_200, 1_638_400, 4_000_000, 16_000_000,
    ]
}

/// One phase's aggregate row.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PhaseRow {
    /// Phase name ([`crate::Phase::name`]).
    pub phase: String,
    /// Transactions with a nonzero attribution to this phase.
    pub txns: u64,
    /// Total nanoseconds attributed.
    pub sum_ns: u64,
    /// Mean nanoseconds per anchored transaction (not per nonzero txn).
    pub mean_ns: f64,
    /// p99 of the per-transaction attribution, microseconds.
    pub p99_us: u64,
    /// Share of the mean anchor latency, in [0, 1].
    pub frac_mean: f64,
    /// Phase p99 relative to the anchor p99, in [0, 1] (clamped).
    pub frac_p99: f64,
}

/// The time-attribution table of one profiled run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AttributionTable {
    /// Per-phase rows in canonical phase order (all 8 phases, always).
    pub rows: Vec<PhaseRow>,
    /// Transactions with an anchor latency (`total_ns > 0` after join).
    pub anchored_txns: u64,
    /// Phase-only nanoseconds that could not be joined to any anchored
    /// transaction (anonymous `txn == 0` entries); excluded from the
    /// fractions, surfaced so nothing disappears silently.
    pub unanchored_ns: u64,
    /// Mean anchor latency, nanoseconds.
    pub total_mean_ns: f64,
    /// p99 anchor latency, microseconds.
    pub total_p99_us: u64,
    /// Σ frac_mean over all phases, in [0, 1] — the headline
    /// "how much of the latency do we explain" number.
    pub attributed_frac: f64,
    /// `1 - attributed_frac` (clamped at 0): the explicit remainder.
    pub unattributed_frac: f64,
    /// Samples lost to ring overwrites during recording.
    pub dropped_samples: u64,
}

impl AttributionTable {
    /// Joins `samples` per transaction (anchor = the largest recorded
    /// total, so an outer driver's span wins over the engine's) and
    /// aggregates the result.
    pub fn from_samples(samples: &ProfSamples) -> AttributionTable {
        let mut joined: BTreeMap<u64, Timeline> = BTreeMap::new();
        let mut unanchored_ns = 0u64;
        for t in &samples.timelines {
            if t.txn == 0 {
                unanchored_ns += t.attributed_ns();
                continue;
            }
            let e = joined.entry(t.txn).or_insert_with(|| Timeline::new(t.txn));
            e.total_ns = e.total_ns.max(t.total_ns);
            for i in 0..8 {
                e.phase_ns[i] += t.phase_ns[i];
            }
        }
        let anchored: Vec<&Timeline> = joined.values().filter(|t| t.total_ns > 0).collect();
        for t in joined.values().filter(|t| t.total_ns == 0) {
            unanchored_ns += t.attributed_ns();
        }

        let mut total_hist = Histogram::with_bounds(latency_bounds());
        for t in &anchored {
            total_hist.record(t.total_ns / 1_000);
        }
        let n = anchored.len() as u64;
        let total_sum_ns: u64 = anchored.iter().map(|t| t.total_ns).sum();
        let total_mean_ns = if n == 0 { 0.0 } else { total_sum_ns as f64 / n as f64 };
        let total_p99_us = total_hist.percentile(99.0);

        let mut rows = Vec::with_capacity(PHASES.len());
        let mut attributed_frac = 0.0;
        for p in PHASES {
            let i = p.index();
            let mut hist = Histogram::with_bounds(latency_bounds());
            let mut sum_ns = 0u64;
            let mut txns = 0u64;
            for t in &anchored {
                let ns = t.phase_ns[i];
                sum_ns += ns;
                if ns > 0 {
                    txns += 1;
                    hist.record(ns / 1_000);
                }
            }
            let mean_ns = if n == 0 { 0.0 } else { sum_ns as f64 / n as f64 };
            let frac_mean =
                if total_sum_ns == 0 { 0.0 } else { sum_ns as f64 / total_sum_ns as f64 };
            let p99_us = hist.percentile(99.0);
            let frac_p99 = if total_p99_us == 0 {
                0.0
            } else {
                (p99_us as f64 / total_p99_us as f64).min(1.0)
            };
            attributed_frac += frac_mean;
            rows.push(PhaseRow {
                phase: p.name().to_owned(),
                txns,
                sum_ns,
                mean_ns,
                p99_us,
                frac_mean,
                frac_p99,
            });
        }
        AttributionTable {
            rows,
            anchored_txns: n,
            unanchored_ns,
            total_mean_ns,
            total_p99_us,
            attributed_frac,
            unattributed_frac: (1.0 - attributed_frac).max(0.0),
            dropped_samples: samples.dropped,
        }
    }

    /// Phase names of the top `k` rows by mean-latency share.
    pub fn top_phases(&self, k: usize) -> Vec<&str> {
        let mut by_share: Vec<&PhaseRow> = self.rows.iter().collect();
        by_share.sort_by(|a, b| b.frac_mean.partial_cmp(&a.frac_mean).expect("finite fracs"));
        by_share.into_iter().take(k).map(|r| r.phase.as_str()).collect()
    }

    /// The row for `phase` (all 8 are always present).
    pub fn row(&self, phase: &str) -> Option<&PhaseRow> {
        self.rows.iter().find(|r| r.phase == phase)
    }

    /// `phase`'s share of mean anchor latency (0.0 for an unknown or
    /// never-sampled phase) — the one-number form consumers compare
    /// across runs, e.g. transport_rtt's share serial vs pipelined.
    pub fn phase_frac(&self, phase: &str) -> f64 {
        self.row(phase).map_or(0.0, |r| r.frac_mean)
    }

    /// Renders the table as aligned text (the EXPERIMENTS.md artifact).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>7} {:>12} {:>10} {:>9} {:>9}",
            "phase", "txns", "mean_us", "p99_us", "%mean", "%p99"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<14} {:>7} {:>12.1} {:>10} {:>8.1}% {:>8.1}%",
                r.phase,
                r.txns,
                r.mean_ns / 1_000.0,
                r.p99_us,
                r.frac_mean * 100.0,
                r.frac_p99 * 100.0
            );
        }
        let _ = writeln!(
            out,
            "{:<14} {:>7} {:>12.1} {:>10} {:>8.1}%",
            "anchor",
            self.anchored_txns,
            self.total_mean_ns / 1_000.0,
            self.total_p99_us,
            self.attributed_frac * 100.0
        );
        let _ = writeln!(out, "unattributed remainder: {:.1}%", self.unattributed_frac * 100.0);
        if self.unanchored_ns > 0 {
            let _ =
                writeln!(out, "unanchored phase time: {:.1}us", self.unanchored_ns as f64 / 1e3);
        }
        if self.dropped_samples > 0 {
            let _ = writeln!(out, "dropped samples: {}", self.dropped_samples);
        }
        out
    }

    /// Deterministic JSON of the table.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("attribution table serializes")
    }

    /// Zeroes every wall-clock-derived field — all durations, fractions
    /// and timing-dependent sample counts — leaving the phase structure
    /// (names, order, row count). Same-seed runs are byte-identical
    /// after this, mirroring the `RunReport::strip_wall` contract.
    pub fn strip_wall(&mut self) {
        for r in &mut self.rows {
            r.txns = 0;
            r.sum_ns = 0;
            r.mean_ns = 0.0;
            r.p99_us = 0;
            r.frac_mean = 0.0;
            r.frac_p99 = 0.0;
        }
        self.anchored_txns = 0;
        self.unanchored_ns = 0;
        self.total_mean_ns = 0.0;
        self.total_p99_us = 0;
        self.attributed_frac = 0.0;
        self.unattributed_frac = 0.0;
        self.dropped_samples = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;

    fn sample(txn: u64, total_us: u64, phases: &[(Phase, u64)]) -> Timeline {
        let mut t = Timeline::new(txn);
        t.total_ns = total_us * 1_000;
        for (p, us) in phases {
            t.add(*p, us * 1_000);
        }
        t
    }

    #[test]
    fn fractions_sum_and_remainder_is_explicit() {
        let samples = ProfSamples {
            timelines: vec![
                sample(1, 100, &[(Phase::LockWait, 40), (Phase::WalForce, 40)]),
                sample(2, 100, &[(Phase::LockWait, 60), (Phase::WalForce, 20)]),
            ],
            dropped: 0,
        };
        let table = AttributionTable::from_samples(&samples);
        assert_eq!(table.anchored_txns, 2);
        assert!((table.row("lock_wait").unwrap().frac_mean - 0.5).abs() < 1e-9);
        assert!((table.row("wal_force").unwrap().frac_mean - 0.3).abs() < 1e-9);
        assert!((table.attributed_frac - 0.8).abs() < 1e-9);
        assert!((table.unattributed_frac - 0.2).abs() < 1e-9);
        assert_eq!(table.top_phases(2), vec!["lock_wait", "wal_force"]);
        assert!((table.phase_frac("lock_wait") - 0.5).abs() < 1e-9);
        assert_eq!(table.phase_frac("no_such_phase"), 0.0);
    }

    #[test]
    fn join_takes_largest_anchor_and_sums_phases() {
        // Engine records its span; the driver later records the full
        // arrival-to-resolution span plus queue time for the same txn.
        let samples = ProfSamples {
            timelines: vec![
                sample(9, 80, &[(Phase::Execute, 50)]),
                sample(9, 120, &[(Phase::AdmitQueue, 30)]),
            ],
            dropped: 0,
        };
        let table = AttributionTable::from_samples(&samples);
        assert_eq!(table.anchored_txns, 1);
        assert!((table.total_mean_ns - 120_000.0).abs() < 1e-6);
        assert!((table.row("execute").unwrap().frac_mean - 50.0 / 120.0).abs() < 1e-9);
        assert!((table.row("admit_queue").unwrap().frac_mean - 30.0 / 120.0).abs() < 1e-9);
    }

    #[test]
    fn anonymous_phase_time_is_reported_not_attributed() {
        let samples = ProfSamples {
            timelines: vec![
                sample(1, 100, &[(Phase::Execute, 90)]),
                sample(0, 0, &[(Phase::TransportRtt, 500)]),
            ],
            dropped: 3,
        };
        let table = AttributionTable::from_samples(&samples);
        assert_eq!(table.unanchored_ns, 500_000);
        assert_eq!(table.row("transport_rtt").unwrap().sum_ns, 0);
        assert_eq!(table.dropped_samples, 3);
        let text = table.render();
        assert!(text.contains("unanchored phase time"), "{text}");
        assert!(text.contains("dropped samples: 3"), "{text}");
    }

    #[test]
    fn strip_wall_leaves_only_structure_and_is_idempotent() {
        let samples =
            ProfSamples { timelines: vec![sample(1, 100, &[(Phase::Certify, 25)])], dropped: 1 };
        let mut a = AttributionTable::from_samples(&samples);
        let mut b = AttributionTable::from_samples(&ProfSamples {
            timelines: vec![sample(2, 900, &[(Phase::Certify, 600), (Phase::LockWait, 100)])],
            dropped: 0,
        });
        a.strip_wall();
        b.strip_wall();
        assert_eq!(a.to_json(), b.to_json(), "stripped tables are structure-only");
        let again = {
            let mut c = a.clone();
            c.strip_wall();
            c
        };
        assert_eq!(a, again);
        assert_eq!(a.rows.len(), PHASES.len());
    }

    #[test]
    fn empty_samples_produce_a_complete_zero_table() {
        let table = AttributionTable::from_samples(&ProfSamples::default());
        assert_eq!(table.rows.len(), 8);
        assert_eq!(table.anchored_txns, 0);
        assert_eq!(table.attributed_frac, 0.0);
        assert!(table.render().contains("unattributed remainder"));
    }
}
