//! The typed phase vocabulary of a transaction's lifetime.

use std::fmt;

/// One segment kind of a transaction's wall-clock lifetime.
///
/// Every instrumented layer attributes its waiting and working time to
/// one of these phases; whatever is left of the anchor latency after
/// all phases are summed is reported explicitly as *unattributed*
/// rather than silently folded into a phase.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Phase {
    /// Admission: accepted by the pool but not yet running (queue dwell).
    AdmitQueue,
    /// Blocked acquiring a 2PL lock (includes deadlock-detector waits).
    LockWait,
    /// Executing reads/writes and local bookkeeping while locks are held.
    Execute,
    /// MVCC commit certification (first-committer-wins / SSI read-set
    /// validation under the store's commit lock).
    Certify,
    /// Commit record appended, waiting for a device force to start
    /// (the group-commit batching dwell).
    WalDwell,
    /// The log device operation itself (modeled force latency).
    WalForce,
    /// Message flight time on the distributed transport (send to
    /// deliver, per hop).
    TransportRtt,
    /// Durable-to-done: post-force wakeup, version install, lock
    /// release, and the final acknowledgement to the caller.
    CommitAck,
}

/// All phases, in canonical (serialization and table) order.
pub const PHASES: [Phase; 8] = [
    Phase::AdmitQueue,
    Phase::LockWait,
    Phase::Execute,
    Phase::Certify,
    Phase::WalDwell,
    Phase::WalForce,
    Phase::TransportRtt,
    Phase::CommitAck,
];

impl Phase {
    /// Stable snake_case name (used in tables, JSONL, and metric keys).
    pub fn name(self) -> &'static str {
        match self {
            Phase::AdmitQueue => "admit_queue",
            Phase::LockWait => "lock_wait",
            Phase::Execute => "execute",
            Phase::Certify => "certify",
            Phase::WalDwell => "wal_dwell",
            Phase::WalForce => "wal_force",
            Phase::TransportRtt => "transport_rtt",
            Phase::CommitAck => "commit_ack",
        }
    }

    /// Index into a `[u64; 8]` phase array (canonical order).
    pub fn index(self) -> usize {
        match self {
            Phase::AdmitQueue => 0,
            Phase::LockWait => 1,
            Phase::Execute => 2,
            Phase::Certify => 3,
            Phase::WalDwell => 4,
            Phase::WalForce => 5,
            Phase::TransportRtt => 6,
            Phase::CommitAck => 7,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One transaction's recorded lifecycle: an anchor latency plus
/// per-phase nanosecond attributions.
///
/// A layer that measures phases but does not own the anchor (the
/// engine inside a load run, the transport thread) records with
/// `total_ns == 0`; the aggregator joins entries per transaction and
/// takes the *largest* total as the anchor, so an outer driver's
/// arrival-to-resolution span wins over the engine's begin-to-ack span
/// for the same transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Timeline {
    /// Transaction id the entry belongs to (0 = anonymous: phases are
    /// aggregated but never joined to an anchor).
    pub txn: u64,
    /// Anchor latency in nanoseconds (0 when this layer only
    /// contributes phases).
    pub total_ns: u64,
    /// Nanoseconds attributed to each phase, indexed by
    /// [`Phase::index`] in [`PHASES`] order.
    pub phase_ns: [u64; 8],
}

impl Timeline {
    /// An empty timeline for `txn`.
    pub fn new(txn: u64) -> Self {
        Timeline { txn, total_ns: 0, phase_ns: [0; 8] }
    }

    /// Adds `ns` to `phase`.
    pub fn add(&mut self, phase: Phase, ns: u64) {
        self.phase_ns[phase.index()] += ns;
    }

    /// Sum of all phase attributions.
    pub fn attributed_ns(&self) -> u64 {
        self.phase_ns.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_canonical_order() {
        for (i, p) in PHASES.iter().enumerate() {
            assert_eq!(p.index(), i, "{p}");
        }
    }

    #[test]
    fn names_are_unique_and_snake_case() {
        let names: std::collections::BTreeSet<&str> = PHASES.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), PHASES.len());
        for n in names {
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '_'), "{n}");
        }
    }

    #[test]
    fn timeline_accumulates() {
        let mut t = Timeline::new(7);
        t.add(Phase::LockWait, 100);
        t.add(Phase::LockWait, 50);
        t.add(Phase::WalForce, 25);
        assert_eq!(t.phase_ns[Phase::LockWait.index()], 150);
        assert_eq!(t.attributed_ns(), 175);
    }
}
