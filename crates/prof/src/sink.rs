//! The low-overhead recording sink: per-thread ring buffers behind an
//! `Arc`, mirroring the `mcv-trace` recorder install pattern.
//!
//! Hot-path discipline:
//!
//! - **no mutex**: a thread registers its ring once (the only lock
//!   touch), caches the `Arc` in a thread-local, and every subsequent
//!   [`Profiler::record`] is a handful of `Relaxed` atomic stores;
//! - **no-op when disabled**: instrumented code captures
//!   [`installed`] at construction (exactly like the engine does for
//!   its trace recorder), so the disabled path is one `Option` test;
//! - **bounded memory**: each ring holds a fixed number of
//!   [`Timeline`] slots and overwrites the oldest on overflow,
//!   counting what it dropped — a flight recorder, not an unbounded
//!   log.
//!
//! Harvesting ([`Profiler::harvest`]) is meant for quiesced runs (all
//! instrumented threads joined); concurrent writers may tear the
//! slot being overwritten, which is acceptable for a profiler and
//! bounded to one sample per ring.

use crate::phase::Timeline;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Number of `u64` words one ring slot occupies: txn, total, 8 phases.
const SLOT_WORDS: usize = 10;

/// Default per-thread ring capacity, in samples.
pub const DEFAULT_RING_CAPACITY: usize = 16 * 1024;

/// One thread's sample ring: a flat array of atomics written with
/// `Relaxed` stores by its owning thread only.
struct Ring {
    words: Box<[AtomicU64]>,
    capacity: usize,
    /// Total samples ever written (wraps over the ring when > capacity).
    head: AtomicUsize,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        let words = (0..capacity * SLOT_WORDS).map(|_| AtomicU64::new(0)).collect();
        Ring { words, capacity, head: AtomicUsize::new(0) }
    }

    fn push(&self, t: &Timeline) {
        let h = self.head.load(Ordering::Relaxed);
        let base = (h % self.capacity) * SLOT_WORDS;
        self.words[base].store(t.txn, Ordering::Relaxed);
        self.words[base + 1].store(t.total_ns, Ordering::Relaxed);
        for (i, ns) in t.phase_ns.iter().enumerate() {
            self.words[base + 2 + i].store(*ns, Ordering::Relaxed);
        }
        self.head.store(h + 1, Ordering::Relaxed);
    }

    fn drain(&self) -> (Vec<Timeline>, u64) {
        let h = self.head.load(Ordering::Relaxed);
        let kept = h.min(self.capacity);
        let dropped = (h - kept) as u64;
        // Oldest first: when wrapped, the slot at `h % capacity` is the
        // oldest surviving sample.
        let first = if h > self.capacity { h % self.capacity } else { 0 };
        let mut out = Vec::with_capacity(kept);
        for i in 0..kept {
            let base = ((first + i) % self.capacity) * SLOT_WORDS;
            let mut t = Timeline::new(self.words[base].load(Ordering::Relaxed));
            t.total_ns = self.words[base + 1].load(Ordering::Relaxed);
            for p in 0..8 {
                t.phase_ns[p] = self.words[base + 2 + p].load(Ordering::Relaxed);
            }
            out.push(t);
        }
        (out, dropped)
    }
}

struct Shared {
    /// Process-unique identity so thread-local ring caches never serve
    /// a stale ring to a different profiler.
    id: u64,
    ring_capacity: usize,
    rings: Mutex<Vec<Arc<Ring>>>,
}

static NEXT_PROFILER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// (profiler id, ring) cache — one entry per profiler this thread
    /// has recorded into, so the registry mutex is touched once per
    /// (thread, profiler) pair.
    static RING_CACHE: RefCell<Vec<(u64, Arc<Ring>)>> = const { RefCell::new(Vec::new()) };
    static INSTALLED: RefCell<Option<Profiler>> = const { RefCell::new(None) };
}

/// A handle to one profiling session. Cheap to clone; clones share the
/// same rings.
#[derive(Clone)]
pub struct Profiler {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler").field("id", &self.shared.id).finish()
    }
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new()
    }
}

impl Profiler {
    /// A profiler with the default per-thread ring capacity.
    pub fn new() -> Self {
        Profiler::with_ring_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A profiler whose per-thread rings hold `capacity` samples each.
    pub fn with_ring_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Profiler {
            shared: Arc::new(Shared {
                id: NEXT_PROFILER_ID.fetch_add(1, Ordering::Relaxed),
                ring_capacity: capacity,
                rings: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Records one transaction timeline into the calling thread's ring.
    pub fn record(&self, t: &Timeline) {
        RING_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, ring)) = cache.iter().find(|(id, _)| *id == self.shared.id) {
                ring.push(t);
                return;
            }
            let ring = Arc::new(Ring::new(self.shared.ring_capacity));
            self.shared.rings.lock().expect("prof ring registry").push(Arc::clone(&ring));
            ring.push(t);
            cache.push((self.shared.id, ring));
        });
    }

    /// Drains every thread's ring: all surviving samples (oldest first
    /// per ring, rings in registration order) plus the total number of
    /// samples the rings overwrote.
    pub fn harvest(&self) -> ProfSamples {
        let rings = self.shared.rings.lock().expect("prof ring registry");
        let mut timelines = Vec::new();
        let mut dropped = 0;
        for ring in rings.iter() {
            let (mut t, d) = ring.drain();
            timelines.append(&mut t);
            dropped += d;
        }
        ProfSamples { timelines, dropped }
    }
}

/// Everything a [`Profiler::harvest`] recovered.
#[derive(Debug, Clone, Default)]
pub struct ProfSamples {
    /// Every surviving sample.
    pub timelines: Vec<Timeline>,
    /// Samples lost to ring overwrites.
    pub dropped: u64,
}

/// Runs `f` with `p` installed as the calling thread's profiler; code
/// that captures [`installed`] during `f` (engine construction, the
/// load driver) records into it. Restores the previous installation on
/// exit, so sessions nest.
pub fn with_profiler<R>(p: &Profiler, f: impl FnOnce() -> R) -> R {
    let prev = INSTALLED.with(|i| i.borrow_mut().replace(p.clone()));
    let out = f();
    INSTALLED.with(|i| *i.borrow_mut() = prev);
    out
}

/// The profiler installed on this thread, if any. Captured once at
/// construction by instrumented components (the `mcv-trace`
/// `installed()` pattern), so worker threads they spawn inherit the
/// capture without touching the thread-local.
pub fn installed() -> Option<Profiler> {
    INSTALLED.with(|i| i.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;

    #[test]
    fn record_and_harvest_round_trip() {
        let p = Profiler::new();
        let mut t = Timeline::new(3);
        t.total_ns = 500;
        t.add(Phase::LockWait, 120);
        p.record(&t);
        let s = p.harvest();
        assert_eq!(s.timelines, vec![t]);
        assert_eq!(s.dropped, 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_dropped() {
        let p = Profiler::with_ring_capacity(4);
        for txn in 1..=10u64 {
            p.record(&Timeline::new(txn));
        }
        let s = p.harvest();
        assert_eq!(s.dropped, 6);
        let txns: Vec<u64> = s.timelines.iter().map(|t| t.txn).collect();
        assert_eq!(txns, vec![7, 8, 9, 10], "oldest-first surviving window");
    }

    #[test]
    fn each_thread_gets_its_own_ring() {
        let p = Profiler::new();
        let threads: Vec<_> = (0..4)
            .map(|w| {
                let p = p.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        p.record(&Timeline::new(w * 1000 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("worker");
        }
        let s = p.harvest();
        assert_eq!(s.timelines.len(), 400);
        assert_eq!(s.dropped, 0);
    }

    #[test]
    fn install_is_scoped_and_nests() {
        assert!(installed().is_none());
        let outer = Profiler::new();
        let inner = Profiler::new();
        with_profiler(&outer, || {
            let seen = installed().expect("outer installed");
            seen.record(&Timeline::new(1));
            with_profiler(&inner, || {
                installed().expect("inner installed").record(&Timeline::new(2));
            });
            installed().expect("outer restored").record(&Timeline::new(3));
        });
        assert!(installed().is_none());
        let outer_txns: Vec<u64> = outer.harvest().timelines.iter().map(|t| t.txn).collect();
        assert_eq!(outer_txns, vec![1, 3]);
        let inner_txns: Vec<u64> = inner.harvest().timelines.iter().map(|t| t.txn).collect();
        assert_eq!(inner_txns, vec![2]);
    }

    #[test]
    fn distinct_profilers_do_not_share_thread_rings() {
        let a = Profiler::new();
        let b = Profiler::new();
        a.record(&Timeline::new(1));
        b.record(&Timeline::new(2));
        a.record(&Timeline::new(3));
        assert_eq!(a.harvest().timelines.len(), 2);
        assert_eq!(b.harvest().timelines.len(), 1);
    }
}
