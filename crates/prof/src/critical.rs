//! Critical-path analysis over `mcv-trace` happens-before DAGs.
//!
//! For one committed transaction, the analyzer walks the transaction's
//! own events in wall-clock order and decomposes every gap between
//! consecutive events along the backward cause chain of the later
//! event — the chain of things the transaction actually waited on.
//! Each chain edge is classified as a [`Phase`]: a `Send → Deliver`
//! edge is message flight ([`Phase::TransportRtt`]), a
//! `WalForce → Commit` edge is the post-durability acknowledgement
//! ([`Phase::CommitAck`]), a `LockRelease → LockAcquire` edge is the
//! lock hand-off ([`Phase::LockWait`]), and so on. Segments tile the
//! interval from the transaction's first event to its commit decision
//! exactly (the weights telescope), so per-phase fractions of the
//! commit latency are well defined and sum to at most 1 — anything the
//! classifier cannot name lands in the unattributed remainder instead
//! of being guessed.
//!
//! One deliberate coarsening: the trace records a single `WalForce`
//! event at device-operation *completion*, so the analyzer folds the
//! group-commit dwell into [`Phase::WalForce`] (the ring-buffer
//! profiler, which sits inside the WAL, splits `WalDwell` from
//! `WalForce`).

use crate::attribution::AttributionTable;
use crate::phase::{Phase, Timeline};
use crate::sink::ProfSamples;
use mcv_trace::{CausalTrace, Event, EventKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One wall-time segment of a commit critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathSegment {
    /// The phase this segment is attributed to (`None` = unattributed).
    pub phase: Option<Phase>,
    /// Segment length in nanoseconds.
    pub ns: u64,
    /// Event id the segment ends at.
    pub to_event: u64,
    /// Human-readable edge description (for the `critical-path`
    /// subcommand).
    pub via: String,
}

/// The critical path behind one commit decision.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitPath {
    /// The transaction.
    pub txn: u64,
    /// First-own-event to commit-decision span, nanoseconds.
    pub total_ns: u64,
    /// Segments in chronological order; their lengths sum to `total_ns`.
    pub segments: Vec<PathSegment>,
}

impl CommitPath {
    /// The path folded into a per-transaction [`Timeline`] (anchor =
    /// the full span; unclassified segments contribute to no phase and
    /// therefore to the unattributed remainder).
    pub fn timeline(&self) -> Timeline {
        let mut t = Timeline::new(self.txn);
        t.total_ns = self.total_ns;
        for s in &self.segments {
            if let Some(p) = s.phase {
                t.add(p, s.ns);
            }
        }
        t
    }

    /// Renders the path with per-segment attribution.
    pub fn render(&self) -> String {
        let mut out = format!(
            "critical path of txn {} ({} segments, {:.1}us total):\n",
            self.txn,
            self.segments.len(),
            self.total_ns as f64 / 1e3
        );
        for s in &self.segments {
            let phase = s.phase.map_or("unattributed", Phase::name);
            let _ = writeln!(out, "  {:>10.1}us  {:<13} {}", s.ns as f64 / 1e3, phase, s.via);
        }
        out
    }
}

/// Classifies the chain edge `src -> dst` (`dst` cites `src` as cause).
fn classify_edge(src: &Event, dst: &Event) -> Option<Phase> {
    match (&src.kind, &dst.kind) {
        (EventKind::Send { .. }, EventKind::Deliver { .. }) => Some(Phase::TransportRtt),
        (EventKind::WalForce { .. }, EventKind::Commit { .. }) => Some(Phase::CommitAck),
        (EventKind::LockRelease { .. }, EventKind::LockAcquire { .. }) => Some(Phase::LockWait),
        // Local processing after a delivery or between FSM steps.
        (EventKind::Deliver { .. }, _) => Some(Phase::Execute),
        (EventKind::State { .. }, _) => Some(Phase::Execute),
        _ => None,
    }
}

/// Classifies the residual time *before* the earliest chain event —
/// the tail of a gap the cause chain did not reach across.
fn classify_tail(earliest: &Event) -> Option<Phase> {
    match &earliest.kind {
        // Time leading up to a device-force completion: dwell + device.
        EventKind::WalForce { .. } => Some(Phase::WalForce),
        // Time leading up to another transaction's release: we were
        // blocked on the holder.
        EventKind::LockRelease { .. } => Some(Phase::LockWait),
        // Time leading up to a delivery whose send fell outside the
        // gap: the tail of that message's flight.
        EventKind::Deliver { .. } => Some(Phase::TransportRtt),
        // Work that culminated in handing a message to the network, a
        // log append, an FSM step, or the decision itself.
        EventKind::Send { .. }
        | EventKind::WalAppend { .. }
        | EventKind::State { .. }
        | EventKind::Commit { .. }
        | EventKind::LockAcquire { .. }
        | EventKind::SnapshotRead { .. }
        | EventKind::SnapshotOpen { .. }
        | EventKind::VersionInstall { .. } => Some(Phase::Execute),
        _ => None,
    }
}

/// Transactions with a commit decision in `trace`, ascending.
pub fn committed_txns(trace: &CausalTrace) -> Vec<u64> {
    let mut txns: Vec<u64> = trace
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Commit { txn } => Some(txn),
            _ => None,
        })
        .collect();
    txns.sort_unstable();
    txns.dedup();
    txns
}

/// Extracts the critical path behind `txn`'s commit decision, or
/// `None` when the transaction never committed or the trace carries no
/// wall-clock data (e.g. after `strip_wall`).
pub fn commit_path(trace: &CausalTrace, txn: u64) -> Option<CommitPath> {
    let by_id: BTreeMap<u64, &Event> = trace.events.iter().map(|e| (e.id, e)).collect();
    let commit = trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Commit { txn: t } if t == txn))
        .max_by_key(|e| (e.wall_ns, e.id))?;
    // The transaction's own events up to (and including) the decision,
    // in wall order.
    let mut own: Vec<&Event> = trace
        .events
        .iter()
        .filter(|e| e.kind.txn() == Some(txn))
        .filter(|e| (e.wall_ns, e.id) <= (commit.wall_ns, commit.id))
        .collect();
    own.sort_by_key(|e| (e.wall_ns, e.id));
    let first = own.first()?;
    if commit.wall_ns == 0 && first.wall_ns == 0 && own.len() > 1 {
        return None; // wall-stripped trace: nothing to attribute
    }
    let total_ns = commit.wall_ns.saturating_sub(first.wall_ns);

    let mut segments = Vec::new();
    for pair in own.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        decompose_gap(a, b, &by_id, &mut segments);
    }
    Some(CommitPath { txn, total_ns, segments })
}

/// Splits the wall interval `[a, b]` along `b`'s backward cause chain
/// and appends the resulting segments (chronological order).
fn decompose_gap(
    a: &Event,
    b: &Event,
    by_id: &BTreeMap<u64, &Event>,
    segments: &mut Vec<PathSegment>,
) {
    if b.wall_ns <= a.wall_ns {
        return;
    }
    // Walk causes back while they stay inside the gap.
    let mut chain: Vec<&Event> = vec![b];
    let mut cur = b;
    while let Some(c) = cur.cause.and_then(|id| by_id.get(&id)) {
        if c.wall_ns <= a.wall_ns {
            break;
        }
        chain.push(c);
        cur = c;
    }
    // chain = [b, c1, c2, ...] newest-first; emit oldest-first.
    let earliest = *chain.last().expect("chain holds b");
    let tail_ns = earliest.wall_ns.saturating_sub(a.wall_ns);
    if tail_ns > 0 {
        segments.push(PathSegment {
            phase: classify_tail(earliest),
            ns: tail_ns,
            to_event: earliest.id,
            via: format!("... -> [{}] {}", earliest.id, earliest.kind),
        });
    }
    for w in chain.windows(2).rev() {
        let (dst, src) = (w[0], w[1]);
        let ns = dst.wall_ns.saturating_sub(src.wall_ns);
        if ns == 0 {
            continue;
        }
        segments.push(PathSegment {
            phase: classify_edge(src, dst),
            ns,
            to_event: dst.id,
            via: format!("[{}] {} -> [{}] {}", src.id, src.kind, dst.id, dst.kind),
        });
    }
}

/// Critical-path attribution of every committed transaction in
/// `trace`: the per-transaction paths plus the aggregate
/// [`AttributionTable`] over their timelines.
pub fn attribute_commits(trace: &CausalTrace) -> (AttributionTable, Vec<CommitPath>) {
    let paths: Vec<CommitPath> =
        committed_txns(trace).into_iter().filter_map(|t| commit_path(trace, t)).collect();
    let samples =
        ProfSamples { timelines: paths.iter().map(CommitPath::timeline).collect(), dropped: 0 };
    (AttributionTable::from_samples(&samples), paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64, site: usize, wall_us: u64, cause: Option<u64>, kind: EventKind) -> Event {
        Event { id, site, seq: 0, lamport: id, cause, time: 0, wall_ns: wall_us * 1_000, kind }
    }

    /// t1 blocks on t2's lock, appends, and is acked after a force.
    fn engine_trace() -> CausalTrace {
        CausalTrace {
            events: vec![
                ev(
                    1,
                    0,
                    0,
                    None,
                    EventKind::LockAcquire { txn: 1, item: "A".into(), exclusive: true },
                ),
                ev(2, 1, 40, None, EventKind::LockRelease { txn: 2, item: "B".into() }),
                ev(
                    3,
                    0,
                    50,
                    Some(2),
                    EventKind::LockAcquire { txn: 1, item: "B".into(), exclusive: true },
                ),
                ev(
                    4,
                    0,
                    60,
                    None,
                    EventKind::WalAppend { txn: 1, lsn: 3, what: "commit".into(), wal: 0 },
                ),
                ev(5, 2, 160, None, EventKind::WalForce { upto: 4, wal: 0 }),
                ev(6, 0, 165, Some(5), EventKind::Commit { txn: 1 }),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn segments_tile_the_commit_span_exactly() {
        let path = commit_path(&engine_trace(), 1).expect("t1 committed");
        assert_eq!(path.total_ns, 165_000);
        let sum: u64 = path.segments.iter().map(|s| s.ns).sum();
        assert_eq!(sum, path.total_ns, "{:#?}", path.segments);
    }

    #[test]
    fn lock_force_and_ack_edges_are_classified() {
        let path = commit_path(&engine_trace(), 1).expect("t1 committed");
        let t = path.timeline();
        // [0,40] blocked until t2's release + [40,50] hand-off = LockWait.
        assert_eq!(t.phase_ns[Phase::LockWait.index()], 50_000);
        // [50,60] append = Execute.
        assert_eq!(t.phase_ns[Phase::Execute.index()], 10_000);
        // [60,160] dwell+device folded into WalForce.
        assert_eq!(t.phase_ns[Phase::WalForce.index()], 100_000);
        // [160,165] durable-to-decision = CommitAck.
        assert_eq!(t.phase_ns[Phase::CommitAck.index()], 5_000);
        assert_eq!(t.attributed_ns(), t.total_ns);
    }

    /// Coordinator FSM waits a round trip: request out, vote back.
    fn dist_trace() -> CausalTrace {
        CausalTrace {
            events: vec![
                ev(1, 0, 0, None, EventKind::State { txn: 7, state: "q1".into() }),
                ev(2, 0, 10, None, EventKind::Send { to: 1, label: "CanCommit".into() }),
                ev(
                    3,
                    1,
                    110,
                    Some(2),
                    EventKind::Deliver { from: 0, label: "CanCommit".into(), deliver_seq: 1 },
                ),
                ev(4, 1, 130, Some(3), EventKind::Send { to: 0, label: "VoteYes".into() }),
                ev(
                    5,
                    0,
                    230,
                    Some(4),
                    EventKind::Deliver { from: 1, label: "VoteYes".into(), deliver_seq: 1 },
                ),
                ev(6, 0, 240, Some(5), EventKind::State { txn: 7, state: "w1".into() }),
                ev(7, 0, 245, None, EventKind::Commit { txn: 7 }),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn transport_flights_dominate_a_round_trip() {
        let path = commit_path(&dist_trace(), 7).expect("t7 committed");
        let t = path.timeline();
        assert_eq!(path.total_ns, 245_000);
        // Two 100us flights out of a 245us span.
        assert_eq!(t.phase_ns[Phase::TransportRtt.index()], 200_000);
        let sum: u64 = path.segments.iter().map(|s| s.ns).sum();
        assert_eq!(sum, path.total_ns);
        let (table, paths) = attribute_commits(&dist_trace());
        assert_eq!(paths.len(), 1);
        assert_eq!(table.top_phases(1), vec!["transport_rtt"]);
        assert!(table.attributed_frac > 0.9, "{}", table.render());
    }

    #[test]
    fn uncommitted_or_stripped_traces_yield_none() {
        assert!(commit_path(&engine_trace(), 42).is_none());
        let mut stripped = engine_trace();
        stripped.strip_wall();
        assert!(commit_path(&stripped, 1).is_none());
        assert!(committed_txns(&engine_trace()) == vec![1]);
    }
}
