//! # mcv-prof — phase attribution, critical paths, live telemetry
//!
//! Answers "where does a transaction's latency go?" three ways:
//!
//! 1. **Lifecycle timelines** ([`Phase`], [`Timeline`], [`Profiler`]):
//!    instrumented layers (engine, WAL, transport, load driver) record
//!    per-transaction phase durations into per-thread ring buffers —
//!    relaxed atomic stores on the hot path, a strict no-op when no
//!    profiler is installed. [`AttributionTable::from_samples`] joins
//!    the harvest per transaction and reports each phase's share of
//!    mean and p99 commit latency, with the unattributed remainder
//!    explicit.
//! 2. **Critical paths** ([`commit_path`], [`attribute_commits`]):
//!    walks `mcv-trace` happens-before DAGs backward from each commit
//!    decision, decomposing the wall time behind it into classified
//!    causal edges (message flight, force-before-ack, lock hand-off).
//!    Segments tile the span exactly, so parallel waits are never
//!    double-counted — this is the view that makes `transport_rtt` +
//!    `wal_force` visibly dominate cross-shard commits.
//! 3. **Live telemetry** ([`TelemetryStream`]): windowed JSONL
//!    snapshots for long load runs, keyed by virtual arrival time so
//!    the stream's shape is seed-deterministic; all measured rates and
//!    percentiles live in a `wall` sub-object that
//!    [`TelemetrySnapshot::strip_wall`] resets.
//!
//! Install a profiler around construction of whatever you want
//! measured, mirroring the `mcv-trace` recorder pattern:
//!
//! ```
//! use mcv_prof::{with_profiler, AttributionTable, Profiler};
//!
//! let prof = Profiler::new();
//! with_profiler(&prof, || {
//!     // build + run an instrumented Engine / load plan here; it
//!     // captures `mcv_prof::installed()` at construction.
//! });
//! let table = AttributionTable::from_samples(&prof.harvest());
//! println!("{}", table.render());
//! ```

#![warn(missing_docs)]

mod attribution;
mod critical;
mod phase;
mod sink;
mod telemetry;

pub use attribution::{AttributionTable, PhaseRow};
pub use critical::{attribute_commits, commit_path, committed_txns, CommitPath, PathSegment};
pub use phase::{Phase, Timeline, PHASES};
pub use sink::{installed, with_profiler, ProfSamples, Profiler, DEFAULT_RING_CAPACITY};
pub use telemetry::{
    strip_wall_all, telemetry_jsonl, TelemetryConfig, TelemetrySnapshot, TelemetryStream,
    TelemetryWall,
};
