//! The thread-local collector behind the free recording functions.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::report::RunReport;
use crate::span::SpanStats;

struct Collector {
    registry: MetricsRegistry,
    stack: Vec<&'static str>,
    spans: BTreeMap<String, SpanStats>,
}

impl Collector {
    fn new() -> Self {
        Collector { registry: MetricsRegistry::new(), stack: Vec::new(), spans: BTreeMap::new() }
    }
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Everything one [`collect`] call gathered.
#[derive(Debug, Clone)]
pub struct Collected {
    /// Snapshot of all metrics recorded during the run.
    pub metrics: MetricsSnapshot,
    /// Per-path span statistics, sorted by path.
    pub spans: Vec<SpanStats>,
    /// Wall-clock duration of the whole collected closure.
    pub elapsed_ns: u64,
}

impl Collected {
    /// Packages the collected data as a [`RunReport`] named `id`.
    pub fn into_report(self, id: impl Into<String>) -> RunReport {
        let mut report = RunReport::new(id);
        report.metrics = self.metrics;
        report.spans = self.spans;
        report.wall.elapsed_ns = self.elapsed_ns;
        report
    }
}

/// Runs `f` with a fresh collector installed and returns its value
/// together with everything recorded.
///
/// Nested `collect` calls stack: the inner call records into its own
/// collector and restores the outer one when done (the outer collector
/// does **not** see the inner run's metrics).
pub fn collect<R>(f: impl FnOnce() -> R) -> (R, Collected) {
    let prev = COLLECTOR.with(|c| c.borrow_mut().replace(Collector::new()));
    let start = Instant::now();
    let value = f();
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    let collector = COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        let current = slot.take().expect("collector removed during collect");
        *slot = prev;
        current
    });
    let collected = Collected {
        metrics: collector.registry.snapshot(),
        spans: collector.spans.into_values().collect(),
        elapsed_ns,
    };
    (value, collected)
}

/// Adds `delta` to the counter `name` of the installed collector;
/// no-op without one.
pub fn counter(name: &str, delta: u64) {
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow().as_ref() {
            col.registry.add(name, delta);
        }
    });
}

/// Sets the gauge `name` of the installed collector; no-op without one.
pub fn gauge(name: &str, value: f64) {
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow().as_ref() {
            col.registry.set_gauge(name, value);
        }
    });
}

/// Records `value` into the histogram `name` of the installed
/// collector; no-op without one.
pub fn record(name: &str, value: u64) {
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow().as_ref() {
            col.registry.record(name, value);
        }
    });
}

/// Merges a pre-aggregated snapshot into the installed collector;
/// no-op without one. Used by code that keeps local counters through a
/// hot loop (the prover) and flushes once at the end.
pub fn absorb(snap: &MetricsSnapshot) {
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow().as_ref() {
            col.registry.absorb(snap);
        }
    });
}

/// Pushes `name` onto the span stack, returning the full `/`-joined
/// path, or `None` when no collector is installed.
pub(crate) fn span_enter(name: &'static str) -> Option<String> {
    COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        let col = slot.as_mut()?;
        col.stack.push(name);
        Some(col.stack.join("/"))
    })
}

/// Pops the span stack and aggregates `wall_ns` under `path`.
pub(crate) fn span_exit(path: &str, wall_ns: u64) {
    COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        let Some(col) = slot.as_mut() else { return };
        col.stack.pop();
        if let Some(stats) = col.spans.get_mut(path) {
            stats.calls += 1;
            stats.wall_ns += wall_ns;
        } else {
            col.spans
                .insert(path.to_owned(), SpanStats { name: path.to_owned(), calls: 1, wall_ns });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    #[test]
    fn free_functions_are_noops_without_collector() {
        counter("orphan", 1);
        gauge("orphan.g", 2.0);
        record("orphan.h", 3);
        let _span = Span::enter("orphan.span");
        // Nothing to assert beyond "does not panic / does not leak
        // into a later collect":
        let ((), data) = collect(|| {});
        assert!(data.metrics.counters.is_empty());
        assert!(data.spans.is_empty());
    }

    #[test]
    fn collect_gathers_metrics_and_spans() {
        let (v, data) = collect(|| {
            counter("events", 2);
            counter("events", 3);
            gauge("depth", 7.0);
            record("latency", 12);
            {
                let _outer = Span::enter("outer");
                let _inner = Span::enter("inner");
            }
            {
                let _outer = Span::enter("outer");
            }
            "done"
        });
        assert_eq!(v, "done");
        assert_eq!(data.metrics.counter("events"), 5);
        assert_eq!(data.metrics.gauge("depth"), Some(7.0));
        assert_eq!(data.metrics.histograms["latency"].count, 1);
        let names: Vec<&str> = data.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["outer", "outer/inner"]);
        let outer = &data.spans[0];
        assert_eq!(outer.calls, 2);
        assert_eq!(data.spans[1].calls, 1);
    }

    #[test]
    fn nested_collects_are_isolated() {
        let ((), outer) = collect(|| {
            counter("outer.only", 1);
            let ((), inner) = collect(|| counter("inner.only", 1));
            assert_eq!(inner.metrics.counter("inner.only"), 1);
            assert_eq!(inner.metrics.counter("outer.only"), 0);
        });
        assert_eq!(outer.metrics.counter("outer.only"), 1);
        assert_eq!(outer.metrics.counter("inner.only"), 0);
    }

    #[test]
    fn absorb_flushes_local_counters() {
        let reg = MetricsRegistry::new();
        reg.add("prover.generated", 41);
        let snap = reg.snapshot();
        let ((), data) = collect(|| absorb(&snap));
        assert_eq!(data.metrics.counter("prover.generated"), 41);
    }
}
