//! RAII span guards.

use std::time::Instant;

/// Aggregated statistics for one span path.
///
/// `name` is the full nesting path, `/`-joined (entering `"pushout"`
/// inside `"colimit"` aggregates under `"colimit/pushout"`). `calls`
/// is deterministic; `wall_ns` is the only wall-clock field and is
/// zeroed by [`crate::RunReport::strip_wall`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SpanStats {
    /// Full `/`-joined nesting path of the span.
    pub name: String,
    /// How many times the span was entered (deterministic).
    pub calls: u64,
    /// Total wall-clock nanoseconds spent inside (non-deterministic).
    pub wall_ns: u64,
}

/// A guard marking one timed region of code.
///
/// Entering a span while another is live nests it: durations and call
/// counts aggregate under the `/`-joined path of all live spans. When
/// no collector is installed (see [`crate::collect`]) the guard is
/// inert and costs one thread-local read.
#[must_use = "a span records its duration when dropped"]
#[derive(Debug)]
pub struct Span {
    path: Option<String>,
    start: Instant,
}

impl Span {
    /// Enters the span `name`, returning a guard that records the
    /// region on drop.
    pub fn enter(name: &'static str) -> Span {
        let path = crate::global::span_enter(name);
        Span { path, start: Instant::now() }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(path) = self.path.take() {
            let wall_ns = self.start.elapsed().as_nanos() as u64;
            crate::global::span_exit(&path, wall_ns);
        }
    }
}
