//! Machine-readable run reports.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::metrics::MetricsSnapshot;
use crate::span::SpanStats;

/// The wall-clock section of a report — the only place (besides span
/// `wall_ns` fields) where non-deterministic timing lives.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WallClock {
    /// Total wall-clock nanoseconds for the run.
    pub elapsed_ns: u64,
}

/// One run's worth of observability data, serializable to JSON/JSONL.
///
/// Everything except `wall` and the spans' `wall_ns` fields is a pure
/// function of the workload; [`RunReport::strip_wall`] zeroes exactly
/// those, after which two same-seed runs serialize byte-identically.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunReport {
    /// Stable identifier of the run (e.g. the repro artifact id).
    pub id: String,
    /// Free-form key/value facts about the run (seed, protocol,
    /// verdicts, ...). Deterministic.
    pub facts: BTreeMap<String, String>,
    /// All metrics recorded during the run.
    pub metrics: MetricsSnapshot,
    /// Per-path span statistics, sorted by path.
    pub spans: Vec<SpanStats>,
    /// Wall-clock timing (non-deterministic).
    pub wall: WallClock,
}

impl RunReport {
    /// An empty report named `id`.
    pub fn new(id: impl Into<String>) -> Self {
        RunReport {
            id: id.into(),
            facts: BTreeMap::new(),
            metrics: MetricsSnapshot::default(),
            spans: Vec::new(),
            wall: WallClock::default(),
        }
    }

    /// Records a free-form fact, returning the report for chaining.
    pub fn fact(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.facts.insert(key.into(), value.to_string());
        self
    }

    /// Zeroes every wall-clock field (the report `wall` section, each
    /// span's `wall_ns`, and any `wall.`-prefixed metric), leaving only
    /// deterministic data.
    pub fn strip_wall(&mut self) {
        self.wall = WallClock::default();
        for span in &mut self.spans {
            span.wall_ns = 0;
        }
        self.metrics.strip_wall();
    }

    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("RunReport serialization is infallible")
    }

    /// Compact single-line JSON, for JSONL streams.
    pub fn to_jsonl_line(&self) -> String {
        serde_json::to_string(self).expect("RunReport serialization is infallible")
    }

    /// Parses a report back from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde::Error> {
        serde_json::from_str(text)
    }

    /// A compact human-readable summary: id, wall time, every counter,
    /// and every span with its call count.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "[obs] {} — {} counters, {} spans, {:.2} ms\n",
            self.id,
            self.metrics.counters.len(),
            self.spans.len(),
            self.wall.elapsed_ns as f64 / 1e6,
        ));
        for (k, v) in &self.facts {
            out.push_str(&format!("  fact  {k} = {v}\n"));
        }
        for (k, v) in &self.metrics.counters {
            out.push_str(&format!("  count {k} = {v}\n"));
        }
        for s in &self.spans {
            out.push_str(&format!(
                "  span  {} — {} calls, {:.2} ms\n",
                s.name,
                s.calls,
                s.wall_ns as f64 / 1e6,
            ));
        }
        out
    }
}

/// Writes `report` as pretty JSON to `<dir>/<id>.json`, creating `dir`
/// if needed, and returns the path written.
pub fn write_report(dir: impl AsRef<Path>, report: &RunReport) -> io::Result<PathBuf> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.json", report.id));
    fs::write(&path, report.to_json())?;
    Ok(path)
}

/// Appends `report` as one compact JSON line to `path`, creating the
/// file (and parent directory) if needed.
pub fn append_jsonl(path: impl AsRef<Path>, report: &RunReport) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut file = fs::OpenOptions::new().create(true).append(true).open(path)?;
    writeln!(file, "{}", report.to_jsonl_line())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample() -> RunReport {
        let reg = MetricsRegistry::new();
        reg.add("a.count", 3);
        reg.set_gauge("b.gauge", 2.5);
        reg.record("c.hist", 9);
        let mut r = RunReport::new("sample").fact("seed", 42).fact("protocol", "3pc");
        r.metrics = reg.snapshot();
        r.spans.push(SpanStats { name: "outer".into(), calls: 2, wall_ns: 1234 });
        r.spans.push(SpanStats { name: "outer/inner".into(), calls: 5, wall_ns: 99 });
        r.wall.elapsed_ns = 777;
        r
    }

    #[test]
    fn json_round_trip_is_identity() {
        let r = sample();
        let text = r.to_json();
        let back = RunReport::from_json(&text).expect("parse");
        assert_eq!(back, r);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn jsonl_line_has_no_newline_and_round_trips() {
        let r = sample();
        let line = r.to_jsonl_line();
        assert!(!line.contains('\n'));
        assert_eq!(RunReport::from_json(&line).expect("parse"), r);
    }

    #[test]
    fn strip_wall_zeroes_exactly_the_wall_fields() {
        let mut r = sample();
        r.strip_wall();
        assert_eq!(r.wall.elapsed_ns, 0);
        assert!(r.spans.iter().all(|s| s.wall_ns == 0));
        // Deterministic data survives.
        assert_eq!(r.metrics.counter("a.count"), 3);
        assert_eq!(r.spans[1].calls, 5);
        assert_eq!(r.facts["protocol"], "3pc");
    }

    #[test]
    fn write_report_and_append_jsonl_produce_parseable_files() {
        let dir = std::env::temp_dir().join("mcv-obs-report-test");
        let _ = fs::remove_dir_all(&dir);
        let r = sample();
        let path = write_report(&dir, &r).expect("write");
        assert!(path.ends_with("sample.json"));
        let back = RunReport::from_json(&fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, r);

        let jsonl = dir.join("stream.jsonl");
        append_jsonl(&jsonl, &r).expect("append");
        append_jsonl(&jsonl, &r).expect("append");
        let text = fs::read_to_string(&jsonl).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert_eq!(RunReport::from_json(line).unwrap(), r);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_mentions_counters_and_spans() {
        let s = sample().summary();
        assert!(s.contains("sample"));
        assert!(s.contains("a.count = 3"));
        assert!(s.contains("outer/inner"));
        assert!(s.contains("fact  protocol = 3pc"));
    }
}
