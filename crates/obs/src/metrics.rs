//! Counters, gauges, and fixed-bucket histograms.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

/// A live registry of named metrics.
///
/// Handles returned by [`MetricsRegistry::counter`] share storage with
/// the registry (`Rc<Cell<_>>`), so hot loops pay one pointer bump per
/// increment — the map lookup happens once, at registration. The
/// registry is single-threaded by design (the whole workspace is); use
/// one registry per run.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RefCell<BTreeMap<String, Rc<Cell<u64>>>>,
    gauges: RefCell<BTreeMap<String, Rc<Cell<f64>>>>,
    histograms: RefCell<BTreeMap<String, Rc<RefCell<Histogram>>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter handle for `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.counters.borrow_mut();
        if let Some(cell) = counters.get(name) {
            return Counter(Rc::clone(cell));
        }
        let cell = Rc::new(Cell::new(0));
        counters.insert(name.to_owned(), Rc::clone(&cell));
        Counter(cell)
    }

    /// Adds `delta` to the counter `name` (one-shot convenience).
    pub fn add(&self, name: &str, delta: u64) {
        self.counter(name).add(delta);
    }

    /// Sets the gauge `name` to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut gauges = self.gauges.borrow_mut();
        if let Some(cell) = gauges.get(name) {
            cell.set(value);
            return;
        }
        gauges.insert(name.to_owned(), Rc::new(Cell::new(value)));
    }

    /// Records `value` into the histogram `name` (default bounds on
    /// first use).
    pub fn record(&self, name: &str, value: u64) {
        let mut histograms = self.histograms.borrow_mut();
        let h = histograms
            .entry(name.to_owned())
            .or_insert_with(|| Rc::new(RefCell::new(Histogram::default())));
        h.borrow_mut().record(value);
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.borrow().iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: self.gauges.borrow().iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: self
                .histograms
                .borrow()
                .iter()
                .map(|(k, v)| (k.clone(), v.borrow().clone()))
                .collect(),
        }
    }

    /// Adds every metric of `snap` into this registry (counters and
    /// histograms accumulate, gauges take the incoming value).
    pub fn absorb(&self, snap: &MetricsSnapshot) {
        for (k, v) in &snap.counters {
            self.add(k, *v);
        }
        for (k, v) in &snap.gauges {
            self.set_gauge(k, *v);
        }
        for (k, h) in &snap.histograms {
            let mut histograms = self.histograms.borrow_mut();
            let dst = histograms
                .entry(k.clone())
                .or_insert_with(|| Rc::new(RefCell::new(Histogram::with_bounds(h.bounds.clone()))));
            dst.borrow_mut().merge(h);
        }
    }
}

/// A cheap handle to one registry counter.
#[derive(Debug, Clone)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.set(self.0.get() + 1);
    }

    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.set(self.0.get() + delta);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A fixed-bucket histogram of `u64` samples.
///
/// `bounds` are inclusive upper bucket bounds; one extra overflow
/// bucket catches everything larger, so `counts.len() ==
/// bounds.len() + 1`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Histogram {
    /// Inclusive upper bounds of each bucket.
    pub bounds: Vec<u64>,
    /// Sample counts per bucket (last = overflow).
    pub counts: Vec<u64>,
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl Default for Histogram {
    /// Power-of-four bounds covering 1 .. 65536.
    fn default() -> Self {
        Histogram::with_bounds(vec![1, 4, 16, 64, 256, 1024, 4096, 16384, 65536])
    }
}

impl Histogram {
    /// An empty histogram with the given inclusive upper bounds
    /// (must be sorted ascending).
    pub fn with_bounds(bounds: Vec<u64>) -> Self {
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        let counts = vec![0; bounds.len() + 1];
        Histogram { bounds, counts, count: 0, sum: 0, min: 0, max: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = self.bounds.iter().position(|&b| value <= b).unwrap_or(self.bounds.len());
        self.counts[bucket] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Whether no samples have been recorded yet.
    ///
    /// `percentile` returns 0 on an empty histogram, which is
    /// indistinguishable from a genuine all-zero sample set — callers
    /// that must tell the two apart use this or [`Histogram::try_percentile`].
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `q`-th percentile (`q` in `[0, 100]`) estimated by linear
    /// interpolation inside the bucket holding the target rank.
    ///
    /// Edge cases are pinned down (and property-tested in
    /// `tests/histogram_properties.rs`):
    ///
    /// - **empty histogram** — returns 0 (see [`Histogram::try_percentile`]
    ///   for the `Option` form);
    /// - **rank 1 / rank `count`** (`q` at or clamped to the extremes)
    ///   — returns exactly `min` / `max`, never an interpolated value;
    /// - **overflow bucket** (samples above the last bound) — the
    ///   bucket interpolates over `[last_bound + 1, max]`, so a p999
    ///   landing among overflow samples stays within the observed
    ///   range instead of saturating at the last configured bound;
    /// - **`q` outside `[0, 100]`** is clamped; a NaN `q` is treated
    ///   as 0 (returns `min`).
    ///
    /// The interpolation range of an interior bucket is
    /// `[prev_bound + 1, bound]`; the result is clamped to
    /// `[min, max]` so single-sample and single-bucket histograms
    /// report exact values.
    pub fn percentile(&self, q: f64) -> u64 {
        self.try_percentile(q).unwrap_or(0)
    }

    /// [`Histogram::percentile`], but `None` when the histogram is
    /// empty instead of an ambiguous 0.
    pub fn try_percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 100.0) };
        // Rank of the target sample, 1-based: ceil(q% of count), at least 1.
        let rank = ((q / 100.0 * self.count as f64).ceil() as u64).max(1);
        if rank <= 1 {
            return Some(self.min);
        }
        if rank >= self.count {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = if i == 0 { 0 } else { self.bounds[i - 1] + 1 };
                let hi = if i < self.bounds.len() { self.bounds[i] } else { self.max };
                let (lo, hi) = (lo.max(self.min).min(hi), hi.min(self.max));
                // Midpoint position of the target rank inside this
                // bucket, in (0, 1) — rank r of n sits at (r - ½)/n.
                let frac = ((rank - seen) as f64 - 0.5) / n as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                return Some((est.round() as u64).clamp(self.min, self.max));
            }
            seen += n;
        }
        Some(self.max)
    }

    /// Adds every sample of `other` (bucket-wise; bounds must match).
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds mismatch");
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        if other.count > 0 {
            if self.count == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Clears every sample, keeping the bucket bounds. Afterwards the
    /// histogram is indistinguishable from a fresh
    /// [`Histogram::with_bounds`] with the same bounds.
    pub fn reset(&mut self) {
        for c in &mut self.counts {
            *c = 0;
        }
        self.count = 0;
        self.sum = 0;
        self.min = 0;
        self.max = 0;
    }

    /// Takes the current window: returns a clone of the accumulated
    /// samples and resets `self` in one step, so interval reporters
    /// (telemetry windows, periodic flushes) never lose samples
    /// between the read and the clear.
    pub fn take_window(&mut self) -> Histogram {
        let window = self.clone();
        self.reset();
        window
    }
}

/// A frozen copy of a registry: plain sorted maps, ready for serde.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    /// Monotone event counts (deterministic).
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins values; the only metric kind allowed to carry
    /// wall-clock readings (under a `wall.` name prefix).
    pub gauges: BTreeMap<String, f64>,
    /// Sample distributions (deterministic).
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// The counter `name`, or 0 if never bumped.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// All counters whose name starts with `prefix` (e.g.
    /// `"engine.mvcc."`), in name order — for asserting over a metric
    /// family without enumerating its members.
    pub fn family(&self, prefix: &str) -> Vec<(&str, u64)> {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
            .collect()
    }

    /// Drops every wall-clock metric (names starting with `wall.`).
    pub fn strip_wall(&mut self) {
        self.counters.retain(|k, _| !k.starts_with("wall."));
        self.gauges.retain(|k, _| !k.starts_with("wall."));
        self.histograms.retain(|k, _| !k.starts_with("wall."));
    }

    /// The per-metric change from `self` (the baseline) to `current`.
    ///
    /// Keys are the union of both snapshots: a metric absent on one
    /// side contributes 0 (counters, histogram counts) or `None`
    /// (gauges). Used by `repro --check-bench` and for before/after
    /// comparisons in EXPERIMENTS.md.
    pub fn diff(&self, current: &MetricsSnapshot) -> MetricsDelta {
        let mut delta = MetricsDelta::default();
        for key in self.counters.keys().chain(current.counters.keys()) {
            if delta.counters.contains_key(key) {
                continue;
            }
            let base = self.counter(key);
            let cur = current.counter(key);
            delta.counters.insert(
                key.clone(),
                CounterDelta { base, current: cur, delta: cur as i64 - base as i64 },
            );
        }
        for key in self.gauges.keys().chain(current.gauges.keys()) {
            if delta.gauges.contains_key(key) {
                continue;
            }
            let base = self.gauge(key);
            let cur = current.gauge(key);
            let d = match (base, cur) {
                (Some(b), Some(c)) => c - b,
                (None, Some(c)) => c,
                (Some(b), None) => -b,
                (None, None) => 0.0,
            };
            delta.gauges.insert(key.clone(), GaugeDelta { base, current: cur, delta: d });
        }
        for key in self.histograms.keys().chain(current.histograms.keys()) {
            if delta.histogram_counts.contains_key(key) {
                continue;
            }
            let base = self.histograms.get(key).map_or(0, |h| h.count);
            let cur = current.histograms.get(key).map_or(0, |h| h.count);
            delta.histogram_counts.insert(
                key.clone(),
                CounterDelta { base, current: cur, delta: cur as i64 - base as i64 },
            );
        }
        delta
    }
}

/// Change of one counter-like metric between two snapshots.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CounterDelta {
    /// Baseline value (0 when absent).
    pub base: u64,
    /// Current value (0 when absent).
    pub current: u64,
    /// `current - base`.
    pub delta: i64,
}

/// Change of one gauge between two snapshots.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GaugeDelta {
    /// Baseline value, if the gauge existed there.
    pub base: Option<f64>,
    /// Current value, if the gauge exists now.
    pub current: Option<f64>,
    /// `current - base`, treating an absent side as 0.
    pub delta: f64,
}

/// Per-metric deltas between two [`MetricsSnapshot`]s, as produced by
/// [`MetricsSnapshot::diff`]. Keys are the union of both snapshots.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MetricsDelta {
    /// Counter changes.
    pub counters: BTreeMap<String, CounterDelta>,
    /// Gauge changes.
    pub gauges: BTreeMap<String, GaugeDelta>,
    /// Histogram sample-count changes (full distributions are compared
    /// by count only; shapes live in the snapshots themselves).
    pub histogram_counts: BTreeMap<String, CounterDelta>,
}

impl MetricsDelta {
    /// True when nothing changed (every delta is zero).
    pub fn is_zero(&self) -> bool {
        self.counters.values().all(|d| d.delta == 0)
            && self.gauges.values().all(|d| d.delta == 0.0)
            && self.histogram_counts.values().all(|d| d.delta == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_selects_by_prefix() {
        let reg = MetricsRegistry::new();
        reg.add("engine.mvcc.snapshot_reads", 3);
        reg.add("engine.mvcc.cert_aborts", 1);
        reg.add("engine.locks.deadlocks", 2);
        let snap = reg.snapshot();
        let fam = snap.family("engine.mvcc.");
        assert_eq!(fam, vec![("engine.mvcc.cert_aborts", 1), ("engine.mvcc.snapshot_reads", 3)]);
        assert!(snap.family("nope.").is_empty());
    }

    #[test]
    fn counters_accumulate_through_handles() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("x");
        c.inc();
        c.add(4);
        reg.add("x", 5);
        assert_eq!(reg.snapshot().counter("x"), 10);
        assert_eq!(reg.snapshot().counter("absent"), 0);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::with_bounds(vec![10, 100]);
        for v in [5, 7, 50, 500] {
            h.record(v);
        }
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 562);
        assert_eq!(h.min, 5);
        assert_eq!(h.max, 500);
    }

    #[test]
    fn percentile_interpolates_within_buckets() {
        let mut h = Histogram::with_bounds(vec![10, 100, 1000]);
        // 100 samples uniform over 1..=100: 10 in [1,10], 90 in [11,100].
        for v in 1..=100u64 {
            h.record(v);
        }
        // p50 lands at rank 50: 40th sample of the [11,100] bucket.
        let p50 = h.percentile(50.0);
        assert!((45..=55).contains(&p50), "p50 = {p50}");
        let p95 = h.percentile(95.0);
        assert!((90..=100).contains(&p95), "p95 = {p95}");
        assert_eq!(h.percentile(100.0), 100);
        assert_eq!(h.percentile(0.0), 1);
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(Histogram::default().percentile(50.0), 0);
        let mut single = Histogram::with_bounds(vec![10, 100]);
        single.record(42);
        for q in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(single.percentile(q), 42);
        }
        // Overflow-bucket samples interpolate up to the recorded max.
        let mut over = Histogram::with_bounds(vec![10]);
        over.record(5000);
        over.record(9000);
        assert_eq!(over.percentile(100.0), 9000);
        assert!(over.percentile(50.0) <= 9000);
        assert!(over.percentile(50.0) >= 5000);
    }

    #[test]
    fn reset_restores_the_freshly_constructed_state() {
        let mut h = Histogram::with_bounds(vec![10, 100, 1000]);
        for v in [1u64, 50, 5000] {
            h.record(v);
        }
        h.reset();
        assert_eq!(h, Histogram::with_bounds(vec![10, 100, 1000]));
        assert!(h.is_empty());
        assert_eq!(h.percentile(99.0), 0);
        // Recording after a reset behaves exactly like a fresh start:
        // min/max re-seed from the first new sample.
        h.record(7);
        assert_eq!((h.min, h.max, h.count, h.sum), (7, 7, 1, 7));
    }

    #[test]
    fn take_window_hands_over_samples_and_clears() {
        let mut h = Histogram::with_bounds(vec![10, 100]);
        for v in [5u64, 50, 500] {
            h.record(v);
        }
        let w1 = h.take_window();
        assert_eq!((w1.count, w1.sum, w1.min, w1.max), (3, 555, 5, 500));
        assert!(h.is_empty());
        // Second window only sees samples recorded after the first take.
        h.record(42);
        let w2 = h.take_window();
        assert_eq!((w2.count, w2.min, w2.max), (1, 42, 42));
        // Merging the windows reconstructs the full-run histogram
        // exactly: windowing loses nothing.
        let mut merged = Histogram::with_bounds(vec![10, 100]);
        merged.merge(&w1);
        merged.merge(&w2);
        let mut full = Histogram::with_bounds(vec![10, 100]);
        for v in [5u64, 50, 500, 42] {
            full.record(v);
        }
        assert_eq!(merged, full);
    }

    #[test]
    fn windowed_percentiles_match_an_unwindowed_recorder() {
        // Percentile stability: a histogram rebuilt by merging K
        // windows reports the same percentiles as one that never
        // reset, for every probed q.
        let mut windows = Vec::new();
        let mut acc = Histogram::default();
        let mut whole = Histogram::default();
        for (i, v) in (0..200u64).map(|i| (i, (i * 37) % 1_500)).collect::<Vec<_>>() {
            acc.record(v);
            whole.record(v);
            if i % 50 == 49 {
                windows.push(acc.take_window());
            }
        }
        let mut merged = Histogram::default();
        for w in &windows {
            merged.merge(w);
        }
        assert_eq!(merged, whole);
        for q in [0.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            assert_eq!(merged.percentile(q), whole.percentile(q), "q = {q}");
        }
    }

    #[test]
    fn percentile_is_monotone_in_q() {
        let mut h = Histogram::default();
        for v in [1u64, 3, 9, 20, 80, 300, 1200, 5000, 20000, 70000] {
            h.record(v);
        }
        let mut last = 0;
        for q in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0] {
            let p = h.percentile(q);
            assert!(p >= last, "percentile({q}) = {p} < {last}");
            last = p;
        }
        assert_eq!(last, 70000);
    }

    #[test]
    fn absorb_merges_each_kind() {
        let a = MetricsRegistry::new();
        a.add("c", 2);
        a.set_gauge("g", 1.0);
        a.record("h", 3);
        let b = MetricsRegistry::new();
        b.add("c", 3);
        b.set_gauge("g", 9.0);
        b.record("h", 70000);
        b.absorb(&a.snapshot());
        let snap = b.snapshot();
        assert_eq!(snap.counter("c"), 5);
        assert_eq!(snap.gauge("g"), Some(1.0));
        assert_eq!(snap.histograms["h"].count, 2);
        assert_eq!(snap.histograms["h"].max, 70000);
    }

    #[test]
    fn diff_covers_union_of_keys() {
        let a = MetricsRegistry::new();
        a.add("shared", 10);
        a.add("only.base", 3);
        a.set_gauge("g.shared", 2.0);
        a.set_gauge("g.base", 1.5);
        a.record("h", 5);
        let b = MetricsRegistry::new();
        b.add("shared", 14);
        b.add("only.cur", 2);
        b.set_gauge("g.shared", 5.0);
        b.set_gauge("g.cur", 7.0);
        b.record("h", 5);
        b.record("h", 6);
        let delta = a.snapshot().diff(&b.snapshot());
        assert_eq!(delta.counters["shared"], CounterDelta { base: 10, current: 14, delta: 4 });
        assert_eq!(delta.counters["only.base"], CounterDelta { base: 3, current: 0, delta: -3 });
        assert_eq!(delta.counters["only.cur"], CounterDelta { base: 0, current: 2, delta: 2 });
        assert_eq!(delta.gauges["g.shared"].delta, 3.0);
        assert_eq!(
            delta.gauges["g.base"],
            GaugeDelta { base: Some(1.5), current: None, delta: -1.5 }
        );
        assert_eq!(delta.gauges["g.cur"].delta, 7.0);
        assert_eq!(delta.histogram_counts["h"], CounterDelta { base: 1, current: 2, delta: 1 });
        assert!(!delta.is_zero());
    }

    #[test]
    fn diff_of_identical_snapshots_is_zero_and_serializes() {
        let reg = MetricsRegistry::new();
        reg.add("c", 2);
        reg.set_gauge("g", 1.0);
        reg.record("h", 9);
        let snap = reg.snapshot();
        let delta = snap.diff(&snap);
        assert!(delta.is_zero());
        let text = serde_json::to_string(&delta).unwrap();
        let back: MetricsDelta = serde_json::from_str(&text).unwrap();
        assert_eq!(back, delta);
    }

    #[test]
    fn strip_wall_drops_only_wall_metrics() {
        let reg = MetricsRegistry::new();
        reg.add("prover.generated", 7);
        reg.add("wall.ticks", 3);
        reg.set_gauge("wall.prover_ns", 1e9);
        let mut snap = reg.snapshot();
        snap.strip_wall();
        assert_eq!(snap.counter("prover.generated"), 7);
        assert!(!snap.counters.contains_key("wall.ticks"));
        assert!(snap.gauges.is_empty());
    }
}
