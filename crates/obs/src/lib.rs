//! Unified observability for the mcv workspace.
//!
//! Three pieces, composed end to end:
//!
//! 1. **Metrics** ([`MetricsRegistry`], [`MetricsSnapshot`]): named
//!    counters, gauges, and fixed-bucket histograms. Counter handles
//!    are `Cell`-backed so the prover's inner given-clause loop can
//!    bump them without a map lookup.
//! 2. **Spans** ([`Span`]): RAII guards recording how often a code
//!    path ran (deterministic) and how long it took (wall-clock),
//!    aggregated per nesting path.
//! 3. **Reports** ([`RunReport`]): a serde JSON/JSONL schema bundling
//!    metrics + spans + free-form facts per run — the seed of the
//!    repo's bench trajectory.
//!
//! # Determinism contract
//!
//! Counters, gauges, histograms, span `calls`, and facts must be pure
//! functions of the workload (they are asserted byte-for-byte in
//! tests). Wall-clock time lives **only** in span `wall_ns` fields and
//! the report's `wall` section; [`RunReport::strip_wall`] zeroes
//! exactly those, after which two same-seed runs serialize
//! identically.
//!
//! # Instrumented code
//!
//! Library code records through the thread-local collector installed
//! by [`collect`]: [`counter`], [`gauge`], [`record`], and
//! [`Span::enter`] are no-ops when no collector is installed, so
//! instrumentation costs almost nothing outside a measured run.
//!
//! ```
//! use mcv_obs::{collect, counter, Span};
//!
//! let (value, data) = collect(|| {
//!     let _span = Span::enter("work");
//!     counter("work.items", 3);
//!     42
//! });
//! assert_eq!(value, 42);
//! let report = data.into_report("demo");
//! assert_eq!(report.metrics.counters["work.items"], 3);
//! assert_eq!(report.spans[0].calls, 1);
//! ```

#![warn(missing_docs)]

mod global;
mod metrics;
mod report;
mod span;

pub use global::{absorb, collect, counter, gauge, record, Collected};
pub use metrics::{
    Counter, CounterDelta, GaugeDelta, Histogram, MetricsDelta, MetricsRegistry, MetricsSnapshot,
};
pub use report::{append_jsonl, write_report, RunReport, WallClock};
pub use span::{Span, SpanStats};
