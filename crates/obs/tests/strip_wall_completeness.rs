//! `strip_wall` completeness: walk the full serialized [`RunReport`]
//! tree and verify that after stripping, no wall-clock-derived value
//! survives anywhere — not just in the fields the unit tests happen to
//! name.
//!
//! The determinism contract (DESIGN.md) says wall-clock readings may
//! live only in (a) the report's `wall` section, (b) span `wall_ns`
//! fields, and (c) metrics under a `wall.` name prefix. `facts` are
//! deterministic by contract (seeds, verdicts, config echoes), so the
//! walker skips that subtree. Everything else it checks structurally:
//! if a future field smuggles timing in under one of the wall markers
//! and `strip_wall` misses it, this test fails without being updated.

use mcv_obs::{MetricsRegistry, RunReport, SpanStats};
use serde::{Serialize, Value};

/// Collects paths of wall-marked values that still carry data.
fn wall_violations(value: &Value, path: &str, out: &mut Vec<String>) {
    match value {
        Value::Map(entries) => {
            for (key, child) in entries {
                let child_path = format!("{path}/{key}");
                // Free-form facts are deterministic by contract.
                if path.is_empty() && key == "facts" {
                    continue;
                }
                let wall_marked = key == "wall" || key == "wall_ns" || key.starts_with("wall.");
                if wall_marked {
                    // A `wall.`-prefixed metric must be gone entirely;
                    // `wall` / `wall_ns` must be all-zero.
                    if key.starts_with("wall.") {
                        out.push(format!("{child_path} (wall.* metric still present)"));
                    } else if !all_zero(child) {
                        out.push(format!("{child_path} (non-zero wall value)"));
                    }
                }
                wall_violations(child, &child_path, out);
            }
        }
        Value::Seq(items) => {
            for (i, item) in items.iter().enumerate() {
                wall_violations(item, &format!("{path}[{i}]"), out);
            }
        }
        _ => {}
    }
}

/// True when every numeric leaf under `value` is zero.
fn all_zero(value: &Value) -> bool {
    match value {
        Value::U64(n) => *n == 0,
        Value::I64(n) => *n == 0,
        Value::F64(n) => *n == 0.0,
        Value::Map(entries) => entries.iter().all(|(_, v)| all_zero(v)),
        Value::Seq(items) => items.iter().all(all_zero),
        Value::Null | Value::Bool(_) | Value::Str(_) => true,
    }
}

/// A report with every field family populated, wall-clock data in all
/// three sanctioned places, and the prof-era metric names (`prof.*`
/// attribution counters, `wall.prof.*` measured gauges, windowed
/// latency histograms) exercised alongside the originals.
fn fully_populated() -> RunReport {
    let reg = MetricsRegistry::new();
    reg.add("engine.commits", 17);
    reg.add("prof.samples", 9);
    reg.add("prof.verdict.overhead_ok", 1);
    reg.add("wall.spurious.counter", 3);
    reg.set_gauge("load.offered_tps", 2_000.0);
    reg.set_gauge("wall.load.p99_us", 870.0);
    reg.set_gauge("wall.prof.frac_mean.transport_rtt", 0.61);
    reg.record("engine.ops_per_txn", 8);
    reg.record("wall.load.latency_us", 450);
    let mut r = RunReport::new("full").fact("seed", 42).fact("prof.top_phase", "transport_rtt");
    r.metrics = reg.snapshot();
    r.spans.push(SpanStats { name: "commit".into(), calls: 17, wall_ns: 123_456 });
    r.spans.push(SpanStats { name: "commit/force".into(), calls: 17, wall_ns: 88_000 });
    r.wall.elapsed_ns = 9_876_543;
    r
}

#[test]
fn walker_flags_the_unstripped_report() {
    // Sanity: the walker must have teeth — before stripping, every
    // wall-bearing site shows up as a violation.
    let report = fully_populated();
    let mut found = Vec::new();
    wall_violations(&Serialize::serialize(&report), "", &mut found);
    assert!(
        found.iter().any(|p| p.contains("/wall ") || p.ends_with("/wall (non-zero wall value)")),
        "wall section not flagged: {found:?}"
    );
    assert!(found.iter().any(|p| p.contains("wall_ns")), "span wall_ns not flagged: {found:?}");
    assert!(
        found.iter().any(|p| p.contains("wall.load.p99_us")),
        "wall.* gauge not flagged: {found:?}"
    );
    assert!(
        found.iter().any(|p| p.contains("wall.load.latency_us")),
        "wall.* histogram not flagged: {found:?}"
    );
    assert!(
        found.iter().any(|p| p.contains("wall.spurious.counter")),
        "wall.* counter not flagged: {found:?}"
    );
}

#[test]
fn strip_wall_leaves_no_wall_marked_value_anywhere() {
    let mut report = fully_populated();
    report.strip_wall();
    let mut found = Vec::new();
    wall_violations(&Serialize::serialize(&report), "", &mut found);
    assert!(found.is_empty(), "unstripped wall-clock data survived strip_wall: {found:?}");
    // And stripping is idempotent.
    let once = report.to_json();
    report.strip_wall();
    assert_eq!(report.to_json(), once);
}

#[test]
fn strip_wall_preserves_all_deterministic_data() {
    let mut report = fully_populated();
    report.strip_wall();
    assert_eq!(report.metrics.counter("engine.commits"), 17);
    assert_eq!(report.metrics.counter("prof.samples"), 9);
    assert_eq!(report.metrics.counter("prof.verdict.overhead_ok"), 1);
    assert_eq!(report.metrics.gauge("load.offered_tps"), Some(2_000.0));
    assert_eq!(report.metrics.histograms["engine.ops_per_txn"].count, 1);
    assert_eq!(report.facts["prof.top_phase"], "transport_rtt");
    assert_eq!(report.spans.len(), 2);
    assert_eq!(report.spans[0].calls, 17);
}
