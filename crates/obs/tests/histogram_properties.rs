//! Property tests pinning down `Histogram::percentile` edge cases —
//! the estimator behind every p50/p99/p999 the load harness reports,
//! so overload latency numbers must be trustworthy at the extremes:
//! empty histograms, single samples, and samples landing above the
//! last configured bound (the overflow bucket).

use mcv_obs::Histogram;
use proptest::prelude::*;

/// Latency-shaped bounds: the same decade spacing `latency_histogram`
/// uses, scaled down so overflow is easy to hit.
fn bounds() -> Vec<u64> {
    vec![10, 20, 50, 100, 200, 500, 1000]
}

fn filled(samples: &[u64]) -> Histogram {
    let mut h = Histogram::with_bounds(bounds());
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every percentile of a non-empty histogram lies within
    /// [min, max] — even when every sample is in the overflow bucket.
    #[test]
    fn percentile_stays_within_observed_range(
        samples in prop::collection::vec(0u64..10_000, 1..200),
        q_pm in 0u64..=1000,
    ) {
        let h = filled(&samples);
        let q = q_pm as f64 / 10.0;
        let p = h.percentile(q);
        prop_assert!(p >= h.min && p <= h.max, "p{q} = {p} outside [{}, {}]", h.min, h.max);
    }

    /// Percentiles are monotone in q.
    #[test]
    fn percentile_is_monotone(
        samples in prop::collection::vec(0u64..10_000, 1..200),
        qs_pm in prop::collection::vec(0u64..=1000, 2..8),
    ) {
        let h = filled(&samples);
        let mut qs = qs_pm;
        qs.sort();
        let mut last = 0;
        for q_pm in qs {
            let q = q_pm as f64 / 10.0;
            let p = h.percentile(q);
            prop_assert!(p >= last, "percentile({q}) = {p} < previous {last}");
            last = p;
        }
    }

    /// The extremes are exact: p0 is the smallest sample, p100 the
    /// largest — never an interpolated bucket estimate.
    #[test]
    fn extreme_percentiles_are_exact(
        samples in prop::collection::vec(0u64..10_000, 1..200),
    ) {
        let h = filled(&samples);
        let lo = *samples.iter().min().expect("non-empty");
        let hi = *samples.iter().max().expect("non-empty");
        prop_assert_eq!(h.percentile(0.0), lo);
        prop_assert_eq!(h.percentile(100.0), hi);
        // Out-of-range and NaN q clamp to the same extremes.
        prop_assert_eq!(h.percentile(-3.0), lo);
        prop_assert_eq!(h.percentile(250.0), hi);
        prop_assert_eq!(h.percentile(f64::NAN), lo);
    }

    /// p999 with overload-shaped tails: when at least 1 in 100 samples
    /// lands above the last bound, the p999 estimate must come from
    /// the overflow bucket's range, not saturate at the last bound.
    #[test]
    fn p999_tracks_the_overflow_tail(
        body in prop::collection::vec(0u64..=1000, 50..150),
        tail in prop::collection::vec(1001u64..50_000, 2..20),
    ) {
        let mut samples = body.clone();
        samples.extend(&tail);
        let h = filled(&samples);
        let tail_frac = tail.len() as f64 / samples.len() as f64;
        // Pick a q deep enough that its rank is inside the tail.
        let q = 100.0 * (1.0 - tail_frac / 2.0);
        let p = h.percentile(q);
        let tail_min = *tail.iter().min().expect("non-empty tail");
        prop_assert!(
            p > 1000 && p >= tail_min.min(1001),
            "p{q:.2} = {p} did not reach the overflow bucket (tail min {tail_min})"
        );
        prop_assert!(p <= h.max);
    }

    /// The estimator never loses samples: percentile(q) for q past the
    /// last rank equals max regardless of bucket layout, and merging
    /// two histograms preserves the [min, max] envelope.
    #[test]
    fn merge_preserves_percentile_envelope(
        a in prop::collection::vec(0u64..10_000, 1..100),
        b in prop::collection::vec(0u64..10_000, 1..100),
    ) {
        let (ha, hb) = (filled(&a), filled(&b));
        let mut merged = ha.clone();
        merged.merge(&hb);
        prop_assert_eq!(merged.count, ha.count + hb.count);
        prop_assert_eq!(merged.percentile(0.0), ha.min.min(hb.min));
        prop_assert_eq!(merged.percentile(100.0), ha.max.max(hb.max));
    }
}

#[test]
fn empty_histogram_behavior_is_defined() {
    let h = Histogram::with_bounds(bounds());
    assert!(h.is_empty());
    // The lossy form reports 0; the Option form distinguishes "no
    // samples" from "all samples were zero".
    for q in [0.0, 50.0, 99.9, 100.0, f64::NAN] {
        assert_eq!(h.percentile(q), 0);
        assert_eq!(h.try_percentile(q), None);
    }
    let mut zeros = Histogram::with_bounds(bounds());
    zeros.record(0);
    assert!(!zeros.is_empty());
    assert_eq!(zeros.try_percentile(99.9), Some(0));
}

#[test]
fn all_overflow_histogram_interpolates_to_observed_max() {
    // Every sample above the last bound (1000): the overflow bucket
    // must interpolate over [observed min, observed max], not report
    // the configured bound or 0.
    let h = filled(&[5_000, 7_000, 9_000, 20_000]);
    assert_eq!(h.percentile(0.0), 5_000);
    assert_eq!(h.percentile(100.0), 20_000);
    let p50 = h.percentile(50.0);
    assert!((5_000..=20_000).contains(&p50), "p50 = {p50}");
}
