//! One function per paper artifact (table/figure/proof) plus the added
//! quantitative experiments. Each returns a printable report; the
//! `repro` binary dispatches on artifact ids.

use mcv_blocks::{modules, pipeline, properties, registry, traceability, SpecLibrary};
use mcv_commit::fsm::{check, figure_3_2_table, ModelConfig};
use mcv_commit::{build_world, run_scenario, CrashPoint, Protocol, Scenario};
use mcv_core::finset::{fin_pushout, fin_set, mediating, FinMap};
use mcv_core::{pushout, SpecBuilder, SpecMorphism};
use mcv_logic::Sort;
use mcv_txn::{History, LockManager, LockMode, OpKind, SiteDb, TxnId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Figure 2.1: a pushout with the universal property's mediating
/// morphism, demonstrated in FinSet.
pub fn fig2_1() -> String {
    let a = fin_set(["shared"]);
    let b = fin_set(["shared", "left"]);
    let c = fin_set(["shared", "right"]);
    let f = FinMap::new(a.clone(), b.clone(), [("shared", "shared")]).expect("total");
    let g = FinMap::new(a.clone(), c.clone(), [("shared", "shared")]).expect("total");
    let po = fin_pushout(&f, &g).expect("same source");
    let mut out = String::from("Figure 2.1 — pushout of f : A -> B and g : A -> C (in FinSet)\n");
    out.push_str(&format!("  A = {a:?}\n  B = {b:?}\n  C = {c:?}\n"));
    out.push_str(&format!("  D = B ⊔_A C = {:?}\n", po.object));
    out.push_str(&format!("  p : B -> D = {}\n  q : C -> D = {}\n", po.p, po.q));
    let commutes = f.then(&po.p).expect("composable") == g.then(&po.q).expect("composable");
    out.push_str(&format!("  square p∘f = q∘g commutes: {commutes}\n"));
    // Universal condition: a competing cocone D' and its unique u.
    let dprime = fin_set(["x", "y"]);
    let p2 = FinMap::new(b, dprime.clone(), [("shared", "x"), ("left", "y")]).expect("total");
    let q2 = FinMap::new(c, dprime, [("shared", "x"), ("right", "y")]).expect("total");
    let u = mediating(&po, &f, &g, &p2, &q2).expect("commuting cocone");
    out.push_str(&format!(
        "  universal condition: for D' with p', q' there is a unique u : D -> D' = {u}\n"
    ));
    let triangles =
        po.p.then(&u).expect("composable") == p2 && po.q.then(&u).expect("composable") == q2;
    out.push_str(&format!("  u∘p = p' and u∘q = q': {triangles}\n"));
    out
}

/// Figure 2.2: the colimit of a multi-node diagram of specifications,
/// with the cone identities `I_j ∘ a_x = I_i` checked.
pub fn fig2_2() -> String {
    let lib = SpecLibrary::load();
    let step = pipeline::controller(&lib);
    let mut out = String::from("Figure 2.2 — colimit of a diagram of specifications\n");
    out.push_str(&format!("{}\n", step.colimit.diagram.render()));
    out.push_str(&format!(
        "colimit L = {} ({} sorts, {} ops, {} axioms)\n",
        step.colimit.apex.name,
        step.colimit.apex.signature.sort_count(),
        step.colimit.apex.signature.op_count(),
        step.colimit.apex.axioms().count()
    ));
    out.push_str(&format!(
        "cone morphisms I_i satisfy I_j ∘ a_x = I_i for every arc: {}\n",
        step.colimit.verify_commutes()
    ));
    out
}

/// Figure 2.3: a module's four components and commuting interface
/// square.
pub fn fig2_3() -> String {
    let lib = SpecLibrary::load();
    let factory = modules::ModuleFactory::new(lib);
    let m = factory.broadcast();
    let mut out = String::from("Figure 2.3 — module interfaces (the broadcast block)\n");
    out.push_str(&format!("  PAR (R) = {}\n", m.par.name));
    out.push_str(&format!(
        "  EXP (A) = {} ({} ops: the guaranteed properties)\n",
        m.exp.name,
        m.exp.signature.op_count()
    ));
    out.push_str(&format!(
        "  IMP (B) = {} ({} ops: the assumed primitives)\n",
        m.imp.name,
        m.imp.signature.op_count()
    ));
    out.push_str(&format!("  BOD (P) = {} ({} axioms)\n", m.bod.name, m.bod.axioms().count()));
    out.push_str(&format!("  interface square h∘f = k∘g commutes: {}\n", m.commutes()));
    out
}

/// Figure 2.4: composition of two modules with its certificate.
pub fn fig2_4() -> String {
    let lib = SpecLibrary::load();
    let factory = modules::ModuleFactory::new(lib);
    let step = factory.controller();
    let mut out = String::from("Figure 2.4 — composition of two modules (consensus ∘ broadcast)\n");
    out.push_str(&format!("  composed module: {}\n", step.module.summary()));
    out.push_str(&format!(
        "  parameter compatibility s∘g1 = f2∘t: {}\n",
        step.certificate.compatibility_holds
    ));
    out.push_str(&format!(
        "  body pushout P12 = pushout(P1, P2 over B1) commutes: {}\n",
        step.certificate.body_pushout_commutes
    ));
    out.push_str(&format!(
        "  composed square commutes (correct-by-construction): {}\n",
        step.certificate.composed_commutes
    ));
    out
}

/// Table 3.1: the building-block inventory.
pub fn tab3_1() -> String {
    let lib = SpecLibrary::load();
    registry::render_table(&lib)
}

/// Figure 3.1: a distributed transaction execution (master/cohort
/// startwork–workdone–commit), traced.
pub fn fig3_1() -> String {
    let sc = Scenario { n_cohorts: 2, ..Scenario::default() };
    let mut world = build_world(&sc);
    world.run_until(mcv_sim::SimTime::from_ticks(sc.deadline));
    let mut out = String::from(
        "Figure 3.1 — distributed transaction execution (master p0, cohorts p1, p2)\n",
    );
    for entry in world.trace().entries() {
        use mcv_sim::TraceEvent::*;
        match &entry.event {
            Deliver { from, to, .. } => {
                out.push_str(&format!("  {} message {from} -> {to}\n", entry.time))
            }
            Note { proc, text } => out.push_str(&format!("  {} {proc}: {text}\n", entry.time)),
            _ => {}
        }
    }
    out
}

/// Figure 3.2: the 3PC automaton — transition table plus exhaustive
/// safety checks of four configurations.
pub fn fig3_2() -> String {
    let mut out = String::from(
        "Figure 3.2 — 3PC with coordinator and cohort: transition table\n\
         (q=initial w=wait p=prepared a=abort c=commit; suffix 1=coordinator, 2=cohort)\n\n",
    );
    for (from, action, to) in figure_3_2_table() {
        out.push_str(&format!("  {from:<3} --[{action}]--> {to}\n"));
    }
    out.push_str("\nExhaustive reachability check of the automaton's safety property\n");
    out.push_str("(no reachable global state commits at one site and aborts at another):\n\n");
    for (desc, cfg) in [
        (
            "1 cohort,  naive timeouts,       synchronous",
            ModelConfig {
                cohorts: 1,
                naive_timeouts: true,
                synchronous: true,
                coordinator_recovery: true,
            },
        ),
        (
            "2 cohorts, naive timeouts,       synchronous",
            ModelConfig {
                cohorts: 2,
                naive_timeouts: true,
                synchronous: true,
                coordinator_recovery: true,
            },
        ),
        (
            "3 cohorts, naive timeouts,       synchronous",
            ModelConfig {
                cohorts: 3,
                naive_timeouts: true,
                synchronous: true,
                coordinator_recovery: true,
            },
        ),
        (
            "2 cohorts, termination protocol, synchronous",
            ModelConfig {
                cohorts: 2,
                naive_timeouts: false,
                synchronous: true,
                coordinator_recovery: true,
            },
        ),
        (
            "3 cohorts, termination protocol, synchronous",
            ModelConfig {
                cohorts: 3,
                naive_timeouts: false,
                synchronous: true,
                coordinator_recovery: true,
            },
        ),
        (
            "2 cohorts, termination protocol, ASYNCHRONOUS",
            ModelConfig {
                cohorts: 2,
                naive_timeouts: false,
                synchronous: false,
                coordinator_recovery: true,
            },
        ),
    ] {
        let r = check(&cfg);
        match r.violation {
            None => {
                out.push_str(&format!("  {desc}: SAFE ({} reachable states)\n", r.states_explored))
            }
            Some(v) => {
                out.push_str(&format!("  {desc}: UNSAFE — counterexample:\n"));
                for s in &v.path {
                    out.push_str(&format!("      {s}\n"));
                }
                out.push_str(&format!("      => {}\n", v.state));
            }
        }
    }
    out
}

/// Figure 3.3: the global view — which building block serves which part
/// of a running site.
pub fn fig3_3() -> String {
    let lib = SpecLibrary::load();
    let mut out = String::from(
        "Figure 3.3 — global view of modulated 3PC: block wiring of a running site\n\n",
    );
    for b in registry::blocks(&lib) {
        out.push_str(&format!("  [{:<4}] {:<28} -> {}\n", b.number, b.name, b.executable));
    }
    out.push_str("\nmessage flow: controller(broadcast+consensus) drives the commit FSM;\n");
    out.push_str("snapshot+decision-making watch the global state; voting+termination take\n");
    out.push_str("over on coordinator failure; undo/redo+2PL+checkpointing+recovery keep\n");
    out.push_str("each site's database consistent across crashes.\n");
    out
}

/// Figure 3.4: sequential division 1 as computed colimits.
pub fn fig3_4() -> String {
    let lib = SpecLibrary::load();
    format!(
        "Figure 3.4 — modular dependencies, sequential division 1\n{}",
        pipeline::render(&pipeline::sequential_division_1(&lib))
    )
}

/// Figure 3.5: sequential division 2 as computed colimits.
pub fn fig3_5() -> String {
    let lib = SpecLibrary::load();
    format!(
        "Figure 3.5 — modular dependencies, sequential division 2\n{}",
        pipeline::render(&pipeline::sequential_division_2(&lib))
    )
}

/// Figures 4.1–4.8: the serializability chain.
pub fn fig4_s() -> String {
    let lib = SpecLibrary::load();
    let mut out = String::from("Figures 4.1–4.8 — serializability of transactions\n\n");
    out.push_str(&traceability::render_dependencies(&lib, &properties::chapter5_commands()[0]));
    let factory = modules::ModuleFactory::new(lib);
    out.push('\n');
    out.push_str(&modules::render_chain(&factory.serializability_chain()));
    out
}

/// Figures 4.9–4.16: the consistent-state chain.
pub fn fig4_c() -> String {
    let lib = SpecLibrary::load();
    let mut out = String::from("Figures 4.9–4.16 — consistent state maintenance\n\n");
    out.push_str(&traceability::render_dependencies(&lib, &properties::chapter5_commands()[1]));
    let factory = modules::ModuleFactory::new(lib);
    out.push('\n');
    out.push_str(&modules::render_chain(&factory.consistent_state_chain()));
    out
}

/// Figures 4.17–4.28: the roll-back recovery chain.
pub fn fig4_r() -> String {
    let lib = SpecLibrary::load();
    let mut out = String::from("Figures 4.17–4.28 — roll-back recovery\n\n");
    out.push_str(&traceability::render_dependencies(&lib, &properties::chapter5_commands()[2]));
    let factory = modules::ModuleFactory::new(lib);
    out.push('\n');
    out.push_str(&modules::render_chain(&factory.rollback_chain()));
    out
}

/// Chapter 5: the three `prove` commands, replayed, plus the
/// consistency audit.
pub fn ch5() -> String {
    let lib = SpecLibrary::load();
    let mut out =
        String::from("Chapter 5 — compositional verification of the global properties\n\n");
    for o in properties::replay_all(&lib) {
        let status = if !o.proved() {
            "NOT PROVED".to_string()
        } else if o.vacuous {
            "proved VACUOUSLY (support set is contradictory)".to_string()
        } else {
            let p = o.result.proof().expect("proved");
            format!(
                "proved ({} steps, {} clauses generated, {:?})",
                p.length(),
                p.generated(),
                p.elapsed()
            )
        };
        out.push_str(&format!(
            "  {} = prove {} in {} using {}\n      -> {}\n",
            o.command.label,
            o.command.theorem,
            o.command.spec,
            o.command.using.join(" "),
            status
        ));
    }
    out.push_str("\nConsistency audit (not performed in the thesis):\n");
    for p in properties::consistency_audit(&lib) {
        out.push_str(&format!(
            "  {}: axioms {} and {} are jointly contradictory\n",
            p.spec, p.a, p.b
        ));
    }
    out
}

/// exp.nb — blocking vs non-blocking under coordinator failure, swept
/// over crash point and cohort count.
pub fn exp_nb() -> String {
    let mut out = String::from(
        "exp.nb — termination at operational sites under coordinator failure\n\
         (crash point x cohorts; 'blocked' = operational cohorts undecided until recovery;\n\
         latency = last operational cohort decision, ticks)\n\n\
         protocol  crash-point          cohorts  blocked  uniform  latency\n",
    );
    for protocol in [Protocol::TwoPhase, Protocol::ThreePhase] {
        for crash in [
            CrashPoint::AfterVoteReq,
            CrashPoint::AfterVotes,
            CrashPoint::AfterPrepare,
            CrashPoint::AfterPartialPrepare,
        ] {
            // 2PC has no prepare phase.
            if protocol == Protocol::TwoPhase
                && matches!(crash, CrashPoint::AfterPrepare | CrashPoint::AfterPartialPrepare)
            {
                continue;
            }
            for n in [2usize, 4, 8] {
                let r = run_scenario(&Scenario {
                    protocol,
                    n_cohorts: n,
                    coordinator_crash: Some(crash),
                    recovery_at: Some(5_000),
                    seed: 3,
                    ..Scenario::default()
                });
                let latency = r
                    .decision_times
                    .iter()
                    .filter(|(site, _)| site.0 != 0)
                    .map(|(_, t)| t.ticks())
                    .max()
                    .unwrap_or(0);
                out.push_str(&format!(
                    "  {:<8} {:<20} {:>7} {:>8} {:>8} {:>8}\n",
                    protocol.to_string(),
                    format!("{crash:?}"),
                    n,
                    r.blocked_before_recovery.len(),
                    r.uniform,
                    latency
                ));
            }
        }
    }
    out.push_str(
        "\nshape check: 2PC cohorts block (decide only after recovery at t=5000);\n\
         3PC cohorts always decide within a few timeouts — the non-blocking property.\n",
    );
    out
}

/// exp.msg — message cost of non-blocking: messages per transaction vs
/// cohort count.
pub fn exp_msg() -> String {
    let mut out = String::from(
        "exp.msg — messages per committed transaction (failure-free)\n\n\
         cohorts     2PC     3PC   ratio\n",
    );
    for n in [1usize, 2, 4, 8, 16] {
        let two = run_scenario(&Scenario {
            protocol: Protocol::TwoPhase,
            n_cohorts: n,
            ..Scenario::default()
        });
        let three = run_scenario(&Scenario { n_cohorts: n, ..Scenario::default() });
        out.push_str(&format!(
            "  {:>5} {:>7} {:>7} {:>7.2}\n",
            n,
            two.messages,
            three.messages,
            three.messages as f64 / two.messages.max(1) as f64
        ));
    }
    out.push_str(
        "\nshape check: both grow linearly in cohorts; 3PC pays one extra round\n\
         (prepare+ack = 2 extra messages per cohort on top of 2PC's 5: startwork,\n\
         workdone, commit-request, vote, decision), so the ratio is 7/5 = 1.4.\n",
    );
    out
}

/// exp.ser — serializability with and without 2PL on random workloads.
pub fn exp_ser() -> String {
    let mut out = String::from(
        "exp.ser — conflict-serializable histories out of 200 random workloads\n\n\
         txns  ops  with-2PL  without-2PL\n",
    );
    for (txns, ops) in [(3u64, 12usize), (4, 20), (6, 30)] {
        let mut ok_locked = 0;
        let mut ok_free = 0;
        const RUNS: usize = 200;
        for seed in 0..RUNS as u64 {
            let mut rng = StdRng::seed_from_u64(seed * 7 + txns);
            // Free-for-all interleaving (no locks).
            let mut free = History::new();
            // Locked execution through the lock manager.
            let mut lm = LockManager::new();
            let mut locked = History::new();
            let mut dead: Vec<TxnId> = Vec::new();
            for _ in 0..ops {
                let t = TxnId(rng.gen_range(1..=txns));
                let item = format!("X{}", rng.gen_range(0..3));
                let write = rng.gen_bool(0.5);
                let kind = if write { OpKind::Write } else { OpKind::Read };
                free.push(t, item.clone(), kind);
                if dead.contains(&t) {
                    continue;
                }
                let mode = if write { LockMode::Exclusive } else { LockMode::Shared };
                match lm.try_acquire(t, item.clone(), mode) {
                    Ok(true) => locked.push(t, item, kind),
                    Ok(false) => {
                        // Conflict: abort the requester (its ops vanish
                        // from the committed history).
                        lm.release_all(t);
                        dead.push(t);
                    }
                    Err(_) => {}
                }
            }
            if locked.is_conflict_serializable() {
                ok_locked += 1;
            }
            if free.is_conflict_serializable() {
                ok_free += 1;
            }
        }
        out.push_str(&format!(
            "  {:>4} {:>4} {:>8}% {:>10}%\n",
            txns,
            ops,
            100 * ok_locked / RUNS,
            100 * ok_free / RUNS
        ));
    }
    out.push_str(
        "\nshape check: 2PL yields 100%; unconstrained interleaving degrades with contention.\n",
    );
    out
}

/// exp.rec — recovery correctness and cost vs checkpoint period.
pub fn exp_rec() -> String {
    let mut out = String::from(
        "exp.rec — crash-recovery over 100 random workloads per configuration\n\n\
         ckpt-every  correct  avg-records-replayed\n",
    );
    for ckpt_every in [0usize, 5, 10, 25] {
        let mut correct = 0;
        let mut replayed_total = 0usize;
        const RUNS: usize = 100;
        for seed in 0..RUNS as u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut db = SiteDb::new();
            let n_ops = rng.gen_range(5..40);
            let mut committed_reference = std::collections::BTreeMap::new();
            let mut txn_counter = 0u64;
            for i in 0..n_ops {
                txn_counter += 1;
                let t = TxnId(txn_counter);
                db.begin(t);
                let item = format!("X{}", rng.gen_range(0..4));
                let value = rng.gen_range(-100..100);
                if db.write(t, &item, value).is_ok() {
                    if rng.gen_bool(0.8) {
                        db.commit(t).expect("active");
                        committed_reference.insert(item, value);
                    } else {
                        db.abort(t).expect("active");
                    }
                }
                if ckpt_every > 0 && i % ckpt_every == ckpt_every - 1 {
                    db.checkpoint().expect("up");
                }
            }
            // Crash in the middle of a final, uncommitted transaction.
            txn_counter += 1;
            db.begin(TxnId(txn_counter));
            let _ = db.write(TxnId(txn_counter), "X0", 12345);
            db.crash();
            // Count replay work: records after the last checkpoint.
            let records = db.wal().records();
            let last_ckpt = records
                .iter()
                .rposition(|r| matches!(r, mcv_txn::LogRecord::CheckpointDone { .. }))
                .map(|i| i + 1)
                .unwrap_or(0);
            replayed_total += records.len() - last_ckpt;
            db.recover();
            let ok = committed_reference.iter().all(|(k, v)| db.value(k) == Some(*v))
                && db.value("X0").unwrap_or(0) != 12345;
            if ok {
                correct += 1;
            }
        }
        out.push_str(&format!(
            "  {:>10} {:>7}% {:>21.1}\n",
            if ckpt_every == 0 { "never".to_string() } else { format!("{ckpt_every} ops") },
            100 * correct / RUNS,
            replayed_total as f64 / RUNS as f64
        ));
    }
    out.push_str("\nshape check: recovery always reconstructs the committed prefix; replay work\nshrinks as checkpoints become more frequent.\n");
    out
}

/// exp.timeout — sensitivity to the timeout constant (assumption 6:
/// synchronous timers with timeout > 2δ): decision latency and message
/// overhead of 3PC termination vs the configured timeout.
pub fn exp_timeout() -> String {
    let mut out = String::from(
        "exp.timeout — 3PC under coordinator crash (AfterPrepare), 3 cohorts,\n\
         δ ≤ 5 ticks; sweeping the per-phase timeout (6 < 2δ: spurious firings)\n\n\
         timeout  uniform  latency  messages\n",
    );
    for timeout in [6u64, 12, 25, 50, 100, 200, 400] {
        let r = run_scenario(&Scenario {
            timeout,
            coordinator_crash: Some(CrashPoint::AfterPrepare),
            recovery_at: Some(5_000),
            seed: 3,
            ..Scenario::default()
        });
        let latency = r
            .decision_times
            .iter()
            .filter(|(site, _)| site.0 != 0)
            .map(|(_, t)| t.ticks())
            .max()
            .unwrap_or(0);
        out.push_str(&format!(
            "  {:>6} {:>8} {:>8} {:>9}\n",
            timeout, r.uniform, latency, r.messages
        ));
    }
    out.push_str(
        "\nshape check: latency grows ~linearly with the timeout (the failure\n\
         detector's delay dominates). Below 2δ the timers beat the replies:\n\
         the run stays *safe* (uniform) but degenerates to an early abort\n\
         with fewer messages — availability, not consistency, pays for a\n\
         violated synchrony assumption.\n",
    );
    out
}

/// exp.part — partition tolerance: the thesis' "reliable network
/// without partitioning" assumption tested, and the quorum-based
/// termination extension (future work in the thesis) evaluated.
pub fn exp_part() -> String {
    let mut out = String::from(
        "exp.part — a partition isolates the partially-prepared cohort after the\n\
         coordinator crashes mid-prepare (5 sites; partition from t=20)\n\n\
         termination   partition-heals  uniform  isolated-cohort-decides\n",
    );
    for (quorum, heals_at, label) in
        [(false, 9_000u64, "plain"), (true, 2_000, "quorum"), (true, 20_000, "quorum")]
    {
        let r = run_scenario(&Scenario {
            n_cohorts: 4,
            coordinator_crash: Some(CrashPoint::AfterPartialPrepare),
            partition: Some((vec![0], 20, heals_at)),
            quorum_termination: quorum,
            ..Scenario::default()
        });
        let isolated = r
            .decision_times
            .get(&mcv_sim::ProcId(1))
            .map(|t| format!("at t={}", t.ticks()))
            .unwrap_or_else(|| "never (blocked)".to_string());
        out.push_str(&format!(
            "  {:<13} {:>12}     {:>7}  {}\n",
            label,
            if heals_at > 10_000 { "never".to_string() } else { format!("t={heals_at}") },
            r.uniform,
            isolated
        ));
    }
    out.push_str(
        "\nshape check: plain 3PC termination SPLIT-BRAINS across the partition\n\
         (both sides elect backups and decide from their own fragment); quorum\n\
         termination keeps the minority blocked until it can reach a majority,\n\
         trading back some of the blocking 3PC was designed to remove.\n",
    );
    out
}

/// exp.mod — modular vs monolithic re-verification.
pub fn exp_mod() -> String {
    let lib = SpecLibrary::load();
    let mut out = String::from(
        "exp.mod — proofs to re-check after changing one block\n\n\
         changed block        modular  monolithic  invalidated\n",
    );
    let mut saved = 0usize;
    let mut total = 0usize;
    for r in traceability::impact_matrix(&lib) {
        out.push_str(&format!(
            "  {:<20} {:>6} {:>10}   {:?}\n",
            r.changed_block, r.modular_recheck, r.monolithic_recheck, r.must_recheck
        ));
        saved += r.monolithic_recheck - r.modular_recheck;
        total += r.monolithic_recheck;
    }
    out.push_str(&format!(
        "\nmodular discipline avoids {saved}/{total} re-checks ({:.0}%) across single-block changes.\n",
        100.0 * saved as f64 / total as f64
    ));
    out
}

/// exp.colim — colimit cost scaling (inline version of the Criterion
/// bench, for the text report).
pub fn exp_colim() -> String {
    use mcv_core::{colimit, Diagram};
    let mut out = String::from("exp.colim — colimit wall time vs diagram size (chain topology)\n\n  nodes  ops/node  time\n");
    for (nodes, ops) in [(2usize, 10usize), (4, 10), (8, 10), (8, 40), (16, 40)] {
        let mut specs = Vec::new();
        for i in 0..nodes {
            let mut b = SpecBuilder::new(format!("S{i}")).sort(Sort::new("E"));
            for o in 0..ops {
                // Shared prefix so chains actually glue.
                b = b.predicate(format!("P{o}"), vec![Sort::new("E")]);
            }
            // Cumulative own ops: node i re-declares Own0..Owni so the
            // identity-extended chain morphisms are total.
            for j in 0..=i {
                b = b.predicate(format!("Own{j}"), vec![Sort::new("E")]);
            }
            specs.push(b.build_ref().expect("static"));
        }
        let start = std::time::Instant::now();
        let mut d = Diagram::new();
        for (i, s) in specs.iter().enumerate() {
            d.add_node(format!("n{i}"), s.clone()).expect("fresh");
        }
        for i in 1..nodes {
            let m =
                SpecMorphism::new(format!("m{i}"), specs[i - 1].clone(), specs[i].clone(), [], [])
                    .expect("cumulative chain morphisms are total");
            d.add_arc(format!("m{i}"), format!("n{}", i - 1), format!("n{i}"), m)
                .expect("endpoints");
        }
        let c = colimit(&d, "APEX").expect("non-empty");
        let elapsed = start.elapsed();
        out.push_str(&format!(
            "  {:>5} {:>9} {:>10.2?}  (apex: {} ops, commutes: {})\n",
            nodes,
            ops,
            elapsed,
            c.apex.signature.op_count(),
            c.verify_commutes()
        ));
    }
    out
}

/// exp.tput — committed throughput and latency of the concurrent
/// engine vs worker count (uniform 16-shard read-write mix, group
/// commit on, modeled 300 µs force latency).
///
/// Unlike every other experiment here, the numbers are wall-clock and
/// therefore scheduling-dependent: identical seeds fix the transaction
/// *specs* but not the interleaving. Each run's sampled history is
/// checked against the conflict-serializability oracle and its durable
/// log against recovery equivalence, so the table doubles as a stress
/// test.
pub fn exp_tput() -> String {
    use mcv_engine::{run_driver, DriverConfig, EngineConfig, Mix, WorkloadKind};
    let mut out = String::from(
        "exp.tput — engine committed throughput vs workers\n\
         (uniform mix, 16 shards, 8 ops/txn, 50% writes, 300 us force, group commit)\n\n  \
         workers  committed     txn/s   p50us   p95us   p99us  forces/commit  serializable\n",
    );
    let mut tput = std::collections::BTreeMap::new();
    for workers in [1usize, 2, 4, 8] {
        let report = run_driver(&DriverConfig {
            engine: EngineConfig {
                shards: 16,
                group_commit: true,
                force_latency_us: 300,
                group_window_us: 50,
                ..Default::default()
            },
            clients: workers,
            txns: 1_000,
            items: 4_096,
            workload: WorkloadKind::ReadWrite { mix: Mix::Uniform, write_pct: 50, ops_per_txn: 8 },
            seed: 4242,
        });
        let fpc = report.forces as f64 / report.commits.max(1) as f64;
        out.push_str(&format!(
            "  {:>7} {:>10} {:>9.0} {:>7} {:>7} {:>7} {:>14.3}  {}\n",
            workers,
            report.committed,
            report.throughput_tps(),
            report.latency_us.percentile(50.0),
            report.latency_us.percentile(95.0),
            report.latency_us.percentile(99.0),
            fpc,
            report.oracles_ok(),
        ));
        mcv_obs::absorb(&report.metrics);
        mcv_obs::gauge(&format!("wall.engine.tput.w{workers}"), report.throughput_tps());
        tput.insert(workers, report.throughput_tps());
    }
    let speedup = tput[&4] / tput[&1].max(1e-9);
    mcv_obs::gauge("wall.engine.speedup.w4_over_w1", speedup);
    out.push_str(&format!(
        "\n4-worker speedup over single-thread: {speedup:.2}x \
         (group commit overlaps the force latency; >= 3x expected)\n"
    ));
    out
}

/// exp.gc — what group commit buys: force amortization and throughput
/// against a force-per-commit baseline, plus forces/commit vs workers.
///
/// Wall-clock numbers; scheduling-dependent like [`exp_tput`].
pub fn exp_gc() -> String {
    use mcv_engine::{run_driver, DriverConfig, EngineConfig, Mix, WorkloadKind};
    let base = |workers: usize, group: bool| DriverConfig {
        engine: EngineConfig {
            shards: 16,
            group_commit: group,
            force_latency_us: 300,
            group_window_us: 50,
            ..Default::default()
        },
        clients: workers,
        txns: 600,
        items: 2_048,
        workload: WorkloadKind::ReadWrite { mix: Mix::Uniform, write_pct: 50, ops_per_txn: 6 },
        seed: 777,
    };
    let mut out = String::from(
        "exp.gc — group commit vs force-per-commit (4 workers, 300 us force)\n\n  \
         mode             txn/s  forces  commits  forces/commit   p95us  oracles\n",
    );
    for (label, group) in [("per-commit", false), ("group-commit", true)] {
        let report = run_driver(&base(4, group));
        out.push_str(&format!(
            "  {:<12} {:>9.0} {:>7} {:>8} {:>14.3} {:>7}  {}\n",
            label,
            report.throughput_tps(),
            report.forces,
            report.commits,
            report.forces as f64 / report.commits.max(1) as f64,
            report.latency_us.percentile(95.0),
            report.oracles_ok(),
        ));
        mcv_obs::absorb(&report.metrics);
    }
    out.push_str("\n  batching vs concurrency (group commit on):\n  workers  forces/commit\n");
    for workers in [1usize, 2, 4, 8] {
        let report = run_driver(&base(workers, true));
        out.push_str(&format!(
            "  {:>7} {:>14.3}\n",
            workers,
            report.forces as f64 / report.commits.max(1) as f64
        ));
    }
    out.push_str(
        "\nthe force-per-commit baseline pays one device operation per transaction;\n\
         group commit lets every commit that arrives during an in-flight force ride\n\
         the next batch, so forces/commit falls as concurrency rises.\n",
    );
    out
}

/// exp.dist — cross-shard atomic commit over live engines: the 3PC
/// FSMs drive one `mcv-engine` per shard across the threaded
/// transport. Committed throughput and settle time vs shard count,
/// then vs per-shard write weight.
///
/// Wall-clock numbers, scheduling-dependent like [`exp_tput`] — but
/// the *committed count* is deterministic: every transaction in these
/// fault-free runs must commit at every shard (AC2), so
/// `dist.txn.total` and `dist.txn.committed` gate exactly while
/// `wall.dist.tput.*` gets a wide wall-clock tolerance.
pub fn exp_dist() -> String {
    use mcv_dist::{run_dist, DistConfig};
    let mut out = String::from(
        "exp.dist — cross-shard atomic transactions (3PC over threaded transport,\n\
         one live engine per shard, group-commit WAL, fault-free)\n\n  \
         shards  txns  committed  settle-ms   txn/s  oracles\n",
    );
    let mut total = 0u64;
    for n_shards in [2usize, 3, 4] {
        let cfg = DistConfig {
            n_shards,
            n_txns: 8,
            writes_per_shard: 2,
            seed: 7,
            ..DistConfig::default()
        };
        let o = run_dist(&cfg);
        let tput = o.stats.committed as f64 / (o.stats.wall_ms.max(1) as f64 / 1_000.0);
        out.push_str(&format!(
            "  {:>6} {:>5} {:>10} {:>10} {:>7.0}  {}\n",
            n_shards,
            o.stats.txns,
            o.stats.committed,
            o.stats.wall_ms,
            tput,
            o.violated().is_none(),
        ));
        mcv_obs::gauge(&format!("wall.dist.tput.s{n_shards}"), tput);
        total += o.stats.txns;
    }
    out.push_str("\n  write weight (3 shards):\n  writes/shard  committed  settle-ms  oracles\n");
    for writes in [1usize, 4, 8] {
        let cfg =
            DistConfig { n_txns: 8, writes_per_shard: writes, seed: 11, ..DistConfig::default() };
        let o = run_dist(&cfg);
        out.push_str(&format!(
            "  {:>12} {:>10} {:>10}  {}\n",
            writes,
            o.stats.committed,
            o.stats.wall_ms,
            o.violated().is_none(),
        ));
        total += o.stats.txns;
    }
    mcv_obs::counter("dist.txn.total", total);
    out.push_str(
        "\nshape check: the settle time is dominated by the fault horizon's quiet\n\
         tail, not by shard count — 3PC's message rounds overlap across shards\n\
         and transactions; every fault-free transaction commits everywhere.\n",
    );
    out
}

/// exp.pipeline — what multi-shot commit buys: the serial runtime
/// (every transaction started at once, per-message hop delays, one
/// blocking WAL force per commit, fixed fault-horizon tail) against
/// the pipelined runtime (streamed submissions with a bounded
/// in-flight window, per-link transport batching, one force wave per
/// delivery batch, quiescence-based stop).
///
/// Wall-clock gauges get the usual wide band; the structural claims
/// gate exactly:
///
/// - `pipeline.txn.total` / `pipeline.txn.committed` — fault-free AC2:
///   every streamed transaction must commit at every shard;
/// - `pipeline.oracles.green` — all eight oracles pass on every leg,
///   serial and pipelined alike;
/// - `pipeline.commit_log.dense` — the coordinator's commit log holds
///   exactly one decision per transaction, indices dense;
/// - `pipeline.verdict.speedup_10x` — pipelined committed throughput
///   at 3 shards clears 10x the serial runtime on the same topology
///   (both self-measured in this run, so machine speed cancels);
/// - `pipeline.verdict.forces_batched` — across the pipelined legs,
///   shard WALs pay at most 0.5 device forces per commit record
///   (batching must actually amortize; serial pays ~1.0, the
///   pipelined path measures ~0.04).
pub fn exp_pipeline() -> String {
    use mcv_dist::{run_dist, run_pipeline, DistConfig, PipelineConfig};
    let mut out = String::from(
        "exp.pipeline — multi-shot pipelined cross-shard commit vs the serial runtime\n\
         (3PC over the threaded transport, one live engine per shard, fault-free)\n\n",
    );
    // Serial reference: the exp.dist operating point — all plans start
    // at once, the run waits out the fault horizon's quiet tail.
    let serial_cfg = DistConfig {
        n_shards: 3,
        n_txns: 8,
        writes_per_shard: 2,
        seed: 7,
        ..DistConfig::default()
    };
    let s = run_dist(&serial_cfg);
    let serial_tput = s.stats.committed as f64 / (s.stats.wall_ms.max(1) as f64 / 1_000.0);
    out.push_str(&format!(
        "  serial reference (3 shards, 8 txns at once): {} committed, {} ms, {:.0} txn/s, \
         oracles {}\n\n",
        s.stats.committed,
        s.stats.wall_ms,
        serial_tput,
        s.violated().is_none(),
    ));
    out.push_str("  pipelined (96 txns streamed, window 32, batch 600 us):\n");
    out.push_str("  shards  committed  settle-ms   txn/s  forces/commit  oracles\n");
    let mut total = 0u64;
    let mut committed_total = 0u64;
    let mut green_legs = u64::from(s.violated().is_none());
    let mut dense_logs = 0u64;
    let mut tput_s3 = 0.0f64;
    let (mut wal_commits, mut wal_forces) = (0u64, 0u64);
    for n_shards in [2usize, 3, 4] {
        let cfg = PipelineConfig {
            dist: DistConfig {
                n_shards,
                n_txns: 96,
                writes_per_shard: 2,
                seed: 7,
                ..DistConfig::default()
            },
            max_inflight: 32,
            batch_window_us: 600,
            arrival_us: None,
        };
        let o = run_pipeline(&cfg);
        let tput = o.stats.committed as f64 / (o.stats.wall_ms.max(1) as f64 / 1_000.0);
        out.push_str(&format!(
            "  {:>6} {:>10} {:>10} {:>7.0} {:>14.3}  {}\n",
            n_shards,
            o.stats.committed,
            o.stats.wall_ms,
            tput,
            o.wal_forces as f64 / o.wal_commits.max(1) as f64,
            o.violated().is_none(),
        ));
        mcv_obs::gauge(&format!("wall.pipeline.tput.s{n_shards}"), tput);
        total += o.stats.txns;
        committed_total += o.stats.committed;
        green_legs += u64::from(o.violated().is_none());
        let dense = o.commit_log.len() == o.stats.txns as usize
            && o.commit_log.iter().enumerate().all(|(i, e)| e.index == i);
        dense_logs += u64::from(dense);
        wal_commits += o.wal_commits;
        wal_forces += o.wal_forces;
        if n_shards == 3 {
            tput_s3 = tput;
        }
    }
    let speedup = tput_s3 / serial_tput.max(1e-9);
    let forces_per_commit = wal_forces as f64 / wal_commits.max(1) as f64;
    mcv_obs::counter("pipeline.txn.total", total);
    mcv_obs::counter("pipeline.txn.committed", committed_total);
    mcv_obs::counter("pipeline.oracles.green", green_legs);
    mcv_obs::counter("pipeline.commit_log.dense", dense_logs);
    mcv_obs::counter("pipeline.verdict.speedup_10x", u64::from(speedup >= 10.0));
    mcv_obs::counter("pipeline.verdict.forces_batched", u64::from(forces_per_commit <= 0.5));
    mcv_obs::gauge("wall.pipeline.speedup", speedup);
    mcv_obs::gauge("wall.pipeline.forces_per_commit", forces_per_commit);
    out.push_str(&format!(
        "\nheadline: pipelined 3-shard throughput {tput_s3:.0} txn/s = {speedup:.1}x serial \
         ({serial_tput:.0} txn/s); >= 10x required: {}\n\
         force batching: {wal_forces} forces for {wal_commits} commit records \
         ({forces_per_commit:.3}/commit; <= 0.5 required: {})\n",
        speedup >= 10.0,
        forces_per_commit <= 0.5,
    ));
    out.push_str(
        "\nshape check: the serial runtime pays the fault-horizon tail, per-message\n\
         hop delays, and one blocking force per commit; the pipelined runtime\n\
         streams transactions through a bounded window, so hop delays and forces\n\
         amortize across everything in flight and the run ends at quiescence.\n",
    );
    out
}

/// exp.mvcc — what multi-version reads buy: the same read-heavy
/// zipfian workload under Serializable-2PL (reads through the lock
/// table) and under snapshot isolation (reads off the version chains),
/// swept over worker count.
///
/// Wall-clock throughput is scheduling-dependent like [`exp_tput`],
/// but two counters are structural and gate exactly: the driver admits
/// a fixed quota so `engine.txn.committed` is deterministic, and the
/// snapshot read path never touches the 2PL lock table so
/// `engine.locks.read_acquisitions` is exactly zero. Only the SI legs
/// are absorbed into the benchmark record; the 2PL legs exist for the
/// throughput comparison and would otherwise pollute the zero-lock
/// assertion.
pub fn exp_mvcc() -> String {
    use mcv_engine::{run_driver, DriverConfig, EngineConfig, IsolationLevel, Mix, WorkloadKind};
    let cfg = |isolation: IsolationLevel, workers: usize| DriverConfig {
        engine: EngineConfig {
            shards: 16,
            group_commit: true,
            // Keep the modeled device fast: the MVCC commit critical
            // section serializes committers across the WAL force, so a
            // slow device would measure the force, not the read paths
            // this experiment compares.
            force_latency_us: 20,
            group_window_us: 10,
            isolation,
            ..Default::default()
        },
        clients: workers,
        txns: 1_000,
        items: 4_096,
        workload: WorkloadKind::ReadWrite {
            mix: Mix::Zipfian { theta: 0.9 },
            write_pct: 10,
            ops_per_txn: 8,
        },
        seed: 2026,
    };
    let mut out = String::from(
        "exp.mvcc — snapshot reads vs the 2PL read path\n\
         (zipfian theta=0.9, 10% writes, 8 ops/txn, 16 shards, 20 us force, group commit)\n\n  \
         workers  si-txn/s  2pl-txn/s   ratio  snap-reads  read-locks(si)  cert-aborts  oracles\n",
    );
    for workers in [1usize, 2, 4, 8] {
        let si = run_driver(&cfg(IsolationLevel::SnapshotIsolation, workers));
        let lk = run_driver(&cfg(IsolationLevel::Serializable2pl, workers));
        let snap_reads =
            si.metrics.counters.get("engine.mvcc.snapshot_reads").copied().unwrap_or(0);
        let read_locks =
            si.metrics.counters.get("engine.locks.read_acquisitions").copied().unwrap_or(0);
        let cert_aborts = si.metrics.counters.get("engine.mvcc.cert_aborts").copied().unwrap_or(0);
        out.push_str(&format!(
            "  {:>7} {:>9.0} {:>10.0} {:>7.2} {:>11} {:>15} {:>12}  {}\n",
            workers,
            si.throughput_tps(),
            lk.throughput_tps(),
            si.throughput_tps() / lk.throughput_tps().max(1e-9),
            snap_reads,
            read_locks,
            cert_aborts,
            si.oracles_ok() && lk.oracles_ok(),
        ));
        mcv_obs::absorb(&si.metrics);
        mcv_obs::gauge(&format!("wall.mvcc.tput.si.w{workers}"), si.throughput_tps());
        mcv_obs::gauge(&format!("wall.mvcc.tput.2pl.w{workers}"), lk.throughput_tps());
    }
    out.push_str(
        "\nshape check: both paths commit the full quota; the SI legs report zero\n\
         read-lock acquisitions (every read is served from a version chain) while\n\
         the 2PL legs pay one shared-lock round trip per read. Under read-heavy\n\
         skew the snapshot path scales past the lock path as workers grow.\n",
    );
    out
}

/// exp.slo — latency under open-loop load: the latency-vs-load curve
/// with its saturation knee, graceful degradation at 2x the knee, and
/// the shard-crash-during-flash-crowd recovery-time campaign.
///
/// Wall-clock latencies are machine-dependent, but the record is built
/// so the interesting claims are *self-normalized* and gate exactly:
///
/// - the sweep shape and every arrival schedule are pure functions of
///   pinned seeds (`slo.sweep.points`, `slo.arrivals.total` exact);
/// - `slo.verdict.*` are 0/1 structural verdicts — overload sheds,
///   goodput under 2x-knee overload stays ≥ 70% of this same run's
///   knee, oracles stay green, and ≥ 90% of the crash campaign
///   recovers within the SLO window — each judged against the run's
///   own measurements, so machine speed cancels out;
/// - `wall.slo.p99_us.*` and `wall.slo.recovery_ms.*` carry the raw
///   latencies for the lower-is-better 3x bands.
///
/// The engine is deliberately throttled (no group commit, 2 ms modeled
/// force) so the knee sits near a few thousand txn/s: the sweep and
/// the 2x-overload leg stay cheap and saturation is reachable on any
/// machine.
pub fn exp_slo() -> String {
    use mcv_load::{
        crash_campaign_template, knee, rate_sweep, run_load, ArrivalProcess, LoadConfig,
        LoadProfile, SloCampaignConfig,
    };
    let base = LoadConfig {
        profile: LoadProfile {
            process: ArrivalProcess::Poisson { rate_tps: 1_000.0 },
            duration_us: 200_000,
            sessions: 200_000,
            session_theta: 0.8,
            seed: 31,
        },
        engine: mcv_engine::EngineConfig {
            group_commit: false,
            force_latency_us: 2_000,
            ..Default::default()
        },
        // The queue must be shorter than the deadline: at ~2 ms of
        // service per queued write txn, 16 slots bound queueing delay
        // near 32 ms against the 100 ms budget. A deeper queue is
        // bufferbloat — everything admitted commits after its deadline
        // and goodput collapses past the knee.
        queue_cap: 16,
        ..Default::default()
    };
    let rates = [250.0, 500.0, 1_000.0, 2_000.0, 4_000.0];
    let mut out = String::from(
        "exp.slo — latency under open-loop load, overload shedding, and recovery SLO\n\
         (1 throttled engine: no group commit, 2 ms force; 4 workers, queue cap 16,\n\
         retry-after shedding, 100 ms deadline from arrival)\n\n  \
         offered-tps  goodput-tps    shed   p50us   p99us  p999us  oracles\n",
    );
    let points = rate_sweep(&base, &rates);
    for (rate, p) in rates.iter().zip(&points) {
        out.push_str(&format!(
            "  {:>11.0} {:>12.0} {:>7} {:>7} {:>7} {:>7}  {}\n",
            p.offered_tps, p.goodput_tps, p.shed, p.p50_us, p.p99_us, p.p999_us, p.oracles_ok
        ));
        mcv_obs::gauge(&format!("wall.slo.p99_us.r{rate:.0}"), p.p99_us as f64);
    }
    mcv_obs::counter("slo.sweep.points", points.len() as u64);
    let k = *knee(&points);
    mcv_obs::gauge("wall.slo.knee_tps", k.goodput_tps);
    out.push_str(&format!(
        "\nsaturation knee: {:.0} txn/s goodput at {:.0} txn/s offered\n",
        k.goodput_tps, k.offered_tps
    ));

    // Graceful degradation: push 2x the knee's offered rate through
    // the same system. An open-loop driver keeps the arrivals coming,
    // so the only way to survive is to shed at admission — and goodput
    // must not collapse below 70% of the knee.
    let mut over_cfg = base.clone();
    over_cfg.profile.process = ArrivalProcess::Poisson { rate_tps: 2.0 * k.offered_tps };
    let over = run_load(&over_cfg);
    let goodput_holds = over.goodput_tps() >= 0.7 * k.goodput_tps;
    mcv_obs::counter("slo.verdict.overload_sheds", u64::from(over.shed > 0));
    mcv_obs::counter("slo.verdict.goodput_holds", u64::from(goodput_holds));
    mcv_obs::counter("slo.verdict.overload_oracles", u64::from(over.oracles_ok()));
    mcv_obs::gauge("wall.slo.goodput.overload_tps", over.goodput_tps());
    mcv_obs::absorb(&over.metrics);
    out.push_str(&format!(
        "\n2x-knee overload ({:.0} txn/s offered): goodput {:.0} txn/s \
         ({:.0}% of knee, >= 70% required: {}), {} shed, oracles {}\n",
        over.offered_tps(),
        over.goodput_tps(),
        100.0 * over.goodput_tps() / k.goodput_tps.max(1e-9),
        goodput_holds,
        over.shed,
        over.oracles_ok(),
    ));

    // The chaos leg: 100 seeded flash-crowd runs, each crashing engine
    // 1 mid-crowd and recovering it from its frozen WAL image while
    // admission sheds around the hole. A run passes when windowed p99
    // is back under the 20 ms target within the SLO window.
    let slo_ms = 500;
    let campaign = mcv_load::run_slo_campaign(&SloCampaignConfig {
        base: crash_campaign_template(),
        seeds: 100,
        seed_base: 1_000,
        slo_ms,
    });
    mcv_obs::counter("slo.recovery.runs", campaign.runs);
    mcv_obs::counter("slo.recovery.within_slo", campaign.recovered_within_slo);
    mcv_obs::counter("slo.recovery.never", campaign.never_recovered);
    mcv_obs::counter("slo.oracle_failures", campaign.oracle_failures);
    mcv_obs::counter("slo.unresolved_runs", campaign.unresolved_runs);
    mcv_obs::counter("slo.arrivals.total", campaign.arrivals_total);
    mcv_obs::counter("slo.shed.total", campaign.shed_total);
    mcv_obs::counter("slo.verdict.campaign_oracles", u64::from(campaign.oracle_failures == 0));
    mcv_obs::counter("slo.verdict.recovery_fraction", u64::from(campaign.slo_fraction() >= 0.9));
    mcv_obs::gauge("wall.slo.recovery_ms.p50", campaign.recovery_ms.percentile(50.0) as f64);
    mcv_obs::gauge("wall.slo.recovery_ms.p99", campaign.recovery_ms.percentile(99.0) as f64);
    mcv_obs::gauge("wall.slo.worst_recovery_ms", campaign.worst_recovery_ms as f64);
    out.push_str(&format!(
        "\ncrash-recovery campaign (flash crowd 1.5k->4.5k txn/s, engine 1 down at \
         80 ms for 40 ms,\n100 seeds, {slo_ms} ms recovery SLO):\n  {}\n",
        campaign.summary()
    ));
    out.push_str(
        "\nshape check: goodput climbs with offered load to the knee, then shedding\n\
         absorbs the excess instead of queueing collapse — latency past the knee is\n\
         bounded by the deadline budget, and a crashed shard costs only its own\n\
         sessions for the recovery window while the survivor keeps committing.\n",
    );
    out
}

/// exp.prof — where commit latency goes: per-transaction phase
/// attribution from the thread-local ring profiler, critical-path
/// analysis of a cross-shard run, windowed telemetry of an open-loop
/// load run, and the profiler's own overhead.
///
/// Wall-clock numbers are scheduling-dependent like [`exp_tput`], but
/// the headline claims are self-normalized 0/1 verdicts that gate
/// exactly:
///
/// - `prof.verdict.overhead_ok` — instrumented throughput within 1.05x
///   of the uninstrumented engine on the `exp.tput` 4-worker config
///   (median paired ratio over 7 interleaved trials, so machine speed
///   and one-sided scheduler bursts cancel);
/// - `prof.verdict.engine_samples_match` — the profiler harvests
///   exactly one timeline per committed transaction, none dropped;
/// - `prof.verdict.dist_attributed` — the critical-path analyzer
///   explains at least 90% of mean cross-shard commit latency with
///   typed phases;
/// - `prof.verdict.dist_transport_dominant` — the top two phases of
///   the cross-shard run are `transport_rtt` and `wal_force`: message
///   flight and the commit-point force dominate, as 3PC predicts;
/// - `prof.verdict.telemetry_covers_arrivals` — the windowed telemetry
///   stream accounts for every scheduled arrival.
///
/// `prof.dist.paths`, `prof.telemetry.windows`, and
/// `prof.telemetry.arrivals` are structural (fault-free AC2 commits
/// and seeded arrival schedules) and also gate exactly.
pub fn exp_prof() -> String {
    use mcv_engine::{run_driver, DriverConfig, EngineConfig, Mix, WorkloadKind};
    use mcv_prof::{AttributionTable, Profiler};

    let mut out =
        String::from("exp.prof — phase attribution, critical paths, and profiler overhead\n");

    // Leg 1 — overhead: the exp.tput 4-worker config, instrumented vs
    // disabled, 7 interleaved trials each so thermal drift hits both
    // arms equally. The verdict takes the MEDIAN of the per-pair
    // ratios: a pair is adjacent in time so interference skews both
    // arms together, and the median discards pairs where a scheduler
    // burst hit only one arm (best-of-per-arm flaked on exactly that).
    let tput_cfg = || DriverConfig {
        engine: EngineConfig {
            shards: 16,
            group_commit: true,
            force_latency_us: 300,
            group_window_us: 50,
            ..Default::default()
        },
        clients: 4,
        // 3x the exp.tput run length: per-trial throughput noise
        // shrinks with duration, and the 0/1 overhead verdict gates
        // exactly, so the estimate must be tight.
        txns: 3_000,
        items: 4_096,
        workload: WorkloadKind::ReadWrite { mix: Mix::Uniform, write_pct: 50, ops_per_txn: 8 },
        seed: 4242,
    };
    let mut best_plain = 0.0f64;
    let mut best_prof = 0.0f64;
    let mut ratios = Vec::new();
    let mut committed = 0u64;
    let mut engine_samples = mcv_prof::ProfSamples::default();
    for _trial in 0..7 {
        let plain = run_driver(&tput_cfg());
        best_plain = best_plain.max(plain.throughput_tps());
        let profiler = Profiler::new();
        let instrumented = mcv_prof::with_profiler(&profiler, || run_driver(&tput_cfg()));
        best_prof = best_prof.max(instrumented.throughput_tps());
        ratios.push(plain.throughput_tps() / instrumented.throughput_tps().max(1e-9));
        committed = instrumented.committed;
        engine_samples = profiler.harvest();
    }
    ratios.sort_by(f64::total_cmp);
    let ratio = ratios[ratios.len() / 2];
    let overhead_ok = ratio <= 1.05;
    let samples_match =
        engine_samples.timelines.len() as u64 == committed && engine_samples.dropped == 0;
    mcv_obs::counter("prof.verdict.overhead_ok", u64::from(overhead_ok));
    mcv_obs::counter("prof.verdict.engine_samples_match", u64::from(samples_match));
    mcv_obs::gauge("wall.prof.overhead_ratio", ratio);
    mcv_obs::gauge("wall.prof.tput.plain", best_plain);
    mcv_obs::gauge("wall.prof.tput.instrumented", best_prof);
    let engine_table = AttributionTable::from_samples(&engine_samples);
    out.push_str(&format!(
        "\noverhead (exp.tput config, 4 workers, best of 7): disabled {best_plain:.0} txn/s, \
         instrumented {best_prof:.0} txn/s, median paired ratio {ratio:.3}x \
         (<= 1.05x required: {overhead_ok})\n\
         samples: {} timelines for {} commits, {} dropped (exact match: {samples_match})\n\n\
         engine phase attribution (instrumented run):\n{}",
        engine_samples.timelines.len(),
        committed,
        engine_samples.dropped,
        engine_table.render(),
    ));
    for row in &engine_table.rows {
        if row.txns > 0 {
            mcv_obs::gauge(&format!("wall.prof.engine.frac_mean.{}", row.phase), row.frac_mean);
        }
    }

    // Leg 2 — cross-shard critical paths: a fault-free exp.dist run,
    // decomposed along the happens-before DAG behind each commit
    // decision. Transport samples from the network thread surface as
    // unanchored phase time; the per-transaction attribution comes
    // from the trace, which cannot double-count parallel flights.
    // 800us forces model a real fsync (the default 20us is tuned for
    // fast protocol campaigns, not for representative attribution) and
    // keep the commit-point force comfortably above scheduling noise.
    let dist_cfg = mcv_dist::DistConfig {
        n_shards: 3,
        n_txns: 8,
        writes_per_shard: 2,
        seed: 7,
        force_latency_us: 800,
        ..mcv_dist::DistConfig::default()
    };
    let profiler = Profiler::new();
    let o = mcv_prof::with_profiler(&profiler, || mcv_dist::run_dist(&dist_cfg));
    let (dist_table, paths) = mcv_prof::attribute_commits(&o.trace);
    let top2 = dist_table.top_phases(2);
    let transport_dominant = top2.contains(&"transport_rtt") && top2.contains(&"wal_force");
    let attributed = dist_table.attributed_frac >= 0.9;
    mcv_obs::counter("prof.dist.paths", paths.len() as u64);
    mcv_obs::counter("prof.verdict.dist_attributed", u64::from(attributed));
    mcv_obs::counter("prof.verdict.dist_transport_dominant", u64::from(transport_dominant));
    mcv_obs::gauge("wall.prof.dist.attributed_frac", dist_table.attributed_frac);
    for row in &dist_table.rows {
        if row.txns > 0 {
            mcv_obs::gauge(&format!("wall.prof.dist.frac_mean.{}", row.phase), row.frac_mean);
        }
    }
    out.push_str(&format!(
        "\ncross-shard critical paths (3 shards, 8 txns, fault-free; {} commit paths, \
         oracles {}):\n{}\
         headline: attributed {:.0}% of mean commit latency (>= 90% required: {attributed}); \
         top phases {:?} (transport_rtt + wal_force required: {transport_dominant})\n",
        paths.len(),
        o.violated().is_none(),
        dist_table.render(),
        100.0 * dist_table.attributed_frac,
        top2,
    ));

    // Leg 2b — the same topology through the pipelined multi-shot
    // runtime: transport batching amortizes hop delays across the
    // in-flight window, so the transport_rtt share of per-commit
    // latency must fall below the serial run's (the gated form of the
    // tentpole's attribution claim).
    let serial_transport_frac = dist_table.phase_frac("transport_rtt");
    let pipe_cfg = mcv_dist::PipelineConfig {
        dist: dist_cfg.clone(),
        max_inflight: 8,
        batch_window_us: 600,
        arrival_us: None,
    };
    let profiler = Profiler::new();
    let po = mcv_prof::with_profiler(&profiler, || mcv_dist::run_pipeline(&pipe_cfg));
    let (pipe_table, pipe_paths) = mcv_prof::attribute_commits(&po.trace);
    let pipe_transport_frac = pipe_table.phase_frac("transport_rtt");
    let transport_reduced = pipe_transport_frac < serial_transport_frac;
    mcv_obs::counter("prof.pipeline.paths", pipe_paths.len() as u64);
    mcv_obs::counter("prof.verdict.pipeline_transport_reduced", u64::from(transport_reduced));
    for row in &pipe_table.rows {
        if row.txns > 0 {
            mcv_obs::gauge(&format!("wall.prof.pipeline.frac_mean.{}", row.phase), row.frac_mean);
        }
    }
    out.push_str(&format!(
        "\npipelined critical paths (same topology, window 8, batch 600 us; {} commit paths, \
         oracles {}):\n{}\
         headline: transport_rtt share {:.0}% pipelined vs {:.0}% serial \
         (reduction required: {transport_reduced})\n",
        pipe_paths.len(),
        po.violated().is_none(),
        pipe_table.render(),
        100.0 * pipe_transport_frac,
        100.0 * serial_transport_frac,
    ));

    // Leg 3 — live telemetry on an open-loop load run: windows are
    // keyed by scheduled arrival time, so their count and per-window
    // arrivals are pure functions of the seed even though every
    // latency inside them is measured.
    let load_cfg = mcv_load::LoadConfig {
        profile: mcv_load::LoadProfile {
            process: mcv_load::ArrivalProcess::Poisson { rate_tps: 1_500.0 },
            duration_us: 200_000,
            sessions: 50_000,
            session_theta: 0.8,
            seed: 77,
        },
        engines: 1,
        items_per_engine: 128,
        telemetry_window_us: 50_000,
        ..Default::default()
    };
    let profiler = Profiler::new();
    let report = mcv_prof::with_profiler(&profiler, || mcv_load::run_load(&load_cfg));
    let windowed_arrivals: u64 = report.telemetry.iter().map(|w| w.arrivals).sum();
    let covers = windowed_arrivals == report.arrivals;
    mcv_obs::counter("prof.telemetry.windows", report.telemetry.len() as u64);
    mcv_obs::counter("prof.telemetry.arrivals", windowed_arrivals);
    mcv_obs::counter("prof.verdict.telemetry_covers_arrivals", u64::from(covers));
    let driver_table = AttributionTable::from_samples(&profiler.harvest());
    out.push_str(&format!(
        "\nopen-loop telemetry (1500 txn/s Poisson, 200 ms, 50 ms windows): {} windows, \
         {} arrivals windowed of {} scheduled (complete: {covers}), {} committed, oracles {}\n",
        report.telemetry.len(),
        windowed_arrivals,
        report.arrivals,
        report.committed,
        report.oracles_ok(),
    ));
    for w in &report.telemetry {
        out.push_str(&format!(
            "  window {:>2} [{:>3}-{:>3} ms): {:>3} arrivals, {:>3} commits, \
             p50/p99 {}/{} us\n",
            w.seq,
            w.seq * w.window_us / 1_000,
            (w.seq + 1) * w.window_us / 1_000,
            w.arrivals,
            w.wall.commits,
            w.wall.p50_us,
            w.wall.p99_us,
        ));
    }
    out.push_str(&format!(
        "\narrival-to-resolution attribution (driver anchor joined with engine phases):\n{}",
        driver_table.render()
    ));
    mcv_obs::absorb(&report.metrics);
    out.push_str(
        "\nshape check: on the engine the modeled force dominates; across shards the\n\
         message flights and the participants' commit-point forces own the latency;\n\
         under open-loop load the arrival-anchored budget adds queueing on top —\n\
         and the rings' relaxed stores keep the instrumented engine within 5% of\n\
         the uninstrumented one.\n",
    );
    out
}

/// An artifact id paired with its generator function.
pub type Artifact = (&'static str, fn() -> String);

/// All artifact ids with their generators, in DESIGN.md order.
pub fn artifacts() -> Vec<Artifact> {
    vec![
        ("fig2.1", fig2_1 as fn() -> String),
        ("fig2.2", fig2_2),
        ("fig2.3", fig2_3),
        ("fig2.4", fig2_4),
        ("tab3.1", tab3_1),
        ("fig3.1", fig3_1),
        ("fig3.2", fig3_2),
        ("fig3.3", fig3_3),
        ("fig3.4", fig3_4),
        ("fig3.5", fig3_5),
        ("fig4.s", fig4_s),
        ("fig4.c", fig4_c),
        ("fig4.r", fig4_r),
        ("ch5", ch5),
        ("exp.nb", exp_nb),
        ("exp.msg", exp_msg),
        ("exp.ser", exp_ser),
        ("exp.rec", exp_rec),
        ("exp.timeout", exp_timeout),
        ("exp.part", exp_part),
        ("exp.mod", exp_mod),
        ("exp.colim", exp_colim),
        ("exp.tput", exp_tput),
        ("exp.gc", exp_gc),
        ("exp.dist", exp_dist),
        ("exp.pipeline", exp_pipeline),
        ("exp.mvcc", exp_mvcc),
        ("exp.slo", exp_slo),
        ("exp.prof", exp_prof),
    ]
}

/// A tiny smoke-check used by the test suite: the spec-category pushout
/// demo of Figure 2.1 in the Spec category (complementing FinSet).
pub fn spec_pushout_demo() -> bool {
    let shared = SpecBuilder::new("S")
        .sort(Sort::new("E"))
        .predicate("P", vec![Sort::new("E")])
        .build_ref()
        .expect("static");
    let l = SpecBuilder::new("L")
        .sort(Sort::new("E"))
        .predicate("P", vec![Sort::new("E")])
        .predicate("L", vec![Sort::new("E")])
        .build_ref()
        .expect("static");
    let r = SpecBuilder::new("R")
        .sort(Sort::new("E"))
        .predicate("P", vec![Sort::new("E")])
        .predicate("R", vec![Sort::new("E")])
        .build_ref()
        .expect("static");
    let f = SpecMorphism::new("f", shared.clone(), l, [], []).expect("valid");
    let g = SpecMorphism::new("g", shared, r, [], []).expect("valid");
    pushout(&f, &g, "D").map(|po| po.square_commutes()).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_artifact_generates_nonempty_output() {
        // The heavyweight ones (ch5, fig4.*) are covered by mcv-blocks
        // tests, and the wall-clock benches (exp.tput, exp.gc,
        // exp.dist) by the mcv-engine/mcv-dist suites plus the ci
        // smoke gates; here smoke-test the cheap generators.
        for (id, f) in artifacts() {
            if matches!(
                id,
                "ch5"
                    | "fig4.s"
                    | "fig4.c"
                    | "fig4.r"
                    | "exp.rec"
                    | "exp.ser"
                    | "exp.tput"
                    | "exp.gc"
                    | "exp.dist"
                    | "exp.pipeline"
                    | "exp.mvcc"
                    | "exp.slo"
            ) {
                continue;
            }
            let text = f();
            assert!(!text.is_empty(), "{id} produced nothing");
        }
    }

    #[test]
    fn fig2_1_demonstrates_the_universal_property() {
        let text = fig2_1();
        assert!(text.contains("commutes: true"));
        assert!(text.contains("u∘p = p' and u∘q = q': true"));
    }

    #[test]
    fn fig3_2_finds_the_partial_prepare_hazard() {
        let text = fig3_2();
        assert!(text.contains("UNSAFE"));
        assert!(text.contains("SAFE"));
    }

    #[test]
    fn spec_pushout_demo_commutes() {
        assert!(spec_pushout_demo());
    }

    #[test]
    fn exp_msg_shows_3pc_overhead() {
        let text = exp_msg();
        assert!(text.contains("cohorts"));
        // 3PC always costs more messages than 2PC.
        for line in text.lines().skip(2) {
            let cols: Vec<&str> = line.split_whitespace().collect();
            if cols.len() == 4 && cols[0].parse::<usize>().is_ok() {
                let two: u64 = cols[1].parse().expect("2PC count");
                let three: u64 = cols[2].parse().expect("3PC count");
                assert!(three > two, "{line}");
            }
        }
    }
}
