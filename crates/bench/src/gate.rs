//! Bench-regression gate: diffs a current benchmark [`RunReport`]
//! against a committed baseline with per-metric tolerances.
//!
//! The gate is deliberately coarse: deterministic counters must match
//! the baseline exactly, wall-clock throughput gauges must stay above
//! a fraction of the baseline (machines differ, thermal noise exists —
//! the gate catches order-of-magnitude regressions, not 5% drift), and
//! scheduling-dependent counters are reported but never gated.
//! `repro --check-bench <baseline.json>` runs the engine benchmark,
//! applies [`engine_gate_rules`], and exits nonzero on any regression.

use mcv_obs::RunReport;

/// How much a metric may deviate from the baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Must equal the baseline exactly (deterministic counters).
    Exact,
    /// Higher-is-better metric: current must be at least this fraction
    /// of the baseline (e.g. `0.4` = tolerate a 60% drop, fail beyond).
    MinRatio(f64),
    /// Reported in the notes, never gated (scheduling-dependent).
    Ignore,
}

/// One gate rule: a metric-name pattern with its tolerance. A pattern
/// ending in `*` matches by prefix, otherwise exactly. First matching
/// rule wins; unmatched metrics are reported but not gated.
#[derive(Debug, Clone)]
pub struct GateRule {
    /// Metric-name pattern (`engine.txn.committed` or `wall.engine.*`).
    pub pattern: String,
    /// The tolerance applied to matching metrics.
    pub tolerance: Tolerance,
}

impl GateRule {
    fn new(pattern: &str, tolerance: Tolerance) -> Self {
        GateRule { pattern: pattern.to_owned(), tolerance }
    }

    fn matches(&self, name: &str) -> bool {
        match self.pattern.strip_suffix('*') {
            Some(prefix) => name.starts_with(prefix),
            None => name == self.pattern,
        }
    }
}

/// The tolerances for `BENCH_engine.json` (the `exp.tput` record), as
/// documented in `EXPERIMENTS.md`:
///
/// - `engine.txn.committed` is exact — the driver admits a fixed
///   transaction quota per run, so the committed count is deterministic
///   even though interleavings are not.
/// - `wall.engine.tput.*` and `wall.engine.speedup.*` are wall-clock
///   gauges: the gate requires ≥ 40% of the baseline, catching real
///   regressions (a lost group-commit batch, an accidental serial
///   section) while shrugging off machine noise.
/// - Everything else under `engine.*` (aborts, conflicts, forces,
///   samples) is scheduling-dependent and only reported.
pub fn engine_gate_rules() -> Vec<GateRule> {
    vec![
        GateRule::new("engine.txn.committed", Tolerance::Exact),
        GateRule::new("wall.engine.tput.*", Tolerance::MinRatio(0.4)),
        GateRule::new("wall.engine.speedup.*", Tolerance::MinRatio(0.4)),
        GateRule::new("engine.*", Tolerance::Ignore),
        GateRule::new("wall.*", Tolerance::Ignore),
        GateRule::new("chaos.*", Tolerance::Ignore),
    ]
}

/// The tolerances for `BENCH_dist.json` (the `exp.dist` record):
///
/// - `dist.txn.total` and `dist.txn.committed` are exact — the
///   experiment drives a fixed transaction count through fault-free
///   runs, and AC2 validity obliges every one of them to commit at
///   every shard; a drift here means the protocol or the harness
///   regressed, not the machine.
/// - `wall.dist.tput.*` is wall-clock settle throughput, gated at
///   ≥ 30% of baseline (the settle time contains a fixed quiet tail,
///   so the gauge is noisier than the engine's).
/// - Everything else under `dist.*` (oracle tallies, per-run stats)
///   is reported, never gated.
pub fn dist_gate_rules() -> Vec<GateRule> {
    vec![
        GateRule::new("dist.txn.total", Tolerance::Exact),
        GateRule::new("dist.txn.committed", Tolerance::Exact),
        GateRule::new("wall.dist.tput.*", Tolerance::MinRatio(0.3)),
        GateRule::new("dist.*", Tolerance::Ignore),
        GateRule::new("engine.*", Tolerance::Ignore),
        GateRule::new("wall.*", Tolerance::Ignore),
        GateRule::new("trace.*", Tolerance::Ignore),
    ]
}

/// The tolerances for `BENCH_mvcc.json` (the `exp.mvcc` record):
///
/// - `engine.txn.committed` is exact — the driver admits a fixed quota
///   and retries certification losers, so every SI leg commits exactly
///   its quota.
/// - `engine.locks.read_acquisitions` is exact — and zero in the
///   baseline: snapshot reads never touch the 2PL lock table, so any
///   nonzero value means the MVCC read path regressed into the lock
///   path. This is the machine-checked form of the PR's core claim.
/// - `engine.mvcc.snapshot_reads` must stay ≥ 50% of baseline: the
///   floor is the deterministic per-spec read count, and certification
///   retries only add reads on top of it.
/// - `wall.mvcc.tput.*` gauges (both the SI and 2PL legs) get the
///   usual ≥ 40% wall-clock band.
/// - Everything else (cert aborts, GC tallies, force counts) is
///   scheduling-dependent and only reported.
pub fn mvcc_gate_rules() -> Vec<GateRule> {
    vec![
        GateRule::new("engine.txn.committed", Tolerance::Exact),
        GateRule::new("engine.locks.read_acquisitions", Tolerance::Exact),
        GateRule::new("engine.mvcc.snapshot_reads", Tolerance::MinRatio(0.5)),
        GateRule::new("wall.mvcc.tput.*", Tolerance::MinRatio(0.4)),
        GateRule::new("engine.*", Tolerance::Ignore),
        GateRule::new("wall.*", Tolerance::Ignore),
        GateRule::new("chaos.*", Tolerance::Ignore),
    ]
}

/// Result of gating one report against its baseline.
#[derive(Debug, Clone, Default)]
pub struct GateOutcome {
    /// Metrics a non-`Ignore` rule was applied to.
    pub checked: usize,
    /// Human-readable description of every metric that failed its
    /// tolerance. Empty means the gate passes.
    pub regressions: Vec<String>,
    /// Non-gated observations (ignored or unmatched metrics that
    /// changed), for the log.
    pub notes: Vec<String>,
}

impl GateOutcome {
    /// Whether the gate passes.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }

    /// One-paragraph rendering for the console.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "bench gate: {} metric(s) checked, {} regression(s), {} note(s)\n",
            self.checked,
            self.regressions.len(),
            self.notes.len()
        );
        for r in &self.regressions {
            out.push_str(&format!("  REGRESSION {r}\n"));
        }
        for n in &self.notes {
            out.push_str(&format!("  note {n}\n"));
        }
        out
    }
}

/// Diffs `current` against `baseline` and applies `rules`.
pub fn check_bench(baseline: &RunReport, current: &RunReport, rules: &[GateRule]) -> GateOutcome {
    let delta = baseline.metrics.diff(&current.metrics);
    let mut out = GateOutcome::default();
    let tolerance_of = |name: &str| rules.iter().find(|r| r.matches(name)).map(|r| r.tolerance);
    for (name, d) in &delta.counters {
        match tolerance_of(name) {
            Some(Tolerance::Exact) => {
                out.checked += 1;
                if d.delta != 0 {
                    out.regressions.push(format!(
                        "{name}: expected exactly {}, got {} (delta {:+})",
                        d.base, d.current, d.delta
                    ));
                }
            }
            Some(Tolerance::MinRatio(frac)) => {
                out.checked += 1;
                if (d.current as f64) < frac * d.base as f64 {
                    out.regressions.push(format!(
                        "{name}: {} is below {frac} x baseline {}",
                        d.current, d.base
                    ));
                }
            }
            Some(Tolerance::Ignore) | None => {
                if d.delta != 0 {
                    out.notes.push(format!("{name}: {} -> {}", d.base, d.current));
                }
            }
        }
    }
    for (name, d) in &delta.gauges {
        let (base, current) = (d.base.unwrap_or(0.0), d.current.unwrap_or(0.0));
        match tolerance_of(name) {
            Some(Tolerance::Exact) => {
                out.checked += 1;
                if d.delta != 0.0 {
                    out.regressions.push(format!("{name}: expected exactly {base}, got {current}"));
                }
            }
            Some(Tolerance::MinRatio(frac)) => {
                out.checked += 1;
                if current < frac * base {
                    out.regressions
                        .push(format!("{name}: {current:.1} is below {frac} x baseline {base:.1}"));
                }
            }
            Some(Tolerance::Ignore) | None => {
                if d.delta != 0.0 {
                    out.notes.push(format!("{name}: {base:.1} -> {current:.1}"));
                }
            }
        }
    }
    for (name, d) in &delta.histogram_counts {
        if d.delta != 0 {
            out.notes.push(format!("{name}: {} -> {} samples", d.base, d.current));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcv_obs::MetricsSnapshot;
    use std::collections::BTreeMap;

    fn report(counters: &[(&str, u64)], gauges: &[(&str, f64)]) -> RunReport {
        let mut r = RunReport::new("t");
        r.metrics = MetricsSnapshot {
            counters: counters.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
            gauges: gauges.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
            histograms: BTreeMap::new(),
        };
        r
    }

    #[test]
    fn identical_reports_pass_the_engine_gate() {
        let r = report(
            &[("engine.txn.committed", 4000), ("engine.txn.aborted", 17)],
            &[("wall.engine.tput.w4", 9000.0)],
        );
        let out = check_bench(&r, &r.clone(), &engine_gate_rules());
        assert!(out.ok(), "{}", out.summary());
        assert_eq!(out.checked, 2);
    }

    #[test]
    fn committed_count_drift_is_a_regression() {
        let base = report(&[("engine.txn.committed", 4000)], &[]);
        let cur = report(&[("engine.txn.committed", 3999)], &[]);
        let out = check_bench(&base, &cur, &engine_gate_rules());
        assert!(!out.ok());
        assert!(out.regressions[0].contains("engine.txn.committed"));
    }

    #[test]
    fn throughput_within_ratio_passes_below_fails() {
        let base = report(&[], &[("wall.engine.tput.w4", 10_000.0)]);
        let ok = report(&[], &[("wall.engine.tput.w4", 5_000.0)]);
        let bad = report(&[], &[("wall.engine.tput.w4", 3_000.0)]);
        assert!(check_bench(&base, &ok, &engine_gate_rules()).ok());
        let out = check_bench(&base, &bad, &engine_gate_rules());
        assert!(!out.ok());
        assert!(out.regressions[0].contains("wall.engine.tput.w4"));
    }

    #[test]
    fn mvcc_gate_pins_the_zero_read_lock_claim() {
        let base =
            report(&[("engine.txn.committed", 4000), ("engine.locks.read_acquisitions", 0)], &[]);
        let ok = check_bench(&base, &base.clone(), &mvcc_gate_rules());
        assert!(ok.ok(), "{}", ok.summary());
        // A single read slipping onto the 2PL lock path is a regression.
        let cur =
            report(&[("engine.txn.committed", 4000), ("engine.locks.read_acquisitions", 1)], &[]);
        let out = check_bench(&base, &cur, &mvcc_gate_rules());
        assert!(!out.ok());
        assert!(out.regressions[0].contains("engine.locks.read_acquisitions"));
    }

    #[test]
    fn scheduling_dependent_counters_are_notes_not_gates() {
        let base = report(&[("engine.locks.conflicts", 100)], &[]);
        let cur = report(&[("engine.locks.conflicts", 9_999)], &[]);
        let out = check_bench(&base, &cur, &engine_gate_rules());
        assert!(out.ok());
        assert_eq!(out.notes.len(), 1);
    }
}
