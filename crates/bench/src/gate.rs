//! Bench-regression gate: diffs a current benchmark [`RunReport`]
//! against a committed baseline with per-metric tolerances.
//!
//! The gate is deliberately coarse: deterministic counters must match
//! the baseline exactly, wall-clock throughput gauges must stay above
//! a fraction of the baseline (machines differ, thermal noise exists —
//! the gate catches order-of-magnitude regressions, not 5% drift), and
//! scheduling-dependent counters are reported but never gated.
//! `repro --check-bench <baseline.json>` runs the engine benchmark,
//! applies [`engine_gate_rules`], and exits nonzero on any regression.

use mcv_obs::RunReport;

/// How much a metric may deviate from the baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Must equal the baseline exactly (deterministic counters).
    Exact,
    /// Higher-is-better metric: current must be at least this fraction
    /// of the baseline (e.g. `0.4` = tolerate a 60% drop, fail beyond).
    MinRatio(f64),
    /// Lower-is-better metric (latencies, recovery times): current must
    /// stay at or below this multiple of the baseline (e.g. `3.0` =
    /// tolerate up to a 3x inflation, fail beyond). A zero baseline
    /// gates nothing — there is no scale to multiply.
    MaxRatio(f64),
    /// Reported in the notes, never gated (scheduling-dependent).
    Ignore,
}

/// One gate rule: a metric-name pattern with its tolerance. A pattern
/// ending in `*` matches by prefix, otherwise exactly. First matching
/// rule wins; unmatched metrics are reported but not gated.
#[derive(Debug, Clone)]
pub struct GateRule {
    /// Metric-name pattern (`engine.txn.committed` or `wall.engine.*`).
    pub pattern: String,
    /// The tolerance applied to matching metrics.
    pub tolerance: Tolerance,
}

impl GateRule {
    fn new(pattern: &str, tolerance: Tolerance) -> Self {
        GateRule { pattern: pattern.to_owned(), tolerance }
    }

    fn matches(&self, name: &str) -> bool {
        match self.pattern.strip_suffix('*') {
            Some(prefix) => name.starts_with(prefix),
            None => name == self.pattern,
        }
    }
}

/// The tolerances for `BENCH_engine.json` (the `exp.tput` record), as
/// documented in `EXPERIMENTS.md`:
///
/// - `engine.txn.committed` is exact — the driver admits a fixed
///   transaction quota per run, so the committed count is deterministic
///   even though interleavings are not.
/// - `wall.engine.tput.*` and `wall.engine.speedup.*` are wall-clock
///   gauges: the gate requires ≥ 40% of the baseline, catching real
///   regressions (a lost group-commit batch, an accidental serial
///   section) while shrugging off machine noise.
/// - Everything else under `engine.*` (aborts, conflicts, forces,
///   samples) is scheduling-dependent and only reported.
pub fn engine_gate_rules() -> Vec<GateRule> {
    vec![
        GateRule::new("engine.txn.committed", Tolerance::Exact),
        GateRule::new("wall.engine.tput.*", Tolerance::MinRatio(0.4)),
        GateRule::new("wall.engine.speedup.*", Tolerance::MinRatio(0.4)),
        GateRule::new("engine.*", Tolerance::Ignore),
        GateRule::new("wall.*", Tolerance::Ignore),
        GateRule::new("chaos.*", Tolerance::Ignore),
    ]
}

/// The tolerances for `BENCH_dist.json` (the `exp.dist` record):
///
/// - `dist.txn.total` and `dist.txn.committed` are exact — the
///   experiment drives a fixed transaction count through fault-free
///   runs, and AC2 validity obliges every one of them to commit at
///   every shard; a drift here means the protocol or the harness
///   regressed, not the machine.
/// - `wall.dist.tput.*` is wall-clock settle throughput, gated at
///   ≥ 30% of baseline (the settle time contains a fixed quiet tail,
///   so the gauge is noisier than the engine's).
/// - Everything else under `dist.*` (oracle tallies, per-run stats)
///   is reported, never gated.
pub fn dist_gate_rules() -> Vec<GateRule> {
    vec![
        GateRule::new("dist.txn.total", Tolerance::Exact),
        GateRule::new("dist.txn.committed", Tolerance::Exact),
        GateRule::new("wall.dist.tput.*", Tolerance::MinRatio(0.3)),
        GateRule::new("dist.*", Tolerance::Ignore),
        GateRule::new("engine.*", Tolerance::Ignore),
        GateRule::new("wall.*", Tolerance::Ignore),
        GateRule::new("trace.*", Tolerance::Ignore),
    ]
}

/// The tolerances for `BENCH_pipeline.json` (the `exp.pipeline`
/// record):
///
/// - `pipeline.txn.total` / `pipeline.txn.committed` are exact — the
///   experiment streams a fixed transaction count through fault-free
///   runs and AC2 obliges every one to commit at every shard;
/// - `pipeline.oracles.green` is exact — all legs (serial reference
///   and every pipelined sweep point) must pass all eight oracles;
/// - `pipeline.commit_log.dense` is exact — one coordinator decision
///   per transaction, indices dense, on every pipelined leg;
/// - `pipeline.verdict.*` is exact — 0/1 structural verdicts
///   (pipelined throughput ≥ 10x serial, WAL forces ≤ 0.5 per commit
///   record), each self-normalized within the run so machine speed
///   cancels out;
/// - `wall.pipeline.tput.*` and `wall.pipeline.speedup` get the usual
///   higher-is-better wall-clock band (≥ 30% of baseline — settle
///   times carry scheduling noise);
/// - everything else (`dist.*` tallies, engine counters) is reported,
///   never gated.
pub fn pipeline_gate_rules() -> Vec<GateRule> {
    vec![
        GateRule::new("pipeline.txn.total", Tolerance::Exact),
        GateRule::new("pipeline.txn.committed", Tolerance::Exact),
        GateRule::new("pipeline.oracles.green", Tolerance::Exact),
        GateRule::new("pipeline.commit_log.dense", Tolerance::Exact),
        GateRule::new("pipeline.verdict.*", Tolerance::Exact),
        GateRule::new("wall.pipeline.tput.*", Tolerance::MinRatio(0.3)),
        GateRule::new("wall.pipeline.speedup", Tolerance::MinRatio(0.3)),
        GateRule::new("pipeline.*", Tolerance::Ignore),
        GateRule::new("dist.*", Tolerance::Ignore),
        GateRule::new("engine.*", Tolerance::Ignore),
        GateRule::new("wall.*", Tolerance::Ignore),
        GateRule::new("trace.*", Tolerance::Ignore),
    ]
}

/// The tolerances for `BENCH_mvcc.json` (the `exp.mvcc` record):
///
/// - `engine.txn.committed` is exact — the driver admits a fixed quota
///   and retries certification losers, so every SI leg commits exactly
///   its quota.
/// - `engine.locks.read_acquisitions` is exact — and zero in the
///   baseline: snapshot reads never touch the 2PL lock table, so any
///   nonzero value means the MVCC read path regressed into the lock
///   path. This is the machine-checked form of the PR's core claim.
/// - `engine.mvcc.snapshot_reads` must stay ≥ 50% of baseline: the
///   floor is the deterministic per-spec read count, and certification
///   retries only add reads on top of it.
/// - `wall.mvcc.tput.*` gauges (both the SI and 2PL legs) get the
///   usual ≥ 40% wall-clock band.
/// - Everything else (cert aborts, GC tallies, force counts) is
///   scheduling-dependent and only reported.
pub fn mvcc_gate_rules() -> Vec<GateRule> {
    vec![
        GateRule::new("engine.txn.committed", Tolerance::Exact),
        GateRule::new("engine.locks.read_acquisitions", Tolerance::Exact),
        GateRule::new("engine.mvcc.snapshot_reads", Tolerance::MinRatio(0.5)),
        GateRule::new("wall.mvcc.tput.*", Tolerance::MinRatio(0.4)),
        GateRule::new("engine.*", Tolerance::Ignore),
        GateRule::new("wall.*", Tolerance::Ignore),
        GateRule::new("chaos.*", Tolerance::Ignore),
    ]
}

/// The tolerances for `BENCH_slo.json` (the `exp.slo` record):
///
/// - `slo.sweep.points`, `slo.recovery.runs`, and `slo.arrivals.total`
///   are exact — the sweep shape, the campaign size, and every arrival
///   schedule are pure functions of pinned seeds, so a drift means the
///   harness (not the machine) changed.
/// - `slo.verdict.*` is exact — these are 0/1 structural verdicts
///   (overload sheds, goodput holds ≥ 70% of the knee, oracles green,
///   campaign recovery fraction ≥ 90%), each self-normalized against
///   the same run's own knee so machine speed cancels out.
/// - `slo.recovery.within_slo` must stay ≥ 90% of baseline: the
///   campaign's pass count may wobble by a few seeds across machines,
///   but a broad recovery regression collapses it.
/// - `wall.slo.knee_tps` and `wall.slo.goodput.*` get the usual
///   higher-is-better wall-clock band (≥ 40% / ≥ 30% of baseline).
/// - the p99-at-fixed-load gauges for the past-the-knee rates
///   (`wall.slo.p99_us.r1000/r2000/r4000`) and the campaign's
///   `wall.slo.recovery_ms.*` percentiles are lower-is-better: the
///   gate fails when latency under overload or recovery time inflates
///   past 3x baseline — the whole point of the SLO record. Past the
///   knee these are pinned by the deadline budget and the modeled
///   force latency, so they are far more stable than the sub-knee
///   points (`r250`, `r500`), which are queue-noise dominated and only
///   reported.
/// - Everything else (`engine.*` admission tallies, `load.*` totals)
///   is reported, never gated.
pub fn slo_gate_rules() -> Vec<GateRule> {
    vec![
        GateRule::new("slo.sweep.points", Tolerance::Exact),
        GateRule::new("slo.recovery.runs", Tolerance::Exact),
        GateRule::new("slo.arrivals.total", Tolerance::Exact),
        GateRule::new("slo.verdict.*", Tolerance::Exact),
        GateRule::new("slo.recovery.within_slo", Tolerance::MinRatio(0.9)),
        GateRule::new("wall.slo.knee_tps", Tolerance::MinRatio(0.4)),
        GateRule::new("wall.slo.goodput.*", Tolerance::MinRatio(0.3)),
        GateRule::new("wall.slo.p99_us.r1000", Tolerance::MaxRatio(3.0)),
        GateRule::new("wall.slo.p99_us.r2000", Tolerance::MaxRatio(3.0)),
        GateRule::new("wall.slo.p99_us.r4000", Tolerance::MaxRatio(3.0)),
        GateRule::new("wall.slo.recovery_ms.*", Tolerance::MaxRatio(3.0)),
        GateRule::new("slo.*", Tolerance::Ignore),
        GateRule::new("engine.*", Tolerance::Ignore),
        GateRule::new("load.*", Tolerance::Ignore),
        GateRule::new("wall.*", Tolerance::Ignore),
    ]
}

/// The tolerances for `BENCH_prof.json` (the `exp.prof` record):
///
/// - `prof.verdict.*` is exact — 0/1 structural verdicts, each
///   self-normalized within one run so machine speed cancels out:
///   profiling overhead within 1.05x of the uninstrumented engine,
///   one harvested timeline per commit with none dropped, ≥ 90% of
///   cross-shard commit latency attributed to typed phases,
///   `transport_rtt` + `wal_force` as the top two cross-shard phases,
///   and the telemetry stream covering every scheduled arrival.
/// - `prof.dist.paths` is exact — the fault-free cross-shard leg
///   drives a fixed transaction count and AC2 obliges all of them to
///   commit, so the critical-path analyzer must recover exactly that
///   many weighted paths.
/// - `prof.telemetry.windows` and `prof.telemetry.arrivals` are exact
///   — telemetry windows are keyed by scheduled (virtual) arrival
///   time, a pure function of the seed.
/// - `wall.prof.*` (the measured ratio, throughputs, and per-phase
///   fractions) is wall-clock and only reported — the verdicts above
///   carry the gated form of each claim.
pub fn prof_gate_rules() -> Vec<GateRule> {
    vec![
        GateRule::new("prof.verdict.*", Tolerance::Exact),
        GateRule::new("prof.dist.paths", Tolerance::Exact),
        GateRule::new("prof.telemetry.windows", Tolerance::Exact),
        GateRule::new("prof.telemetry.arrivals", Tolerance::Exact),
        GateRule::new("prof.*", Tolerance::Ignore),
        GateRule::new("engine.*", Tolerance::Ignore),
        GateRule::new("dist.*", Tolerance::Ignore),
        GateRule::new("load.*", Tolerance::Ignore),
        GateRule::new("trace.*", Tolerance::Ignore),
        GateRule::new("wall.*", Tolerance::Ignore),
    ]
}

/// Result of gating one report against its baseline.
#[derive(Debug, Clone, Default)]
pub struct GateOutcome {
    /// Metrics a non-`Ignore` rule was applied to.
    pub checked: usize,
    /// Human-readable description of every metric that failed its
    /// tolerance. Empty means the gate passes.
    pub regressions: Vec<String>,
    /// Non-gated observations (ignored or unmatched metrics that
    /// changed), for the log.
    pub notes: Vec<String>,
}

impl GateOutcome {
    /// Whether the gate passes.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }

    /// One-paragraph rendering for the console.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "bench gate: {} metric(s) checked, {} regression(s), {} note(s)\n",
            self.checked,
            self.regressions.len(),
            self.notes.len()
        );
        for r in &self.regressions {
            out.push_str(&format!("  REGRESSION {r}\n"));
        }
        for n in &self.notes {
            out.push_str(&format!("  note {n}\n"));
        }
        out
    }
}

/// Diffs `current` against `baseline` and applies `rules`.
pub fn check_bench(baseline: &RunReport, current: &RunReport, rules: &[GateRule]) -> GateOutcome {
    let delta = baseline.metrics.diff(&current.metrics);
    let mut out = GateOutcome::default();
    let tolerance_of = |name: &str| rules.iter().find(|r| r.matches(name)).map(|r| r.tolerance);
    for (name, d) in &delta.counters {
        match tolerance_of(name) {
            Some(Tolerance::Exact) => {
                out.checked += 1;
                if d.delta != 0 {
                    out.regressions.push(format!(
                        "{name}: expected exactly {}, got {} (delta {:+})",
                        d.base, d.current, d.delta
                    ));
                }
            }
            Some(Tolerance::MinRatio(frac)) => {
                out.checked += 1;
                if (d.current as f64) < frac * d.base as f64 {
                    out.regressions.push(format!(
                        "{name}: {} is below {frac} x baseline {}",
                        d.current, d.base
                    ));
                }
            }
            Some(Tolerance::MaxRatio(frac)) => {
                out.checked += 1;
                if d.base > 0 && (d.current as f64) > frac * d.base as f64 {
                    out.regressions.push(format!(
                        "{name}: {} is above {frac} x baseline {}",
                        d.current, d.base
                    ));
                }
            }
            Some(Tolerance::Ignore) | None => {
                if d.delta != 0 {
                    out.notes.push(format!("{name}: {} -> {}", d.base, d.current));
                }
            }
        }
    }
    for (name, d) in &delta.gauges {
        let (base, current) = (d.base.unwrap_or(0.0), d.current.unwrap_or(0.0));
        match tolerance_of(name) {
            Some(Tolerance::Exact) => {
                out.checked += 1;
                if d.delta != 0.0 {
                    out.regressions.push(format!("{name}: expected exactly {base}, got {current}"));
                }
            }
            Some(Tolerance::MinRatio(frac)) => {
                out.checked += 1;
                if current < frac * base {
                    out.regressions
                        .push(format!("{name}: {current:.1} is below {frac} x baseline {base:.1}"));
                }
            }
            Some(Tolerance::MaxRatio(frac)) => {
                out.checked += 1;
                if base > 0.0 && current > frac * base {
                    out.regressions
                        .push(format!("{name}: {current:.1} is above {frac} x baseline {base:.1}"));
                }
            }
            Some(Tolerance::Ignore) | None => {
                if d.delta != 0.0 {
                    out.notes.push(format!("{name}: {base:.1} -> {current:.1}"));
                }
            }
        }
    }
    for (name, d) in &delta.histogram_counts {
        if d.delta != 0 {
            out.notes.push(format!("{name}: {} -> {} samples", d.base, d.current));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcv_obs::MetricsSnapshot;
    use std::collections::BTreeMap;

    fn report(counters: &[(&str, u64)], gauges: &[(&str, f64)]) -> RunReport {
        let mut r = RunReport::new("t");
        r.metrics = MetricsSnapshot {
            counters: counters.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
            gauges: gauges.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
            histograms: BTreeMap::new(),
        };
        r
    }

    #[test]
    fn identical_reports_pass_the_engine_gate() {
        let r = report(
            &[("engine.txn.committed", 4000), ("engine.txn.aborted", 17)],
            &[("wall.engine.tput.w4", 9000.0)],
        );
        let out = check_bench(&r, &r.clone(), &engine_gate_rules());
        assert!(out.ok(), "{}", out.summary());
        assert_eq!(out.checked, 2);
    }

    #[test]
    fn committed_count_drift_is_a_regression() {
        let base = report(&[("engine.txn.committed", 4000)], &[]);
        let cur = report(&[("engine.txn.committed", 3999)], &[]);
        let out = check_bench(&base, &cur, &engine_gate_rules());
        assert!(!out.ok());
        assert!(out.regressions[0].contains("engine.txn.committed"));
    }

    #[test]
    fn throughput_within_ratio_passes_below_fails() {
        let base = report(&[], &[("wall.engine.tput.w4", 10_000.0)]);
        let ok = report(&[], &[("wall.engine.tput.w4", 5_000.0)]);
        let bad = report(&[], &[("wall.engine.tput.w4", 3_000.0)]);
        assert!(check_bench(&base, &ok, &engine_gate_rules()).ok());
        let out = check_bench(&base, &bad, &engine_gate_rules());
        assert!(!out.ok());
        assert!(out.regressions[0].contains("wall.engine.tput.w4"));
    }

    #[test]
    fn mvcc_gate_pins_the_zero_read_lock_claim() {
        let base =
            report(&[("engine.txn.committed", 4000), ("engine.locks.read_acquisitions", 0)], &[]);
        let ok = check_bench(&base, &base.clone(), &mvcc_gate_rules());
        assert!(ok.ok(), "{}", ok.summary());
        // A single read slipping onto the 2PL lock path is a regression.
        let cur =
            report(&[("engine.txn.committed", 4000), ("engine.locks.read_acquisitions", 1)], &[]);
        let out = check_bench(&base, &cur, &mvcc_gate_rules());
        assert!(!out.ok());
        assert!(out.regressions[0].contains("engine.locks.read_acquisitions"));
    }

    #[test]
    fn max_ratio_gates_latency_inflation_not_improvement() {
        let base = report(&[], &[("wall.slo.p99_us.r2000", 4_000.0)]);
        let faster = report(&[], &[("wall.slo.p99_us.r2000", 900.0)]);
        let noisy = report(&[], &[("wall.slo.p99_us.r2000", 11_000.0)]);
        let blown = report(&[], &[("wall.slo.p99_us.r2000", 13_000.0)]);
        assert!(check_bench(&base, &faster, &slo_gate_rules()).ok());
        assert!(check_bench(&base, &noisy, &slo_gate_rules()).ok());
        let out = check_bench(&base, &blown, &slo_gate_rules());
        assert!(!out.ok());
        assert!(out.regressions[0].contains("above 3 x baseline"));
    }

    #[test]
    fn max_ratio_counter_gates_and_zero_baseline_is_ungated() {
        let rules = vec![GateRule::new("x.worst_ms", Tolerance::MaxRatio(2.0))];
        let base = report(&[("x.worst_ms", 100)], &[]);
        let ok = report(&[("x.worst_ms", 199)], &[]);
        let bad = report(&[("x.worst_ms", 201)], &[]);
        assert!(check_bench(&base, &ok, &rules).ok());
        assert!(!check_bench(&base, &bad, &rules).ok());
        // A zero baseline has no scale: anything passes.
        let zero = report(&[("x.worst_ms", 0)], &[]);
        let any = report(&[("x.worst_ms", 5_000)], &[]);
        assert!(check_bench(&zero, &any, &rules).ok());
    }

    #[test]
    fn slo_gate_pins_verdicts_and_campaign_shape() {
        let base = report(
            &[
                ("slo.sweep.points", 5),
                ("slo.recovery.runs", 100),
                ("slo.recovery.within_slo", 97),
                ("slo.verdict.overload_sheds", 1),
                ("slo.verdict.goodput_holds", 1),
                ("engine.admit.shed", 12_345),
            ],
            &[("wall.slo.recovery_ms.p99", 120.0)],
        );
        assert!(check_bench(&base, &base.clone(), &slo_gate_rules()).ok());
        // A flipped verdict is a regression even though it is "just" 1 -> 0.
        let mut cur = base.clone();
        cur.metrics.counters.insert("slo.verdict.goodput_holds".to_owned(), 0);
        let out = check_bench(&base, &cur, &slo_gate_rules());
        assert!(!out.ok());
        assert!(out.regressions[0].contains("slo.verdict.goodput_holds"));
        // The within-SLO count tolerates seed wobble but not collapse.
        let mut wobble = base.clone();
        wobble.metrics.counters.insert("slo.recovery.within_slo".to_owned(), 92);
        assert!(check_bench(&base, &wobble, &slo_gate_rules()).ok());
        let mut collapse = base.clone();
        collapse.metrics.counters.insert("slo.recovery.within_slo".to_owned(), 50);
        assert!(!check_bench(&base, &collapse, &slo_gate_rules()).ok());
        // Admission tallies are scheduling-dependent: notes only.
        let mut shed = base.clone();
        shed.metrics.counters.insert("engine.admit.shed".to_owned(), 99_999);
        let out = check_bench(&base, &shed, &slo_gate_rules());
        assert!(out.ok());
        assert_eq!(out.notes.len(), 1);
    }

    #[test]
    fn scheduling_dependent_counters_are_notes_not_gates() {
        let base = report(&[("engine.locks.conflicts", 100)], &[]);
        let cur = report(&[("engine.locks.conflicts", 9_999)], &[]);
        let out = check_bench(&base, &cur, &engine_gate_rules());
        assert!(out.ok());
        assert_eq!(out.notes.len(), 1);
    }
}
