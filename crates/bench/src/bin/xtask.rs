//! Repository chores the `./ci` pipeline leans on:
//!
//! ```text
//! xtask docsync                                # doc-inventory lint
//! xtask ci-report <gatelog> [--out <file>] [--flake] [--diff <old-report.json>]
//! ```
//!
//! `docsync` fails (exit 1) if any workspace crate is absent from the
//! DESIGN.md crate inventory or the README crate list — the docs drift
//! the moment a crate lands without them.
//!
//! `ci-report` turns the gate log the `./ci` script accumulates (one
//! `<name> <pass|fail> <seconds>` line per gate) into a summary table
//! on stdout and a machine-readable [`mcv_obs::RunReport`] at `--out`
//! (default `ci-report.json`), with the report's wall-clock fields
//! stripped so identical gate outcomes diff clean; the per-gate wall
//! times survive as facts — they are the report's content. With
//! `--flake`, gates named `<name>@r<round>` are grouped by base name
//! and any gate whose verdict differs between rounds is reported as
//! FLAKY. With `--diff <old-report.json>`, the current gates are
//! compared against a previous `ci-report.json`: verdict flips, per-
//! gate wall-time deltas, and any gate slowing down by more than 2x
//! are called out (informational — the exit code still reflects only
//! this run's verdicts). When `baselines/BENCH_prof.json` exists, the
//! summary also renders its phase-attribution tables — where engine
//! and cross-shard commit latency went the last time `exp.prof` was
//! baselined.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("docsync") => docsync(),
        Some("ci-report") => ci_report(&args[1..]),
        _ => {
            eprintln!(
                "usage: xtask docsync | xtask ci-report <gatelog> [--out <file>] [--flake] \
                 [--diff <old-report.json>]"
            );
            ExitCode::from(2)
        }
    }
}

/// The repository root, resolved from this crate's manifest directory
/// (`crates/bench`), so the lint works from any working directory.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Workspace member crate names: every `crates/*/Cargo.toml` (the root
/// manifest's members list is the glob `"crates/*"`), each member's
/// `name = "..."`. Vendored shims under `vendor/` are deliberately out
/// of scope — they mirror external APIs, not this project's design.
fn workspace_crates(root: &Path) -> Result<Vec<String>, String> {
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    let mut names = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot list {}: {e}", crates_dir.display()))?;
        let member_manifest = entry.path().join("Cargo.toml");
        if !member_manifest.is_file() {
            continue;
        }
        let text = std::fs::read_to_string(&member_manifest)
            .map_err(|e| format!("cannot read {}: {e}", member_manifest.display()))?;
        let name = text
            .lines()
            .find_map(|l| l.trim().strip_prefix("name = \""))
            .and_then(|rest| rest.strip_suffix('"'))
            .ok_or_else(|| format!("{}: no package name", member_manifest.display()))?;
        names.push(name.to_owned());
    }
    if names.is_empty() {
        return Err(format!("no member crates found under {}", crates_dir.display()));
    }
    names.sort();
    Ok(names)
}

fn docsync() -> ExitCode {
    let root = repo_root();
    let crates = match workspace_crates(&root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("docsync: {e}");
            return ExitCode::from(2);
        }
    };
    let mut missing = Vec::new();
    for doc in ["DESIGN.md", "README.md"] {
        let text = match std::fs::read_to_string(root.join(doc)) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("docsync: cannot read {doc}: {e}");
                return ExitCode::from(2);
            }
        };
        for name in &crates {
            if !text.contains(name.as_str()) {
                missing.push(format!("{doc} never mentions workspace crate {name}"));
            }
        }
    }
    if missing.is_empty() {
        println!(
            "docsync OK: {} workspace crates covered by DESIGN.md and README.md",
            crates.len()
        );
        ExitCode::SUCCESS
    } else {
        for m in &missing {
            eprintln!("docsync: {m}");
        }
        ExitCode::FAILURE
    }
}

/// One parsed gate-log line.
#[derive(Debug, Clone, PartialEq)]
struct Gate {
    name: String,
    pass: bool,
    secs: u64,
}

fn parse_gatelog(text: &str) -> Result<Vec<Gate>, String> {
    let mut gates = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let mut parts = line.split_whitespace();
        let (Some(name), Some(verdict), Some(secs)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!("malformed gate line {line:?}"));
        };
        let pass = match verdict {
            "pass" => true,
            "fail" => false,
            other => return Err(format!("gate {name}: verdict {other:?} is not pass|fail")),
        };
        let secs = secs.parse().map_err(|_| format!("gate {name}: bad seconds {secs:?}"))?;
        gates.push(Gate { name: name.to_owned(), pass, secs });
    }
    Ok(gates)
}

/// Gates whose verdict differs between `@r<round>` reruns of the same
/// base name — the flake detector's output.
fn divergent(gates: &[Gate]) -> Vec<String> {
    let mut by_base: BTreeMap<&str, (bool, bool)> = BTreeMap::new();
    for g in gates {
        let base = g.name.split('@').next().unwrap_or(&g.name);
        let e = by_base.entry(base).or_insert((false, false));
        if g.pass {
            e.0 = true;
        } else {
            e.1 = true;
        }
    }
    by_base.iter().filter(|(_, (p, f))| *p && *f).map(|(b, _)| (*b).to_owned()).collect()
}

/// One gate's outcome in a previous report, parsed back from its
/// `gate.<name>.status` / `gate.<name>.secs` fact pair.
fn old_gates(report: &mcv_obs::RunReport) -> BTreeMap<String, (bool, u64)> {
    let mut out: BTreeMap<String, (bool, u64)> = BTreeMap::new();
    for (key, value) in &report.facts {
        let Some(rest) = key.strip_prefix("gate.") else { continue };
        if let Some(name) = rest.strip_suffix(".status") {
            out.entry(name.to_owned()).or_insert((true, 0)).0 = value == "pass";
        } else if let Some(name) = rest.strip_suffix(".secs") {
            out.entry(name.to_owned()).or_insert((true, 0)).1 = value.parse().unwrap_or(0);
        }
    }
    out
}

/// Renders the gate-level diff against a previous report: verdict
/// flips, wall-time deltas, and >2x slowdowns (flagged when the gate
/// also lost at least 2 s, so one-second rounding jitter on fast gates
/// never trips it). Added/removed gates are listed; unchanged fast
/// gates are summarized, not itemized.
fn diff_summary(old: &BTreeMap<String, (bool, u64)>, gates: &[Gate]) -> String {
    let mut lines = Vec::new();
    for g in gates {
        match old.get(&g.name) {
            None => lines.push(format!("    {:<40} new gate ({}s)", g.name, g.secs)),
            Some((old_pass, old_secs)) => {
                let verdict = |p: bool| if p { "pass" } else { "FAIL" };
                if *old_pass != g.pass {
                    lines.push(format!(
                        "    {:<40} VERDICT FLIP: {} -> {}",
                        g.name,
                        verdict(*old_pass),
                        verdict(g.pass)
                    ));
                }
                let regressed = g.secs > 2 * old_secs && g.secs.saturating_sub(*old_secs) >= 2;
                if regressed {
                    lines.push(format!(
                        "    {:<40} SLOWER >2x: {}s -> {}s",
                        g.name, old_secs, g.secs
                    ));
                } else if g.secs != *old_secs {
                    lines.push(format!(
                        "    {:<40} {}s -> {}s ({:+}s)",
                        g.name,
                        old_secs,
                        g.secs,
                        g.secs as i64 - *old_secs as i64
                    ));
                }
            }
        }
    }
    for name in old.keys() {
        if !gates.iter().any(|g| &g.name == name) {
            lines.push(format!("    {name:<40} removed"));
        }
    }
    if lines.is_empty() {
        lines.push("    no verdict flips, no wall-time changes".to_owned());
    }
    lines.join("\n")
}

/// Renders the baselined `exp.prof` phase attribution (mean-latency
/// share per phase, engine and cross-shard columns) from
/// `baselines/BENCH_prof.json`, or `None` when no baseline exists.
/// The shares are wall gauges — informational context for the gate
/// table, not part of the diff-stable report facts.
fn phase_attribution_summary(root: &Path) -> Option<String> {
    let text = std::fs::read_to_string(root.join("baselines/BENCH_prof.json")).ok()?;
    let report = mcv_obs::RunReport::from_json(&text).ok()?;
    let share = |prefix: &str| -> Vec<(String, f64)> {
        let mut rows: Vec<(String, f64)> = report
            .metrics
            .gauges
            .iter()
            .filter_map(|(k, v)| k.strip_prefix(prefix).map(|p| (p.to_owned(), *v)))
            .collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite shares"));
        rows
    };
    let engine = share("wall.prof.engine.frac_mean.");
    let dist = share("wall.prof.dist.frac_mean.");
    if engine.is_empty() && dist.is_empty() {
        return None;
    }
    let mut out = String::from(
        "\n  phase attribution (baselines/BENCH_prof.json, % of mean commit latency):\n",
    );
    for (title, rows) in [("engine", &engine), ("cross-shard", &dist)] {
        if rows.is_empty() {
            continue;
        }
        out.push_str(&format!("    {title:<12}"));
        for (phase, frac) in rows {
            out.push_str(&format!(" {phase} {:.0}%", 100.0 * frac));
        }
        out.push('\n');
    }
    Some(out)
}

fn ci_report(args: &[String]) -> ExitCode {
    let mut out_path = PathBuf::from("ci-report.json");
    let mut flake = false;
    let mut diff_path: Option<PathBuf> = None;
    let mut log_path = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = PathBuf::from(p),
                None => {
                    eprintln!("ci-report: --out requires a path");
                    return ExitCode::from(2);
                }
            },
            "--flake" => flake = true,
            "--diff" => match it.next() {
                Some(p) => diff_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("ci-report: --diff requires a previous ci-report.json path");
                    return ExitCode::from(2);
                }
            },
            other => log_path = Some(PathBuf::from(other)),
        }
    }
    let Some(log_path) = log_path else {
        eprintln!(
            "usage: xtask ci-report <gatelog> [--out <file>] [--flake] [--diff <old-report.json>]"
        );
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&log_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("ci-report: cannot read {}: {e}", log_path.display());
            return ExitCode::from(2);
        }
    };
    let gates = match parse_gatelog(&text) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("ci-report: {e}");
            return ExitCode::from(2);
        }
    };

    let passed = gates.iter().filter(|g| g.pass).count();
    let failed = gates.len() - passed;
    let total_secs: u64 = gates.iter().map(|g| g.secs).sum();
    println!("  {:<40} {:>7} {:>7}", "gate", "status", "wall");
    for g in &gates {
        println!("  {:<40} {:>7} {:>6}s", g.name, if g.pass { "pass" } else { "FAIL" }, g.secs);
    }
    println!("  {:<40} {:>7} {:>6}s", format!("total ({} gates)", gates.len()), "", total_secs);

    let flaky = if flake { divergent(&gates) } else { Vec::new() };
    for f in &flaky {
        println!("  FLAKY: {f} diverged between rounds");
    }

    if let Some(diff_path) = &diff_path {
        let old = std::fs::read_to_string(diff_path)
            .map_err(|e| e.to_string())
            .and_then(|t| mcv_obs::RunReport::from_json(&t).map_err(|e| e.to_string()));
        match old {
            Ok(old) => {
                println!("  diff vs {}:", diff_path.display());
                println!("{}", diff_summary(&old_gates(&old), &gates));
            }
            Err(e) => {
                eprintln!("ci-report: cannot read --diff {}: {e}", diff_path.display());
                return ExitCode::from(2);
            }
        }
    }

    if let Some(table) = phase_attribution_summary(&repo_root()) {
        println!("{table}");
    }

    let mut report = mcv_obs::RunReport::new("ci")
        .fact("gates", gates.len())
        .fact("passed", passed)
        .fact("failed", failed)
        .fact("flaky", flaky.len());
    for g in &gates {
        report = report
            .fact(format!("gate.{}.status", g.name), if g.pass { "pass" } else { "fail" })
            .fact(format!("gate.{}.secs", g.name), g.secs);
    }
    for f in &flaky {
        report = report.fact(format!("flaky.{f}"), "diverged");
    }
    report.strip_wall();
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("ci-report: cannot write {}: {e}", out_path.display());
        return ExitCode::from(2);
    }
    println!("  report: {}", out_path.display());

    if failed > 0 || !flaky.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gatelog_round_trips() {
        let gates = parse_gatelog("fmt pass 1\ntests fail 42\n").expect("parses");
        assert_eq!(
            gates,
            vec![
                Gate { name: "fmt".into(), pass: true, secs: 1 },
                Gate { name: "tests".into(), pass: false, secs: 42 },
            ]
        );
        assert!(parse_gatelog("fmt maybe 1").is_err());
    }

    #[test]
    fn divergence_needs_both_verdicts_for_one_base_name() {
        let gates = parse_gatelog(
            "dist_smoke@r1 pass 3\ndist_smoke@r2 fail 3\nchaos_smoke@r1 fail 2\nchaos_smoke@r2 fail 2\n",
        )
        .expect("parses");
        assert_eq!(divergent(&gates), vec!["dist_smoke".to_owned()]);
    }

    #[test]
    fn diff_flags_flips_and_2x_regressions_only() {
        let old_report = mcv_obs::RunReport::new("ci")
            .fact("gate.tests.status", "pass")
            .fact("gate.tests.secs", 10u64)
            .fact("gate.dist_smoke.status", "pass")
            .fact("gate.dist_smoke.secs", 3u64)
            .fact("gate.docsync.status", "fail")
            .fact("gate.docsync.secs", 1u64)
            .fact("gate.gone.status", "pass")
            .fact("gate.gone.secs", 2u64);
        let old = old_gates(&old_report);
        assert_eq!(old["tests"], (true, 10));
        assert_eq!(old["docsync"], (false, 1));
        let gates = parse_gatelog(
            "tests fail 11\ndist_smoke pass 9\ndocsync pass 1\npipeline_smoke pass 4\n",
        )
        .expect("parses");
        let diff = diff_summary(&old, &gates);
        assert!(diff.contains("VERDICT FLIP: pass -> FAIL"), "{diff}");
        assert!(diff.contains("VERDICT FLIP: FAIL -> pass"), "{diff}");
        assert!(diff.contains("SLOWER >2x: 3s -> 9s"), "{diff}");
        assert!(diff.contains("new gate (4s)"), "{diff}");
        assert!(diff.contains("removed"), "{diff}");
        // 10s -> 11s is a delta, not a flagged regression.
        assert!(diff.contains("10s -> 11s (+1s)"), "{diff}");
        assert!(!diff.contains("SLOWER >2x: 10s"), "{diff}");
    }

    #[test]
    fn diff_of_identical_outcomes_is_quiet() {
        let old_report = mcv_obs::RunReport::new("ci")
            .fact("gate.fmt.status", "pass")
            .fact("gate.fmt.secs", 1u64);
        let gates = parse_gatelog("fmt pass 1\n").expect("parses");
        let diff = diff_summary(&old_gates(&old_report), &gates);
        assert!(diff.contains("no verdict flips"), "{diff}");
    }

    #[test]
    fn phase_attribution_summary_reads_the_baseline() {
        let table = phase_attribution_summary(&repo_root()).expect("BENCH_prof.json is committed");
        assert!(table.contains("cross-shard"), "{table}");
        assert!(table.contains("transport_rtt"), "{table}");
        assert!(phase_attribution_summary(Path::new("/nonexistent")).is_none());
    }

    #[test]
    fn workspace_crates_include_the_known_ones() {
        let crates = workspace_crates(&repo_root()).expect("workspace parses");
        for expected in ["mcv-core", "mcv-dist", "mcv-bench"] {
            assert!(crates.iter().any(|c| c == expected), "{expected} missing from {crates:?}");
        }
    }
}
