//! Trace explorer: record, check, and render causal event traces.
//!
//! ```text
//! trace record --out t.jsonl [--seed N] [--faults]   # 3PC run under the simulator
//! trace record-engine --out t.jsonl [--workers N] [--txns N]
//! trace check t.jsonl                                # happens-before audit
//! trace show t.jsonl [--filter site=N|txn=N|kind=K]  # per-site swimlanes
//! trace show t.jsonl --causal-path <txn>             # HB chain of one txn
//! trace critical-path t.jsonl [--txn N]              # weighted commit path + attribution
//! trace smoke                                        # record+check+render, for CI
//! ```
//!
//! `record` emits deterministic JSONL (wall-clock stripped): same seed,
//! same bytes. `record-engine` keeps wall-clock timestamps so
//! `--causal-path` can attribute time along the commit critical path.

use mcv_chaos::{run_chaos, ChaosConfig, FaultPlan, FaultSchedule};
use mcv_trace::{CausalTrace, Filter};
use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("record") => record(&args[1..]),
        Some("record-engine") => record_engine(&args[1..]),
        Some("check") => check(&args[1..]),
        Some("show") => show(&args[1..]),
        Some("critical-path") => critical_path(&args[1..]),
        Some("smoke") => smoke(),
        _ => {
            eprintln!(
                "usage: trace record --out <path> [--seed N] [--faults]\n\
                 \x20      trace record-engine --out <path> [--workers N] [--txns N]\n\
                 \x20      trace check <path>\n\
                 \x20      trace show <path> [--filter k=v]... [--causal-path <txn>]\n\
                 \x20      trace critical-path <path> [--txn N]\n\
                 \x20      trace smoke"
            );
            2
        }
    };
    std::process::exit(code);
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

/// Runs a 3-cohort 3PC commit under the simulator, recording the full
/// causal trace, and writes it (wall-clock stripped) as JSONL.
fn record(args: &[String]) -> i32 {
    let Some(out) = flag_value(args, "--out") else {
        eprintln!("trace record: --out <path> is required");
        return 2;
    };
    let seed = flag_value(args, "--seed").and_then(|s| s.parse().ok()).unwrap_or(0);
    let mut cfg = ChaosConfig { seed, ..ChaosConfig::default() };
    if args.iter().any(|a| a == "--faults") {
        cfg.schedule = FaultSchedule::generate(seed, &FaultPlan::tolerated(cfg.n_procs(), 300));
    }
    let (outcome, mut trace) = mcv_trace::record_trace(None, || run_chaos(&cfg));
    trace.strip_wall();
    if let Err(e) = trace.write_jsonl(Path::new(&out)) {
        eprintln!("trace record: cannot write {out}: {e}");
        return 1;
    }
    println!(
        "recorded {} events ({} oracles pass) -> {out}",
        trace.len(),
        outcome.oracles.iter().filter(|o| o.pass).count()
    );
    0
}

/// Runs a small multi-threaded engine workload under a recorder and
/// writes the trace. Wall-clock is kept so `--causal-path` can show
/// where commit latency went.
fn record_engine(args: &[String]) -> i32 {
    use mcv_engine::{Engine, EngineConfig};
    let Some(out) = flag_value(args, "--out") else {
        eprintln!("trace record-engine: --out <path> is required");
        return 2;
    };
    let workers: usize = flag_value(args, "--workers").and_then(|s| s.parse().ok()).unwrap_or(2);
    let txns: u64 = flag_value(args, "--txns").and_then(|s| s.parse().ok()).unwrap_or(5);
    let ((), trace) = mcv_trace::record_trace(None, || {
        let engine = Engine::new(EngineConfig {
            group_commit: true,
            force_latency_us: 200,
            group_window_us: 20,
            ..Default::default()
        });
        let threads: Vec<_> = (0..workers)
            .map(|w| {
                let engine = engine.clone();
                std::thread::spawn(move || {
                    for i in 0..txns {
                        let mut t = engine.begin();
                        let r = t
                            .read("ctr")
                            .and_then(|v| t.write("ctr", v + 1))
                            .and_then(|()| t.write(&format!("w{w}.{i}"), i as i64));
                        match r {
                            Ok(()) => t.commit().expect("commit"),
                            Err(_) => t.abort(),
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("worker");
        }
    });
    if let Err(e) = trace.write_jsonl(Path::new(&out)) {
        eprintln!("trace record-engine: cannot write {out}: {e}");
        return 1;
    }
    println!("recorded {} events from {workers} workers -> {out}", trace.len());
    0
}

fn load(path: &str) -> Result<CausalTrace, String> {
    CausalTrace::read_jsonl(Path::new(path)).map_err(|e| format!("cannot read {path}: {e}"))
}

/// Happens-before audit of a recorded trace; nonzero exit on violation.
fn check(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("trace check: a trace path is required");
        return 2;
    };
    let trace = match load(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace check: {e}");
            return 1;
        }
    };
    let report = mcv_trace::check(&trace);
    println!("{}", report.summary().trim_end());
    if let Some(divergence) = mcv_trace::explain_divergence(&trace) {
        println!("{divergence}");
    }
    i32::from(!report.ok())
}

/// Renders swimlanes (default) or one transaction's causal path.
fn show(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("trace show: a trace path is required");
        return 2;
    };
    let trace = match load(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace show: {e}");
            return 1;
        }
    };
    if let Some(txn) = flag_value(args, "--causal-path") {
        let Ok(txn) = txn.parse::<u64>() else {
            eprintln!("trace show: --causal-path takes a numeric transaction id");
            return 2;
        };
        print!("{}", mcv_trace::render_causal_path(&trace, txn));
        return 0;
    }
    let mut filter = Filter::default();
    let mut rest = args[1..].iter();
    while let Some(a) = rest.next() {
        if a == "--filter" {
            let Some(spec) = rest.next() else {
                eprintln!("trace show: --filter requires site=N, txn=N, or kind=NAME");
                return 2;
            };
            if let Err(e) = filter.parse_arg(spec) {
                eprintln!("trace show: {e}");
                return 2;
            }
        }
    }
    print!("{}", mcv_trace::swimlanes(&trace, &filter));
    0
}

/// Weighted critical-path analysis: the longest causal chain behind
/// each commit decision, with wall time attributed to typed phases.
/// Needs a trace recorded with wall-clock kept (`record-engine`, or a
/// `run_dist` trace) — stripped traces carry no edge weights.
fn critical_path(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("trace critical-path: a trace path is required");
        return 2;
    };
    let trace = match load(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace critical-path: {e}");
            return 1;
        }
    };
    let committed = mcv_prof::committed_txns(&trace);
    if committed.is_empty() {
        eprintln!("trace critical-path: no commit decisions in {path}");
        return 1;
    }
    if let Some(txn) = flag_value(args, "--txn") {
        let Ok(txn) = txn.parse::<u64>() else {
            eprintln!("trace critical-path: --txn takes a numeric transaction id");
            return 2;
        };
        return match mcv_prof::commit_path(&trace, txn) {
            Some(p) => {
                print!("{}", p.render());
                0
            }
            None => {
                eprintln!(
                    "trace critical-path: no weighted path for txn {txn} — either it never \
                     committed, or the trace was recorded wall-stripped (re-record with \
                     `trace record-engine`, which keeps wall-clock)"
                );
                1
            }
        };
    }
    let (table, paths) = mcv_prof::attribute_commits(&trace);
    if paths.is_empty() {
        eprintln!(
            "trace critical-path: {} committed txn(s) but no weighted paths — the trace was \
             recorded wall-stripped (re-record with `trace record-engine`, which keeps \
             wall-clock)",
            committed.len()
        );
        return 1;
    }
    println!("{} commit path(s) over {} events", paths.len(), trace.len());
    print!("{}", table.render());
    0
}

/// CI gate: record a short 3PC run, check happens-before, and render
/// both views; any failure is a nonzero exit.
fn smoke() -> i32 {
    let dir = std::env::temp_dir().join(format!("mcv-trace-smoke-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("trace smoke: cannot create {}: {e}", dir.display());
        return 1;
    }
    let path: PathBuf = dir.join("smoke.jsonl");
    let out = path.to_string_lossy().into_owned();
    let code = record(&["--out".to_owned(), out.clone()]);
    if code != 0 {
        return code;
    }
    let code = check(std::slice::from_ref(&out));
    if code != 0 {
        eprintln!("trace smoke: happens-before check FAILED");
        return code;
    }
    let trace = load(&out).expect("just written");
    let lanes = mcv_trace::swimlanes(&trace, &Filter::default());
    let path1 = mcv_trace::render_causal_path(&trace, 1);
    let _ = std::fs::remove_dir_all(&dir);
    if !path1.contains("COMMIT") {
        eprintln!("trace smoke: causal path of txn 1 has no commit decision:\n{path1}");
        return 1;
    }
    println!(
        "swimlanes: {} lines; causal path: {} lines",
        lanes.lines().count(),
        path1.lines().count()
    );
    println!("trace smoke OK");
    0
}
