//! Reproduction driver: regenerates every table and figure of the
//! thesis, plus the added quantitative experiments.
//!
//! ```text
//! repro all                      # everything, in DESIGN.md order
//! repro list                     # available artifact ids
//! repro fig3.2 ch5               # specific artifacts
//! repro exp.msg --json target/repro   # also write RunReport JSON per artifact
//! ```
//!
//! With `--json <dir>`, each artifact generator runs inside an
//! [`mcv_obs::collect`] scope and a machine-readable
//! [`mcv_obs::RunReport`] (metrics + spans + wall-clock) is written to
//! `<dir>/<id>.json`. Counters are deterministic across identically
//! seeded runs; only `wall.*` metrics and span/report wall-clock fields
//! vary. The concurrent-engine artifacts (`exp.tput`, `exp.gc`) are the
//! exception: their `engine.*` counters depend on thread scheduling.
//! `exp.tput` additionally writes its RunReport as
//! `<dir>/BENCH_engine.json`, the canonical engine benchmark record.

use mcv_bench::artifacts;
use std::path::PathBuf;

fn main() {
    let mut json_dir: Option<PathBuf> = None;
    let mut check_bench: Option<PathBuf> = None;
    let mut args: Vec<String> = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        if a == "--json" {
            match raw.next() {
                Some(dir) => json_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--json requires a directory argument");
                    std::process::exit(2);
                }
            }
        } else if a == "--check-bench" {
            match raw.next() {
                Some(path) => check_bench = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--check-bench requires a baseline JSON path");
                    std::process::exit(2);
                }
            }
        } else {
            args.push(a);
        }
    }
    if let Some(path) = check_bench {
        run_bench_gate(&path);
        return;
    }
    let known = artifacts();
    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        eprintln!("usage: repro [--json <dir>] <artifact-id>... | all | list");
        eprintln!("       repro --check-bench <baseline.json>   # gate exp.tput vs baseline");
        eprintln!("artifact ids:");
        for (id, _) in &known {
            eprintln!("  {id}");
        }
        std::process::exit(2);
    }
    if args[0] == "list" {
        for (id, _) in &known {
            println!("{id}");
        }
        return;
    }
    let selected: Vec<&mcv_bench::Artifact> = if args[0] == "all" {
        known.iter().collect()
    } else {
        let mut v = Vec::new();
        for a in &args {
            match known.iter().find(|(id, _)| id == a) {
                Some(found) => v.push(found),
                None => {
                    eprintln!("unknown artifact {a:?}; try `repro list`");
                    std::process::exit(2);
                }
            }
        }
        v
    };
    for (id, gen) in selected {
        println!("==================== {id} ====================");
        match &json_dir {
            None => println!("{}", gen()),
            Some(dir) => {
                let (text, data) = mcv_obs::collect(gen);
                println!("{text}");
                let report = data
                    .into_report(*id)
                    .fact("artifact", *id)
                    .fact("generator", "mcv-bench repro");
                match mcv_obs::write_report(dir, &report) {
                    Ok(path) => eprintln!("[obs] wrote {}", path.display()),
                    Err(e) => {
                        eprintln!("[obs] failed to write report for {id}: {e}");
                        std::process::exit(1);
                    }
                }
                if *id == "exp.tput" {
                    // The engine throughput run is the repo's benchmark
                    // record; mirror it under the BENCH_ name.
                    let mut bench = report;
                    bench.id = "BENCH_engine".to_owned();
                    match mcv_obs::write_report(dir, &bench) {
                        Ok(path) => eprintln!("[obs] wrote {}", path.display()),
                        Err(e) => {
                            eprintln!("[obs] failed to write BENCH_engine.json: {e}");
                            std::process::exit(1);
                        }
                    }
                }
            }
        }
    }
}

/// Re-runs the engine benchmark (`exp.tput`) and gates its metrics
/// against the committed baseline; exits 1 on any regression. The
/// tolerances are [`mcv_bench::engine_gate_rules`] (documented in
/// EXPERIMENTS.md).
fn run_bench_gate(baseline_path: &std::path::Path) {
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(text) => match mcv_obs::RunReport::from_json(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("--check-bench: {} is not a RunReport: {e}", baseline_path.display());
                std::process::exit(2);
            }
        },
        Err(e) => {
            eprintln!("--check-bench: cannot read {}: {e}", baseline_path.display());
            std::process::exit(2);
        }
    };
    println!("==================== bench gate (exp.tput) ====================");
    let (text, data) = mcv_obs::collect(mcv_bench::exp_tput);
    println!("{text}");
    let current = data.into_report("BENCH_engine");
    let outcome = mcv_bench::check_bench(&baseline, &current, &mcv_bench::engine_gate_rules());
    print!("{}", outcome.summary());
    if !outcome.ok() {
        eprintln!("bench gate FAILED against {}", baseline_path.display());
        std::process::exit(1);
    }
    println!("bench gate OK against {}", baseline_path.display());
}
