//! Reproduction driver: regenerates every table and figure of the
//! thesis, plus the added quantitative experiments.
//!
//! ```text
//! repro all          # everything, in DESIGN.md order
//! repro list         # available artifact ids
//! repro fig3.2 ch5   # specific artifacts
//! ```

use mcv_bench::artifacts;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let known = artifacts();
    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        eprintln!("usage: repro <artifact-id>... | all | list");
        eprintln!("artifact ids:");
        for (id, _) in &known {
            eprintln!("  {id}");
        }
        std::process::exit(2);
    }
    if args[0] == "list" {
        for (id, _) in &known {
            println!("{id}");
        }
        return;
    }
    let selected: Vec<&mcv_bench::Artifact> = if args[0] == "all" {
        known.iter().collect()
    } else {
        let mut v = Vec::new();
        for a in &args {
            match known.iter().find(|(id, _)| id == a) {
                Some(found) => v.push(found),
                None => {
                    eprintln!("unknown artifact {a:?}; try `repro list`");
                    std::process::exit(2);
                }
            }
        }
        v
    };
    for (id, gen) in selected {
        println!("==================== {id} ====================");
        println!("{}", gen());
    }
}
