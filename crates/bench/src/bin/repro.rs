//! Reproduction driver: regenerates every table and figure of the
//! thesis, plus the added quantitative experiments.
//!
//! ```text
//! repro all                      # everything, in DESIGN.md order
//! repro list                     # available artifact ids
//! repro fig3.2 ch5               # specific artifacts
//! repro exp.msg --json target/repro   # also write RunReport JSON per artifact
//! ```
//!
//! With `--json <dir>`, each artifact generator runs inside an
//! [`mcv_obs::collect`] scope and a machine-readable
//! [`mcv_obs::RunReport`] (metrics + spans + wall-clock) is written to
//! `<dir>/<id>.json`. Counters are deterministic across identically
//! seeded runs; only `wall.*` metrics and span/report wall-clock fields
//! vary. The concurrent artifacts (`exp.tput`, `exp.gc`, `exp.dist`)
//! are the exception: their `engine.*`/`dist.*` wall metrics depend on
//! thread scheduling. `exp.tput` additionally writes its RunReport as
//! `<dir>/BENCH_engine.json`, `exp.dist` as `<dir>/BENCH_dist.json`,
//! `exp.pipeline` as `<dir>/BENCH_pipeline.json`, `exp.mvcc` as
//! `<dir>/BENCH_mvcc.json`, `exp.slo` as `<dir>/BENCH_slo.json`, and
//! `exp.prof` as `<dir>/BENCH_prof.json` — the canonical benchmark
//! records. `--check-bench` takes one or more baseline files and
//! dispatches each on its report id.

use mcv_bench::artifacts;
use std::path::PathBuf;

fn main() {
    let mut json_dir: Option<PathBuf> = None;
    let mut baselines: Vec<PathBuf> = Vec::new();
    let mut args: Vec<String> = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        if a == "--json" {
            match raw.next() {
                Some(dir) => json_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--json requires a directory argument");
                    std::process::exit(2);
                }
            }
        } else if a == "--check-bench" {
            // Greedy: every following non-flag argument is a baseline,
            // so `--check-bench baselines/*.json` gates them all.
            match raw.next() {
                Some(path) => baselines.push(PathBuf::from(path)),
                None => {
                    eprintln!("--check-bench requires at least one baseline JSON path");
                    std::process::exit(2);
                }
            }
        } else if !baselines.is_empty() && a.ends_with(".json") {
            baselines.push(PathBuf::from(a));
        } else {
            args.push(a);
        }
    }
    if !baselines.is_empty() {
        let mut failed = false;
        for path in &baselines {
            failed |= !run_bench_gate(path);
        }
        if failed {
            std::process::exit(1);
        }
        return;
    }
    let known = artifacts();
    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        eprintln!("usage: repro [--json <dir>] <artifact-id>... | all | list");
        eprintln!("       repro --check-bench <baseline.json>...   # gate benchmarks vs baselines");
        eprintln!("artifact ids:");
        for (id, _) in &known {
            eprintln!("  {id}");
        }
        std::process::exit(2);
    }
    if args[0] == "list" {
        for (id, _) in &known {
            println!("{id}");
        }
        return;
    }
    let selected: Vec<&mcv_bench::Artifact> = if args[0] == "all" {
        known.iter().collect()
    } else {
        let mut v = Vec::new();
        for a in &args {
            match known.iter().find(|(id, _)| id == a) {
                Some(found) => v.push(found),
                None => {
                    eprintln!("unknown artifact {a:?}; try `repro list`");
                    std::process::exit(2);
                }
            }
        }
        v
    };
    for (id, gen) in selected {
        println!("==================== {id} ====================");
        match &json_dir {
            None => println!("{}", gen()),
            Some(dir) => {
                let (text, data) = mcv_obs::collect(gen);
                println!("{text}");
                let report = data
                    .into_report(*id)
                    .fact("artifact", *id)
                    .fact("generator", "mcv-bench repro");
                match mcv_obs::write_report(dir, &report) {
                    Ok(path) => eprintln!("[obs] wrote {}", path.display()),
                    Err(e) => {
                        eprintln!("[obs] failed to write report for {id}: {e}");
                        std::process::exit(1);
                    }
                }
                // The throughput runs are the repo's benchmark
                // records; mirror them under their BENCH_ names.
                let bench_id = match *id {
                    "exp.tput" => Some("BENCH_engine"),
                    "exp.dist" => Some("BENCH_dist"),
                    "exp.pipeline" => Some("BENCH_pipeline"),
                    "exp.mvcc" => Some("BENCH_mvcc"),
                    "exp.slo" => Some("BENCH_slo"),
                    "exp.prof" => Some("BENCH_prof"),
                    _ => None,
                };
                if let Some(bench_id) = bench_id {
                    let mut bench = report;
                    bench.id = bench_id.to_owned();
                    match mcv_obs::write_report(dir, &bench) {
                        Ok(path) => eprintln!("[obs] wrote {}", path.display()),
                        Err(e) => {
                            eprintln!("[obs] failed to write {bench_id}.json: {e}");
                            std::process::exit(1);
                        }
                    }
                }
            }
        }
    }
}

/// Re-runs the benchmark a baseline records and gates its metrics
/// against that baseline; returns false on regression. The baseline's
/// report id picks the benchmark and its tolerances: `BENCH_engine`
/// re-runs `exp.tput` under [`mcv_bench::engine_gate_rules`],
/// `BENCH_dist` re-runs `exp.dist` under
/// [`mcv_bench::dist_gate_rules`], `BENCH_pipeline` re-runs
/// `exp.pipeline` under [`mcv_bench::pipeline_gate_rules`],
/// `BENCH_slo` re-runs `exp.slo` under [`mcv_bench::slo_gate_rules`],
/// and `BENCH_prof` re-runs `exp.prof` under
/// [`mcv_bench::prof_gate_rules`] (all documented in EXPERIMENTS.md).
fn run_bench_gate(baseline_path: &std::path::Path) -> bool {
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(text) => match mcv_obs::RunReport::from_json(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("--check-bench: {} is not a RunReport: {e}", baseline_path.display());
                std::process::exit(2);
            }
        },
        Err(e) => {
            eprintln!("--check-bench: cannot read {}: {e}", baseline_path.display());
            std::process::exit(2);
        }
    };
    let (artifact, generator, rules): (&str, fn() -> String, Vec<mcv_bench::GateRule>) =
        match baseline.id.as_str() {
            "BENCH_engine" => ("exp.tput", mcv_bench::exp_tput, mcv_bench::engine_gate_rules()),
            "BENCH_dist" => ("exp.dist", mcv_bench::exp_dist, mcv_bench::dist_gate_rules()),
            "BENCH_pipeline" => {
                ("exp.pipeline", mcv_bench::exp_pipeline, mcv_bench::pipeline_gate_rules())
            }
            "BENCH_mvcc" => ("exp.mvcc", mcv_bench::exp_mvcc, mcv_bench::mvcc_gate_rules()),
            "BENCH_slo" => ("exp.slo", mcv_bench::exp_slo, mcv_bench::slo_gate_rules()),
            "BENCH_prof" => ("exp.prof", mcv_bench::exp_prof, mcv_bench::prof_gate_rules()),
            other => {
                eprintln!(
                    "--check-bench: unknown baseline id {other:?} in {} \
                     (expected BENCH_engine, BENCH_dist, BENCH_pipeline, BENCH_mvcc, BENCH_slo \
                     or BENCH_prof)",
                    baseline_path.display()
                );
                std::process::exit(2);
            }
        };
    println!("==================== bench gate ({artifact}) ====================");
    let (text, data) = mcv_obs::collect(generator);
    println!("{text}");
    let current = data.into_report(baseline.id.clone());
    let outcome = mcv_bench::check_bench(&baseline, &current, &rules);
    print!("{}", outcome.summary());
    if !outcome.ok() {
        eprintln!("bench gate FAILED against {}", baseline_path.display());
        return false;
    }
    println!("bench gate OK against {}", baseline_path.display());
    true
}
