//! # mcv-bench
//!
//! Reproduction harness and benchmarks: regenerates every table and
//! figure of the thesis (see `DESIGN.md` for the per-experiment index)
//! and adds the quantitative experiments the thesis motivates but never
//! runs.
//!
//! The `repro` binary drives everything:
//!
//! ```text
//! cargo run --release -p mcv-bench --bin repro -- all
//! cargo run --release -p mcv-bench --bin repro -- fig3.2
//! ```

#![warn(missing_docs)]

pub mod experiments;
pub mod gate;

pub use experiments::*;
pub use gate::{
    check_bench, dist_gate_rules, engine_gate_rules, mvcc_gate_rules, pipeline_gate_rules,
    prof_gate_rules, slo_gate_rules, GateOutcome, GateRule, Tolerance,
};
