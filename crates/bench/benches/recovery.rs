//! Recovery cost: WAL replay time vs log length and checkpoint
//! frequency (the exp.rec experiment under Criterion's statistics).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcv_txn::{SiteDb, TxnId, Wal};

fn loaded_wal(updates: usize, ckpt_every: usize) -> Wal {
    let mut wal = Wal::new();
    let mut state = std::collections::BTreeMap::new();
    for i in 0..updates {
        let t = TxnId(i as u64 + 1);
        let item = format!("X{}", i % 16);
        wal.log_update(t, item.clone(), 0, i as i64);
        wal.log_commit(t);
        state.insert(item, i as i64);
        if ckpt_every > 0 && i % ckpt_every == ckpt_every - 1 {
            wal.log_checkpoint(state.clone());
        }
    }
    wal
}

fn bench_wal_recover(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery/wal");
    for updates in [100usize, 1_000, 10_000] {
        for ckpt in [0usize, 100] {
            let wal = loaded_wal(updates, ckpt);
            let label = format!(
                "{updates}-updates-ckpt-{}",
                if ckpt == 0 { "never".into() } else { ckpt.to_string() }
            );
            group.bench_with_input(BenchmarkId::from_parameter(label), &wal, |b, wal| {
                b.iter(|| {
                    let state = wal.recover();
                    assert!(!state.is_empty());
                })
            });
        }
    }
    group.finish();
}

fn bench_site_crash_recover(c: &mut Criterion) {
    c.bench_function("recovery/site-crash-recover", |b| {
        b.iter_batched(
            || {
                let mut db = SiteDb::new();
                for i in 0..200u64 {
                    let t = TxnId(i + 1);
                    db.begin(t);
                    db.write(t, &format!("X{}", i % 8), i as i64).expect("fresh lock");
                    db.commit(t).expect("active");
                }
                db.crash();
                db
            },
            |mut db| {
                db.recover();
                assert!(db.is_up());
                db
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_wal_recover, bench_site_crash_recover);
criterion_main!(benches);
