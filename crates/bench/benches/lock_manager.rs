//! Lock manager throughput under varying contention: the executable
//! 2PL block's cost profile.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcv_txn::{LockManager, LockMode, TxnId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn workload(items: usize, ops: usize, seed: u64) -> Vec<(TxnId, String, LockMode)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ops)
        .map(|_| {
            (
                TxnId(rng.gen_range(1..=8)),
                format!("X{}", rng.gen_range(0..items)),
                if rng.gen_bool(0.3) { LockMode::Exclusive } else { LockMode::Shared },
            )
        })
        .collect()
}

fn bench_acquire_release(c: &mut Criterion) {
    let mut group = c.benchmark_group("locks");
    for items in [1usize, 4, 64] {
        let ops = workload(items, 500, 42);
        group.bench_with_input(
            BenchmarkId::new("contention", format!("{items}-items")),
            &ops,
            |b, ops| {
                b.iter(|| {
                    let mut lm = LockManager::new();
                    for (txn, item, mode) in ops {
                        if let Ok(mcv_txn::LockOutcome::WouldDeadlock { .. }) =
                            lm.acquire(*txn, item.clone(), *mode)
                        {
                            lm.release_all(*txn);
                        }
                    }
                    for t in 1..=8u64 {
                        lm.release_all(TxnId(t));
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_deadlock_detection(c: &mut Criterion) {
    // A maximal waits-for cycle: each txn holds one item and wants the
    // next; the final request must traverse the full cycle.
    let mut group = c.benchmark_group("locks/deadlock-cycle");
    for n in [4u64, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut lm = LockManager::new();
                for t in 0..n {
                    assert_eq!(
                        lm.acquire(TxnId(t), format!("X{t}"), LockMode::Exclusive).expect("fresh"),
                        mcv_txn::LockOutcome::Granted
                    );
                }
                for t in 0..n - 1 {
                    let _ = lm.acquire(TxnId(t), format!("X{}", t + 1), LockMode::Exclusive);
                }
                // The closing edge must detect the cycle.
                let out = lm.acquire(TxnId(n - 1), "X0", LockMode::Exclusive).expect("fresh");
                assert!(matches!(out, mcv_txn::LockOutcome::WouldDeadlock { .. }));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_acquire_release, bench_deadlock_detection);
criterion_main!(benches);
