//! Prover cost on the Chapter 5 goals and on calibrated synthetic
//! problems (implication chains of growing depth).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcv_blocks::{properties, SpecLibrary};
use mcv_logic::{formula, NamedFormula, Prover};

fn bench_chapter5_proofs(c: &mut Criterion) {
    let lib = SpecLibrary::load();
    let commands = properties::chapter5_commands();
    let mut group = c.benchmark_group("chapter5");
    group.sample_size(10);
    for cmd in &commands {
        group.bench_with_input(BenchmarkId::new("prove", cmd.label), cmd, |b, cmd| {
            b.iter(|| {
                let out = properties::replay(&lib, cmd);
                assert!(out.proved());
            })
        });
    }
    group.finish();
}

fn bench_implication_chains(c: &mut Criterion) {
    let mut group = c.benchmark_group("resolution");
    for depth in [4usize, 8, 16, 32] {
        let mut axioms = vec![NamedFormula::new("base", formula("P0(c())"))];
        for i in 0..depth {
            axioms.push(NamedFormula::new(
                format!("step{i}"),
                formula(&format!("fa(x) (P{i}(x) => P{}(x))", i + 1)),
            ));
        }
        let goal = formula(&format!("P{depth}(c())"));
        group.bench_with_input(BenchmarkId::new("chain", depth), &depth, |b, _| {
            b.iter(|| {
                let r = Prover::new().prove(&axioms, &goal);
                assert!(r.is_proved());
            })
        });
    }
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    use mcv_logic::{ProverConfig, Selection};
    // Strategy ablations on an implication chain that every variant can
    // prove. (On the Chapter 5 goals both ablations hit the resource
    // limits — see `ablations_are_essential_for_chapter5` in mcv-blocks —
    // so timing them there would only measure the timeout.)
    let depth = 12usize;
    let mut axioms = vec![NamedFormula::new("base", formula("P0(c())"))];
    for i in 0..depth {
        axioms.push(NamedFormula::new(
            format!("step{i}"),
            formula(&format!("fa(x) (P{i}(x) => P{}(x))", i + 1)),
        ));
    }
    // Redundant specializations that subsumption can absorb.
    for i in 0..depth {
        axioms.push(NamedFormula::new(
            format!("ground{i}"),
            formula(&format!("P{i}(c()) => P{}(c())", i + 1)),
        ));
    }
    let goal = formula(&format!("P{depth}(c())"));
    let mut group = c.benchmark_group("ablation");
    group.sample_size(20);
    for (label, cfg) in [
        ("default", ProverConfig::default()),
        ("no-subsumption", ProverConfig { use_subsumption: false, ..ProverConfig::default() }),
        ("fifo-selection", ProverConfig { selection: Selection::Fifo, ..ProverConfig::default() }),
    ] {
        let axioms = axioms.clone();
        let goal = goal.clone();
        group.bench_function(BenchmarkId::new("chain12", label), move |b| {
            b.iter(|| {
                let r = Prover::with_config(cfg.clone()).prove(&axioms, &goal);
                assert!(r.is_proved());
            })
        });
    }
    group.finish();
}

fn bench_clausification(c: &mut Criterion) {
    let lib = SpecLibrary::load();
    let thm =
        lib.rollback_recovery.property(&"RBR".into()).expect("theorem present").formula.clone();
    c.bench_function("clausify/RBR", |b| {
        b.iter(|| {
            let mut gen = mcv_logic::FreshVars::new();
            mcv_logic::clausify(&thm, &mut gen)
        })
    });
}

criterion_group!(
    benches,
    bench_chapter5_proofs,
    bench_implication_chains,
    bench_ablations,
    bench_clausification
);
criterion_main!(benches);
