//! Colimit computation cost vs diagram size and topology — the
//! "category theory lends itself well to automation" claim (§1.1.9)
//! quantified.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcv_core::{colimit, Diagram, SpecBuilder, SpecMorphism, SpecRef};
use mcv_logic::Sort;

fn spec(name: &str, shared_ops: usize, own_upto: usize) -> SpecRef {
    let mut b = SpecBuilder::new(name).sort(Sort::new("E"));
    for o in 0..shared_ops {
        b = b.predicate(format!("P{o}"), vec![Sort::new("E")]);
    }
    // Cumulative own ops keep identity-extended chain morphisms total.
    for j in 0..=own_upto {
        b = b.predicate(format!("Own{j}"), vec![Sort::new("E")]);
    }
    b.build_ref().expect("static")
}

fn chain_diagram(nodes: usize, shared_ops: usize) -> Diagram {
    let specs: Vec<SpecRef> = (0..nodes).map(|i| spec(&format!("S{i}"), shared_ops, i)).collect();
    let mut d = Diagram::new();
    for (i, s) in specs.iter().enumerate() {
        d.add_node(format!("n{i}"), s.clone()).expect("fresh");
    }
    for i in 1..nodes {
        let m = SpecMorphism::new(format!("m{i}"), specs[i - 1].clone(), specs[i].clone(), [], [])
            .expect("cumulative chain morphisms are total");
        d.add_arc(format!("m{i}"), format!("n{}", i - 1), format!("n{i}"), m).expect("endpoints");
    }
    d
}

fn star_diagram(leaves: usize, shared_ops: usize) -> Diagram {
    // Hub holds only the shared vocabulary; every leaf extends it.
    let mut hb = SpecBuilder::new("HUB").sort(Sort::new("E"));
    for o in 0..shared_ops {
        hb = hb.predicate(format!("P{o}"), vec![Sort::new("E")]);
    }
    let hub = hb.build_ref().expect("static");
    let mut d = Diagram::new();
    d.add_node("hub", hub.clone()).expect("fresh");
    for i in 0..leaves {
        let leaf = spec(&format!("L{i}"), shared_ops, i);
        d.add_node(format!("l{i}"), leaf.clone()).expect("fresh");
        let m = SpecMorphism::new(format!("m{i}"), hub.clone(), leaf, [], [])
            .expect("hub vocabulary is shared");
        d.add_arc(format!("m{i}"), "hub", format!("l{i}"), m).expect("endpoints");
    }
    d
}

fn bench_colimit(c: &mut Criterion) {
    let mut group = c.benchmark_group("colimit");
    for nodes in [2usize, 4, 8, 16] {
        let d = chain_diagram(nodes, 20);
        group.bench_with_input(BenchmarkId::new("chain", nodes), &d, |b, d| {
            b.iter(|| colimit(d, "APEX").expect("non-empty"))
        });
    }
    for leaves in [2usize, 4, 8] {
        let d = star_diagram(leaves, 20);
        group.bench_with_input(BenchmarkId::new("star", leaves), &d, |b, d| {
            b.iter(|| colimit(d, "APEX").expect("non-empty"))
        });
    }
    group.finish();
}

fn bench_chapter5_pipeline(c: &mut Criterion) {
    use mcv_blocks::{pipeline, SpecLibrary};
    let lib = SpecLibrary::load();
    c.bench_function("pipeline/sequential_division_1", |b| {
        b.iter(|| pipeline::sequential_division_1(&lib))
    });
    c.bench_function("pipeline/sequential_division_2", |b| {
        b.iter(|| pipeline::sequential_division_2(&lib))
    });
}

criterion_group!(benches, bench_colimit, bench_chapter5_pipeline);
criterion_main!(benches);
