//! 2PC vs 3PC cost: end-to-end scenario latency and message counts
//! across cohort counts and failure scenarios (the exp.nb / exp.msg
//! experiments under Criterion's statistics).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcv_commit::{run_scenario, CrashPoint, Protocol, Scenario};

fn bench_failure_free(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit/failure-free");
    for n in [2usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::new("2pc", n), &n, |b, &n| {
            b.iter(|| {
                let r = run_scenario(&Scenario {
                    protocol: Protocol::TwoPhase,
                    n_cohorts: n,
                    ..Scenario::default()
                });
                assert_eq!(r.outcome, Some(true));
            })
        });
        group.bench_with_input(BenchmarkId::new("3pc", n), &n, |b, &n| {
            b.iter(|| {
                let r = run_scenario(&Scenario { n_cohorts: n, ..Scenario::default() });
                assert_eq!(r.outcome, Some(true));
            })
        });
    }
    group.finish();
}

fn bench_coordinator_failure(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit/coordinator-crash");
    group.sample_size(20);
    for n in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("3pc-termination", n), &n, |b, &n| {
            b.iter(|| {
                let r = run_scenario(&Scenario {
                    n_cohorts: n,
                    coordinator_crash: Some(CrashPoint::AfterPrepare),
                    recovery_at: Some(5_000),
                    ..Scenario::default()
                });
                assert!(r.uniform && r.nonblocking);
            })
        });
    }
    group.finish();
}

fn bench_model_checker(c: &mut Criterion) {
    use mcv_commit::fsm::{check, ModelConfig};
    let mut group = c.benchmark_group("commit/model-check");
    for cohorts in [1usize, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::new("termination", cohorts), &cohorts, |b, &k| {
            b.iter(|| {
                check(&ModelConfig {
                    cohorts: k,
                    naive_timeouts: false,
                    synchronous: true,
                    coordinator_recovery: true,
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_failure_free, bench_coordinator_failure, bench_model_checker);
criterion_main!(benches);
