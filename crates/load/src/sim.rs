//! Deterministic admission replay: a discrete-event queueing model of
//! the open-loop driver (c servers, one bounded FIFO queue, shed
//! policy, deadline budgets) on the *virtual* clock.
//!
//! The wall-clock driver's admission decisions depend on OS
//! scheduling; this model's do not — same schedule, same config, same
//! byte sequence of decisions, every run, which is what the
//! determinism tests pin. It is also the planning tool: sweep offered
//! rates through `simulate` to predict shed rates and queueing delay
//! before burning wall time on a live run.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use mcv_obs::{Histogram, RunReport};

use crate::arrivals::ArrivalSchedule;
use crate::driver::ShedPolicy;

/// The queueing model: `servers` workers over a FIFO queue of at most
/// `queue_cap` waiting jobs, each job taking exactly `service_us`.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Parallel servers (the pool's worker count).
    pub servers: usize,
    /// Bounded queue capacity; arrivals beyond it are shed.
    pub queue_cap: usize,
    /// Deterministic per-transaction service time (µs).
    pub service_us: u64,
    /// Per-transaction budget from arrival; exhausted budgets are
    /// abandoned as deadline misses.
    pub deadline_us: u64,
    /// What happens to a shed arrival: dropped, or retried after
    /// capped exponential backoff.
    pub policy: ShedPolicy,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            servers: 4,
            queue_cap: 64,
            service_us: 400,
            deadline_us: 100_000,
            policy: ShedPolicy::RetryAfter { base_us: 1_000, cap_us: 16_000 },
        }
    }
}

/// One admission decision, in event order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Admitted to the queue.
    Accept,
    /// Queue full: shed (and, under retry-after, rescheduled).
    Shed,
    /// A shed transaction's retry was scheduled.
    Retry,
    /// Budget exhausted before admission: abandoned.
    DeadlineMiss,
}

impl Decision {
    fn byte(self) -> u8 {
        match self {
            Decision::Accept => b'A',
            Decision::Shed => b'S',
            Decision::Retry => b'R',
            Decision::DeadlineMiss => b'D',
        }
    }
}

/// What the deterministic replay produced.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Every admission decision in deterministic event order.
    pub decisions: Vec<Decision>,
    /// Arrivals in the schedule.
    pub arrivals: u64,
    /// try-submit successes (events, not unique transactions).
    pub accepted: u64,
    /// Shed events.
    pub shed: u64,
    /// Retries scheduled.
    pub retried: u64,
    /// Transactions abandoned on budget exhaustion.
    pub deadline_missed: u64,
    /// Transactions that completed service.
    pub completed: u64,
    /// Completions within their deadline.
    pub goodput: u64,
    /// Virtual arrival-to-completion latency.
    pub latency_us: Histogram,
    /// Virtual instant the last event fired.
    pub end_us: u64,
}

impl SimOutcome {
    /// The decision sequence as bytes (`A`/`S`/`R`/`D`) — the
    /// "byte-identical admission sequence" artifact.
    pub fn admission_bytes(&self) -> Vec<u8> {
        self.decisions.iter().map(|d| d.byte()).collect()
    }

    /// A [`RunReport`] of the replay. Every counter is deterministic;
    /// wall-clock measurements belong under `wall.*` so `strip_wall`
    /// leaves a byte-stable report.
    pub fn report(&self, id: &str) -> RunReport {
        let mut r =
            RunReport::new(id).fact("arrivals", self.arrivals).fact("virtual_end_us", self.end_us);
        let c = &mut r.metrics.counters;
        c.insert("load.sim.arrivals".into(), self.arrivals);
        c.insert("load.sim.accepted".into(), self.accepted);
        c.insert("load.sim.shed".into(), self.shed);
        c.insert("load.sim.retried".into(), self.retried);
        c.insert("load.sim.deadline_missed".into(), self.deadline_missed);
        c.insert("load.sim.completed".into(), self.completed);
        c.insert("load.sim.goodput".into(), self.goodput);
        r.metrics.histograms.insert("load.sim.latency_us".into(), self.latency_us.clone());
        r
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    // Ordered so that at equal instants servers free up before new
    // admissions are tried — the most admission-friendly determinized
    // tie-break, applied consistently.
    ServerFree { txn: u64 },
    Submit { txn: u64, attempt: u32 },
}

/// Replays `schedule` through the queueing model. Fully deterministic:
/// ties are broken by a monotone sequence number.
pub fn simulate(schedule: &ArrivalSchedule, cfg: &SimConfig) -> SimOutcome {
    assert!(cfg.servers > 0 && cfg.queue_cap > 0, "sim needs servers and queue capacity");
    let arrivals = &schedule.arrivals;
    let mut events: BinaryHeap<Reverse<(u64, u64, Event)>> = BinaryHeap::new();
    let mut seq = 0u64;
    for (i, a) in arrivals.iter().enumerate() {
        events.push(Reverse((a.at_us, seq, Event::Submit { txn: i as u64, attempt: 0 })));
        seq += 1;
    }

    let mut queue: VecDeque<u64> = VecDeque::new();
    let mut busy = 0usize;
    let mut out = SimOutcome {
        decisions: Vec::new(),
        arrivals: arrivals.len() as u64,
        accepted: 0,
        shed: 0,
        retried: 0,
        deadline_missed: 0,
        completed: 0,
        goodput: 0,
        latency_us: crate::driver::load_latency_histogram(),
        end_us: 0,
    };

    while let Some(Reverse((now, _, ev))) = events.pop() {
        out.end_us = out.end_us.max(now);
        match ev {
            Event::Submit { txn, attempt } => {
                let arrival = arrivals[txn as usize];
                if now >= arrival.at_us + cfg.deadline_us {
                    out.decisions.push(Decision::DeadlineMiss);
                    out.deadline_missed += 1;
                    continue;
                }
                if queue.len() >= cfg.queue_cap {
                    out.decisions.push(Decision::Shed);
                    out.shed += 1;
                    if let ShedPolicy::RetryAfter { base_us, cap_us } = cfg.policy {
                        // Capped exponential backoff with deterministic
                        // jitter from the spec seed (same formula as the
                        // live driver).
                        let due = now
                            + crate::driver::backoff_us(
                                base_us,
                                cap_us,
                                attempt,
                                arrival.spec_seed,
                            );
                        if due >= arrival.at_us + cfg.deadline_us {
                            out.decisions.push(Decision::DeadlineMiss);
                            out.deadline_missed += 1;
                        } else {
                            out.decisions.push(Decision::Retry);
                            out.retried += 1;
                            events.push(Reverse((
                                due,
                                seq,
                                Event::Submit { txn, attempt: attempt + 1 },
                            )));
                            seq += 1;
                        }
                    }
                    continue;
                }
                out.decisions.push(Decision::Accept);
                out.accepted += 1;
                queue.push_back(txn);
                if busy < cfg.servers {
                    let started = queue.pop_front().expect("just queued");
                    busy += 1;
                    events.push(Reverse((
                        now + cfg.service_us,
                        seq,
                        Event::ServerFree { txn: started },
                    )));
                    seq += 1;
                }
            }
            Event::ServerFree { txn } => {
                busy -= 1;
                let arrival = arrivals[txn as usize];
                let latency = now - arrival.at_us;
                out.latency_us.record(latency);
                out.completed += 1;
                if latency <= cfg.deadline_us {
                    out.goodput += 1;
                }
                if let Some(next) = queue.pop_front() {
                    busy += 1;
                    events.push(Reverse((
                        now + cfg.service_us,
                        seq,
                        Event::ServerFree { txn: next },
                    )));
                    seq += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{ArrivalProcess, LoadProfile};

    fn profile(rate: f64) -> LoadProfile {
        LoadProfile {
            process: ArrivalProcess::Poisson { rate_tps: rate },
            duration_us: 200_000,
            sessions: 10_000,
            session_theta: 0.8,
            seed: 11,
        }
    }

    #[test]
    fn underload_admits_everything() {
        // 4 servers at 400µs/txn serve 10k tps; offer 2k.
        let s = ArrivalSchedule::generate(&profile(2_000.0));
        let out = simulate(&s, &SimConfig::default());
        assert_eq!(out.shed, 0);
        assert_eq!(out.accepted, out.arrivals);
        assert_eq!(out.completed, out.arrivals);
        assert_eq!(out.goodput, out.completed);
    }

    #[test]
    fn sustained_overload_sheds_instead_of_queueing_unboundedly() {
        // Offer 2x capacity: the bounded queue must shed, and under
        // the drop policy every arrival resolves as completed or shed.
        let s = ArrivalSchedule::generate(&profile(20_000.0));
        let cfg = SimConfig { policy: ShedPolicy::Drop, ..SimConfig::default() };
        let out = simulate(&s, &cfg);
        assert!(out.shed > 0, "2x overload must shed");
        assert_eq!(out.completed + out.shed, out.arrivals);
        // Accepted work still completes within a bounded queue's delay:
        // queue_cap * service / servers behind the newest arrival.
        let worst = out.latency_us.percentile(100.0);
        let bound = (cfg.queue_cap as u64 + 1) * cfg.service_us;
        assert!(worst <= bound, "p100 {worst}µs exceeds queue bound {bound}µs");
    }

    #[test]
    fn retry_after_converges_every_arrival_to_a_terminal_state() {
        let s = ArrivalSchedule::generate(&profile(15_000.0));
        let out = simulate(&s, &SimConfig::default());
        assert_eq!(out.completed + out.deadline_missed, out.arrivals);
        assert!(out.retried > 0, "overload with retry-after must retry");
    }

    #[test]
    fn same_seed_replays_are_byte_identical() {
        let s = ArrivalSchedule::generate(&profile(12_000.0));
        let a = simulate(&s, &SimConfig::default());
        let b = simulate(&s, &SimConfig::default());
        assert_eq!(a.admission_bytes(), b.admission_bytes());
        assert_eq!(a.report("sim").to_json(), b.report("sim").to_json());
    }
}
