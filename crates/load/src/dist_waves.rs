//! Open-loop cross-shard legs: pacing arrivals into `mcv_dist`.
//!
//! Two bridges, one per runtime generation:
//!
//! - **Wave service** ([`run_dist_waves`]): `run_dist` starts all of a
//!   batch's transactions at once and settles the cluster — there is
//!   no incremental submission path — so arrivals accumulate on the
//!   virtual clock while the previous wave is being served, and each
//!   wave takes everything due (bounded by `wave_cap`; the excess is
//!   shed). Under overload the waves grow until the cap bites, exactly
//!   the queue-growth signature an open-loop process exposes and a
//!   closed loop hides. Every wave is judged by all eight cross-shard
//!   oracles.
//! - **Streaming** ([`run_dist_stream`]): the multi-shot pipelined
//!   runtime accepts submissions while earlier transactions are in
//!   flight, so the whole arrival schedule maps directly onto
//!   [`PipelineConfig::arrival_us`] and one cluster serves it — no
//!   waves, no shedding, per-transaction arrival-to-decision latency
//!   read off the coordinator's commit log.

use std::time::Instant;

use mcv_dist::{run_dist, run_pipeline, DistConfig, PipelineConfig};
use mcv_obs::Histogram;

use crate::arrivals::{ArrivalSchedule, LoadProfile};
use crate::driver::load_latency_histogram;

/// Configuration for the cross-shard open-loop leg.
#[derive(Debug, Clone)]
pub struct DistWavesConfig {
    /// Arrival process for cross-shard transactions. Rates here are
    /// tens of txns/s — 3PC over the threaded transport settles about
    /// two orders of magnitude below the single-engine path.
    pub profile: LoadProfile,
    /// Data shards per wave cluster.
    pub n_shards: usize,
    /// Items each transaction writes at each shard.
    pub writes_per_shard: usize,
    /// Largest backlog one wave may serve; arrivals beyond it shed.
    pub wave_cap: usize,
    /// Per-transaction budget from arrival (µs) for goodput.
    pub deadline_us: u64,
}

impl Default for DistWavesConfig {
    fn default() -> Self {
        use crate::arrivals::ArrivalProcess;
        DistWavesConfig {
            profile: LoadProfile {
                process: ArrivalProcess::Poisson { rate_tps: 60.0 },
                duration_us: 400_000,
                sessions: 10_000,
                session_theta: 0.8,
                seed: 1,
            },
            n_shards: 2,
            writes_per_shard: 2,
            wave_cap: 32,
            deadline_us: 2_000_000,
        }
    }
}

/// What the cross-shard leg produced.
#[derive(Debug, Clone)]
pub struct DistWavesReport {
    /// Arrivals in the schedule.
    pub arrivals: u64,
    /// Transactions served through waves.
    pub served: u64,
    /// Arrivals shed at the wave cap.
    pub shed: u64,
    /// Commits across all waves (AC2 validity commits every fault-free
    /// transaction, so this normally equals `served`).
    pub committed: u64,
    /// Waves run.
    pub waves: u64,
    /// Waves with any of the eight dist oracles violated.
    pub oracle_failures: u64,
    /// Arrival-to-settle latency (µs).
    pub latency_us: Histogram,
    /// Settles within the deadline budget.
    pub goodput: u64,
    /// Wall time of the leg.
    pub wall_ms: u64,
}

impl DistWavesReport {
    /// All waves kept all eight oracles green.
    pub fn oracles_ok(&self) -> bool {
        self.oracle_failures == 0
    }

    /// One-line rendering.
    pub fn summary(&self) -> String {
        format!(
            "dist waves: {} arrivals -> {} served in {} waves, {} shed, {} committed, \
             goodput {} | p50/p99 {}/{} us | oracle failures {} | {} ms",
            self.arrivals,
            self.served,
            self.waves,
            self.shed,
            self.committed,
            self.goodput,
            self.latency_us.percentile(50.0),
            self.latency_us.percentile(99.0),
            self.oracle_failures,
            self.wall_ms,
        )
    }
}

/// Paces the schedule into consecutive `run_dist` waves.
pub fn run_dist_waves(cfg: &DistWavesConfig) -> DistWavesReport {
    let schedule = ArrivalSchedule::generate(&cfg.profile);
    let arrivals = &schedule.arrivals;
    let start = Instant::now();
    let now_us = || start.elapsed().as_micros().min(u64::MAX as u128) as u64;

    let mut report = DistWavesReport {
        arrivals: arrivals.len() as u64,
        served: 0,
        shed: 0,
        committed: 0,
        waves: 0,
        oracle_failures: 0,
        latency_us: load_latency_histogram(),
        goodput: 0,
        wall_ms: 0,
    };

    let mut i = 0usize;
    while i < arrivals.len() {
        let now = now_us();
        if arrivals[i].at_us > now {
            std::thread::sleep(std::time::Duration::from_micros(
                (arrivals[i].at_us - now).min(5_000),
            ));
            continue;
        }
        // Everything due is this wave's backlog; the cap sheds the rest.
        let due = arrivals[i..].iter().take_while(|a| a.at_us <= now).count();
        let take = due.min(cfg.wave_cap);
        report.shed += (due - take) as u64;
        let wave_seed = cfg.profile.seed ^ (report.waves.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let outcome = run_dist(&DistConfig {
            n_shards: cfg.n_shards,
            n_txns: take,
            writes_per_shard: cfg.writes_per_shard,
            seed: wave_seed,
            ..DistConfig::default()
        });
        let settled = now_us();
        if outcome.violated().is_some() {
            report.oracle_failures += 1;
        }
        report.committed += outcome.stats.committed;
        for a in &arrivals[i..i + take] {
            let lat = settled.saturating_sub(a.at_us);
            report.latency_us.record(lat);
            if lat <= cfg.deadline_us {
                report.goodput += 1;
            }
        }
        report.served += take as u64;
        report.waves += 1;
        i += due;
    }
    report.wall_ms = start.elapsed().as_millis().min(u64::MAX as u128) as u64;
    report
}

/// Configuration for the streaming cross-shard leg.
#[derive(Debug, Clone)]
pub struct DistStreamConfig {
    /// Arrival process for cross-shard transactions. The pipelined
    /// runtime sustains thousands of txns/s, two orders of magnitude
    /// above the wave path.
    pub profile: LoadProfile,
    /// Data shards.
    pub n_shards: usize,
    /// Items each transaction writes at each shard.
    pub writes_per_shard: usize,
    /// Maximum undecided transactions in flight at once; arrivals
    /// beyond it queue at the pump (open-loop backlog, never shed).
    pub max_inflight: usize,
    /// Per-link transport batching window in microseconds.
    pub batch_window_us: u64,
    /// Per-transaction budget from arrival (µs) for goodput.
    pub deadline_us: u64,
}

impl Default for DistStreamConfig {
    fn default() -> Self {
        use crate::arrivals::ArrivalProcess;
        DistStreamConfig {
            profile: LoadProfile {
                process: ArrivalProcess::Poisson { rate_tps: 800.0 },
                duration_us: 100_000,
                sessions: 10_000,
                session_theta: 0.8,
                seed: 1,
            },
            n_shards: 2,
            writes_per_shard: 2,
            max_inflight: 32,
            batch_window_us: 600,
            deadline_us: 500_000,
        }
    }
}

/// What the streaming cross-shard leg produced.
#[derive(Debug, Clone)]
pub struct DistStreamReport {
    /// Arrivals in the schedule (every one is submitted; the pump
    /// queues behind the in-flight window instead of shedding).
    pub arrivals: u64,
    /// Committed at every shard.
    pub committed: u64,
    /// Uniformly aborted.
    pub aborted: u64,
    /// Any of the eight dist oracles violated (the run is judged once,
    /// as a whole).
    pub oracle_failures: u64,
    /// Arrival-to-coordinator-decision latency (µs), from the commit
    /// log's tick stamps.
    pub latency_us: Histogram,
    /// Decisions within the deadline budget.
    pub goodput: u64,
    /// Wall time of the leg.
    pub wall_ms: u64,
}

impl DistStreamReport {
    /// The run kept all eight oracles green.
    pub fn oracles_ok(&self) -> bool {
        self.oracle_failures == 0
    }

    /// One-line rendering.
    pub fn summary(&self) -> String {
        format!(
            "dist stream: {} arrivals -> {} committed / {} aborted, goodput {} | \
             p50/p99 {}/{} us | oracle failures {} | {} ms",
            self.arrivals,
            self.committed,
            self.aborted,
            self.goodput,
            self.latency_us.percentile(50.0),
            self.latency_us.percentile(99.0),
            self.oracle_failures,
            self.wall_ms,
        )
    }
}

/// Streams the whole arrival schedule through one pipelined cluster.
pub fn run_dist_stream(cfg: &DistStreamConfig) -> DistStreamReport {
    let schedule = ArrivalSchedule::generate(&cfg.profile);
    let arrival_us: Vec<u64> = schedule.arrivals.iter().map(|a| a.at_us).collect();
    let n_txns = arrival_us.len();
    let start = Instant::now();
    let dist = DistConfig {
        n_shards: cfg.n_shards,
        n_txns,
        writes_per_shard: cfg.writes_per_shard,
        seed: cfg.profile.seed,
        // The pump owes the whole schedule; give the failsafe room.
        deadline_ms: 30_000,
        ..DistConfig::default()
    };
    let tick_us = dist.tick_us.max(1);
    let outcome = run_pipeline(&PipelineConfig {
        dist,
        max_inflight: cfg.max_inflight,
        batch_window_us: cfg.batch_window_us,
        arrival_us: Some(arrival_us.clone()),
    });

    let mut report = DistStreamReport {
        arrivals: n_txns as u64,
        committed: outcome.stats.committed,
        aborted: outcome.stats.aborted,
        oracle_failures: u64::from(outcome.violated().is_some()),
        latency_us: load_latency_histogram(),
        goodput: 0,
        wall_ms: 0,
    };
    for e in &outcome.commit_log {
        let Some(at) = arrival_us.get((e.txn - mcv_dist::GLOBAL_TXN_BASE) as usize) else {
            continue;
        };
        let lat = (e.tick * tick_us).saturating_sub(*at);
        report.latency_us.record(lat);
        if lat <= cfg.deadline_us {
            report.goodput += 1;
        }
    }
    report.wall_ms = start.elapsed().as_millis().min(u64::MAX as u128) as u64;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paced_waves_serve_the_schedule_with_oracles_green() {
        let cfg = DistWavesConfig {
            profile: LoadProfile { duration_us: 150_000, ..DistWavesConfig::default().profile },
            ..Default::default()
        };
        let report = run_dist_waves(&cfg);
        assert!(report.arrivals > 0);
        assert_eq!(report.served + report.shed, report.arrivals);
        assert!(report.oracles_ok(), "{}", report.summary());
        assert_eq!(report.committed, report.served, "fault-free waves commit everything");
        assert!(report.waves >= 1);
    }

    #[test]
    fn streamed_schedule_commits_everything_without_shedding() {
        let cfg = DistStreamConfig {
            profile: LoadProfile { duration_us: 50_000, ..DistStreamConfig::default().profile },
            ..Default::default()
        };
        let report = run_dist_stream(&cfg);
        assert!(report.arrivals > 0);
        assert!(report.oracles_ok(), "{}", report.summary());
        assert_eq!(
            report.committed,
            report.arrivals,
            "fault-free streaming commits every arrival: {}",
            report.summary()
        );
        assert_eq!(report.latency_us.count, report.arrivals, "one decision latency per arrival");
    }
}
