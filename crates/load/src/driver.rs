//! The wall-clock open-loop driver: paces a deterministic
//! [`ArrivalSchedule`] against a cluster of live engines through the
//! non-blocking `Pool::try_submit` admission path.
//!
//! Unlike the closed-loop `mcv_engine::run_driver` (N clients, fixed
//! quota, next transaction starts when the last finishes), arrivals
//! here do not wait for capacity: when the bounded queue is full the
//! transaction is *shed* under an explicit policy — dropped, or
//! retried after capped exponential backoff — and every transaction
//! carries a deadline budget measured from its arrival instant, so
//! queueing delay counts against it. Crash plans drop an engine
//! mid-run (its WAL image frozen at the crash instant), rebuild it by
//! rollback recovery, and the report measures the recovery-time SLO:
//! wall time from the crash until windowed p99 latency is back under
//! target.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mcv_engine::{latency_histogram, Engine, EngineConfig, EngineError};
use mcv_obs::{Histogram, MetricsSnapshot};
use mcv_prof::{TelemetryConfig, TelemetrySnapshot, TelemetryStream};
use mcv_txn::TxnId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::arrivals::{Arrival, ArrivalSchedule, LoadProfile, Ownership};

/// What happens to a transaction the admission gate rejects.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ShedPolicy {
    /// Reject outright: the arrival terminates as `dropped`.
    Drop,
    /// Reject with retry-after: the client resubmits after capped
    /// exponential backoff, until its deadline budget runs out.
    RetryAfter {
        /// First backoff step (µs); doubles per attempt.
        base_us: u64,
        /// Backoff ceiling (µs).
        cap_us: u64,
    },
}

/// Capped exponential backoff with deterministic jitter: attempt `a`
/// waits `min(base << a, cap)` plus a hash-of-seed jitter in
/// `[0, base)`. Pure, so the admission simulator replays the live
/// driver's exact schedule.
pub fn backoff_us(base_us: u64, cap_us: u64, attempt: u32, seed: u64) -> u64 {
    let exp = base_us.saturating_mul(1u64 << attempt.min(16)).min(cap_us.max(base_us));
    let h = (seed ^ ((attempt as u64 + 1).wrapping_mul(0xd134_2543_de82_ef95)))
        .wrapping_mul(0x9e37_79b9_7f4a_7c15);
    exp + (h >> 33) % base_us.max(1)
}

/// The latency histogram every load run records into — the engine's
/// 50µs..16s decade bounds, so percentiles from open- and closed-loop
/// runs are comparable.
pub fn load_latency_histogram() -> Histogram {
    latency_histogram()
}

/// The transaction mix an open-loop session submits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LoadWorkload {
    /// Reads and writes inside the session's key window.
    ReadWrite {
        /// Percentage of ops that write.
        write_pct: u8,
        /// Operations per transaction.
        ops_per_txn: usize,
    },
    /// Balance transfers between two of the session's accounts —
    /// engine-local, so the bank-sum oracle holds per engine and
    /// across the cluster.
    Bank,
}

/// Crash one engine mid-run and bring it back by rollback recovery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashPlan {
    /// Index of the engine to crash.
    pub engine: usize,
    /// Virtual crash instant (µs from run start).
    pub at_us: u64,
    /// Detection + restart delay before recovery replay begins.
    pub restart_after_us: u64,
}

/// Everything one open-loop run needs.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// The arrival process, population, and seed.
    pub profile: LoadProfile,
    /// Per-engine configuration.
    pub engine: EngineConfig,
    /// Independent engines (crash-fault domains); sessions are
    /// partitioned across them.
    pub engines: usize,
    /// Keyspace size per engine.
    pub items_per_engine: usize,
    /// Width of one session's key window.
    pub session_span: usize,
    /// The transaction mix.
    pub workload: LoadWorkload,
    /// Worker threads shared by all engines.
    pub workers: usize,
    /// Bounded admission-queue capacity (`Pool::try_submit` sheds
    /// beyond it).
    pub queue_cap: usize,
    /// Shedding policy.
    pub policy: ShedPolicy,
    /// Per-transaction budget from arrival (µs).
    pub deadline_us: u64,
    /// The p99 SLO target used for recovery-time measurement (µs).
    pub p99_target_us: u64,
    /// Window width for the post-hoc p99-over-time curve (µs).
    pub p99_window_us: u64,
    /// Optional mid-run shard crash.
    pub crash: Option<CrashPlan>,
    /// Live-telemetry window in *virtual* microseconds (0 = telemetry
    /// off). Windows are keyed by scheduled arrival time, so the
    /// stream's shape is a function of the seed alone.
    pub telemetry_window_us: u64,
    /// Stream each completed telemetry window to stderr as a JSONL
    /// line while the run is live (needs `telemetry_window_us > 0`).
    pub telemetry_live: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            profile: LoadProfile::default(),
            engine: EngineConfig::default(),
            engines: 1,
            items_per_engine: 256,
            session_span: 8,
            workload: LoadWorkload::ReadWrite { write_pct: 20, ops_per_txn: 4 },
            workers: 4,
            queue_cap: 64,
            policy: ShedPolicy::RetryAfter { base_us: 1_000, cap_us: 16_000 },
            deadline_us: 100_000,
            p99_target_us: 20_000,
            p99_window_us: 40_000,
            crash: None,
            telemetry_window_us: 0,
            telemetry_live: false,
        }
    }
}

/// Initial balance per bank account (matches the closed-loop driver).
pub const BANK_INITIAL_BALANCE: i64 = 100;

fn item_name(i: usize) -> String {
    format!("item{i:05}")
}

struct Slot {
    engine: Engine,
    up: bool,
}

#[derive(Default)]
struct Tally {
    accepted: AtomicU64,
    shed: AtomicU64,
    unavailable: AtomicU64,
    retried: AtomicU64,
    dropped: AtomicU64,
    deadline_missed: AtomicU64,
    crash_lost: AtomicU64,
    committed: AtomicU64,
    goodput: AtomicU64,
}

/// `(due_us, seq, arrival_idx, attempt)` — min-heap order on due time,
/// seq breaking ties so the drain order is deterministic.
type RetryEntry = (u64, u64, usize, u32);

struct Shared {
    slots: Vec<Mutex<Slot>>,
    /// Bumped at each crash; completions from an older generation are
    /// client-visible failures (the node that acknowledged them died).
    gens: Vec<AtomicU64>,
    start: Instant,
    own: Ownership,
    workload: LoadWorkload,
    policy: ShedPolicy,
    deadline_us: u64,
    latency: Mutex<Histogram>,
    /// `(completion_us, latency_us)` per commit, for windowed p99.
    completions: Mutex<Vec<(u64, u64)>>,
    retry_q: Mutex<BinaryHeap<Reverse<RetryEntry>>>,
    retry_seq: AtomicU64,
    in_flight: AtomicU64,
    n: Tally,
    /// Phase profiler captured at run entry; committed arrivals record
    /// their arrival-to-resolution anchor plus admission-queue dwell,
    /// which the attribution join merges with the engine's own phases
    /// for the same transaction id.
    prof: Option<mcv_prof::Profiler>,
    /// Windowed live telemetry (when configured).
    telemetry: Option<Mutex<TelemetryStream>>,
}

impl Shared {
    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// Schedules a retry for `idx` (attempt `attempt` just failed) or
    /// abandons it when backoff would land past the deadline.
    fn schedule_retry(&self, idx: usize, attempt: u32, arrival: Arrival) {
        let now = self.now_us();
        let (base_us, cap_us) = match self.policy {
            ShedPolicy::RetryAfter { base_us, cap_us } => (base_us, cap_us),
            // Drop policy never retries; abort-retries still use a
            // small default backoff so deadlock victims back off.
            ShedPolicy::Drop => (500, 8_000),
        };
        let due = now + backoff_us(base_us, cap_us, attempt, arrival.spec_seed);
        if due >= arrival.at_us + self.deadline_us {
            self.n.deadline_missed.fetch_add(1, Ordering::Relaxed);
            self.observe_abandoned(&arrival);
            return;
        }
        self.n.retried.fetch_add(1, Ordering::Relaxed);
        let seq = self.retry_seq.fetch_add(1, Ordering::Relaxed);
        self.retry_q.lock().expect("retry queue").push(Reverse((due, seq, idx, attempt + 1)));
    }

    /// Telemetry hook for an arrival abandoned short of commit
    /// (terminal: releases the arrival's window).
    fn observe_abandoned(&self, arrival: &Arrival) {
        if let Some(tel) = &self.telemetry {
            let mut tel = tel.lock().expect("telemetry");
            tel.observe_abort(arrival.at_us);
            tel.observe_resolved(arrival.at_us);
        }
    }

    /// Telemetry hook for any other terminal resolution (drop, crash
    /// loss): the arrival's window stops waiting on it.
    fn observe_resolved(&self, arrival: &Arrival) {
        if let Some(tel) = &self.telemetry {
            tel.lock().expect("telemetry").observe_resolved(arrival.at_us);
        }
    }

    /// Telemetry hook for a shed admission attempt.
    fn observe_shed(&self, arrival: &Arrival) {
        if let Some(tel) = &self.telemetry {
            tel.lock().expect("telemetry").observe_shed(arrival.at_us);
        }
    }

    /// Terminal or retry resolution of one executed attempt.
    /// `queue_ns` is how long the accepted job sat in the admission
    /// queue before a worker picked it up.
    #[allow(clippy::too_many_arguments)]
    fn complete(
        &self,
        idx: usize,
        attempt: u32,
        arrival: Arrival,
        slot_idx: usize,
        gen: u64,
        queue_ns: u64,
        result: Result<TxnId, EngineError>,
    ) {
        match result {
            Ok(txn) => {
                if self.gens[slot_idx].load(Ordering::Acquire) != gen {
                    // Committed on a generation that has since crashed:
                    // the ack raced the crash, the client saw a failure.
                    self.n.crash_lost.fetch_add(1, Ordering::Relaxed);
                    self.observe_resolved(&arrival);
                } else {
                    let now = self.now_us();
                    let lat = now.saturating_sub(arrival.at_us);
                    self.n.committed.fetch_add(1, Ordering::Relaxed);
                    if lat <= self.deadline_us {
                        self.n.goodput.fetch_add(1, Ordering::Relaxed);
                    }
                    self.latency.lock().expect("latency").record(lat);
                    self.completions.lock().expect("completions").push((now, lat));
                    // The driver owns the arrival-to-resolution anchor;
                    // the engine separately recorded its phases under
                    // the same txn id, and the attribution join merges
                    // the two (largest total wins the anchor).
                    let lat_ns = lat.saturating_mul(1_000);
                    let tl = self.prof.as_ref().map(|p| {
                        let mut tl = mcv_prof::Timeline::new(txn.0);
                        tl.total_ns = lat_ns;
                        tl.add(mcv_prof::Phase::AdmitQueue, queue_ns);
                        p.record(&tl);
                        tl
                    });
                    if let Some(tel) = &self.telemetry {
                        let mut tel = tel.lock().expect("telemetry");
                        tel.observe_commit(arrival.at_us, lat_ns, tl.as_ref());
                        tel.observe_resolved(arrival.at_us);
                    }
                }
            }
            Err(EngineError::Deadlock { .. } | EngineError::Certification { .. }) => {
                self.schedule_retry(idx, attempt, arrival);
            }
            Err(e) => panic!("load transaction failed: {e}"),
        }
        self.in_flight.fetch_sub(1, Ordering::Release);
    }
}

/// Executes one transaction spec on its session's engine. The spec is
/// a pure function of `(session, seed)`, so retries replay it exactly.
/// Returns the engine transaction id on commit so the driver's
/// arrival-to-resolution timeline joins the engine's phase sample.
fn attempt_txn(
    engine: &Engine,
    own: Ownership,
    workload: LoadWorkload,
    session: u64,
    seed: u64,
) -> Result<TxnId, EngineError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = engine.begin();
    let id = t.id();
    match workload {
        LoadWorkload::ReadWrite { write_pct, ops_per_txn } => {
            for _ in 0..ops_per_txn {
                let name = item_name(own.key(session, rng.gen_range(0..own.span.max(1))));
                if rng.gen_range(0..100u8) < write_pct {
                    let v = rng.gen_range(0..1_000_000i64);
                    if let Err(e) = t.write(&name, v) {
                        t.abort();
                        return Err(e);
                    }
                } else if let Err(e) = t.read(&name) {
                    t.abort();
                    return Err(e);
                }
            }
            t.commit().map(|_| id)
        }
        LoadWorkload::Bank => {
            let a = own.key(session, rng.gen_range(0..own.span.max(1)));
            let mut b = own.key(session, rng.gen_range(0..own.span.max(1)));
            if b == a {
                b = (a + 1) % own.items_per_engine;
            }
            let amount = rng.gen_range(1..=10i64);
            let (na, nb) = (item_name(a), item_name(b));
            let result = (|| {
                let va = t.read(&na)?;
                let vb = t.read(&nb)?;
                t.write(&na, va - amount)?;
                t.write(&nb, vb + amount)?;
                Ok(())
            })();
            match result {
                Ok(()) => t.commit().map(|_| id),
                Err(e) => {
                    t.abort();
                    Err(e)
                }
            }
        }
    }
}

/// What one open-loop run produced.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Arrivals in the schedule.
    pub arrivals: u64,
    /// try-submit successes (events; retries count again).
    pub accepted: u64,
    /// Shed events (full queue + down engine).
    pub shed: u64,
    /// Shed events caused by a crashed (down) engine.
    pub unavailable: u64,
    /// Retries scheduled (shed + aborted transactions).
    pub retried: u64,
    /// Arrivals terminally dropped by the `Drop` policy.
    pub dropped: u64,
    /// Arrivals abandoned on deadline exhaustion.
    pub deadline_missed: u64,
    /// Commits acknowledged by a generation that crashed before the
    /// client observed them.
    pub crash_lost: u64,
    /// Client-observed commits.
    pub committed: u64,
    /// Commits within their deadline budget.
    pub goodput: u64,
    /// Arrivals still unresolved when the drain cap fired (0 on a
    /// clean run).
    pub unresolved: u64,
    /// Wall time of the whole run.
    pub elapsed_ns: u64,
    /// The profile's virtual duration (µs) — the denominator for
    /// offered/goodput rates.
    pub duration_us: u64,
    /// Arrival-to-commit latency (µs), queueing and retries included.
    pub latency_us: Histogram,
    /// `(completion_us, latency_us)` per commit, completion-ordered.
    pub completions: Vec<(u64, u64)>,
    /// Conflict-serializability verdict over every engine's sampled
    /// history.
    pub serializable: bool,
    /// WAL-replay equivalence verdict over every engine.
    pub recovered_matches: bool,
    /// Bank-sum conservation across the cluster (bank workload only).
    pub bank_invariant_ok: Option<bool>,
    /// Crash instant, when a crash plan ran.
    pub crash_at_us: Option<u64>,
    /// Instant the recovered engine was back up.
    pub recovered_at_us: Option<u64>,
    /// Recovery-time SLO measurement: ms from crash until the first
    /// window whose p99 is back under target. `None` = never within
    /// the run (SLO miss), or no crash planned.
    pub recovery_ms: Option<u64>,
    /// Merged engine counters plus the `engine.admit.*` family and
    /// `wall.load.*` gauges.
    pub metrics: MetricsSnapshot,
    /// Windowed telemetry snapshots, when
    /// [`LoadConfig::telemetry_window_us`] is non-zero. Windows are
    /// keyed by scheduled arrival time, so the sequence of windows and
    /// their arrival counts are deterministic; everything measured
    /// lives in each snapshot's `wall` sub-object.
    pub telemetry: Vec<TelemetrySnapshot>,
}

impl LoadReport {
    /// All correctness oracles green.
    pub fn oracles_ok(&self) -> bool {
        self.serializable && self.recovered_matches && self.bank_invariant_ok.unwrap_or(true)
    }

    /// In-deadline commits per offered second.
    pub fn goodput_tps(&self) -> f64 {
        self.goodput as f64 / (self.duration_us as f64 / 1e6)
    }

    /// Offered arrivals per second.
    pub fn offered_tps(&self) -> f64 {
        self.arrivals as f64 / (self.duration_us as f64 / 1e6)
    }

    /// Windowed p99 curve: `(window_start_us, p99_us)` per window of
    /// the configured width, stepped by a quarter window.
    pub fn p99_curve(&self, window_us: u64) -> Vec<(u64, u64)> {
        p99_curve(&self.completions, window_us)
    }

    /// One-paragraph rendering for the console.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "open-loop: {} arrivals ({:.0} tps offered) -> {} committed, goodput {} ({:.0} tps) \
             | admit: {} accepted, {} shed ({} unavailable), {} retried, {} dropped, \
             {} deadline-missed, {} crash-lost, {} unresolved \
             | latency p50/p99/p999 {}/{}/{} us \
             | oracles: serializable {} recovery {}",
            self.arrivals,
            self.offered_tps(),
            self.committed,
            self.goodput,
            self.goodput_tps(),
            self.accepted,
            self.shed,
            self.unavailable,
            self.retried,
            self.dropped,
            self.deadline_missed,
            self.crash_lost,
            self.unresolved,
            self.latency_us.percentile(50.0),
            self.latency_us.percentile(99.0),
            self.latency_us.percentile(99.9),
            self.serializable,
            self.recovered_matches,
        );
        if let Some(ok) = self.bank_invariant_ok {
            s.push_str(&format!(" bank {ok}"));
        }
        if self.crash_at_us.is_some() {
            match self.recovery_ms {
                Some(ms) => s.push_str(&format!(" | recovery {ms} ms")),
                None => s.push_str(" | recovery NEVER (slo miss)"),
            }
        }
        s
    }
}

/// Exact p99 of a completion-latency slice (sort-based, no histogram
/// estimation — window sample counts are small).
pub fn p99_exact(lats: &[u64]) -> u64 {
    let mut v = lats.to_vec();
    v.sort_unstable();
    let rank = ((v.len() as f64 * 0.99).ceil() as usize).max(1);
    v[rank - 1]
}

/// Windowed p99 curve over `(completion_us, latency_us)` samples.
pub fn p99_curve(completions: &[(u64, u64)], window_us: u64) -> Vec<(u64, u64)> {
    let window_us = window_us.max(1);
    let mut sorted = completions.to_vec();
    sorted.sort_unstable();
    let Some(&(last, _)) = sorted.last() else { return Vec::new() };
    let step = (window_us / 4).max(1);
    let mut out = Vec::new();
    let mut w = 0u64;
    while w <= last {
        let lats: Vec<u64> = sorted
            .iter()
            .filter(|(t, _)| (w..w + window_us).contains(t))
            .map(|&(_, l)| l)
            .collect();
        if !lats.is_empty() {
            out.push((w, p99_exact(&lats)));
        }
        w += step;
    }
    out
}

/// First window at/after `from_us` whose p99 is under `target_us`;
/// returns the window's *end* instant.
fn first_healthy_window(
    completions: &[(u64, u64)],
    from_us: u64,
    window_us: u64,
    target_us: u64,
) -> Option<u64> {
    let mut sorted = completions.to_vec();
    sorted.sort_unstable();
    let last = sorted.last()?.0;
    let step = (window_us / 4).max(1);
    let mut w = from_us;
    while w <= last {
        let lats: Vec<u64> = sorted
            .iter()
            .filter(|(t, _)| (w..w + window_us).contains(t))
            .map(|&(_, l)| l)
            .collect();
        if !lats.is_empty() && p99_exact(&lats) <= target_us {
            return Some(w + window_us);
        }
        w += step;
    }
    None
}

/// Generates the schedule from `cfg.profile` and runs it.
pub fn run_load(cfg: &LoadConfig) -> LoadReport {
    run_load_with_schedule(cfg, &ArrivalSchedule::generate(&cfg.profile))
}

/// Runs a prebuilt schedule (campaign loops reuse the zipfian zeta by
/// generating schedules with [`ArrivalSchedule::generate_with`]).
pub fn run_load_with_schedule(cfg: &LoadConfig, schedule: &ArrivalSchedule) -> LoadReport {
    assert!(cfg.engines > 0, "load needs at least one engine");
    assert!(cfg.items_per_engine >= 2, "load needs at least two items per engine");
    if let Some(plan) = &cfg.crash {
        assert!(plan.engine < cfg.engines, "crash plan names a missing engine");
    }
    let own = Ownership {
        engines: cfg.engines,
        items_per_engine: cfg.items_per_engine,
        span: cfg.session_span.max(1),
    };
    let bank = matches!(cfg.workload, LoadWorkload::Bank);

    let mut slots = Vec::with_capacity(cfg.engines);
    for _ in 0..cfg.engines {
        let engine = Engine::new(cfg.engine.clone());
        if bank {
            for chunk in (0..cfg.items_per_engine).collect::<Vec<_>>().chunks(256) {
                let mut t = engine.begin();
                for &i in chunk {
                    t.write(&item_name(i), BANK_INITIAL_BALANCE).expect("setup write");
                }
                t.commit().expect("setup commit");
            }
        }
        slots.push(Mutex::new(Slot { engine, up: true }));
    }

    let shared = Arc::new(Shared {
        slots,
        gens: (0..cfg.engines).map(|_| AtomicU64::new(0)).collect(),
        start: Instant::now(),
        own,
        workload: cfg.workload,
        policy: cfg.policy,
        deadline_us: cfg.deadline_us,
        latency: Mutex::new(load_latency_histogram()),
        completions: Mutex::new(Vec::new()),
        retry_q: Mutex::new(BinaryHeap::new()),
        retry_seq: AtomicU64::new(0),
        in_flight: AtomicU64::new(0),
        n: Tally::default(),
        prof: mcv_prof::installed(),
        telemetry: (cfg.telemetry_window_us > 0).then(|| {
            Mutex::new(TelemetryStream::new(TelemetryConfig { window_us: cfg.telemetry_window_us }))
        }),
    });
    let pool = mcv_engine::Pool::new(cfg.workers, cfg.queue_cap);
    let arrivals = &schedule.arrivals;

    // Chaos bookkeeping (pacer-local).
    let mut crash_image: Option<Vec<u8>> = None;
    let mut crash_fired = false;
    let mut restart_spawned = false;
    let mut crash_at_actual: Option<u64> = None;
    let recovered_at = Arc::new(AtomicU64::new(0));
    let mut recovery_handle: Option<std::thread::JoinHandle<()>> = None;

    let hard_cap_us = cfg.profile.duration_us
        + cfg.deadline_us
        + cfg.crash.map(|p| p.at_us + p.restart_after_us + 1_000_000).unwrap_or(0)
        + 2_000_000;

    let mut ptr = 0usize;
    let mut telemetry_out: Vec<TelemetrySnapshot> = Vec::new();
    loop {
        let now = shared.now_us();

        // Chaos events first: they gate availability for everything
        // dispatched at this instant.
        if let Some(plan) = cfg.crash {
            if !crash_fired && now >= plan.at_us {
                let mut slot = shared.slots[plan.engine].lock().expect("slot");
                // Freeze the durable image at the crash instant —
                // in-flight commits acknowledged after this point died
                // with the node (counted `crash_lost`).
                crash_image = Some(slot.engine.durable_image());
                slot.up = false;
                shared.gens[plan.engine].fetch_add(1, Ordering::Release);
                crash_at_actual = Some(now);
                crash_fired = true;
            }
            if crash_fired && !restart_spawned && now >= plan.at_us + plan.restart_after_us {
                let image = crash_image.take().expect("crash image");
                let sh = Arc::clone(&shared);
                let engine_cfg = cfg.engine.clone();
                let rec_at = Arc::clone(&recovered_at);
                let idx = plan.engine;
                recovery_handle = Some(std::thread::spawn(move || {
                    // Rollback recovery: replay the committed prefix of
                    // the crash image into a fresh engine. The replay
                    // is real work — its wall time is part of the
                    // measured recovery window.
                    let recovered = mcv_txn::Wal::from_bytes_lossy(&image).recover();
                    let fresh = Engine::new(engine_cfg);
                    let entries: Vec<_> = recovered.into_iter().collect();
                    for chunk in entries.chunks(256) {
                        let mut t = fresh.begin();
                        for (k, v) in chunk {
                            t.write(k, *v).expect("replay write");
                        }
                        t.commit().expect("replay commit");
                    }
                    let mut slot = sh.slots[idx].lock().expect("slot");
                    slot.engine = fresh;
                    slot.up = true;
                    drop(slot);
                    rec_at.store(sh.now_us().max(1), Ordering::Release);
                }));
                restart_spawned = true;
            }
        }

        // Due retries.
        loop {
            let item = {
                let mut q = shared.retry_q.lock().expect("retry queue");
                match q.peek() {
                    Some(&Reverse((due, _, _, _))) if due <= now => q.pop(),
                    _ => None,
                }
            };
            match item {
                Some(Reverse((_, _, idx, attempt))) => {
                    dispatch(&shared, &pool, arrivals, idx, attempt)
                }
                None => break,
            }
        }

        // Due arrivals.
        while ptr < arrivals.len() && arrivals[ptr].at_us <= now {
            dispatch(&shared, &pool, arrivals, ptr, 0);
            ptr += 1;
        }

        // Emit telemetry windows whose virtual span is fully behind us.
        // After the dispatch loops, so no arrival at or before `now`
        // can still be heading for a window this drain closes. The
        // watermark is capped at the schedule's end: while the tail of
        // the run drains, wall time keeps advancing past the last
        // scheduled arrival, and uncapped it would mint empty trailing
        // windows whose count depends on how long the tail took.
        if let Some(tel) = &shared.telemetry {
            let ready =
                tel.lock().expect("telemetry").drain_complete(now.min(cfg.profile.duration_us));
            if cfg.telemetry_live && !ready.is_empty() {
                eprint!("{}", mcv_prof::telemetry_jsonl(&ready));
            }
            telemetry_out.extend(ready);
        }

        // Termination: every arrival resolved and chaos fully played.
        let retries_pending = !shared.retry_q.lock().expect("retry queue").is_empty();
        let chaos_done = match cfg.crash {
            None => true,
            Some(_) => restart_spawned && recovered_at.load(Ordering::Acquire) != 0,
        };
        if ptr == arrivals.len()
            && !retries_pending
            && shared.in_flight.load(Ordering::Acquire) == 0
            && chaos_done
        {
            break;
        }
        if now > hard_cap_us {
            break;
        }

        // Sleep until the next known event, capped so retries pushed
        // by workers are picked up promptly.
        let next_due = [
            (ptr < arrivals.len()).then(|| arrivals[ptr].at_us),
            shared.retry_q.lock().expect("retry queue").peek().map(|&Reverse((d, ..))| d),
            cfg.crash.and_then(|p| {
                if !crash_fired {
                    Some(p.at_us)
                } else if !restart_spawned {
                    Some(p.at_us + p.restart_after_us)
                } else {
                    None
                }
            }),
        ]
        .into_iter()
        .flatten()
        .min();
        let wait = next_due.map(|d| d.saturating_sub(now)).unwrap_or(200).clamp(20, 200);
        std::thread::sleep(Duration::from_micros(wait));
    }

    pool.join();
    if let Some(h) = recovery_handle {
        h.join().expect("recovery thread");
    }
    if let Some(tel) = &shared.telemetry {
        let rest = tel.lock().expect("telemetry").finish();
        if cfg.telemetry_live && !rest.is_empty() {
            eprint!("{}", mcv_prof::telemetry_jsonl(&rest));
        }
        telemetry_out.extend(rest);
    }
    let elapsed_ns = shared.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;

    // Oracles, per engine, on the quiesced cluster.
    let mut serializable = true;
    let mut recovered_matches = true;
    let mut bank_total = 0i64;
    let mut metrics = MetricsSnapshot::default();
    for slot in &shared.slots {
        let slot = slot.lock().expect("slot");
        let engine = &slot.engine;
        serializable &= engine.sampled_history().is_conflict_serializable();
        let recovered = mcv_txn::Wal::from_bytes_lossy(&engine.durable_image()).recover();
        let volatile = engine.state();
        let keys: std::collections::BTreeSet<&String> =
            recovered.keys().chain(volatile.keys()).collect();
        recovered_matches &= keys.into_iter().all(|k| {
            recovered.get(k).copied().unwrap_or(0) == volatile.get(k).copied().unwrap_or(0)
        });
        if bank {
            bank_total += (0..cfg.items_per_engine)
                .map(|i| recovered.get(&item_name(i)).copied().unwrap_or(0))
                .sum::<i64>();
        }
        for (k, v) in engine.metrics_snapshot().counters {
            *metrics.counters.entry(k).or_insert(0) += v;
        }
    }
    let bank_invariant_ok = bank
        .then(|| bank_total == BANK_INITIAL_BALANCE * (cfg.items_per_engine * cfg.engines) as i64);

    let n = &shared.n;
    let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
    let (committed, goodput) = (load(&n.committed), load(&n.goodput));
    let (dropped, deadline_missed, crash_lost) =
        (load(&n.dropped), load(&n.deadline_missed), load(&n.crash_lost));
    let resolved = committed + dropped + deadline_missed + crash_lost;
    let unresolved = (arrivals.len() as u64).saturating_sub(resolved);

    let mut completions = shared.completions.lock().expect("completions").clone();
    completions.sort_unstable();
    let latency = shared.latency.lock().expect("latency").clone();

    let recovered_at_us = match recovered_at.load(Ordering::Acquire) {
        0 => None,
        t => Some(t),
    };
    let recovery_ms = crash_at_actual.and_then(|crash| {
        let from = recovered_at_us.unwrap_or(crash).max(crash);
        first_healthy_window(&completions, from, cfg.p99_window_us, cfg.p99_target_us)
            .map(|healthy_end| (healthy_end.saturating_sub(crash)) / 1_000)
    });

    let c = &mut metrics.counters;
    c.insert("engine.admit.accepted".into(), load(&n.accepted));
    c.insert("engine.admit.shed".into(), load(&n.shed));
    c.insert("engine.admit.unavailable".into(), load(&n.unavailable));
    c.insert("engine.admit.retried".into(), load(&n.retried));
    c.insert("engine.admit.dropped".into(), dropped);
    c.insert("engine.admit.deadline_missed".into(), deadline_missed);
    c.insert("engine.admit.crash_lost".into(), crash_lost);
    c.insert("load.arrivals".into(), arrivals.len() as u64);
    metrics.histograms.insert("wall.load.latency_us".into(), latency.clone());
    let g = &mut metrics.gauges;
    g.insert(
        "wall.load.goodput_tps".into(),
        goodput as f64 / (cfg.profile.duration_us as f64 / 1e6),
    );
    g.insert("wall.load.p50_us".into(), latency.percentile(50.0) as f64);
    g.insert("wall.load.p99_us".into(), latency.percentile(99.0) as f64);
    g.insert("wall.load.p999_us".into(), latency.percentile(99.9) as f64);
    if let Some(ms) = recovery_ms {
        g.insert("wall.load.recovery_ms".into(), ms as f64);
    }

    LoadReport {
        arrivals: arrivals.len() as u64,
        accepted: load(&n.accepted),
        shed: load(&n.shed),
        unavailable: load(&n.unavailable),
        retried: load(&n.retried),
        dropped,
        deadline_missed,
        crash_lost,
        committed,
        goodput,
        unresolved,
        elapsed_ns,
        duration_us: cfg.profile.duration_us,
        latency_us: latency,
        completions,
        serializable,
        recovered_matches,
        bank_invariant_ok,
        crash_at_us: crash_at_actual,
        recovered_at_us,
        recovery_ms,
        metrics,
        telemetry: telemetry_out,
    }
}

/// One admission attempt for `arrivals[idx]` (attempt number
/// `attempt`); pacer-side.
fn dispatch(
    shared: &Arc<Shared>,
    pool: &mcv_engine::Pool,
    arrivals: &[Arrival],
    idx: usize,
    attempt: u32,
) {
    let arrival = arrivals[idx];
    if attempt == 0 {
        // Each arrival is observed exactly once, keyed by its
        // scheduled (virtual) time — the deterministic part of a
        // telemetry window.
        if let Some(tel) = &shared.telemetry {
            tel.lock().expect("telemetry").observe_arrival(arrival.at_us);
        }
    }
    let now = shared.now_us();
    if now >= arrival.at_us + shared.deadline_us {
        shared.n.deadline_missed.fetch_add(1, Ordering::Relaxed);
        shared.observe_abandoned(&arrival);
        return;
    }
    let slot_idx = shared.own.engine_of(arrival.session);
    let (engine, up) = {
        let slot = shared.slots[slot_idx].lock().expect("slot");
        (slot.engine.clone(), slot.up)
    };
    let gen = shared.gens[slot_idx].load(Ordering::Acquire);
    if !up {
        shared.n.shed.fetch_add(1, Ordering::Relaxed);
        shared.n.unavailable.fetch_add(1, Ordering::Relaxed);
        shared.observe_shed(&arrival);
        match shared.policy {
            ShedPolicy::Drop => {
                shared.n.dropped.fetch_add(1, Ordering::Relaxed);
                shared.observe_resolved(&arrival);
            }
            ShedPolicy::RetryAfter { .. } => shared.schedule_retry(idx, attempt, arrival),
        }
        return;
    }
    shared.in_flight.fetch_add(1, Ordering::Acquire);
    let sh = Arc::clone(shared);
    let submitted = Instant::now();
    let job = move || {
        let queue_ns = submitted.elapsed().as_nanos() as u64;
        let result = attempt_txn(&engine, sh.own, sh.workload, arrival.session, arrival.spec_seed);
        sh.complete(idx, attempt, arrival, slot_idx, gen, queue_ns, result);
    };
    match pool.try_submit(job) {
        Ok(()) => {
            shared.n.accepted.fetch_add(1, Ordering::Relaxed);
        }
        Err(_) => {
            shared.in_flight.fetch_sub(1, Ordering::Release);
            shared.n.shed.fetch_add(1, Ordering::Relaxed);
            shared.observe_shed(&arrival);
            match shared.policy {
                ShedPolicy::Drop => {
                    shared.n.dropped.fetch_add(1, Ordering::Relaxed);
                    shared.observe_resolved(&arrival);
                }
                ShedPolicy::RetryAfter { .. } => shared.schedule_retry(idx, attempt, arrival),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalProcess;

    fn quick_cfg() -> LoadConfig {
        LoadConfig {
            profile: LoadProfile {
                process: ArrivalProcess::Poisson { rate_tps: 2_000.0 },
                duration_us: 120_000,
                sessions: 50_000,
                session_theta: 0.8,
                seed: 21,
            },
            items_per_engine: 128,
            ..Default::default()
        }
    }

    #[test]
    fn underload_run_commits_everything_within_deadline() {
        let report = run_load(&quick_cfg());
        assert!(report.arrivals > 0);
        assert_eq!(report.unresolved, 0, "{}", report.summary());
        assert_eq!(report.committed, report.arrivals, "{}", report.summary());
        assert!(report.oracles_ok(), "{}", report.summary());
        assert_eq!(report.metrics.counter("load.arrivals"), report.arrivals);
    }

    #[test]
    fn overload_sheds_instead_of_collapsing() {
        // Throttle service hard (2ms per force, no group commit) so 4
        // workers cap out near 2k tps, then offer 10k.
        let mut cfg = quick_cfg();
        cfg.engine =
            EngineConfig { group_commit: false, force_latency_us: 2_000, ..Default::default() };
        cfg.profile.process = ArrivalProcess::Poisson { rate_tps: 10_000.0 };
        cfg.queue_cap = 16;
        cfg.deadline_us = 50_000;
        let report = run_load(&cfg);
        assert!(report.shed > 0, "{}", report.summary());
        assert!(report.committed > 0, "{}", report.summary());
        assert_eq!(report.unresolved, 0, "{}", report.summary());
        assert!(report.oracles_ok(), "{}", report.summary());
        // Conservation: every arrival resolved exactly once.
        assert_eq!(
            report.committed + report.dropped + report.deadline_missed + report.crash_lost,
            report.arrivals
        );
    }

    #[test]
    fn drop_policy_never_retries_sheds() {
        let mut cfg = quick_cfg();
        cfg.engine =
            EngineConfig { group_commit: false, force_latency_us: 2_000, ..Default::default() };
        cfg.profile.process = ArrivalProcess::Poisson { rate_tps: 8_000.0 };
        cfg.queue_cap = 8;
        cfg.policy = ShedPolicy::Drop;
        let report = run_load(&cfg);
        assert!(report.shed > 0);
        assert_eq!(report.dropped, report.shed, "every shed is terminal under Drop");
        assert!(report.oracles_ok(), "{}", report.summary());
    }

    #[test]
    fn crash_mid_run_recovers_and_keeps_the_bank_invariant() {
        let mut cfg = quick_cfg();
        cfg.engines = 2;
        cfg.workload = LoadWorkload::Bank;
        cfg.profile.duration_us = 150_000;
        cfg.crash = Some(CrashPlan { engine: 1, at_us: 50_000, restart_after_us: 30_000 });
        let report = run_load(&cfg);
        assert!(report.crash_at_us.is_some());
        assert!(report.recovered_at_us.is_some(), "recovery must complete");
        assert!(report.oracles_ok(), "{}", report.summary());
        assert_eq!(report.bank_invariant_ok, Some(true), "{}", report.summary());
        assert!(report.shed > 0, "a crashed engine must shed its arrivals");
        assert_eq!(report.unresolved, 0, "{}", report.summary());
    }

    #[test]
    fn backoff_is_capped_and_deterministic() {
        assert_eq!(backoff_us(1_000, 16_000, 0, 7), backoff_us(1_000, 16_000, 0, 7));
        for a in 0..20 {
            let b = backoff_us(1_000, 16_000, a, 7);
            assert!((1_000..16_000 + 1_000).contains(&b), "attempt {a}: {b}");
        }
    }

    #[test]
    fn p99_helpers_window_correctly() {
        let completions: Vec<(u64, u64)> =
            (0..200u64).map(|i| (i * 1_000, if i < 100 { 50_000 } else { 1_000 })).collect();
        // First half slow, second half fast: a healthy window exists
        // only in the second half.
        let healthy = first_healthy_window(&completions, 0, 20_000, 5_000).expect("heals");
        assert!(healthy > 100_000, "healthy window end {healthy}");
        let curve = p99_curve(&completions, 20_000);
        assert!(!curve.is_empty());
    }
}
