//! Seeded open-loop arrival generation.
//!
//! [`ArrivalSchedule::generate`] expands a [`LoadProfile`] into a
//! deterministic, serializable arrival list: Poisson (or bursty
//! flash-crowd / diurnal-shift) arrival instants on a virtual
//! microsecond clock, each tagged with the zipfian-selected user
//! session it belongs to and the seed of the transaction spec it will
//! submit. Same profile, same bytes — the *schedule* (not the wall
//! clock the driver paces it on) is the deterministic artifact the
//! determinism tests pin byte-for-byte.

use mcv_txn::Zipfian;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// 53 uniform mantissa bits in `[0, 1)` — the same draw `Zipfian` uses,
/// so the whole schedule depends only on the `StdRng` stream.
fn unit(rng: &mut impl RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// The offered-load curve over virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals at a fixed rate.
    Poisson {
        /// Offered transactions per second.
        rate_tps: f64,
    },
    /// Poisson at `base_tps`, with a flash crowd at `peak_tps` during
    /// `[start_us, end_us)` — the overload burst the SLO campaigns
    /// crash a shard in the middle of.
    FlashCrowd {
        /// Steady-state offered rate.
        base_tps: f64,
        /// Offered rate during the crowd window.
        peak_tps: f64,
        /// Crowd start (virtual µs).
        start_us: u64,
        /// Crowd end (virtual µs, exclusive).
        end_us: u64,
    },
    /// Sinusoidal shift between `low_tps` and `high_tps` with the
    /// given period — a compressed diurnal cycle.
    Diurnal {
        /// Trough offered rate.
        low_tps: f64,
        /// Peak offered rate.
        high_tps: f64,
        /// Full cycle length (virtual µs).
        period_us: u64,
    },
}

impl ArrivalProcess {
    /// Instantaneous offered rate (txns/second) at virtual time `at_us`.
    pub fn rate_at(&self, at_us: u64) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_tps } => rate_tps,
            ArrivalProcess::FlashCrowd { base_tps, peak_tps, start_us, end_us } => {
                if (start_us..end_us).contains(&at_us) {
                    peak_tps
                } else {
                    base_tps
                }
            }
            ArrivalProcess::Diurnal { low_tps, high_tps, period_us } => {
                let phase = (at_us % period_us.max(1)) as f64 / period_us.max(1) as f64;
                let swing = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * phase).cos());
                low_tps + (high_tps - low_tps) * swing
            }
        }
    }

    /// The peak instantaneous rate — the envelope the thinning sampler
    /// generates candidates at.
    pub fn peak(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_tps } => rate_tps,
            ArrivalProcess::FlashCrowd { base_tps, peak_tps, .. } => base_tps.max(peak_tps),
            ArrivalProcess::Diurnal { low_tps, high_tps, .. } => low_tps.max(high_tps),
        }
    }
}

/// Everything needed to regenerate an arrival schedule bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadProfile {
    /// The offered-load curve.
    pub process: ArrivalProcess,
    /// Virtual length of the run; no arrivals at or past this instant.
    pub duration_us: u64,
    /// Size of the simulated user population. Sessions are virtual
    /// (pure arithmetic, no per-session allocation), so millions are
    /// cheap — the zipfian zeta precomputation is the only O(n) cost.
    pub sessions: usize,
    /// Zipfian skew across sessions (0 = uniform population,
    /// 0.99 = YCSB-hot). Session 0 is the hottest user.
    pub session_theta: f64,
    /// Seed for arrival instants, session draws, and spec seeds.
    pub seed: u64,
}

impl Default for LoadProfile {
    fn default() -> Self {
        LoadProfile {
            process: ArrivalProcess::Poisson { rate_tps: 1_000.0 },
            duration_us: 200_000,
            sessions: 1_000_000,
            session_theta: 0.8,
            seed: 1,
        }
    }
}

impl LoadProfile {
    /// The zipfian session selector for this profile. Building one
    /// costs an O(sessions) zeta sum — campaign loops construct it
    /// once and reuse it via [`ArrivalSchedule::generate_with`].
    pub fn session_picker(&self) -> Zipfian {
        Zipfian::new(self.sessions, self.session_theta)
    }
}

/// One admission-to-be: a virtual instant, the user session it belongs
/// to, and the seed that fully determines the transaction spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arrival {
    /// Virtual arrival instant (µs from run start). Latency and
    /// deadline budgets are measured from here — queueing counts.
    pub at_us: u64,
    /// Owning session (0 = hottest).
    pub session: u64,
    /// Seed of the transaction spec; retries replay the same spec.
    pub spec_seed: u64,
}

/// A fully expanded, deterministic arrival schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalSchedule {
    /// The profile this schedule was expanded from.
    pub profile: LoadProfile,
    /// Arrivals in nondecreasing `at_us` order.
    pub arrivals: Vec<Arrival>,
}

impl ArrivalSchedule {
    /// Expands `profile` into its arrival list (thinning sampler:
    /// candidates at the peak rate, each kept with probability
    /// `rate(t)/peak`). Deterministic in the profile.
    pub fn generate(profile: &LoadProfile) -> ArrivalSchedule {
        Self::generate_with(profile, &profile.session_picker())
    }

    /// [`ArrivalSchedule::generate`] with a prebuilt session picker
    /// (must match the profile's `sessions`/`session_theta`).
    pub fn generate_with(profile: &LoadProfile, sessions: &Zipfian) -> ArrivalSchedule {
        let mut rng = StdRng::seed_from_u64(profile.seed);
        let peak_per_us = profile.process.peak() / 1e6;
        assert!(peak_per_us > 0.0, "arrival process needs a positive peak rate");
        let mut arrivals = Vec::new();
        let mut t = 0.0f64;
        let mut i = 0u64;
        loop {
            // Exponential inter-arrival at the peak rate.
            t += -(1.0 - unit(&mut rng)).ln() / peak_per_us;
            if t >= profile.duration_us as f64 {
                break;
            }
            let at_us = t as u64;
            let keep = unit(&mut rng) * profile.process.peak() <= profile.process.rate_at(at_us);
            if keep {
                let session = sessions.next(&mut rng) as u64;
                let spec_seed =
                    profile.seed ^ (i.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                arrivals.push(Arrival { at_us, session, spec_seed });
                i += 1;
            }
        }
        ArrivalSchedule { profile: profile.clone(), arrivals }
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Offered rate averaged over the profile duration, in txns/s.
    pub fn offered_tps(&self) -> f64 {
        self.arrivals.len() as f64 / (self.profile.duration_us as f64 / 1e6)
    }

    /// Canonical byte serialization: one JSON line for the profile,
    /// then one per arrival. Equal schedules produce equal bytes — the
    /// determinism tests compare this form directly.
    pub fn to_jsonl(&self) -> String {
        let mut out = serde_json::to_string(&self.profile).expect("profile serializes") + "\n";
        for a in &self.arrivals {
            out.push_str(&serde_json::to_string(a).expect("arrival serializes"));
            out.push('\n');
        }
        out
    }
}

/// Maps sessions onto engines and key windows: each session has a home
/// engine (crash-fault domain) and a scrambled home key inside that
/// engine's item range, so zipfian session heat becomes zipfian key
/// heat without two hot sessions ever sharing a whole window.
#[derive(Debug, Clone, Copy)]
pub struct Ownership {
    /// Number of engines (crashable shard groups).
    pub engines: usize,
    /// Items per engine keyspace.
    pub items_per_engine: usize,
    /// Width of one session's key window.
    pub span: usize,
}

impl Ownership {
    /// The engine that owns every key of `session`'s transactions —
    /// all of a session's ops stay engine-local (cross-shard mixes go
    /// through the `dist_waves` leg instead).
    pub fn engine_of(&self, session: u64) -> usize {
        (session % self.engines as u64) as usize
    }

    /// The session's home key index inside its engine's `0..items`
    /// range (multiplicative scramble: adjacent hot sessions spread
    /// across the keyspace instead of piling onto one hot block).
    pub fn home_key(&self, session: u64) -> usize {
        ((session.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 17) % self.items_per_engine as u64)
            as usize
    }

    /// The `k`-th key of `session`'s window, wrapping within the
    /// engine's range.
    pub fn key(&self, session: u64, k: usize) -> usize {
        (self.home_key(session) + (k % self.span.max(1))) % self.items_per_engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_schedules_are_byte_identical() {
        let p = LoadProfile { sessions: 10_000, ..Default::default() };
        let a = ArrivalSchedule::generate(&p);
        let b = ArrivalSchedule::generate(&p);
        assert!(!a.is_empty());
        assert_eq!(a.to_jsonl(), b.to_jsonl());
    }

    #[test]
    fn different_seeds_diverge() {
        let p = LoadProfile { sessions: 10_000, ..Default::default() };
        let q = LoadProfile { seed: p.seed + 1, ..p.clone() };
        assert_ne!(
            ArrivalSchedule::generate(&p).to_jsonl(),
            ArrivalSchedule::generate(&q).to_jsonl()
        );
    }

    #[test]
    fn poisson_rate_is_roughly_honored() {
        let p = LoadProfile {
            process: ArrivalProcess::Poisson { rate_tps: 5_000.0 },
            duration_us: 400_000,
            sessions: 1_000,
            seed: 7,
            ..Default::default()
        };
        let s = ArrivalSchedule::generate(&p);
        let tps = s.offered_tps();
        assert!((3_500.0..6_500.0).contains(&tps), "offered {tps} tps");
        assert!(s.arrivals.windows(2).all(|w| w[0].at_us <= w[1].at_us));
    }

    #[test]
    fn flash_crowd_concentrates_arrivals_in_the_window() {
        let p = LoadProfile {
            process: ArrivalProcess::FlashCrowd {
                base_tps: 500.0,
                peak_tps: 5_000.0,
                start_us: 100_000,
                end_us: 200_000,
            },
            duration_us: 300_000,
            sessions: 1_000,
            seed: 3,
            ..Default::default()
        };
        let s = ArrivalSchedule::generate(&p);
        let in_crowd = s.arrivals.iter().filter(|a| (100_000..200_000).contains(&a.at_us)).count();
        let outside = s.len() - in_crowd;
        // The crowd third carries 10x the rate of the other two thirds
        // combined rate: expect a clear majority inside the window.
        assert!(in_crowd > 3 * outside, "crowd {in_crowd} vs outside {outside}");
    }

    #[test]
    fn diurnal_trough_and_peak_differ() {
        let proc =
            ArrivalProcess::Diurnal { low_tps: 100.0, high_tps: 1_000.0, period_us: 1_000_000 };
        assert!(proc.rate_at(0) < 150.0);
        assert!(proc.rate_at(500_000) > 900.0);
        assert_eq!(proc.peak(), 1_000.0);
    }

    #[test]
    fn zipfian_sessions_make_hot_keys() {
        let p = LoadProfile {
            sessions: 2_000_000,
            session_theta: 0.9,
            duration_us: 100_000,
            ..Default::default()
        };
        let s = ArrivalSchedule::generate(&p);
        let hot = s.arrivals.iter().filter(|a| a.session < 100).count();
        // 100 of 2M sessions would get ~0.005% uniformly; zipf(0.9)
        // concentrates orders of magnitude more.
        assert!(hot * 20 > s.len(), "hot-session share too small: {hot}/{}", s.len());
    }

    #[test]
    fn ownership_keeps_sessions_engine_local_and_in_range() {
        let own = Ownership { engines: 3, items_per_engine: 64, span: 4 };
        for session in [0u64, 1, 2, 17, 1_999_999] {
            let e = own.engine_of(session);
            assert!(e < 3);
            for k in 0..10 {
                assert!(own.key(session, k) < 64);
            }
        }
        // Hot sessions 0..3 map to distinct home keys.
        let homes: std::collections::BTreeSet<usize> = (0u64..4).map(|s| own.home_key(s)).collect();
        assert!(homes.len() >= 3, "hot sessions pile onto one home: {homes:?}");
    }
}
