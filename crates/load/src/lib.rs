//! # mcv-load
//!
//! Open-loop traffic, admission control, and chaos-under-load for the
//! transaction engine — the harness that makes overload and
//! crash-recovery *latency* first-class, where every other driver in
//! the repo is closed-loop (N workers, fixed quota) and therefore
//! structurally incapable of overloading anything.
//!
//! - [`ArrivalSchedule`] — deterministic seeded arrival processes
//!   (Poisson, flash-crowd, diurnal) over millions of zipfian user
//!   sessions on a virtual clock; same profile, same bytes;
//! - [`run_load`] — the wall-clock open-loop driver: paces a schedule
//!   against live engines through the non-blocking `Pool::try_submit`
//!   admission path, with an explicit [`ShedPolicy`]
//!   (drop vs retry-after with capped exponential backoff), per-txn
//!   deadline budgets from *arrival* (queueing counts), the
//!   `engine.admit.{accepted,shed,retried,deadline_missed}` counter
//!   family, p50/p99/p999 latency-under-load, and the same
//!   serializability / recovery-equivalence / bank-sum oracles the
//!   closed-loop driver enforces;
//! - [`CrashPlan`] — crash an engine mid-run (WAL image frozen at the
//!   crash instant), rebuild it by rollback recovery while traffic
//!   shedding continues, and measure the recovery-time SLO: wall time
//!   from crash to windowed-p99-back-under-target;
//! - [`simulate`] — a deterministic discrete-event replay of the same
//!   admission machinery on the virtual clock: byte-identical decision
//!   sequences for the determinism suite, and a free planning tool;
//! - [`rate_sweep`] / [`knee`] / [`run_slo_campaign`] — latency-vs-load
//!   curves, the saturation knee, and the seeded
//!   shard-crash-during-flash-crowd campaign behind `exp.slo` and the
//!   `BENCH_slo.json` gate;
//! - [`run_dist_waves`] — the cross-shard leg: open-loop arrivals
//!   wave-paced into `mcv_dist`'s batch runtime, every wave judged by
//!   the eight cross-shard oracles.
//!
//! # Example
//!
//! ```
//! use mcv_load::{run_load, LoadConfig, LoadProfile, ArrivalProcess};
//! let report = run_load(&LoadConfig {
//!     profile: LoadProfile {
//!         process: ArrivalProcess::Poisson { rate_tps: 1_000.0 },
//!         duration_us: 50_000,
//!         sessions: 10_000,
//!         ..Default::default()
//!     },
//!     ..Default::default()
//! });
//! assert_eq!(report.committed, report.arrivals);
//! assert!(report.oracles_ok());
//! ```

#![warn(missing_docs)]

mod arrivals;
mod dist_waves;
mod driver;
mod sim;
mod slo;

pub use arrivals::{Arrival, ArrivalProcess, ArrivalSchedule, LoadProfile, Ownership};
pub use dist_waves::{
    run_dist_stream, run_dist_waves, DistStreamConfig, DistStreamReport, DistWavesConfig,
    DistWavesReport,
};
pub use driver::{
    backoff_us, load_latency_histogram, p99_curve, p99_exact, run_load, run_load_with_schedule,
    CrashPlan, LoadConfig, LoadReport, LoadWorkload, ShedPolicy, BANK_INITIAL_BALANCE,
};
pub use sim::{simulate, Decision, SimConfig, SimOutcome};
pub use slo::{
    crash_campaign_template, knee, rate_sweep, recovery_histogram, run_slo_campaign,
    SloCampaignConfig, SloCampaignReport, SweepPoint,
};
