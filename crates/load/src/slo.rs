//! SLO measurement: latency-vs-load sweeps, the saturation knee, and
//! the seeded shard-crash-during-flash-crowd campaign whose
//! recovery-time distribution the bench gate pins.

use mcv_obs::Histogram;

use crate::arrivals::{ArrivalProcess, ArrivalSchedule};
use crate::driver::{run_load_with_schedule, CrashPlan, LoadConfig, LoadReport};

/// One point of a latency-vs-load curve.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Offered rate this point ran at (txns/s, realized).
    pub offered_tps: f64,
    /// In-deadline commits per offered second.
    pub goodput_tps: f64,
    /// Shed events.
    pub shed: u64,
    /// Latency percentiles (µs).
    pub p50_us: u64,
    /// 99th percentile latency (µs).
    pub p99_us: u64,
    /// 99.9th percentile latency (µs).
    pub p999_us: u64,
    /// All correctness oracles green at this point.
    pub oracles_ok: bool,
}

/// Runs `base` once per rate (Poisson arrivals; everything else from
/// the base config) and returns the latency-vs-load curve.
pub fn rate_sweep(base: &LoadConfig, rates_tps: &[f64]) -> Vec<SweepPoint> {
    let mut picker_profile = base.profile.clone();
    let picker = picker_profile.session_picker();
    rates_tps
        .iter()
        .map(|&rate| {
            let mut cfg = base.clone();
            cfg.profile.process = ArrivalProcess::Poisson { rate_tps: rate };
            picker_profile.process = cfg.profile.process;
            picker_profile.seed = cfg.profile.seed;
            let schedule = ArrivalSchedule::generate_with(&cfg.profile, &picker);
            let r = run_load_with_schedule(&cfg, &schedule);
            SweepPoint {
                offered_tps: r.offered_tps(),
                goodput_tps: r.goodput_tps(),
                shed: r.shed,
                p50_us: r.latency_us.percentile(50.0),
                p99_us: r.latency_us.percentile(99.0),
                p999_us: r.latency_us.percentile(99.9),
                oracles_ok: r.oracles_ok(),
            }
        })
        .collect()
}

/// The saturation knee of a sweep: the point with the highest goodput.
/// Past it, offered load only adds shedding and latency.
pub fn knee(points: &[SweepPoint]) -> &SweepPoint {
    points
        .iter()
        .max_by(|a, b| a.goodput_tps.partial_cmp(&b.goodput_tps).expect("no NaN goodput"))
        .expect("sweep has at least one point")
}

/// The shard-crash-during-flash-crowd campaign: `seeds` independent
/// open-loop runs, each crashing one engine mid-crowd, judged on
/// recovery time and oracle verdicts.
#[derive(Debug, Clone)]
pub struct SloCampaignConfig {
    /// Per-run template; the profile seed is overridden per run.
    pub base: LoadConfig,
    /// Number of seeded runs.
    pub seeds: u64,
    /// First seed; run `i` uses `seed_base + i` (disjoint seed bases
    /// give independent campaigns for the flake tier).
    pub seed_base: u64,
    /// Recovery-time SLO: a run passes when p99 is back under target
    /// within this many ms of the crash.
    pub slo_ms: u64,
}

/// Aggregated campaign verdicts.
#[derive(Debug, Clone)]
pub struct SloCampaignReport {
    /// Runs executed.
    pub runs: u64,
    /// Runs whose recovery time met the SLO.
    pub recovered_within_slo: u64,
    /// Runs where p99 never returned under target.
    pub never_recovered: u64,
    /// Runs with any correctness-oracle violation.
    pub oracle_failures: u64,
    /// Runs that left arrivals unresolved at the drain cap.
    pub unresolved_runs: u64,
    /// Total arrivals across the campaign (deterministic in the seed
    /// set — a cross-machine anchor for the bench gate).
    pub arrivals_total: u64,
    /// Total shed events.
    pub shed_total: u64,
    /// Recovery-time distribution (ms) over recovered runs.
    pub recovery_ms: Histogram,
    /// Worst observed recovery (ms) among recovered runs.
    pub worst_recovery_ms: u64,
}

impl SloCampaignReport {
    /// Fraction of runs that met the recovery SLO.
    pub fn slo_fraction(&self) -> f64 {
        if self.runs == 0 {
            return 0.0;
        }
        self.recovered_within_slo as f64 / self.runs as f64
    }

    /// One-line rendering.
    pub fn summary(&self) -> String {
        format!(
            "slo campaign: {}/{} runs recovered within slo ({:.0}%), {} never, \
             {} oracle failures, {} unresolved | recovery p50/p99 {}/{} ms (worst {}) \
             | {} arrivals, {} shed",
            self.recovered_within_slo,
            self.runs,
            100.0 * self.slo_fraction(),
            self.never_recovered,
            self.oracle_failures,
            self.unresolved_runs,
            self.recovery_ms.percentile(50.0),
            self.recovery_ms.percentile(99.0),
            self.worst_recovery_ms,
            self.arrivals_total,
            self.shed_total,
        )
    }
}

/// Millisecond-scale bounds for recovery-time distributions.
pub fn recovery_histogram() -> Histogram {
    Histogram::with_bounds(vec![25, 50, 75, 100, 150, 200, 300, 500, 1_000, 2_000, 5_000])
}

/// Runs the campaign. The crash plan must be present in the template.
pub fn run_slo_campaign(cfg: &SloCampaignConfig) -> SloCampaignReport {
    assert!(cfg.base.crash.is_some(), "slo campaign needs a crash plan");
    let picker = cfg.base.profile.session_picker();
    let mut report = SloCampaignReport {
        runs: 0,
        recovered_within_slo: 0,
        never_recovered: 0,
        oracle_failures: 0,
        unresolved_runs: 0,
        arrivals_total: 0,
        shed_total: 0,
        recovery_ms: recovery_histogram(),
        worst_recovery_ms: 0,
    };
    for i in 0..cfg.seeds {
        let mut run_cfg = cfg.base.clone();
        run_cfg.profile.seed = cfg.seed_base + i;
        let schedule = ArrivalSchedule::generate_with(&run_cfg.profile, &picker);
        let r = run_load_with_schedule(&run_cfg, &schedule);
        tally(&mut report, &r, cfg.slo_ms);
    }
    report
}

fn tally(report: &mut SloCampaignReport, r: &LoadReport, slo_ms: u64) {
    report.runs += 1;
    report.arrivals_total += r.arrivals;
    report.shed_total += r.shed;
    if !r.oracles_ok() {
        report.oracle_failures += 1;
    }
    if r.unresolved > 0 {
        report.unresolved_runs += 1;
    }
    match r.recovery_ms {
        Some(ms) => {
            report.recovery_ms.record(ms);
            report.worst_recovery_ms = report.worst_recovery_ms.max(ms);
            if ms <= slo_ms {
                report.recovered_within_slo += 1;
            }
        }
        None => report.never_recovered += 1,
    }
}

/// The standard flash-crowd-with-crash template the CI campaign and
/// `exp.slo` share: 2 engines, bank transfers, a 3x crowd in the
/// middle of the run, engine 1 crashing mid-crowd.
pub fn crash_campaign_template() -> LoadConfig {
    use crate::arrivals::LoadProfile;
    use crate::driver::{LoadWorkload, ShedPolicy};
    LoadConfig {
        profile: LoadProfile {
            process: ArrivalProcess::FlashCrowd {
                base_tps: 1_500.0,
                peak_tps: 4_500.0,
                start_us: 60_000,
                end_us: 160_000,
            },
            duration_us: 250_000,
            sessions: 1_000_000,
            session_theta: 0.8,
            seed: 0,
        },
        engine: mcv_engine::EngineConfig::default(),
        engines: 2,
        items_per_engine: 128,
        session_span: 8,
        workload: LoadWorkload::Bank,
        workers: 4,
        queue_cap: 64,
        policy: ShedPolicy::RetryAfter { base_us: 1_000, cap_us: 16_000 },
        deadline_us: 100_000,
        p99_target_us: 20_000,
        p99_window_us: 40_000,
        crash: Some(CrashPlan { engine: 1, at_us: 80_000, restart_after_us: 40_000 }),
        telemetry_window_us: 0,
        telemetry_live: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knee_picks_the_goodput_maximum() {
        let mk = |offered, goodput| SweepPoint {
            offered_tps: offered,
            goodput_tps: goodput,
            shed: 0,
            p50_us: 0,
            p99_us: 0,
            p999_us: 0,
            oracles_ok: true,
        };
        let pts = vec![mk(1000.0, 990.0), mk(2000.0, 1900.0), mk(4000.0, 1500.0)];
        assert_eq!(knee(&pts).offered_tps, 2000.0);
    }

    #[test]
    fn small_campaign_recovers_and_keeps_oracles_green() {
        let mut base = crash_campaign_template();
        // Shrink for test wall time.
        base.profile.sessions = 50_000;
        base.profile.duration_us = 200_000;
        let campaign =
            run_slo_campaign(&SloCampaignConfig { base, seeds: 3, seed_base: 9000, slo_ms: 300 });
        assert_eq!(campaign.runs, 3);
        assert_eq!(campaign.oracle_failures, 0, "{}", campaign.summary());
        assert!(campaign.shed_total > 0, "crash must shed: {}", campaign.summary());
        assert!(
            campaign.recovered_within_slo >= 2,
            "recovery mostly within slo: {}",
            campaign.summary()
        );
    }
}
