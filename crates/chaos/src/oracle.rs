//! Invariant oracles evaluated over a finished chaos run.
//!
//! The atomic-commitment properties follow Chockler & Gotsman's
//! AC1–AC5 formulation (and Chapter 4 of the thesis): agreement,
//! validity, decision stability, termination of correct processes —
//! plus the two storage-level properties the thesis proves from local
//! axioms: conflict-serializability of every site history and
//! WAL-recovery consistency.

use crate::runner::ChaosConfig;
use mcv_commit::monitor::{check_uniformity, decisions};
use mcv_commit::{Msg, Site};
use mcv_sim::{ProcId, World};
use mcv_txn::{TxnId, Wal};
use std::collections::BTreeMap;

/// One oracle's verdict for one run.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct OracleResult {
    /// Oracle name (stable identifier, see [`ORACLE_NAMES`]).
    pub name: String,
    /// Whether the invariant held.
    pub pass: bool,
    /// Human-readable evidence when it did not.
    pub detail: String,
}

impl OracleResult {
    fn pass(name: &str) -> Self {
        OracleResult { name: name.to_string(), pass: true, detail: String::new() }
    }

    fn fail(name: &str, detail: String) -> Self {
        OracleResult { name: name.to_string(), pass: false, detail }
    }

    fn check(name: &str, violations: Vec<String>) -> Self {
        if violations.is_empty() {
            OracleResult::pass(name)
        } else {
            OracleResult::fail(name, violations.join("; "))
        }
    }
}

/// Canonical oracle names, in evaluation order.
pub const ORACLE_NAMES: &[&str] = &[
    "ac1_agreement",
    "ac2_validity",
    "ac3_stability",
    "termination",
    "serializability",
    "wal_consistency",
    "causal_order",
];

/// Evaluates every oracle over the finished world. `wal_damage` holds
/// violations the runner detected at torn-write injection time;
/// `trace` is the run's causal event trace (possibly a flight-recorder
/// window).
pub fn evaluate(
    world: &World<Msg, Site>,
    cfg: &ChaosConfig,
    wal_damage: &[String],
    trace: &mcv_trace::CausalTrace,
) -> Vec<OracleResult> {
    let ds = decisions(world.trace());
    let txns: Vec<TxnId> = (1..=cfg.n_transactions.max(1) as u64).map(TxnId).collect();
    let mut out = Vec::new();

    // AC1 — agreement: no two sites decide differently on the same
    // transaction.
    out.push(match check_uniformity(world.trace()) {
        Ok(()) => OracleResult::pass("ac1_agreement"),
        Err(vs) => OracleResult::fail(
            "ac1_agreement",
            vs.iter()
                .map(|v| {
                    format!(
                        "{} committed at {} but aborted at {}",
                        v.txn, v.committed_at, v.aborted_at
                    )
                })
                .collect::<Vec<_>>()
                .join("; "),
        ),
    });

    // AC2 — validity: commit is only possible if every cohort voted
    // yes; and a fault-free unanimous-yes run must commit.
    let mut validity = Vec::new();
    if cfg.vote_no_cohort.is_some() {
        for d in ds.iter().filter(|d| d.commit) {
            validity.push(format!("{} committed {} despite a no vote", d.site, d.txn));
        }
    } else if cfg.schedule.is_empty() {
        for t in &txns {
            if !ds.iter().any(|d| d.txn == *t && d.commit) {
                validity.push(format!("fault-free unanimous-yes run did not commit {t}"));
            }
        }
    }
    out.push(OracleResult::check("ac2_validity", validity));

    // AC3/AC4 — stability: a site never reverses its own decision.
    let mut flips = Vec::new();
    let mut first: BTreeMap<(ProcId, TxnId), bool> = BTreeMap::new();
    for d in &ds {
        match first.get(&(d.site, d.txn)) {
            None => {
                first.insert((d.site, d.txn), d.commit);
            }
            Some(prev) if *prev != d.commit => {
                flips.push(format!("{} flipped its decision on {}", d.site, d.txn));
            }
            _ => {}
        }
    }
    out.push(OracleResult::check("ac3_stability", flips));

    // Termination: every site that is operational at the deadline and
    // participated in a transaction has decided it. (Crashed-forever
    // sites are exempt; the fault horizon is far below the deadline,
    // so survivors have a long quiet tail to finish in.)
    let mut undecided = Vec::new();
    for i in 0..world.n_procs() {
        let id = ProcId(i);
        if !world.is_up(id) {
            continue;
        }
        for t in &txns {
            let participated = world.process(id).local_state(*t).is_some();
            let decided = ds.iter().any(|d| d.site == id && d.txn == *t);
            if participated && !decided {
                undecided.push(format!("{id} never decided {t}"));
            }
        }
    }
    out.push(OracleResult::check("termination", undecided));

    // Serializability: each operational site's observed history has an
    // acyclic conflict graph.
    let mut non_ser = Vec::new();
    for i in 0..world.n_procs() {
        let id = ProcId(i);
        if !world.is_up(id) {
            continue;
        }
        if let Some(h) = world.process(id).db.history() {
            if !h.is_conflict_serializable() {
                non_ser.push(format!("{id} history not conflict-serializable: {h}"));
            }
        }
    }
    out.push(OracleResult::check("serializability", non_ser));

    // WAL consistency: torn writes never disturbed recovered state
    // (checked at injection time), every log round-trips through its
    // byte image, recovery is idempotent, and no transaction is both
    // committed and aborted in one log.
    let mut wal_bad: Vec<String> = wal_damage.to_vec();
    for i in 0..world.n_procs() {
        let id = ProcId(i);
        let wal = world.process(id).db.wal();
        if Wal::from_bytes_lossy(&wal.to_bytes()) != *wal {
            wal_bad.push(format!("{id} WAL does not round-trip through its byte image"));
        }
        if wal.recover() != wal.recover() {
            wal_bad.push(format!("{id} WAL recovery is not idempotent"));
        }
        let both: Vec<TxnId> = wal.committed().intersection(&wal.aborted()).copied().collect();
        if !both.is_empty() {
            wal_bad.push(format!("{id} WAL has both commit and abort for {both:?}"));
        }
    }
    out.push(OracleResult::check("wal_consistency", wal_bad));

    // Causal order: the recorded event trace satisfies happens-before
    // — no deliver precedes its send, per-site Lamport clocks are
    // strictly monotone, and no commit ack precedes the force that
    // made it durable. Ring-buffer windows are checked in the
    // eviction-tolerant mode.
    let hb = mcv_trace::check(trace);
    let causal: Vec<String> = hb.violations.iter().take(5).map(|v| v.to_string()).collect();
    out.push(OracleResult::check("causal_order", causal));

    debug_assert_eq!(out.len(), ORACLE_NAMES.len());
    for o in &out {
        mcv_obs::counter(
            &format!("chaos.oracle.{}.{}", o.name, if o.pass { "pass" } else { "fail" }),
            1,
        );
    }
    out
}
