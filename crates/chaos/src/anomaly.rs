//! Weak-isolation anomaly detectors over causal traces.
//!
//! *Algebraic Laws for Weak Consistency* (Cerone, Gotsman & Yang)
//! characterizes isolation levels by the anomalies they admit. The two
//! detectors here decide, from an `mcv-trace` event log alone, whether
//! an execution exhibits:
//!
//! - **write skew** — two committed transactions with pinned snapshots
//!   each read an item the other wrote, both commit after the other's
//!   snapshot, and their write sets are disjoint. Admitted by
//!   SnapshotIsolation (first-committer-wins never sees the disjoint
//!   writes); excluded by SSI and 2PL.
//! - **long fork** — two readers observe two items' versions in
//!   opposite orders, i.e. their snapshots are not totally ordered.
//!   Admitted by ReadCommitted; excluded by SI and above (snapshots
//!   are prefixes of one commit order).
//!
//! The detectors consume the `SnapshotOpen` / `SnapshotRead` /
//! `VersionInstall` / `Commit` events the engine's MVCC paths emit.
//! Pure-2PL runs emit none of them and are trivially clean — which is
//! the correct verdict, since 2PL histories are serializable.

use mcv_trace::{CausalTrace, EventKind};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Per-transaction view reconstructed from the trace.
#[derive(Debug, Clone, Default)]
pub struct TxnView {
    /// Snapshot begin timestamp (`SnapshotOpen`), if one was pinned.
    pub begin_ts: Option<u64>,
    /// Commit timestamp of installed versions (`VersionInstall`).
    pub commit_ts: Option<u64>,
    /// Whether a `Commit` event was observed.
    pub committed: bool,
    /// First observed version timestamp per item read.
    pub reads: BTreeMap<String, u64>,
    /// Installed version timestamp per item written.
    pub writes: BTreeMap<String, u64>,
}

/// Extracts the MVCC transaction views from a trace. Transactions that
/// emitted no MVCC events (pure 2PL) do not appear.
pub fn txn_views(trace: &CausalTrace) -> BTreeMap<u64, TxnView> {
    let mut views: BTreeMap<u64, TxnView> = BTreeMap::new();
    let mut mvcc_txns: std::collections::BTreeSet<u64> = Default::default();
    for e in &trace.events {
        match &e.kind {
            EventKind::SnapshotOpen { txn, ts } => {
                views.entry(*txn).or_default().begin_ts = Some(*ts);
                mvcc_txns.insert(*txn);
            }
            EventKind::SnapshotRead { txn, item, ts } => {
                views.entry(*txn).or_default().reads.entry(item.clone()).or_insert(*ts);
                mvcc_txns.insert(*txn);
            }
            EventKind::VersionInstall { txn, item, ts } => {
                let v = views.entry(*txn).or_default();
                v.writes.insert(item.clone(), *ts);
                v.commit_ts = Some(*ts);
                mvcc_txns.insert(*txn);
            }
            EventKind::Commit { txn } => {
                views.entry(*txn).or_default().committed = true;
            }
            _ => {}
        }
    }
    views.retain(|txn, _| mvcc_txns.contains(txn));
    views
}

/// A write-skew witness: `t1` and `t2` committed concurrently, `t1`
/// read `x` which `t2` overwrote, `t2` read `y` which `t1` overwrote,
/// and neither wrote what the other wrote.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WriteSkew {
    /// First transaction.
    pub t1: u64,
    /// Second transaction.
    pub t2: u64,
    /// Item read by `t1`, written by `t2` after `t1`'s snapshot.
    pub x: String,
    /// Item read by `t2`, written by `t1` after `t2`'s snapshot.
    pub y: String,
}

/// A long-fork witness: `r1` saw `x` strictly newer than `r2` did,
/// while `r2` saw `y` strictly newer than `r1` did.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LongFork {
    /// First reader.
    pub r1: u64,
    /// Second reader.
    pub r2: u64,
    /// Item `r1` observed newer.
    pub x: String,
    /// Item `r2` observed newer.
    pub y: String,
}

/// Everything the detectors found in one trace.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AnomalyReport {
    /// Write-skew witnesses (SI admits, SSI/2PL must not).
    pub write_skews: Vec<WriteSkew>,
    /// Long-fork witnesses (RC admits, SI and above must not).
    pub long_forks: Vec<LongFork>,
    /// MVCC transactions examined.
    pub txns: usize,
}

impl AnomalyReport {
    /// True when no anomaly was found.
    pub fn clean(&self) -> bool {
        self.write_skews.is_empty() && self.long_forks.is_empty()
    }
}

/// Runs both detectors over `trace` and tallies
/// `chaos.anomaly.write_skew` / `chaos.anomaly.long_fork` counters
/// into the ambient [`mcv_obs`] collector.
pub fn detect_anomalies(trace: &CausalTrace) -> AnomalyReport {
    let views = txn_views(trace);
    let report = AnomalyReport {
        write_skews: find_write_skews(&views),
        long_forks: find_long_forks(&views),
        txns: views.len(),
    };
    mcv_obs::counter("chaos.anomaly.write_skew", report.write_skews.len() as u64);
    mcv_obs::counter("chaos.anomaly.long_fork", report.long_forks.len() as u64);
    report
}

/// All write-skew witness pairs among the committed snapshot
/// transactions (each unordered pair reported once, `t1 < t2`).
pub fn find_write_skews(views: &BTreeMap<u64, TxnView>) -> Vec<WriteSkew> {
    let candidates: Vec<(&u64, &TxnView)> = views
        .iter()
        .filter(|(_, v)| {
            v.committed && v.begin_ts.is_some() && v.commit_ts.is_some() && !v.writes.is_empty()
        })
        .collect();
    let mut out = Vec::new();
    for (i, (id1, v1)) in candidates.iter().enumerate() {
        for (id2, v2) in &candidates[i + 1..] {
            if v1.writes.keys().any(|w| v2.writes.contains_key(w)) {
                continue; // overlapping write sets: not write skew
            }
            // x: an rw-antidependency t1 -> t2 (t1 read x, t2 committed
            // a newer x after t1's snapshot); y: the reverse edge. Both
            // present = the two-transaction cycle SI cannot see.
            let x = rw_edge(v1, v2);
            let y = rw_edge(v2, v1);
            if let (Some(x), Some(y)) = (x, y) {
                out.push(WriteSkew { t1: **id1, t2: **id2, x, y });
            }
        }
    }
    out
}

/// An item `reader` read whose version was overwritten by `writer`
/// committing after `reader`'s snapshot.
fn rw_edge(reader: &TxnView, writer: &TxnView) -> Option<String> {
    let begin = reader.begin_ts?;
    reader.reads.keys().find(|item| writer.writes.get(*item).is_some_and(|&ts| ts > begin)).cloned()
}

/// All long-fork witness pairs: two readers observing two items in
/// opposite version orders (each unordered pair reported once).
pub fn find_long_forks(views: &BTreeMap<u64, TxnView>) -> Vec<LongFork> {
    let readers: Vec<(&u64, &TxnView)> =
        views.iter().filter(|(_, v)| v.committed && v.reads.len() >= 2).collect();
    let mut out = Vec::new();
    for (i, (id1, v1)) in readers.iter().enumerate() {
        for (id2, v2) in &readers[i + 1..] {
            let witness = fork_witness(v1, v2);
            if let Some((x, y)) = witness {
                out.push(LongFork { r1: **id1, r2: **id2, x, y });
            }
        }
    }
    out
}

/// Items `(x, y)` such that `a` saw `x` newer than `b` did while `b`
/// saw `y` newer than `a` did — but only versions the reader did not
/// itself install (own writes are trivially "newer").
fn fork_witness(a: &TxnView, b: &TxnView) -> Option<(String, String)> {
    let common: Vec<&String> = a
        .reads
        .keys()
        .filter(|k| b.reads.contains_key(*k))
        .filter(|k| !a.writes.contains_key(*k) && !b.writes.contains_key(*k))
        .collect();
    let x = common.iter().find(|k| a.reads[**k] > b.reads[**k])?;
    let y = common.iter().find(|k| a.reads[**k] < b.reads[**k])?;
    Some(((*x).clone(), (*y).clone()))
}

/// A shrunk, replayable anomaly counterexample packaged as JSON —
/// `mcv-mvcc`'s analogue of [`crate::ReproArtifact`].
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AnomalyArtifact {
    /// Artifact identifier (kind + isolation + seed).
    pub id: String,
    /// `write_skew` or `long_fork`.
    pub anomaly: String,
    /// Isolation level the run executed under.
    pub isolation: String,
    /// Driver seed that reproduces it.
    pub seed: u64,
    /// Concurrent clients in the shrunk run.
    pub clients: usize,
    /// Transactions in the shrunk run.
    pub txns: u64,
    /// Item pairs of the write-skew workload.
    pub pairs: usize,
    /// The witnesses found.
    pub witnesses: AnomalyReport,
    /// Shell command that replays this counterexample.
    pub replay_cmd: String,
}

impl AnomalyArtifact {
    /// Packages a witnessed anomaly.
    pub fn new(
        anomaly: &str,
        isolation: &str,
        seed: u64,
        clients: usize,
        txns: u64,
        pairs: usize,
        witnesses: AnomalyReport,
    ) -> Self {
        let id = format!("anomaly-{anomaly}-{isolation}-seed{seed}");
        let replay_cmd = format!(
            "cargo run --release --example engine_stress -- --anomalies 1 \
             --isolation {isolation} --seed {seed} --txns {txns} --threads {clients}"
        );
        AnomalyArtifact {
            id,
            anomaly: anomaly.to_owned(),
            isolation: isolation.to_owned(),
            seed,
            clients,
            txns,
            pairs,
            witnesses,
            replay_cmd,
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("artifact serializes")
    }

    /// Parses an artifact back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying serde error on malformed input.
    pub fn from_json(text: &str) -> Result<Self, serde::Error> {
        serde_json::from_str(text)
    }

    /// Writes `<id>.json` into `dir` and returns the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, dir: impl AsRef<Path>) -> io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir.as_ref())?;
        let path = dir.as_ref().join(format!("{}.json", self.id));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcv_trace::Event;

    fn ev(id: u64, kind: EventKind) -> Event {
        Event { id, site: 0, seq: id, lamport: id, cause: None, time: 0, wall_ns: 0, kind }
    }

    /// The canonical write-skew history: both txns snapshot at ts 2,
    /// t1 reads {x,y} writes x@3, t2 reads {x,y} writes y@4, both
    /// commit.
    fn skew_trace() -> CausalTrace {
        CausalTrace {
            events: vec![
                ev(1, EventKind::SnapshotOpen { txn: 1, ts: 2 }),
                ev(2, EventKind::SnapshotOpen { txn: 2, ts: 2 }),
                ev(3, EventKind::SnapshotRead { txn: 1, item: "x".into(), ts: 1 }),
                ev(4, EventKind::SnapshotRead { txn: 1, item: "y".into(), ts: 2 }),
                ev(5, EventKind::SnapshotRead { txn: 2, item: "x".into(), ts: 1 }),
                ev(6, EventKind::SnapshotRead { txn: 2, item: "y".into(), ts: 2 }),
                ev(7, EventKind::VersionInstall { txn: 1, item: "x".into(), ts: 3 }),
                ev(8, EventKind::Commit { txn: 1 }),
                ev(9, EventKind::VersionInstall { txn: 2, item: "y".into(), ts: 4 }),
                ev(10, EventKind::Commit { txn: 2 }),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn detects_the_canonical_write_skew() {
        let report = detect_anomalies(&skew_trace());
        assert_eq!(report.write_skews.len(), 1);
        let ws = &report.write_skews[0];
        assert_eq!((ws.t1, ws.t2), (1, 2));
        assert!(!report.clean());
    }

    #[test]
    fn serialized_history_is_clean() {
        // Same two txns but t2 snapshots *after* t1's commit: the
        // second rw edge vanishes.
        let mut t = skew_trace();
        t.events[1] = ev(2, EventKind::SnapshotOpen { txn: 2, ts: 3 });
        t.events[4] = ev(5, EventKind::SnapshotRead { txn: 2, item: "x".into(), ts: 3 });
        let report = detect_anomalies(&t);
        assert!(report.write_skews.is_empty(), "{report:?}");
    }

    #[test]
    fn overlapping_write_sets_are_not_write_skew() {
        let mut t = skew_trace();
        // t2 also writes x: FCW territory, not write skew.
        t.events[8] = ev(9, EventKind::VersionInstall { txn: 2, item: "x".into(), ts: 4 });
        let report = detect_anomalies(&t);
        assert!(report.write_skews.is_empty());
    }

    #[test]
    fn uncommitted_transactions_never_witness() {
        let mut t = skew_trace();
        t.events.remove(9); // drop t2's commit
        let report = detect_anomalies(&t);
        assert!(report.write_skews.is_empty());
    }

    #[test]
    fn detects_a_long_fork() {
        // r1 sees x@2 y@1; r2 sees x@1 y@2: opposite orders.
        let t = CausalTrace {
            events: vec![
                ev(1, EventKind::SnapshotRead { txn: 1, item: "x".into(), ts: 2 }),
                ev(2, EventKind::SnapshotRead { txn: 1, item: "y".into(), ts: 1 }),
                ev(3, EventKind::SnapshotRead { txn: 2, item: "x".into(), ts: 1 }),
                ev(4, EventKind::SnapshotRead { txn: 2, item: "y".into(), ts: 2 }),
                ev(5, EventKind::Commit { txn: 1 }),
                ev(6, EventKind::Commit { txn: 2 }),
            ],
            dropped: 0,
        };
        let report = detect_anomalies(&t);
        assert_eq!(report.long_forks.len(), 1);
        assert_eq!(report.long_forks[0].r1, 1);
    }

    #[test]
    fn agreeing_snapshots_are_not_a_fork() {
        let t = CausalTrace {
            events: vec![
                ev(1, EventKind::SnapshotRead { txn: 1, item: "x".into(), ts: 2 }),
                ev(2, EventKind::SnapshotRead { txn: 1, item: "y".into(), ts: 2 }),
                ev(3, EventKind::SnapshotRead { txn: 2, item: "x".into(), ts: 1 }),
                ev(4, EventKind::SnapshotRead { txn: 2, item: "y".into(), ts: 1 }),
                ev(5, EventKind::Commit { txn: 1 }),
                ev(6, EventKind::Commit { txn: 2 }),
            ],
            dropped: 0,
        };
        assert!(detect_anomalies(&t).clean());
    }

    #[test]
    fn pure_2pl_trace_is_trivially_clean() {
        let t = CausalTrace {
            events: vec![
                ev(1, EventKind::LockAcquire { txn: 1, item: "x".into(), exclusive: true }),
                ev(2, EventKind::Commit { txn: 1 }),
            ],
            dropped: 0,
        };
        let report = detect_anomalies(&t);
        assert!(report.clean());
        assert_eq!(report.txns, 0, "no MVCC events, no MVCC transactions");
    }

    #[test]
    fn artifact_round_trips_through_json() {
        let report = detect_anomalies(&skew_trace());
        let a = AnomalyArtifact::new("write_skew", "si", 17, 2, 8, 4, report);
        let back = AnomalyArtifact::from_json(&a.to_json()).unwrap();
        assert_eq!(back, a);
        assert!(a.replay_cmd.contains("--isolation si"));
        assert!(a.id.contains("seed17"));
    }
}
