//! Executes one chaos run: a commit-protocol scenario with a fault
//! schedule injected, followed by oracle evaluation.

use crate::oracle::{evaluate, OracleResult};
use crate::schedule::{CutKind, FaultEvent, FaultSchedule};
use mcv_commit::{build_world, Msg, Protocol, Scenario, Site};
use mcv_sim::{Partition, ProcId, RunStats, SimTime, World};
use std::sync::Arc;

/// Flight-recorder capacity: every chaos run keeps at least this many
/// trailing causal events, so a violating run always ships a window of
/// what led up to the violation.
pub const FLIGHT_RECORDER_CAP: usize = 4096;

/// Full configuration of one chaos run: the protocol scenario plus the
/// fault schedule. Serializable, so a violating run can be shipped as
/// a repro artifact and replayed exactly.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChaosConfig {
    /// Which protocol to run.
    pub protocol: Protocol,
    /// Number of cohorts (the coordinator is process 0 on top).
    pub n_cohorts: usize,
    /// Number of concurrent transactions.
    pub n_transactions: usize,
    /// Simulator seed (message delays etc.).
    pub seed: u64,
    /// Per-phase timeout in ticks.
    pub timeout: u64,
    /// Simulation deadline.
    pub deadline: u64,
    /// Use the naive Figure 3.2 timeout transitions.
    pub naive_timeouts: bool,
    /// Use quorum-based termination.
    pub quorum_termination: bool,
    /// This cohort votes no.
    pub vote_no_cohort: Option<usize>,
    /// The fault schedule to inject.
    pub schedule: FaultSchedule,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            protocol: Protocol::ThreePhase,
            n_cohorts: 3,
            n_transactions: 1,
            seed: 0,
            timeout: 50,
            deadline: 10_000,
            naive_timeouts: false,
            quorum_termination: false,
            vote_no_cohort: None,
            schedule: FaultSchedule::none(),
        }
    }
}

impl ChaosConfig {
    /// Total process count (coordinator + cohorts).
    pub fn n_procs(&self) -> usize {
        self.n_cohorts + 1
    }

    fn scenario(&self) -> Scenario {
        Scenario {
            protocol: self.protocol,
            n_cohorts: self.n_cohorts,
            seed: self.seed,
            timeout: self.timeout,
            naive_timeouts: self.naive_timeouts,
            quorum_termination: self.quorum_termination,
            vote_no_cohort: self.vote_no_cohort,
            n_transactions: self.n_transactions,
            deadline: self.deadline,
            ..Scenario::default()
        }
    }
}

/// What one chaos run produced.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Low-level simulator stats.
    pub stats: RunStats,
    /// Every oracle's verdict, in canonical order.
    pub oracles: Vec<OracleResult>,
    /// A deterministic digest of the observable execution (decisions
    /// and message counts); equal digests mean equal runs.
    pub fingerprint: String,
    /// The causal event trace of the run: the full trace when an outer
    /// recorder was installed, otherwise the flight-recorder window
    /// (last [`FLIGHT_RECORDER_CAP`] events).
    pub trace: mcv_trace::CausalTrace,
}

impl ChaosOutcome {
    /// The first violated oracle, if any.
    pub fn violated(&self) -> Option<&OracleResult> {
        self.oracles.iter().find(|o| !o.pass)
    }

    /// Whether a specific oracle failed.
    pub fn violates(&self, oracle: &str) -> bool {
        self.oracles.iter().any(|o| o.name == oracle && !o.pass)
    }

    /// Whether every oracle passed.
    pub fn all_pass(&self) -> bool {
        self.oracles.iter().all(|o| o.pass)
    }
}

/// Runs one chaos configuration to its deadline and evaluates the
/// oracles. Deterministic: equal configs give equal outcomes.
///
/// The flight recorder is always on: with no outer trace sink
/// installed, the run records into a bounded ring of
/// [`FLIGHT_RECORDER_CAP`] events whose snapshot rides the outcome. An
/// already-installed recorder (tests, the trace explorer) takes
/// precedence and receives the events instead.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosOutcome {
    match mcv_trace::installed() {
        Some(rec) => run_chaos_traced(cfg, &rec),
        None => {
            let rec = mcv_trace::Recorder::ring(FLIGHT_RECORDER_CAP);
            let snap = Arc::clone(&rec);
            mcv_trace::with_recorder(rec, || run_chaos_traced(cfg, &snap))
        }
    }
}

fn run_chaos_traced(cfg: &ChaosConfig, rec: &Arc<mcv_trace::Recorder>) -> ChaosOutcome {
    let _span = mcv_obs::Span::enter("chaos.run");
    let sc = cfg.scenario();
    let mut world = build_world(&sc);
    let n_procs = cfg.n_procs();

    // Schedule every fault upfront; torn writes additionally need a
    // mid-run intervention (the WAL tear), collected here.
    let mut tears: Vec<(u64, usize, usize)> = Vec::new();
    for ev in &cfg.schedule.events {
        if ev.procs().iter().any(|p| *p >= n_procs) {
            continue; // Out-of-topology events are inert.
        }
        match ev {
            FaultEvent::Crash { proc, at } => {
                world.schedule_crash(ProcId(*proc), SimTime::from_ticks(*at));
            }
            FaultEvent::Recover { proc, at } => {
                world.schedule_recovery(ProcId(*proc), SimTime::from_ticks(*at));
            }
            FaultEvent::Partition { side, cut, from, until } => {
                let ids = side.iter().map(|p| ProcId(*p));
                let p = match cut {
                    CutKind::Both => Partition::isolate(ids),
                    CutKind::Outbound => Partition::one_way_from(ids),
                    CutKind::Inbound => Partition::one_way_to(ids),
                };
                world.schedule_partition(
                    p,
                    SimTime::from_ticks(*from),
                    SimTime::from_ticks(*until),
                );
            }
            FaultEvent::DropWindow { src, dst, from, until } => {
                world.schedule_drop_window(
                    src.map(ProcId),
                    dst.map(ProcId),
                    SimTime::from_ticks(*from),
                    SimTime::from_ticks(*until),
                );
            }
            FaultEvent::DupWindow { src, dst, from, until } => {
                world.schedule_dup_window(
                    src.map(ProcId),
                    dst.map(ProcId),
                    SimTime::from_ticks(*from),
                    SimTime::from_ticks(*until),
                );
            }
            FaultEvent::ReorderWindow { src, dst, from, until } => {
                world.schedule_reorder_window(
                    src.map(ProcId),
                    dst.map(ProcId),
                    SimTime::from_ticks(*from),
                    SimTime::from_ticks(*until),
                );
            }
            FaultEvent::TornWrite { proc, at, keep_bytes } => {
                world.schedule_crash(ProcId(*proc), SimTime::from_ticks(*at));
                tears.push((*at, *proc, *keep_bytes));
            }
        }
    }

    // Torn writes happen *at* the crash instant: run up to each tear,
    // then truncate the victim's WAL image. The force discipline means
    // recovery must be unaffected — checked here and fed to the
    // wal_consistency oracle.
    tears.sort_unstable();
    let mut wal_damage: Vec<String> = Vec::new();
    for (at, proc, keep_bytes) in tears {
        world.run_until(SimTime::from_ticks(at));
        let site: &mut Site = world.process_mut(ProcId(proc));
        let before = site.db.wal().recover();
        let lost = site.db.crash_torn(keep_bytes);
        let after = site.db.wal().recover();
        if after != before {
            wal_damage.push(format!(
                "p{proc}: torn write at byte {keep_bytes} (lost {lost} records) \
                 changed recovered state"
            ));
        }
    }
    let stats = world.run_until(SimTime::from_ticks(cfg.deadline));

    let trace = rec.snapshot();
    let oracles = evaluate(&world, cfg, &wal_damage, &trace);
    let fingerprint = fingerprint(&world, &stats);
    ChaosOutcome { stats, oracles, fingerprint, trace }
}

/// A deterministic digest of the run: every observed decision plus the
/// message counters. Wall-clock-free, so replays compare bytes.
fn fingerprint(world: &World<Msg, Site>, stats: &RunStats) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for d in mcv_commit::monitor::decisions(world.trace()) {
        let verdict = if d.commit { "commit" } else { "abort" };
        let _ = writeln!(out, "{} {} {} {}", d.time.ticks(), d.site, d.txn, verdict);
    }
    let _ = writeln!(
        out,
        "sent={} delivered={} dropped={} duplicated={} events={}",
        stats.messages_sent,
        stats.messages_delivered,
        stats.messages_dropped,
        stats.messages_duplicated,
        stats.events
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_run_passes_all_oracles() {
        let out = run_chaos(&ChaosConfig::default());
        assert!(out.all_pass(), "oracles: {:?}", out.oracles);
    }

    #[test]
    fn runs_are_byte_deterministic() {
        let cfg = ChaosConfig {
            seed: 42,
            schedule: FaultSchedule::generate(42, &crate::schedule::FaultPlan::tolerated(4, 300)),
            ..ChaosConfig::default()
        };
        let a = run_chaos(&cfg);
        let b = run_chaos(&cfg);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn out_of_topology_events_are_inert() {
        let cfg = ChaosConfig {
            schedule: FaultSchedule { events: vec![FaultEvent::Crash { proc: 99, at: 10 }] },
            ..ChaosConfig::default()
        };
        let out = run_chaos(&cfg);
        assert!(out.all_pass(), "oracles: {:?}", out.oracles);
    }

    #[test]
    fn vote_no_with_faults_never_commits() {
        let cfg = ChaosConfig {
            vote_no_cohort: Some(1),
            schedule: FaultSchedule::generate(7, &crate::schedule::FaultPlan::tolerated(4, 300)),
            ..ChaosConfig::default()
        };
        let out = run_chaos(&cfg);
        assert!(!out.violates("ac2_validity"), "oracles: {:?}", out.oracles);
    }

    #[test]
    fn torn_write_crash_keeps_wal_consistent() {
        let cfg = ChaosConfig {
            schedule: FaultSchedule {
                events: vec![
                    FaultEvent::TornWrite { proc: 1, at: 15, keep_bytes: 0 },
                    FaultEvent::Recover { proc: 1, at: 120 },
                ],
            },
            ..ChaosConfig::default()
        };
        let out = run_chaos(&cfg);
        assert!(!out.violates("wal_consistency"), "oracles: {:?}", out.oracles);
    }
}
