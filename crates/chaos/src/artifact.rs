//! Repro artifacts: a minimal counterexample packaged as JSON with the
//! exact command that replays it.

use crate::runner::{run_chaos, ChaosConfig, ChaosOutcome};
use std::io;
use std::path::Path;

/// A self-contained, replayable counterexample: the full chaos
/// configuration (scenario + fault schedule), which oracle it
/// violates, and the command line that replays it from a file.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReproArtifact {
    /// Artifact identifier (derived from oracle + schedule size).
    pub id: String,
    /// The violated oracle's name.
    pub violated: String,
    /// Evidence text from the oracle.
    pub detail: String,
    /// The exact configuration to replay.
    pub config: ChaosConfig,
    /// Shell command that replays this artifact once written to a file
    /// named `<id>.json`.
    pub replay_cmd: String,
}

impl ReproArtifact {
    /// Packages a violating configuration.
    pub fn new(config: ChaosConfig, violated: String, detail: String) -> Self {
        let id = format!("chaos-{}-{}ev-seed{}", violated, config.schedule.len(), config.seed);
        let replay_cmd = format!("cargo run --release --example chaos_hunt -- --replay {id}.json");
        ReproArtifact { id, violated, detail, config, replay_cmd }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("artifact serializes")
    }

    /// Parses an artifact back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying serde error on malformed input.
    pub fn from_json(text: &str) -> Result<Self, serde::Error> {
        serde_json::from_str(text)
    }

    /// Writes `<id>.json` into `dir` and returns the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, dir: impl AsRef<Path>) -> io::Result<std::path::PathBuf> {
        let path = dir.as_ref().join(format!("{}.json", self.id));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Writes the flight-recorder window as `<id>.trace.jsonl` next to
    /// the artifact (wall-clock timestamps stripped, so replays of the
    /// same counterexample produce identical files).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_trace(
        &self,
        dir: impl AsRef<Path>,
        trace: &mcv_trace::CausalTrace,
    ) -> io::Result<std::path::PathBuf> {
        let path = dir.as_ref().join(format!("{}.trace.jsonl", self.id));
        let mut stripped = trace.clone();
        stripped.strip_wall();
        stripped.write_jsonl(&path)?;
        Ok(path)
    }

    /// Re-executes the packaged configuration. The run is
    /// deterministic, so the violation reproduces exactly.
    pub fn replay(&self) -> ChaosOutcome {
        run_chaos(&self.config)
    }

    /// Whether the replay still violates the packaged oracle.
    pub fn reproduces(&self) -> bool {
        self.replay().violates(&self.violated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::FaultSchedule;

    #[test]
    fn artifact_round_trips_through_json() {
        let cfg = ChaosConfig {
            naive_timeouts: true,
            seed: 17,
            schedule: FaultSchedule::generate(17, &crate::schedule::FaultPlan::tolerated(4, 300)),
            ..ChaosConfig::default()
        };
        let a = ReproArtifact::new(cfg, "ac1_agreement".into(), "split".into());
        let back = ReproArtifact::from_json(&a.to_json()).unwrap();
        assert_eq!(back, a);
        assert!(back.replay_cmd.contains("--replay"));
    }

    #[test]
    fn replay_is_deterministic() {
        let cfg = ChaosConfig {
            seed: 3,
            schedule: FaultSchedule::generate(3, &crate::schedule::FaultPlan::tolerated(4, 300)),
            ..ChaosConfig::default()
        };
        let a = ReproArtifact::new(cfg, "ac1_agreement".into(), String::new());
        assert_eq!(a.replay().fingerprint, a.replay().fingerprint);
    }
}
