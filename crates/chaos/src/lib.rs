//! # mcv-chaos
//!
//! Fault-injection campaign engine over the executable commit
//! protocols: randomized but fully replayable fault schedules,
//! atomic-commitment invariant oracles (AC1–AC5 after Chockler &
//! Gotsman, plus serializability and WAL-recovery consistency), and
//! delta-debugging shrinking of violations down to minimal,
//! JSON-packaged counterexamples.
//!
//! The thesis *proves* these properties from local axioms; this crate
//! hunts for executions that would falsify them, and — for the naive
//! Figure 3.2 timeout variant — finds the split-brain counterexample
//! automatically.
//!
//! # Examples
//!
//! ```
//! use mcv_chaos::{Campaign, ChaosConfig, FaultPlan};
//!
//! // A short all-green sweep of the election + termination protocol.
//! let base = ChaosConfig { quorum_termination: true, ..ChaosConfig::default() };
//! let plan = FaultPlan::tolerated(base.n_procs(), 300);
//! let summary = Campaign::new(base, plan).run(3);
//! assert!(summary.all_green(), "{:?}", summary.failures);
//! ```

#![warn(missing_docs)]

mod anomaly;
mod artifact;
mod campaign;
mod oracle;
mod runner;
mod schedule;
mod shrink;

pub use anomaly::{
    detect_anomalies, find_long_forks, find_write_skews, txn_views, AnomalyArtifact, AnomalyReport,
    LongFork, TxnView, WriteSkew,
};
pub use artifact::ReproArtifact;
pub use campaign::{Campaign, CampaignSummary, Violation};
pub use oracle::{OracleResult, ORACLE_NAMES};
pub use runner::{run_chaos, ChaosConfig, ChaosOutcome, FLIGHT_RECORDER_CAP};
pub use schedule::{CutKind, FaultEvent, FaultPlan, FaultSchedule};
pub use shrink::{shrink, Shrunk};
