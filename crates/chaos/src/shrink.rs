//! Delta-debugging shrinker: reduces a violating chaos configuration
//! to a minimal counterexample that still violates the same oracle.
//!
//! Three reductions are applied to a fixpoint, cheapest first:
//! dropping fault events one at a time, shrinking the topology
//! (fewer cohorts, fewer transactions), and tightening fault windows.
//! Every candidate is re-executed — the shrinker never assumes a
//! smaller schedule fails just because a larger one did.

use crate::runner::{run_chaos, ChaosConfig};

/// Outcome of a shrink: the minimal configuration found plus how much
/// work it took.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The minimized configuration (still violates the oracle).
    pub config: ChaosConfig,
    /// Runs spent shrinking.
    pub runs: usize,
}

/// Shrinks `cfg` while `oracle` keeps failing, within a run budget.
/// `cfg` itself must already violate `oracle`.
pub fn shrink(cfg: &ChaosConfig, oracle: &str, budget: usize) -> Shrunk {
    let mut best = cfg.clone();
    let mut runs = 0;
    let try_candidate = |cand: &ChaosConfig, runs: &mut usize| -> bool {
        if *runs >= budget {
            return false;
        }
        *runs += 1;
        run_chaos(cand).violates(oracle)
    };

    // Pass 1 + fixpoint: greedy single-event removal. Scanning from
    // the back first tends to drop the late, irrelevant events cheaply.
    loop {
        let mut progressed = false;
        let mut i = best.schedule.events.len();
        while i > 0 {
            i -= 1;
            let mut cand = best.clone();
            cand.schedule.events.remove(i);
            if try_candidate(&cand, &mut runs) {
                best = cand;
                progressed = true;
            }
        }

        // Topology reduction: drop the highest cohort (and any events
        // that reference it) while the violation survives.
        while best.n_cohorts > 1 {
            let gone = best.n_cohorts; // cohort ids are 1..=n_cohorts
            let mut cand = best.clone();
            cand.n_cohorts -= 1;
            cand.schedule.events.retain(|e| e.procs().iter().all(|p| *p != gone));
            cand.schedule.events.iter_mut().for_each(|e| {
                if let crate::schedule::FaultEvent::Partition { side, .. } = e {
                    side.retain(|p| *p != gone);
                }
            });
            cand.schedule.events.retain(|e| {
                !matches!(
                    e,
                    crate::schedule::FaultEvent::Partition { side, .. } if side.is_empty()
                )
            });
            if try_candidate(&cand, &mut runs) {
                best = cand;
                progressed = true;
            } else {
                break;
            }
        }
        while best.n_transactions > 1 {
            let mut cand = best.clone();
            cand.n_transactions -= 1;
            if try_candidate(&cand, &mut runs) {
                best = cand;
                progressed = true;
            } else {
                break;
            }
        }

        // Window tightening: binary-search each window's end down.
        for i in 0..best.schedule.events.len() {
            let Some((from, until)) = best.schedule.events[i].window() else { continue };
            let (mut lo, mut hi) = (from + 1, until);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                let mut cand = best.clone();
                cand.schedule.events[i] = cand.schedule.events[i].with_until(mid);
                if try_candidate(&cand, &mut runs) {
                    best = cand;
                    hi = mid;
                    progressed = true;
                } else {
                    lo = mid + 1;
                }
            }
        }

        if !progressed || runs >= budget {
            break;
        }
    }
    Shrunk { config: best, runs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FaultEvent, FaultSchedule};

    #[test]
    fn shrink_drops_irrelevant_events() {
        // A naive-timeout split brain caused by one drop window (the
        // prepare to cohort 3 is lost, so it aborts on its PrepareWait
        // timeout while the others commit), padded with noise events
        // that change nothing.
        let essential = FaultEvent::DropWindow { src: None, dst: Some(3), from: 13, until: 20 };
        let cfg = ChaosConfig {
            naive_timeouts: true,
            schedule: FaultSchedule {
                events: vec![
                    FaultEvent::DupWindow { src: None, dst: None, from: 500, until: 600 },
                    essential.clone(),
                    FaultEvent::Crash { proc: 3, at: 700 },
                    FaultEvent::Recover { proc: 3, at: 900 },
                ],
            },
            ..ChaosConfig::default()
        };
        let out = run_chaos(&cfg);
        assert!(out.violates("ac1_agreement"), "setup must fail: {:?}", out.oracles);
        let shrunk = shrink(&cfg, "ac1_agreement", 300);
        assert!(run_chaos(&shrunk.config).violates("ac1_agreement"));
        assert!(
            shrunk.config.schedule.len() <= 2,
            "expected the noise gone, got {:?}",
            shrunk.config.schedule
        );
    }
}
