//! Typed, timed fault schedules: the adversary's script for one run.
//!
//! A [`FaultSchedule`] is a list of [`FaultEvent`]s — crashes,
//! recoveries, (possibly asymmetric) partitions, per-link loss /
//! duplication / reordering windows, and torn WAL writes — that is
//! seed-generatable, serde-serializable, and replayable
//! byte-deterministically: the same `(config, schedule)` pair always
//! produces the identical execution.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which directions a generated partition cuts (mirrors
/// [`mcv_sim::CutDirection`], kept separate so schedules stay a pure
/// data format).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CutKind {
    /// Symmetric cut.
    Both,
    /// Only traffic out of the named side is lost.
    Outbound,
    /// Only traffic into the named side is lost.
    Inbound,
}

/// One timed fault. Process indices are simulator ids (0 is the
/// coordinator, `1..=n_cohorts` the cohorts); times are simulation
/// ticks.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum FaultEvent {
    /// Crash process `proc` at tick `at`.
    Crash {
        /// The victim.
        proc: usize,
        /// When.
        at: u64,
    },
    /// Recover process `proc` at tick `at` (a no-op if it is up).
    Recover {
        /// The recovering process.
        proc: usize,
        /// When.
        at: u64,
    },
    /// Partition `side` from everyone else during `[from, until)`;
    /// healing is implicit at `until`.
    Partition {
        /// The isolated side.
        side: Vec<usize>,
        /// Which directions are cut.
        cut: CutKind,
        /// Activation tick.
        from: u64,
        /// Heal tick.
        until: u64,
    },
    /// Drop every message matching the link pattern (`None` = any)
    /// during `[from, until)`.
    DropWindow {
        /// Sender filter.
        src: Option<usize>,
        /// Receiver filter.
        dst: Option<usize>,
        /// Window start.
        from: u64,
        /// Window end.
        until: u64,
    },
    /// Deliver every matching message twice during `[from, until)`.
    DupWindow {
        /// Sender filter.
        src: Option<usize>,
        /// Receiver filter.
        dst: Option<usize>,
        /// Window start.
        from: u64,
        /// Window end.
        until: u64,
    },
    /// Matching messages skip the FIFO clamp and pick up extra jitter
    /// during `[from, until)`.
    ReorderWindow {
        /// Sender filter.
        src: Option<usize>,
        /// Receiver filter.
        dst: Option<usize>,
        /// Window start.
        from: u64,
        /// Window end.
        until: u64,
    },
    /// Crash `proc` at tick `at` with a torn write: the WAL's byte
    /// image is truncated at `keep_bytes` (clamped to the forced
    /// prefix, so durable decisions are never lost).
    TornWrite {
        /// The victim.
        proc: usize,
        /// When.
        at: u64,
        /// Byte offset of the tear.
        keep_bytes: usize,
    },
}

impl FaultEvent {
    /// Every process index the event refers to.
    pub fn procs(&self) -> Vec<usize> {
        match self {
            FaultEvent::Crash { proc, .. }
            | FaultEvent::Recover { proc, .. }
            | FaultEvent::TornWrite { proc, .. } => vec![*proc],
            FaultEvent::Partition { side, .. } => side.clone(),
            FaultEvent::DropWindow { src, dst, .. }
            | FaultEvent::DupWindow { src, dst, .. }
            | FaultEvent::ReorderWindow { src, dst, .. } => {
                src.iter().chain(dst.iter()).copied().collect()
            }
        }
    }

    /// The window `[from, until)` of windowed events, if any.
    pub fn window(&self) -> Option<(u64, u64)> {
        match self {
            FaultEvent::Partition { from, until, .. }
            | FaultEvent::DropWindow { from, until, .. }
            | FaultEvent::DupWindow { from, until, .. }
            | FaultEvent::ReorderWindow { from, until, .. } => Some((*from, *until)),
            _ => None,
        }
    }

    /// A copy with the window end moved to `until` (identity for
    /// non-windowed events).
    pub fn with_until(&self, new_until: u64) -> FaultEvent {
        let mut e = self.clone();
        match &mut e {
            FaultEvent::Partition { until, .. }
            | FaultEvent::DropWindow { until, .. }
            | FaultEvent::DupWindow { until, .. }
            | FaultEvent::ReorderWindow { until, .. } => *until = new_until,
            _ => {}
        }
        e
    }
}

/// Bounds for random schedule generation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultPlan {
    /// Number of processes (coordinator + cohorts).
    pub n_procs: usize,
    /// All fault activity happens before this tick; it should be well
    /// below the scenario deadline so the system gets a quiet tail to
    /// settle in.
    pub horizon: u64,
    /// Maximum events per schedule (at least 1 is always generated).
    pub max_events: usize,
    /// Generate crashes (and torn-write crashes).
    pub crashes: bool,
    /// Pair every crash with a later recovery inside the horizon.
    pub crashes_recover: bool,
    /// Generate partitions (symmetric and one-way); they always heal
    /// by the horizon.
    pub partitions: bool,
    /// Generate per-link drop windows.
    pub drop_windows: bool,
    /// Generate duplication windows (breaks exactly-once delivery).
    pub dup_windows: bool,
    /// Generate reordering windows (breaks the FIFO assumption).
    pub reorder_windows: bool,
    /// Generate torn-write crashes.
    pub torn_writes: bool,
}

impl FaultPlan {
    /// Faults the election + termination protocol claims to tolerate:
    /// crashes with recovery, healing partitions, transient loss
    /// windows, and torn writes. Duplication and reordering stay off —
    /// they break assumptions (exactly-once, FIFO) the thesis makes.
    pub fn tolerated(n_procs: usize, horizon: u64) -> Self {
        FaultPlan {
            n_procs,
            horizon,
            max_events: 6,
            crashes: true,
            crashes_recover: true,
            partitions: true,
            drop_windows: true,
            dup_windows: false,
            reorder_windows: false,
            torn_writes: true,
        }
    }

    /// Everything on, including the assumption-breaking faults.
    pub fn full(n_procs: usize, horizon: u64) -> Self {
        FaultPlan {
            dup_windows: true,
            reorder_windows: true,
            ..FaultPlan::tolerated(n_procs, horizon)
        }
    }

    fn kinds(&self) -> Vec<u8> {
        let mut kinds = Vec::new();
        if self.crashes {
            kinds.push(0);
        }
        if self.partitions {
            kinds.push(1);
        }
        if self.drop_windows {
            kinds.push(2);
        }
        if self.dup_windows {
            kinds.push(3);
        }
        if self.reorder_windows {
            kinds.push(4);
        }
        if self.torn_writes {
            kinds.push(5);
        }
        kinds
    }
}

/// A replayable fault schedule.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultSchedule {
    /// The events, in generation order (times need not be sorted; the
    /// runner schedules each independently).
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// The empty (fault-free) schedule.
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// Generates a random schedule within `plan`'s bounds. The same
    /// `(seed, plan)` always yields the same schedule.
    pub fn generate(seed: u64, plan: &FaultPlan) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let kinds = plan.kinds();
        let mut events = Vec::new();
        if kinds.is_empty() || plan.n_procs == 0 {
            return FaultSchedule { events };
        }
        let horizon = plan.horizon.max(2);
        let n = rng.gen_range(1..=plan.max_events.max(1));
        for _ in 0..n {
            let kind = kinds[rng.gen_range(0..kinds.len())];
            // Keep injected times >= 1 so faults never race the start
            // events at tick 0.
            let at = rng.gen_range(1..horizon);
            let proc = rng.gen_range(0..plan.n_procs);
            match kind {
                0 => {
                    events.push(FaultEvent::Crash { proc, at });
                    if plan.crashes_recover {
                        let back = rng.gen_range(at + 1..=horizon);
                        events.push(FaultEvent::Recover { proc, at: back });
                    }
                }
                1 => {
                    // A random nonempty proper subset: one seed member
                    // plus coin flips for the rest.
                    let mut side = vec![proc];
                    for p in 0..plan.n_procs {
                        if p != proc && side.len() + 1 < plan.n_procs && rng.gen_bool(0.3) {
                            side.push(p);
                        }
                    }
                    side.sort_unstable();
                    let cut = match rng.gen_range(0..3u8) {
                        0 => CutKind::Both,
                        1 => CutKind::Outbound,
                        _ => CutKind::Inbound,
                    };
                    let until = rng.gen_range(at + 1..=horizon);
                    events.push(FaultEvent::Partition { side, cut, from: at, until });
                }
                2..=4 => {
                    let src = rng.gen_bool(0.5).then(|| rng.gen_range(0..plan.n_procs));
                    let dst = rng.gen_bool(0.5).then(|| rng.gen_range(0..plan.n_procs));
                    let until = rng.gen_range(at + 1..=horizon);
                    events.push(match kind {
                        2 => FaultEvent::DropWindow { src, dst, from: at, until },
                        3 => FaultEvent::DupWindow { src, dst, from: at, until },
                        _ => FaultEvent::ReorderWindow { src, dst, from: at, until },
                    });
                }
                _ => {
                    let keep_bytes = rng.gen_range(0..512usize);
                    events.push(FaultEvent::TornWrite { proc, at, keep_bytes });
                    if plan.crashes_recover {
                        let back = rng.gen_range(at + 1..=horizon);
                        events.push(FaultEvent::Recover { proc, at: back });
                    }
                }
            }
        }
        FaultSchedule { events }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether any event refers to a process index `>= n_procs` (such
    /// a schedule cannot run against a smaller topology).
    pub fn references_beyond(&self, n_procs: usize) -> bool {
        self.events.iter().any(|e| e.procs().iter().any(|p| *p >= n_procs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let plan = FaultPlan::full(4, 300);
        assert_eq!(FaultSchedule::generate(9, &plan), FaultSchedule::generate(9, &plan));
        assert_ne!(FaultSchedule::generate(9, &plan), FaultSchedule::generate(10, &plan));
    }

    #[test]
    fn generated_events_respect_the_plan() {
        let plan = FaultPlan::tolerated(5, 200);
        for seed in 0..50 {
            let s = FaultSchedule::generate(seed, &plan);
            assert!(!s.is_empty());
            assert!(!s.references_beyond(5), "{s:?}");
            for e in &s.events {
                if let Some((from, until)) = e.window() {
                    assert!(from < until && until <= 200, "{e:?}");
                }
                // The tolerated plan never breaks FIFO or exactly-once.
                assert!(!matches!(
                    e,
                    FaultEvent::DupWindow { .. } | FaultEvent::ReorderWindow { .. }
                ));
            }
        }
    }

    #[test]
    fn tolerated_crashes_are_paired_with_recoveries() {
        let plan = FaultPlan::tolerated(4, 300);
        for seed in 0..50 {
            let s = FaultSchedule::generate(seed, &plan);
            for e in &s.events {
                if let FaultEvent::Crash { proc, at } | FaultEvent::TornWrite { proc, at, .. } = e {
                    let recovered = s.events.iter().any(|r| {
                        matches!(r, FaultEvent::Recover { proc: p, at: b } if p == proc && b > at)
                    });
                    assert!(recovered, "unrecovered crash in {s:?}");
                }
            }
        }
    }

    #[test]
    fn schedule_round_trips_through_json() {
        let plan = FaultPlan::full(4, 300);
        let s = FaultSchedule::generate(3, &plan);
        let json = serde_json::to_string(&s).unwrap();
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn with_until_tightens_windows_only() {
        let w = FaultEvent::DropWindow { src: None, dst: None, from: 5, until: 50 };
        assert_eq!(w.with_until(10).window(), Some((5, 10)));
        let c = FaultEvent::Crash { proc: 1, at: 7 };
        assert_eq!(c.with_until(10), c);
    }
}
