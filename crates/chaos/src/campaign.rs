//! Seed-sweeping campaigns: generate a fault schedule per seed, run
//! it, tally per-oracle verdicts into an [`mcv_obs::RunReport`], and
//! on violation shrink to a minimal counterexample.

use crate::artifact::ReproArtifact;
use crate::runner::{run_chaos, ChaosConfig};
use crate::schedule::{FaultPlan, FaultSchedule};
use crate::shrink::shrink;
use std::collections::BTreeMap;

/// A campaign: a base configuration (its `seed` and `schedule` are
/// overwritten per run) plus the generation plan.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Scenario template; `seed` and `schedule` are set per run.
    pub base: ChaosConfig,
    /// Random-schedule bounds.
    pub plan: FaultPlan,
    /// Run budget for shrinking each violation.
    pub shrink_budget: usize,
}

impl Campaign {
    /// A campaign over `base` with the given plan and a default shrink
    /// budget.
    pub fn new(base: ChaosConfig, plan: FaultPlan) -> Self {
        Campaign { base, plan, shrink_budget: 400 }
    }

    /// The configuration for one seed.
    pub fn config_for(&self, seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            schedule: FaultSchedule::generate(seed, &self.plan),
            ..self.base.clone()
        }
    }

    /// Sweeps seeds `0..n_seeds`, recording per-oracle tallies. Every
    /// failure is kept (seed + violated oracle), but nothing is shrunk
    /// — use [`Campaign::hunt`] for counterexample extraction.
    pub fn run(&self, n_seeds: u64) -> CampaignSummary {
        self.run_seeds(0, n_seeds)
    }

    /// Sweeps seeds `seed_base..seed_base + n_seeds`. Distinct bases
    /// give the CI flake detector disjoint seed populations per round.
    pub fn run_seeds(&self, seed_base: u64, n_seeds: u64) -> CampaignSummary {
        let _span = mcv_obs::Span::enter("chaos.campaign");
        let mut passes: BTreeMap<String, u64> = BTreeMap::new();
        let mut fails: BTreeMap<String, u64> = BTreeMap::new();
        let mut failures = Vec::new();
        for seed in seed_base..seed_base + n_seeds {
            let cfg = self.config_for(seed);
            let out = run_chaos(&cfg);
            mcv_obs::counter("chaos.runs", 1);
            for o in &out.oracles {
                *if o.pass { &mut passes } else { &mut fails }
                    .entry(o.name.clone())
                    .or_insert(0) += 1;
            }
            if let Some(v) = out.violated() {
                mcv_obs::counter("chaos.violations", 1);
                failures.push((seed, v.name.clone()));
            }
        }
        CampaignSummary { runs: n_seeds, passes, fails, failures }
    }

    /// Sweeps seeds until the first violation, shrinks it, and wraps
    /// the minimal counterexample as a replayable artifact. `None` if
    /// all `n_seeds` runs pass every oracle.
    pub fn hunt(&self, n_seeds: u64) -> Option<Violation> {
        let _span = mcv_obs::Span::enter("chaos.hunt");
        for seed in 0..n_seeds {
            let cfg = self.config_for(seed);
            let out = run_chaos(&cfg);
            mcv_obs::counter("chaos.runs", 1);
            let Some(v) = out.violated() else { continue };
            let oracle = v.name.clone();
            let detail = v.detail.clone();
            mcv_obs::counter("chaos.violations", 1);
            let shrunk = shrink(&cfg, &oracle, self.shrink_budget);
            // Re-run the minimum for its authoritative detail text.
            let min_out = run_chaos(&shrunk.config);
            let min_detail = min_out
                .oracles
                .iter()
                .find(|o| o.name == oracle && !o.pass)
                .map(|o| o.detail.clone())
                .unwrap_or(detail);
            return Some(Violation {
                seed,
                oracle: oracle.clone(),
                original_events: cfg.schedule.len(),
                shrink_runs: shrunk.runs,
                trace: min_out.trace,
                artifact: ReproArtifact::new(shrunk.config, oracle, min_detail),
            });
        }
        None
    }
}

/// A found-and-shrunk violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The campaign seed that first exposed it.
    pub seed: u64,
    /// The violated oracle.
    pub oracle: String,
    /// Schedule size before shrinking.
    pub original_events: usize,
    /// Runs spent shrinking.
    pub shrink_runs: usize,
    /// The flight-recorder window of the minimal run — the causal
    /// events leading up to the violation.
    pub trace: mcv_trace::CausalTrace,
    /// The minimal, replayable counterexample.
    pub artifact: ReproArtifact,
}

/// Aggregate tallies of a [`Campaign::run`] sweep.
#[derive(Debug, Clone)]
pub struct CampaignSummary {
    /// Seeds executed.
    pub runs: u64,
    /// Per-oracle pass counts.
    pub passes: BTreeMap<String, u64>,
    /// Per-oracle fail counts.
    pub fails: BTreeMap<String, u64>,
    /// `(seed, first violated oracle)` for every failing run.
    pub failures: Vec<(u64, String)>,
}

impl CampaignSummary {
    /// Whether every run passed every oracle.
    pub fn all_green(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the tallies into an [`mcv_obs::RunReport`].
    pub fn to_report(&self, id: &str) -> mcv_obs::RunReport {
        let mut report = mcv_obs::RunReport::new(id)
            .fact("runs", self.runs)
            .fact("violations", self.failures.len());
        for (name, n) in &self.passes {
            report = report.fact(format!("pass.{name}"), n);
        }
        for (name, n) in &self.fails {
            report = report.fact(format!("fail.{name}"), n);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_plan_yields_green_summary() {
        // An empty plan generates empty schedules: every run is the
        // failure-free protocol and must pass all oracles.
        let plan = FaultPlan {
            crashes: false,
            partitions: false,
            drop_windows: false,
            torn_writes: false,
            ..FaultPlan::tolerated(4, 200)
        };
        let c = Campaign::new(ChaosConfig::default(), plan);
        let summary = c.run(5);
        assert!(summary.all_green(), "failures: {:?}", summary.failures);
        assert_eq!(summary.runs, 5);
        let report = summary.to_report("chaos-test");
        assert!(report.to_json().contains("\"runs\""));
    }
}
