//! End-to-end acceptance for the chaos subsystem, mirroring ISSUE's
//! acceptance criteria: the naive-timeout 3PC campaign must find and
//! shrink a split-brain counterexample, the packaged artifact must
//! replay byte-deterministically, and the election + termination
//! protocol must survive a long tolerated-fault campaign untouched.

use mcv_chaos::{run_chaos, Campaign, ChaosConfig, FaultPlan, ReproArtifact};

fn naive_campaign() -> Campaign {
    let base = ChaosConfig { naive_timeouts: true, ..ChaosConfig::default() };
    let plan = FaultPlan::tolerated(base.n_procs(), 300);
    Campaign::new(base, plan)
}

#[test]
fn naive_timeouts_split_brain_is_found_and_shrunk() {
    let v = naive_campaign()
        .hunt(200)
        .expect("200 seeds of tolerated faults must expose the naive timeout split brain");
    assert_eq!(v.oracle, "ac1_agreement", "expected an agreement violation, got {}", v.oracle);
    assert!(
        v.artifact.config.schedule.len() <= 5,
        "counterexample must shrink to <= 5 fault events, got {}: {:?}",
        v.artifact.config.schedule.len(),
        v.artifact.config.schedule
    );
    assert!(
        v.artifact.config.schedule.len() < v.original_events
            || v.artifact.config.n_cohorts < naive_campaign().base.n_cohorts,
        "shrinking made no progress"
    );
    assert!(v.artifact.reproduces(), "the minimal counterexample must still violate ac1");
}

#[test]
fn repro_artifact_replays_byte_deterministically() {
    let v = naive_campaign().hunt(200).expect("hunt must find a violation");

    // Round-trip through the JSON artifact (as the repro file would).
    let dir = std::env::temp_dir().join(format!("mcv-chaos-acceptance-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = v.artifact.write(&dir).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    let loaded = ReproArtifact::from_json(&text).unwrap();
    assert_eq!(loaded, v.artifact);

    // Replaying the loaded artifact gives bit-identical executions.
    let a = loaded.replay();
    let b = loaded.replay();
    assert_eq!(a.fingerprint, b.fingerprint);
    assert_eq!(a.stats, b.stats);
    assert!(a.violates(&loaded.violated), "replay must reproduce the violation");
    assert!(loaded.replay_cmd.contains(&format!("{}.json", loaded.id)));
}

#[test]
fn election_and_quorum_termination_survive_500_seeds() {
    let base = ChaosConfig { quorum_termination: true, ..ChaosConfig::default() };
    let plan = FaultPlan::tolerated(base.n_procs(), 300);
    let summary = Campaign::new(base, plan).run(500);
    assert_eq!(summary.runs, 500);
    assert!(
        summary.all_green(),
        "election + quorum termination must pass every oracle: {:?}",
        summary.failures
    );
    // Every oracle actually ran on every seed.
    for name in mcv_chaos::ORACLE_NAMES {
        assert_eq!(summary.passes.get(*name), Some(&500), "oracle {name} missing passes");
    }
}

#[test]
fn fault_free_baseline_commits_everywhere() {
    let out = run_chaos(&ChaosConfig::default());
    assert!(out.all_pass(), "oracles: {:?}", out.oracles);
    assert!(out.fingerprint.contains("commit"), "fingerprint: {}", out.fingerprint);
}
