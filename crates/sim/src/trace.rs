//! Execution traces: an ordered record of everything observable that
//! happened in a run. Used by the property monitors in `mcv-commit`
//! (e.g. "no two concurrent local states hold commit and abort") and by
//! the reproduction harness to render Figure 3.1's execution.

use crate::time::{ProcId, SimTime};
use std::fmt;

/// One observable event.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TraceEvent {
    /// A message was delivered.
    Deliver {
        /// Sender.
        from: ProcId,
        /// Receiver.
        to: ProcId,
        /// Per-receiver delivery sequence number (from 1, monotone in
        /// delivery order even under reorder/dup schedules) — the
        /// stable key for correlating deliveries across `RunStats`,
        /// notes, and causal traces.
        seq: u64,
    },
    /// A message was dropped (loss, partition, or dead receiver).
    Dropped {
        /// Sender.
        from: ProcId,
        /// Intended receiver.
        to: ProcId,
    },
    /// A timer fired.
    Timer {
        /// Owner.
        proc: ProcId,
        /// Token passed at [`crate::Ctx::set_timer`].
        token: u64,
    },
    /// A process crashed.
    Crash {
        /// The crashed process.
        proc: ProcId,
    },
    /// A process recovered.
    Recover {
        /// The recovered process.
        proc: ProcId,
    },
    /// A free-form note from [`crate::Ctx::note`] — protocols use these
    /// to expose state transitions to the monitors.
    Note {
        /// The noting process.
        proc: ProcId,
        /// The text.
        text: String,
    },
}

/// A timestamped trace entry.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TraceEntry {
    /// When it happened.
    pub time: SimTime,
    /// What happened.
    pub event: TraceEvent,
}

/// The ordered trace of a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn push(&mut self, time: SimTime, event: TraceEvent) {
        self.entries.push(TraceEntry { time, event });
    }

    /// All entries in order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the notes of one process, in order.
    pub fn notes_of(&self, proc: ProcId) -> impl Iterator<Item = (&SimTime, &str)> {
        self.entries.iter().filter_map(move |e| match &e.event {
            TraceEvent::Note { proc: p, text } if *p == proc => Some((&e.time, text.as_str())),
            _ => None,
        })
    }

    /// All notes of all processes, in order.
    pub fn notes(&self) -> impl Iterator<Item = (&SimTime, ProcId, &str)> {
        self.entries.iter().filter_map(|e| match &e.event {
            TraceEvent::Note { proc, text } => Some((&e.time, *proc, text.as_str())),
            _ => None,
        })
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            match &e.event {
                TraceEvent::Deliver { from, to, seq } => {
                    writeln!(f, "{} deliver {from} -> {to} #{seq}", e.time)?
                }
                TraceEvent::Dropped { from, to } => writeln!(f, "{} DROP {from} -> {to}", e.time)?,
                TraceEvent::Timer { proc, token } => {
                    writeln!(f, "{} timer {proc} #{token}", e.time)?
                }
                TraceEvent::Crash { proc } => writeln!(f, "{} CRASH {proc}", e.time)?,
                TraceEvent::Recover { proc } => writeln!(f, "{} RECOVER {proc}", e.time)?,
                TraceEvent::Note { proc, text } => writeln!(f, "{} {proc}: {text}", e.time)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notes_filter_by_process() {
        let mut t = Trace::new();
        t.push(SimTime::from_ticks(1), TraceEvent::Note { proc: ProcId(0), text: "a".into() });
        t.push(SimTime::from_ticks(2), TraceEvent::Note { proc: ProcId(1), text: "b".into() });
        t.push(SimTime::from_ticks(3), TraceEvent::Note { proc: ProcId(0), text: "c".into() });
        let of0: Vec<&str> = t.notes_of(ProcId(0)).map(|(_, s)| s).collect();
        assert_eq!(of0, ["a", "c"]);
        assert_eq!(t.notes().count(), 3);
    }

    #[test]
    fn display_is_line_per_entry() {
        let mut t = Trace::new();
        t.push(SimTime::from_ticks(1), TraceEvent::Crash { proc: ProcId(2) });
        assert_eq!(t.to_string(), "t1 CRASH p2\n");
    }
}
