//! Network model: message delay, loss, duplication, reordering, and
//! (possibly asymmetric) partitions.
//!
//! The thesis' assumption set (Section 3.4) is the default
//! configuration: FIFO channels, reliable network without partitioning,
//! bounded delay. Loss, duplication, reordering, and partitions can be
//! switched on to exercise the failure/timeout machinery; the chaos
//! campaign engine (`mcv-chaos`) additionally drives them per link and
//! per time window.

use crate::time::{ProcId, SimTime};
use rand::Rng;
use std::collections::BTreeSet;

/// Message delay distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum DelayModel {
    /// Every message takes exactly this many ticks.
    Fixed(u64),
    /// Uniform in `[min, max]` ticks (`max` is the δ bound).
    Uniform {
        /// Minimum delay.
        min: u64,
        /// Maximum delay (the δ upper bound of the thesis).
        max: u64,
    },
}

impl DelayModel {
    /// Samples a delay.
    pub fn sample(self, rng: &mut impl Rng) -> SimTime {
        match self {
            DelayModel::Fixed(d) => SimTime::from_ticks(d),
            DelayModel::Uniform { min, max } => SimTime::from_ticks(rng.gen_range(min..=max)),
        }
    }

    /// The worst-case delay δ.
    pub fn upper_bound(self) -> SimTime {
        match self {
            DelayModel::Fixed(d) => SimTime::from_ticks(d),
            DelayModel::Uniform { max, .. } => SimTime::from_ticks(max),
        }
    }
}

/// Network configuration.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NetworkConfig {
    /// Message delay distribution.
    pub delay: DelayModel,
    /// Probability a message is silently dropped (0.0 = reliable).
    pub loss_probability: f64,
    /// Probability a message is delivered twice, with independently
    /// sampled delays (0.0 = exactly-once transport).
    pub duplicate_probability: f64,
    /// Probability a message bypasses the FIFO ordering clamp and gets
    /// extra delay jitter, so it can overtake earlier traffic on the
    /// same channel (0.0 = in-order when `fifo` is set).
    pub reorder_probability: f64,
    /// Whether per-channel FIFO order is enforced (thesis assumption 1).
    pub fifo: bool,
}

impl Default for NetworkConfig {
    /// The thesis' assumptions: reliable FIFO network, uniform delay
    /// 1..=5 ticks.
    fn default() -> Self {
        NetworkConfig {
            delay: DelayModel::Uniform { min: 1, max: 5 },
            loss_probability: 0.0,
            duplicate_probability: 0.0,
            reorder_probability: 0.0,
            fifo: true,
        }
    }
}

/// Which directions a partition cuts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CutDirection {
    /// Both directions are cut (the classic symmetric partition).
    #[default]
    Both,
    /// Only messages *from* the named side to the rest are cut; inbound
    /// traffic still flows (asymmetric partition).
    Outbound,
    /// Only messages from the rest *into* the named side are cut;
    /// outbound traffic still flows (asymmetric partition).
    Inbound,
}

/// A network partition: messages crossing the cut are dropped while the
/// partition is active. Symmetric by default; the `one_way_*`
/// constructors build asymmetric cuts where only one direction is lost
/// — the half-open failure mode real networks exhibit.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Partition {
    side_a: BTreeSet<ProcId>,
    direction: CutDirection,
}

impl Partition {
    /// A symmetric partition isolating `side_a` from everyone else.
    pub fn isolate(side_a: impl IntoIterator<Item = ProcId>) -> Self {
        Partition { side_a: side_a.into_iter().collect(), direction: CutDirection::Both }
    }

    /// An asymmetric cut: messages *from* `side_a` to the rest are
    /// dropped, while messages into `side_a` are still delivered.
    pub fn one_way_from(side_a: impl IntoIterator<Item = ProcId>) -> Self {
        Partition { side_a: side_a.into_iter().collect(), direction: CutDirection::Outbound }
    }

    /// An asymmetric cut: messages from the rest *into* `side_a` are
    /// dropped, while messages out of `side_a` are still delivered.
    pub fn one_way_to(side_a: impl IntoIterator<Item = ProcId>) -> Self {
        Partition { side_a: side_a.into_iter().collect(), direction: CutDirection::Inbound }
    }

    /// The cut's direction.
    pub fn direction(&self) -> CutDirection {
        self.direction
    }

    /// Whether `a` and `b` sit on opposite sides of the cut,
    /// irrespective of direction. For symmetric partitions this is
    /// exactly "the message is dropped".
    pub fn separates(&self, a: ProcId, b: ProcId) -> bool {
        self.side_a.contains(&a) != self.side_a.contains(&b)
    }

    /// Whether a message from `from` to `to` is dropped by this cut —
    /// the directional check the simulator applies per send.
    pub fn blocks(&self, from: ProcId, to: ProcId) -> bool {
        if !self.separates(from, to) {
            return false;
        }
        match self.direction {
            CutDirection::Both => true,
            CutDirection::Outbound => self.side_a.contains(&from),
            CutDirection::Inbound => self.side_a.contains(&to),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_delay_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = DelayModel::Fixed(3);
        assert_eq!(d.sample(&mut rng).ticks(), 3);
        assert_eq!(d.upper_bound().ticks(), 3);
    }

    #[test]
    fn uniform_delay_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        let d = DelayModel::Uniform { min: 2, max: 7 };
        for _ in 0..100 {
            let s = d.sample(&mut rng).ticks();
            assert!((2..=7).contains(&s));
        }
        assert_eq!(d.upper_bound().ticks(), 7);
    }

    #[test]
    fn partition_separates_sides() {
        let p = Partition::isolate([ProcId(0), ProcId(1)]);
        assert!(p.separates(ProcId(0), ProcId(2)));
        assert!(!p.separates(ProcId(0), ProcId(1)));
        assert!(!p.separates(ProcId(2), ProcId(3)));
    }

    #[test]
    fn symmetric_partition_blocks_both_directions() {
        let p = Partition::isolate([ProcId(0)]);
        assert!(p.blocks(ProcId(0), ProcId(1)));
        assert!(p.blocks(ProcId(1), ProcId(0)));
        assert!(!p.blocks(ProcId(1), ProcId(2)));
    }

    #[test]
    fn one_way_from_blocks_only_outbound() {
        let p = Partition::one_way_from([ProcId(0)]);
        assert!(p.blocks(ProcId(0), ProcId(1)));
        assert!(!p.blocks(ProcId(1), ProcId(0)));
        // Both directions still count as separated (membership differs).
        assert!(p.separates(ProcId(1), ProcId(0)));
    }

    #[test]
    fn one_way_to_blocks_only_inbound() {
        let p = Partition::one_way_to([ProcId(0)]);
        assert!(!p.blocks(ProcId(0), ProcId(1)));
        assert!(p.blocks(ProcId(1), ProcId(0)));
    }

    #[test]
    fn default_is_reliable_fifo() {
        let c = NetworkConfig::default();
        assert_eq!(c.loss_probability, 0.0);
        assert_eq!(c.duplicate_probability, 0.0);
        assert_eq!(c.reorder_probability, 0.0);
        assert!(c.fifo);
    }
}
