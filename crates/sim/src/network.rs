//! Network model: message delay, loss, and partitions.
//!
//! The thesis' assumption set (Section 3.4) is the default
//! configuration: FIFO channels, reliable network without partitioning,
//! bounded delay. Loss and partitions can be switched on to exercise
//! the failure/timeout machinery.

use crate::time::{ProcId, SimTime};
use rand::Rng;
use std::collections::BTreeSet;

/// Message delay distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum DelayModel {
    /// Every message takes exactly this many ticks.
    Fixed(u64),
    /// Uniform in `[min, max]` ticks (`max` is the δ bound).
    Uniform {
        /// Minimum delay.
        min: u64,
        /// Maximum delay (the δ upper bound of the thesis).
        max: u64,
    },
}

impl DelayModel {
    /// Samples a delay.
    pub fn sample(self, rng: &mut impl Rng) -> SimTime {
        match self {
            DelayModel::Fixed(d) => SimTime::from_ticks(d),
            DelayModel::Uniform { min, max } => SimTime::from_ticks(rng.gen_range(min..=max)),
        }
    }

    /// The worst-case delay δ.
    pub fn upper_bound(self) -> SimTime {
        match self {
            DelayModel::Fixed(d) => SimTime::from_ticks(d),
            DelayModel::Uniform { max, .. } => SimTime::from_ticks(max),
        }
    }
}

/// Network configuration.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NetworkConfig {
    /// Message delay distribution.
    pub delay: DelayModel,
    /// Probability a message is silently dropped (0.0 = reliable).
    pub loss_probability: f64,
    /// Whether per-channel FIFO order is enforced (thesis assumption 1).
    pub fifo: bool,
}

impl Default for NetworkConfig {
    /// The thesis' assumptions: reliable FIFO network, uniform delay
    /// 1..=5 ticks.
    fn default() -> Self {
        NetworkConfig {
            delay: DelayModel::Uniform { min: 1, max: 5 },
            loss_probability: 0.0,
            fifo: true,
        }
    }
}

/// A (symmetric) network partition: messages between the two sides are
/// dropped while the partition is active.
#[derive(Debug, Clone, Default)]
pub struct Partition {
    side_a: BTreeSet<ProcId>,
}

impl Partition {
    /// A partition isolating `side_a` from everyone else.
    pub fn isolate(side_a: impl IntoIterator<Item = ProcId>) -> Self {
        Partition { side_a: side_a.into_iter().collect() }
    }

    /// Whether a message from `a` to `b` crosses the cut.
    pub fn separates(&self, a: ProcId, b: ProcId) -> bool {
        self.side_a.contains(&a) != self.side_a.contains(&b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_delay_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = DelayModel::Fixed(3);
        assert_eq!(d.sample(&mut rng).ticks(), 3);
        assert_eq!(d.upper_bound().ticks(), 3);
    }

    #[test]
    fn uniform_delay_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        let d = DelayModel::Uniform { min: 2, max: 7 };
        for _ in 0..100 {
            let s = d.sample(&mut rng).ticks();
            assert!((2..=7).contains(&s));
        }
        assert_eq!(d.upper_bound().ticks(), 7);
    }

    #[test]
    fn partition_separates_sides() {
        let p = Partition::isolate([ProcId(0), ProcId(1)]);
        assert!(p.separates(ProcId(0), ProcId(2)));
        assert!(!p.separates(ProcId(0), ProcId(1)));
        assert!(!p.separates(ProcId(2), ProcId(3)));
    }

    #[test]
    fn default_is_reliable_fifo() {
        let c = NetworkConfig::default();
        assert_eq!(c.loss_probability, 0.0);
        assert!(c.fifo);
    }
}
