//! # mcv-sim
//!
//! A deterministic discrete-event simulator for distributed protocols —
//! the executable substrate under the thesis' three-phase-commit case
//! study. The default configuration encodes the thesis' Section 3.4
//! assumptions: FIFO channels, a reliable network without partitioning,
//! bounded message delay, and crash/recover site failures with
//! timeout-based detection.
//!
//! Determinism: all scheduling is driven by a seeded RNG and a totally
//! ordered event queue, so a `(topology, seed, failure schedule)` triple
//! reproduces an execution exactly — counterexamples found by the
//! property monitors are replayable.
//!
//! # Examples
//!
//! ```
//! use mcv_sim::{World, WorldConfig, Process, Ctx, ProcId, SimTime};
//!
//! struct PingPong { bounces: u32 }
//! impl Process<u8> for PingPong {
//!     fn on_start(&mut self, ctx: &mut Ctx<u8>) {
//!         if ctx.id() == ProcId(0) { ctx.send(ProcId(1), 0); }
//!     }
//!     fn on_message(&mut self, ctx: &mut Ctx<u8>, from: ProcId, n: u8) {
//!         self.bounces += 1;
//!         if n < 4 { ctx.send(from, n + 1); }
//!     }
//!     fn on_timer(&mut self, _ctx: &mut Ctx<u8>, _t: u64) {}
//! }
//!
//! let mut w = World::new(WorldConfig::default());
//! w.add_process(PingPong { bounces: 0 });
//! w.add_process(PingPong { bounces: 0 });
//! let stats = w.run();
//! assert_eq!(stats.messages_delivered, 5);
//! ```

#![warn(missing_docs)]

mod network;
mod process;
mod time;
mod trace;
mod world;

pub use network::{CutDirection, DelayModel, NetworkConfig, Partition};
pub use process::{Ctx, Effects, Process, TimerToken};
pub use time::{ProcId, SimTime};
pub use trace::{Trace, TraceEntry, TraceEvent};
pub use world::{RunStats, World, WorldConfig};
