//! The process (site) abstraction and its effect context.

use crate::time::{ProcId, SimTime};

/// Opaque token identifying a timer set by a process.
pub type TimerToken = u64;

/// Effects a process may request during a callback. The world applies
/// them after the callback returns, keeping the borrow structure simple
/// and the event order deterministic.
#[derive(Debug)]
pub struct Ctx<M> {
    /// This process's id.
    id: ProcId,
    /// Number of processes in the world.
    n: usize,
    /// Current simulated time.
    now: SimTime,
    /// This process's drifted local clock reading.
    local_now: SimTime,
    /// Requested sends `(to, msg)`.
    pub(crate) sends: Vec<(ProcId, M)>,
    /// Requested timers `(delay, token)`.
    pub(crate) timers: Vec<(SimTime, TimerToken)>,
    /// Cancelled timer tokens.
    pub(crate) cancels: Vec<TimerToken>,
    /// Free-form log lines picked up by the trace.
    pub(crate) notes: Vec<String>,
    /// Set when the process asks to halt the whole simulation.
    pub(crate) stop: bool,
    /// Set when the process asks to crash itself (phase-accurate fault
    /// injection: "coordinator fails right after collecting votes").
    pub(crate) crash: bool,
}

impl<M> Ctx<M> {
    pub(crate) fn new(id: ProcId, n: usize, now: SimTime) -> Self {
        Ctx {
            id,
            n,
            now,
            local_now: now,
            sends: Vec::new(),
            timers: Vec::new(),
            cancels: Vec::new(),
            notes: Vec::new(),
            stop: false,
            crash: false,
        }
    }

    /// This process's id.
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// Number of processes in the world.
    pub fn n_procs(&self) -> usize {
        self.n
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The process's *local* clock reading `C(p, T) = (1+ρ)·T`
    /// (equals [`Ctx::now`] when the world has no drift configured).
    pub fn local_now(&self) -> SimTime {
        self.local_now
    }

    pub(crate) fn with_local(mut self, local: SimTime) -> Self {
        self.local_now = local;
        self
    }

    /// Builds a context for driving a [`Process`] from *outside* the
    /// simulator — e.g. a real threaded transport (`mcv-dist`) feeding
    /// the same FSM implementations over channels. The caller plays the
    /// world's role: invoke a callback, then [`Ctx::take_effects`] and
    /// apply the requested sends/timers itself.
    pub fn external(id: ProcId, n: usize, now: SimTime) -> Self {
        Ctx::new(id, n, now)
    }

    /// Drains every effect requested so far, leaving the context empty
    /// and reusable for the next callback.
    pub fn take_effects(&mut self) -> Effects<M> {
        Effects {
            sends: std::mem::take(&mut self.sends),
            timers: std::mem::take(&mut self.timers),
            cancels: std::mem::take(&mut self.cancels),
            notes: std::mem::take(&mut self.notes),
            stop: std::mem::replace(&mut self.stop, false),
            crash: std::mem::replace(&mut self.crash, false),
        }
    }

    /// Moves the context clock forward (external drivers only; the
    /// simulator constructs a fresh context per event instead).
    pub fn advance_to(&mut self, now: SimTime) {
        self.now = now;
        self.local_now = now;
    }

    /// Sends `msg` to `to` (delivery subject to the network model).
    pub fn send(&mut self, to: ProcId, msg: M) {
        self.sends.push((to, msg));
    }

    /// Sends `msg` to every *other* process (the reliable-broadcast
    /// building block's transport primitive).
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        for i in 0..self.n {
            if i != self.id.0 {
                self.sends.push((ProcId(i), msg.clone()));
            }
        }
    }

    /// Requests a timer `delay` from now carrying `token`.
    pub fn set_timer(&mut self, delay: SimTime, token: TimerToken) {
        self.timers.push((delay, token));
    }

    /// Cancels all pending timers with `token`.
    pub fn cancel_timer(&mut self, token: TimerToken) {
        self.cancels.push(token);
    }

    /// Records a trace note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Requests the whole simulation to stop after this event.
    pub fn stop_world(&mut self) {
        self.stop = true;
    }

    /// Crashes this process immediately after the current callback —
    /// sends requested in the same callback are still submitted first
    /// (they were already on the wire).
    pub fn crash_self(&mut self) {
        self.crash = true;
    }
}

/// Effects drained from a [`Ctx`] by an external driver (see
/// [`Ctx::external`]). The simulator's `World` applies the same fields
/// internally; this struct exposes them so other runtimes — the real
/// threaded transport in `mcv-dist` — can reuse the unmodified FSMs.
#[derive(Debug)]
pub struct Effects<M> {
    /// Requested sends `(to, msg)`.
    pub sends: Vec<(ProcId, M)>,
    /// Requested timers `(delay, token)`.
    pub timers: Vec<(SimTime, TimerToken)>,
    /// Cancelled timer tokens.
    pub cancels: Vec<TimerToken>,
    /// Free-form log lines (decision ledger lines among them).
    pub notes: Vec<String>,
    /// The process asked to halt the whole run.
    pub stop: bool,
    /// The process asked to crash itself after this callback.
    pub crash: bool,
}

/// A simulated process (a *site* in the thesis' vocabulary).
///
/// Crash semantics: on crash the world stops delivering messages and
/// timers to the process and calls [`Process::on_crash`], which must
/// discard volatile state. On recovery the world calls
/// [`Process::on_recover`]; the process restores itself from whatever
/// it kept in stable storage (its own responsibility — see `mcv-txn`).
pub trait Process<M> {
    /// Called once when the world starts.
    fn on_start(&mut self, ctx: &mut Ctx<M>);

    /// Called for each delivered message.
    fn on_message(&mut self, ctx: &mut Ctx<M>, from: ProcId, msg: M);

    /// Called when a timer set with [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<M>, token: TimerToken);

    /// Called at the instant of a crash: wipe volatile state.
    fn on_crash(&mut self) {}

    /// Called at the instant of recovery.
    fn on_recover(&mut self, _ctx: &mut Ctx<M>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_skips_self() {
        let mut ctx: Ctx<&'static str> = Ctx::new(ProcId(1), 4, SimTime::ZERO);
        ctx.broadcast("hello");
        let to: Vec<usize> = ctx.sends.iter().map(|(p, _)| p.0).collect();
        assert_eq!(to, vec![0, 2, 3]);
    }

    #[test]
    fn effects_accumulate() {
        let mut ctx: Ctx<u8> = Ctx::new(ProcId(0), 2, SimTime::from_ticks(5));
        ctx.send(ProcId(1), 9);
        ctx.set_timer(SimTime::from_ticks(10), 7);
        ctx.cancel_timer(3);
        ctx.note("step");
        assert_eq!(ctx.sends.len(), 1);
        assert_eq!(ctx.timers, vec![(SimTime::from_ticks(10), 7)]);
        assert_eq!(ctx.cancels, vec![3]);
        assert_eq!(ctx.now(), SimTime::from_ticks(5));
    }
}
