//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in abstract ticks.
///
/// The thesis' timing constants (broadcast delay γ, bound δ, checkpoint
/// period Π, clock drift ρ) are all expressed in ticks.
///
/// # Examples
///
/// ```
/// use mcv_sim::SimTime;
/// let t = SimTime::from_ticks(10) + SimTime::from_ticks(5);
/// assert_eq!(t.ticks(), 15);
/// ```
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// A time from raw ticks.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// The raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl From<u64> for SimTime {
    fn from(t: u64) -> Self {
        SimTime(t)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifier of a simulated process (site).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct ProcId(pub usize);

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves() {
        let a = SimTime::from_ticks(7);
        let b = SimTime::from_ticks(3);
        assert_eq!((a + b).ticks(), 10);
        assert_eq!((a - b).ticks(), 4);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    fn ordering_is_by_ticks() {
        assert!(SimTime::from_ticks(1) < SimTime::from_ticks(2));
        assert_eq!(SimTime::ZERO, SimTime::from_ticks(0));
    }
}
