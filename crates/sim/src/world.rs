//! The simulation world: deterministic discrete-event execution of a
//! set of processes over the configured network, with crash/recover
//! fault injection.

use crate::network::{NetworkConfig, Partition};
use crate::process::{Ctx, Process, TimerToken};
use crate::time::{ProcId, SimTime};
use crate::trace::{Trace, TraceEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

type LiveTimers = std::collections::BTreeSet<(ProcId, TimerToken, u64)>;

/// World configuration.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Network model.
    pub network: NetworkConfig,
    /// RNG seed: equal seeds give identical executions.
    pub seed: u64,
    /// Hard cap on processed events (runaway guard).
    pub max_events: u64,
    /// Per-process clock drift rates ρ (the thesis' assumption 12:
    /// local clocks run at `(1+ρ)` real speed; timeouts must be scaled
    /// by the worst drift). Missing entries default to 0.
    pub drift: Vec<f64>,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            network: NetworkConfig::default(),
            seed: 0,
            max_events: 1_000_000,
            drift: Vec::new(),
        }
    }
}

/// Causal-trace payload carried by an in-flight message: the `Send`
/// event's cause token and the message label, present only when a
/// trace sink was active at send time.
type SendTag = Option<(mcv_trace::Cause, String)>;

#[derive(Debug)]
enum EventKind<M> {
    Start(ProcId),
    Deliver { from: ProcId, to: ProcId, msg: M, sent: SendTag },
    Timer { proc: ProcId, token: TimerToken, tid: u64, set: Option<mcv_trace::Cause> },
    Crash(ProcId),
    Recover(ProcId),
}

#[derive(Debug)]
struct Event<M> {
    time: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Summary statistics of a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RunStats {
    /// Events processed.
    pub events: u64,
    /// Messages submitted to the network.
    pub messages_sent: u64,
    /// Messages delivered.
    pub messages_delivered: u64,
    /// Messages dropped in total (loss, partition, scheduled drop
    /// window, or dead receiver) — always the sum of the attributed
    /// counters below plus dead-receiver drops.
    pub messages_dropped: u64,
    /// Messages dropped by i.i.d. loss ([`NetworkConfig::loss_probability`]).
    pub dropped_by_loss: u64,
    /// Messages dropped by an active partition cut.
    pub dropped_by_partition: u64,
    /// Messages dropped by a scheduled per-link drop window.
    pub dropped_by_window: u64,
    /// Extra copies delivered due to duplication (probability or
    /// scheduled dup window).
    pub messages_duplicated: u64,
    /// Timers that actually fired (cancelled/crashed timers excluded).
    pub timer_fires: u64,
    /// Final simulated time.
    pub end_time: SimTime,
    /// Whether a process called [`Ctx::stop_world`].
    pub stopped_early: bool,
}

/// What a scheduled per-link window does to matching messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WindowKind {
    /// Drop every matching message.
    Drop,
    /// Deliver every matching message twice (independent delays).
    Duplicate,
    /// Deliver with extra jitter and no FIFO clamp, so the message can
    /// overtake earlier traffic on the same channel.
    Reorder,
}

/// A scheduled fault window on a link pattern: `from`/`to` of `None`
/// match any sender/receiver.
#[derive(Debug, Clone)]
struct LinkWindow {
    from: Option<ProcId>,
    to: Option<ProcId>,
    start: SimTime,
    until: SimTime,
    kind: WindowKind,
}

impl LinkWindow {
    fn matches(&self, now: SimTime, from: ProcId, to: ProcId, kind: WindowKind) -> bool {
        self.kind == kind
            && now >= self.start
            && now < self.until
            && self.from.is_none_or(|f| f == from)
            && self.to.is_none_or(|t| t == to)
    }
}

/// A deterministic discrete-event world of processes of type `P`
/// exchanging messages of type `M`.
///
/// # Examples
///
/// ```
/// use mcv_sim::{World, WorldConfig, Process, Ctx, ProcId, SimTime};
///
/// #[derive(Default)]
/// struct Echo { got: Option<&'static str> }
/// impl Process<&'static str> for Echo {
///     fn on_start(&mut self, ctx: &mut Ctx<&'static str>) {
///         if ctx.id() == ProcId(0) { ctx.send(ProcId(1), "ping"); }
///     }
///     fn on_message(&mut self, _ctx: &mut Ctx<&'static str>, _from: ProcId, msg: &'static str) {
///         self.got = Some(msg);
///     }
///     fn on_timer(&mut self, _ctx: &mut Ctx<&'static str>, _t: u64) {}
/// }
///
/// let mut w = World::new(WorldConfig::default());
/// w.add_process(Echo::default());
/// w.add_process(Echo::default());
/// w.run();
/// assert_eq!(w.process(ProcId(1)).got, Some("ping"));
/// ```
pub struct World<M, P> {
    procs: Vec<P>,
    up: Vec<bool>,
    queue: BinaryHeap<Reverse<Event<M>>>,
    seq: u64,
    tid: u64,
    time: SimTime,
    rng: StdRng,
    config: WorldConfig,
    fifo_last: std::collections::BTreeMap<(ProcId, ProcId), SimTime>,
    live_timers: LiveTimers,
    partitions: Vec<(Partition, SimTime, SimTime)>,
    link_windows: Vec<LinkWindow>,
    stats: RunStats,
    trace: Trace,
    deliver_seq: Vec<u64>,
    started: bool,
}

impl<M: Clone + std::fmt::Debug, P: Process<M>> World<M, P> {
    /// A new world.
    pub fn new(config: WorldConfig) -> Self {
        World {
            procs: Vec::new(),
            up: Vec::new(),
            queue: BinaryHeap::new(),
            seq: 0,
            tid: 0,
            time: SimTime::ZERO,
            rng: StdRng::seed_from_u64(config.seed),
            config,
            fifo_last: Default::default(),
            live_timers: Default::default(),
            partitions: Vec::new(),
            link_windows: Vec::new(),
            stats: RunStats::default(),
            trace: Trace::new(),
            deliver_seq: Vec::new(),
            started: false,
        }
    }

    /// Adds a process; returns its id.
    pub fn add_process(&mut self, p: P) -> ProcId {
        let id = ProcId(self.procs.len());
        self.procs.push(p);
        self.up.push(true);
        self.deliver_seq.push(0);
        id
    }

    /// Immutable access to a process (for post-run inspection).
    pub fn process(&self, id: ProcId) -> &P {
        &self.procs[id.0]
    }

    /// Mutable access to a process (for test setup).
    pub fn process_mut(&mut self, id: ProcId) -> &mut P {
        &mut self.procs[id.0]
    }

    /// Number of processes.
    pub fn n_procs(&self) -> usize {
        self.procs.len()
    }

    /// Whether `id` is currently operational.
    pub fn is_up(&self, id: ProcId) -> bool {
        self.up[id.0]
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// The event trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Run statistics so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Schedules a crash of `id` at `at`.
    pub fn schedule_crash(&mut self, id: ProcId, at: SimTime) {
        self.push(at, EventKind::Crash(id));
    }

    /// Schedules recovery of `id` at `at`.
    pub fn schedule_recovery(&mut self, id: ProcId, at: SimTime) {
        self.push(at, EventKind::Recover(id));
    }

    /// Activates `partition` between `from` and `until`.
    pub fn schedule_partition(&mut self, partition: Partition, from: SimTime, until: SimTime) {
        self.partitions.push((partition, from, until));
    }

    /// Drops every message matching the link pattern (`None` = any)
    /// sent in `[start, until)`.
    pub fn schedule_drop_window(
        &mut self,
        from: Option<ProcId>,
        to: Option<ProcId>,
        start: SimTime,
        until: SimTime,
    ) {
        self.link_windows.push(LinkWindow { from, to, start, until, kind: WindowKind::Drop });
    }

    /// Duplicates every message matching the link pattern (`None` =
    /// any) sent in `[start, until)`: two copies with independent
    /// delays are delivered.
    pub fn schedule_dup_window(
        &mut self,
        from: Option<ProcId>,
        to: Option<ProcId>,
        start: SimTime,
        until: SimTime,
    ) {
        self.link_windows.push(LinkWindow { from, to, start, until, kind: WindowKind::Duplicate });
    }

    /// Reorders messages matching the link pattern (`None` = any) sent
    /// in `[start, until)`: they skip the FIFO clamp and get extra
    /// delay jitter, so they can overtake earlier traffic.
    pub fn schedule_reorder_window(
        &mut self,
        from: Option<ProcId>,
        to: Option<ProcId>,
        start: SimTime,
        until: SimTime,
    ) {
        self.link_windows.push(LinkWindow { from, to, start, until, kind: WindowKind::Reorder });
    }

    fn push(&mut self, time: SimTime, kind: EventKind<M>) {
        self.seq += 1;
        self.queue.push(Reverse(Event { time, seq: self.seq, kind }));
    }

    fn apply_ctx(&mut self, id: ProcId, ctx: Ctx<M>) -> bool {
        let self_crash = ctx.crash;
        let tracing = mcv_trace::active();
        for note in &ctx.notes {
            self.trace.push(self.time, TraceEvent::Note { proc: id, text: note.clone() });
            mcv_trace::emit(
                id.0,
                self.time.ticks(),
                mcv_trace::EventKind::Note { text: note.clone() },
            );
        }
        for (to, msg) in ctx.sends {
            self.stats.messages_sent += 1;
            mcv_obs::counter("sim.sent", 1);
            // The message label is only rendered when a sink is live.
            let label =
                if tracing { mcv_trace::label_of(&format!("{msg:?}")) } else { String::new() };
            let t_drop = |label: String| mcv_trace::EventKind::Drop { from: id.0, to: to.0, label };
            // Loss?
            if self.config.network.loss_probability > 0.0
                && self.rng.gen_bool(self.config.network.loss_probability)
            {
                self.stats.messages_dropped += 1;
                self.stats.dropped_by_loss += 1;
                mcv_obs::counter("sim.dropped", 1);
                mcv_obs::counter("sim.dropped_by_loss", 1);
                self.trace.push(self.time, TraceEvent::Dropped { from: id, to });
                mcv_trace::emit(id.0, self.time.ticks(), t_drop(label));
                continue;
            }
            // Partition?
            let cut = self
                .partitions
                .iter()
                .any(|(p, a, b)| self.time >= *a && self.time < *b && p.blocks(id, to));
            if cut {
                self.stats.messages_dropped += 1;
                self.stats.dropped_by_partition += 1;
                mcv_obs::counter("sim.dropped", 1);
                mcv_obs::counter("sim.dropped_by_partition", 1);
                self.trace.push(self.time, TraceEvent::Dropped { from: id, to });
                mcv_trace::emit(id.0, self.time.ticks(), t_drop(label));
                continue;
            }
            // Scheduled drop window on this link?
            let windowed =
                |ws: &[LinkWindow], now, kind| ws.iter().any(|w| w.matches(now, id, to, kind));
            if windowed(&self.link_windows, self.time, WindowKind::Drop) {
                self.stats.messages_dropped += 1;
                self.stats.dropped_by_window += 1;
                mcv_obs::counter("sim.dropped", 1);
                mcv_obs::counter("sim.dropped_by_window", 1);
                self.trace.push(self.time, TraceEvent::Dropped { from: id, to });
                mcv_trace::emit(id.0, self.time.ticks(), t_drop(label));
                continue;
            }
            // Duplication: a dup window, or the i.i.d. probability.
            let mut copies = 1;
            if windowed(&self.link_windows, self.time, WindowKind::Duplicate)
                || (self.config.network.duplicate_probability > 0.0
                    && self.rng.gen_bool(self.config.network.duplicate_probability))
            {
                copies = 2;
                self.stats.messages_duplicated += 1;
                mcv_obs::counter("sim.duplicated", 1);
            }
            let reorder_window = windowed(&self.link_windows, self.time, WindowKind::Reorder);
            // One Send event per message; duplicated copies share it as
            // their causal antecedent.
            let sent = mcv_trace::emit(
                id.0,
                self.time.ticks(),
                mcv_trace::EventKind::Send { to: to.0, label: label.clone() },
            )
            .map(|cause| (cause, label));
            for _ in 0..copies {
                let mut deliver_at = self.time + self.config.network.delay.sample(&mut self.rng);
                let reorder = reorder_window
                    || (self.config.network.reorder_probability > 0.0
                        && self.rng.gen_bool(self.config.network.reorder_probability));
                if reorder {
                    // Extra jitter up to 4x the delay bound; skips the
                    // FIFO clamp so the copy can overtake older traffic.
                    let bound = self.config.network.delay.upper_bound().ticks().max(1);
                    deliver_at += SimTime::from_ticks(self.rng.gen_range(0..=4 * bound));
                } else if self.config.network.fifo {
                    let last = self.fifo_last.get(&(id, to)).copied().unwrap_or(SimTime::ZERO);
                    if deliver_at <= last {
                        deliver_at = last + SimTime::from_ticks(1);
                    }
                    self.fifo_last.insert((id, to), deliver_at);
                }
                self.push(
                    deliver_at,
                    EventKind::Deliver { from: id, to, msg: msg.clone(), sent: sent.clone() },
                );
            }
        }
        // Cancels first: they target timers that existed *before* this
        // callback, so a timer re-armed with the same token in the same
        // callback survives.
        for token in ctx.cancels {
            let dead: Vec<_> = self
                .live_timers
                .iter()
                .filter(|(p, t, _)| *p == id && *t == token)
                .cloned()
                .collect();
            for d in dead {
                self.live_timers.remove(&d);
            }
        }
        for (delay, token) in ctx.timers {
            self.tid += 1;
            let tid = self.tid;
            self.live_timers.insert((id, token, tid));
            let set =
                mcv_trace::emit(id.0, self.time.ticks(), mcv_trace::EventKind::TimerSet { token });
            self.push(self.time + delay, EventKind::Timer { proc: id, token, tid, set });
        }
        if self_crash && self.up[id.0] {
            self.up[id.0] = false;
            self.trace.push(self.time, TraceEvent::Crash { proc: id });
            mcv_trace::emit(id.0, self.time.ticks(), mcv_trace::EventKind::Crash);
            self.procs[id.0].on_crash();
            let dead: Vec<_> =
                self.live_timers.iter().filter(|(p, _, _)| *p == id).cloned().collect();
            for d in dead {
                self.live_timers.remove(&d);
            }
        }
        ctx.stop
    }

    /// Processes a single event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        if !self.started {
            self.started = true;
            for i in 0..self.procs.len() {
                self.push(SimTime::ZERO, EventKind::Start(ProcId(i)));
            }
        }
        let Some(Reverse(ev)) = self.queue.pop() else {
            return false;
        };
        self.time = ev.time;
        self.stats.events += 1;
        mcv_obs::counter("sim.events", 1);
        self.stats.end_time = self.time;
        let n = self.procs.len();
        let drift = |cfg: &WorldConfig, id: ProcId| cfg.drift.get(id.0).copied().unwrap_or(0.0);
        let local = |cfg: &WorldConfig, id: ProcId, t: SimTime| {
            SimTime::from_ticks((t.ticks() as f64 * (1.0 + drift(cfg, id))).round() as u64)
        };
        let stop = match ev.kind {
            EventKind::Start(id) => {
                let mut ctx =
                    Ctx::new(id, n, self.time).with_local(local(&self.config, id, self.time));
                self.procs[id.0].on_start(&mut ctx);
                self.apply_ctx(id, ctx)
            }
            EventKind::Deliver { from, to, msg, sent } => {
                if !self.up[to.0] {
                    self.stats.messages_dropped += 1;
                    mcv_obs::counter("sim.dropped", 1);
                    self.trace.push(self.time, TraceEvent::Dropped { from, to });
                    let (cause, label) = sent.map(|(c, l)| (Some(c), l)).unwrap_or_default();
                    mcv_trace::emit_caused(
                        to.0,
                        self.time.ticks(),
                        cause,
                        mcv_trace::EventKind::Drop { from: from.0, to: to.0, label },
                    );
                    false
                } else {
                    self.stats.messages_delivered += 1;
                    mcv_obs::counter("sim.delivered", 1);
                    self.deliver_seq[to.0] += 1;
                    let seq = self.deliver_seq[to.0];
                    self.trace.push(self.time, TraceEvent::Deliver { from, to, seq });
                    let (cause, label) = sent.map(|(c, l)| (Some(c), l)).unwrap_or_default();
                    let delivered = mcv_trace::emit_caused(
                        to.0,
                        self.time.ticks(),
                        cause,
                        mcv_trace::EventKind::Deliver { from: from.0, label, deliver_seq: seq },
                    );
                    let prev = mcv_trace::set_context(delivered);
                    let mut ctx =
                        Ctx::new(to, n, self.time).with_local(local(&self.config, to, self.time));
                    self.procs[to.0].on_message(&mut ctx, from, msg);
                    let stop = self.apply_ctx(to, ctx);
                    mcv_trace::set_context(prev);
                    stop
                }
            }
            EventKind::Timer { proc, token, tid, set } => {
                if self.up[proc.0] && self.live_timers.remove(&(proc, token, tid)) {
                    self.stats.timer_fires += 1;
                    mcv_obs::counter("sim.timer_fires", 1);
                    self.trace.push(self.time, TraceEvent::Timer { proc, token });
                    let fired = mcv_trace::emit_caused(
                        proc.0,
                        self.time.ticks(),
                        set,
                        mcv_trace::EventKind::TimerFire { token },
                    );
                    let prev = mcv_trace::set_context(fired);
                    let mut ctx = Ctx::new(proc, n, self.time).with_local(local(
                        &self.config,
                        proc,
                        self.time,
                    ));
                    self.procs[proc.0].on_timer(&mut ctx, token);
                    let stop = self.apply_ctx(proc, ctx);
                    mcv_trace::set_context(prev);
                    stop
                } else {
                    false
                }
            }
            EventKind::Crash(id) => {
                if self.up[id.0] {
                    self.up[id.0] = false;
                    self.trace.push(self.time, TraceEvent::Crash { proc: id });
                    mcv_trace::emit(id.0, self.time.ticks(), mcv_trace::EventKind::Crash);
                    self.procs[id.0].on_crash();
                    // Pending timers of a crashed process die with it.
                    let dead: Vec<_> =
                        self.live_timers.iter().filter(|(p, _, _)| *p == id).cloned().collect();
                    for d in dead {
                        self.live_timers.remove(&d);
                    }
                }
                false
            }
            EventKind::Recover(id) => {
                if !self.up[id.0] {
                    self.up[id.0] = true;
                    self.trace.push(self.time, TraceEvent::Recover { proc: id });
                    let recovered =
                        mcv_trace::emit(id.0, self.time.ticks(), mcv_trace::EventKind::Recover);
                    let prev = mcv_trace::set_context(recovered);
                    let mut ctx =
                        Ctx::new(id, n, self.time).with_local(local(&self.config, id, self.time));
                    self.procs[id.0].on_recover(&mut ctx);
                    let stop = self.apply_ctx(id, ctx);
                    mcv_trace::set_context(prev);
                    stop
                } else {
                    false
                }
            }
        };
        if stop {
            self.stats.stopped_early = true;
            return false;
        }
        self.stats.events < self.config.max_events
    }

    /// Runs to quiescence (empty queue), stop request, or the event cap.
    pub fn run(&mut self) -> RunStats {
        while self.step() {}
        self.stats.clone()
    }

    /// Runs while events remain at or before `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> RunStats {
        loop {
            if !self.started {
                if !self.step() {
                    break;
                }
                continue;
            }
            match self.queue.peek() {
                Some(Reverse(ev)) if ev.time <= deadline => {
                    if !self.step() {
                        break;
                    }
                }
                _ => break,
            }
        }
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Floods its peer with `count` numbered messages on start.
    struct Flood {
        peer: ProcId,
        count: u64,
        received: Vec<u64>,
        timer_fired: bool,
    }

    impl Flood {
        fn new(peer: ProcId, count: u64) -> Self {
            Flood { peer, count, received: Vec::new(), timer_fired: false }
        }
    }

    impl Process<u64> for Flood {
        fn on_start(&mut self, ctx: &mut Ctx<u64>) {
            for i in 0..self.count {
                ctx.send(self.peer, i);
            }
        }
        fn on_message(&mut self, _ctx: &mut Ctx<u64>, _from: ProcId, msg: u64) {
            self.received.push(msg);
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<u64>, _token: u64) {
            self.timer_fired = true;
        }
    }

    fn flood_world(seed: u64) -> World<u64, Flood> {
        let mut w = World::new(WorldConfig { seed, ..WorldConfig::default() });
        w.add_process(Flood::new(ProcId(1), 20));
        w.add_process(Flood::new(ProcId(0), 0));
        w
    }

    #[test]
    fn fifo_channels_preserve_send_order() {
        let mut w = flood_world(7);
        w.run();
        let got = &w.process(ProcId(1)).received;
        let expected: Vec<u64> = (0..20).collect();
        assert_eq!(got, &expected);
    }

    #[test]
    fn same_seed_same_execution() {
        let mut a = flood_world(3);
        let mut b = flood_world(3);
        let sa = a.run();
        let sb = b.run();
        assert_eq!(sa, sb);
        assert_eq!(a.process(ProcId(1)).received, b.process(ProcId(1)).received);
    }

    #[test]
    fn crash_drops_in_flight_messages() {
        let mut w = flood_world(5);
        w.schedule_crash(ProcId(1), SimTime::from_ticks(0));
        let stats = w.run();
        assert_eq!(w.process(ProcId(1)).received.len(), 0);
        assert_eq!(stats.messages_dropped, 20);
    }

    #[test]
    fn recovery_restores_delivery() {
        struct LateSender {
            sent: bool,
            received: u32,
        }
        impl Process<u64> for LateSender {
            fn on_start(&mut self, ctx: &mut Ctx<u64>) {
                if ctx.id() == ProcId(0) {
                    ctx.set_timer(SimTime::from_ticks(100), 1);
                }
            }
            fn on_message(&mut self, _ctx: &mut Ctx<u64>, _from: ProcId, _msg: u64) {
                self.received += 1;
            }
            fn on_timer(&mut self, ctx: &mut Ctx<u64>, _token: u64) {
                if !self.sent {
                    self.sent = true;
                    ctx.send(ProcId(1), 42);
                }
            }
        }
        let mut w: World<u64, LateSender> = World::new(WorldConfig::default());
        w.add_process(LateSender { sent: false, received: 0 });
        w.add_process(LateSender { sent: false, received: 0 });
        w.schedule_crash(ProcId(1), SimTime::from_ticks(1));
        w.schedule_recovery(ProcId(1), SimTime::from_ticks(50));
        w.run();
        // Message sent at t=100, after recovery: delivered.
        assert_eq!(w.process(ProcId(1)).received, 1);
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        struct T {
            late_fired: bool,
        }
        impl Process<u64> for T {
            fn on_start(&mut self, ctx: &mut Ctx<u64>) {
                ctx.set_timer(SimTime::from_ticks(10), 9);
                ctx.set_timer(SimTime::from_ticks(5), 1);
            }
            fn on_message(&mut self, _: &mut Ctx<u64>, _: ProcId, _: u64) {}
            fn on_timer(&mut self, ctx: &mut Ctx<u64>, token: u64) {
                match token {
                    1 => ctx.cancel_timer(9),
                    _ => self.late_fired = true,
                }
            }
        }
        let mut w: World<u64, T> = World::new(WorldConfig::default());
        w.add_process(T { late_fired: false });
        w.run();
        assert!(!w.process(ProcId(0)).late_fired);
    }

    #[test]
    fn rearming_a_timer_in_the_cancelling_callback_survives() {
        // Cancels target pre-existing timers only: the watchdog pattern
        // `cancel_timer(t); set_timer(d, t)` keeps the new timer.
        struct T {
            fired: u32,
        }
        impl Process<u64> for T {
            fn on_start(&mut self, ctx: &mut Ctx<u64>) {
                ctx.set_timer(SimTime::from_ticks(5), 7);
            }
            fn on_message(&mut self, _: &mut Ctx<u64>, _: ProcId, _: u64) {}
            fn on_timer(&mut self, ctx: &mut Ctx<u64>, _token: u64) {
                self.fired += 1;
                if self.fired == 1 {
                    ctx.cancel_timer(7);
                    ctx.set_timer(SimTime::from_ticks(5), 7);
                }
            }
        }
        let mut w: World<u64, T> = World::new(WorldConfig::default());
        w.add_process(T { fired: 0 });
        w.run();
        assert_eq!(w.process(ProcId(0)).fired, 2);
    }

    #[test]
    fn lossy_network_drops_some() {
        let mut cfg = WorldConfig { seed: 5, ..WorldConfig::default() };
        cfg.network.loss_probability = 0.5;
        let mut w = World::new(cfg);
        w.add_process(Flood::new(ProcId(1), 100));
        w.add_process(Flood::new(ProcId(0), 0));
        let stats = w.run();
        assert!(stats.messages_dropped > 10);
        assert!(stats.messages_delivered > 10);
        assert_eq!(stats.messages_dropped + stats.messages_delivered, 100);
        // All drops here come from i.i.d. loss, and attribution adds up.
        assert_eq!(stats.dropped_by_loss, stats.messages_dropped);
        assert_eq!(stats.dropped_by_partition, 0);
    }

    #[test]
    fn partition_blocks_cross_traffic_during_window() {
        let mut w = flood_world(2);
        w.schedule_partition(
            Partition::isolate([ProcId(0)]),
            SimTime::ZERO,
            SimTime::from_ticks(1_000),
        );
        let stats = w.run();
        assert_eq!(stats.messages_delivered, 0);
        assert_eq!(stats.messages_dropped, 20);
        assert_eq!(stats.dropped_by_partition, 20);
        assert_eq!(stats.dropped_by_loss, 0);
    }

    /// Two floods in opposite directions, used by the asymmetric tests.
    fn duplex_world(seed: u64) -> World<u64, Flood> {
        let mut w = World::new(WorldConfig { seed, ..WorldConfig::default() });
        w.add_process(Flood::new(ProcId(1), 10));
        w.add_process(Flood::new(ProcId(0), 10));
        w
    }

    #[test]
    fn one_way_partition_blocks_only_one_direction() {
        let mut w = duplex_world(3);
        w.schedule_partition(
            Partition::one_way_from([ProcId(0)]),
            SimTime::ZERO,
            SimTime::from_ticks(1_000),
        );
        let stats = w.run();
        // p0 -> p1 cut; p1 -> p0 still flows.
        assert_eq!(w.process(ProcId(1)).received.len(), 0);
        assert_eq!(w.process(ProcId(0)).received.len(), 10);
        assert_eq!(stats.dropped_by_partition, 10);
        assert_eq!(stats.messages_delivered, 10);
    }

    #[test]
    fn drop_window_cuts_matching_link_only() {
        let mut w = duplex_world(4);
        w.schedule_drop_window(
            Some(ProcId(0)),
            Some(ProcId(1)),
            SimTime::ZERO,
            SimTime::from_ticks(1_000),
        );
        let stats = w.run();
        assert_eq!(w.process(ProcId(1)).received.len(), 0);
        assert_eq!(w.process(ProcId(0)).received.len(), 10);
        assert_eq!(stats.dropped_by_window, 10);
        assert_eq!(stats.messages_dropped, 10);
    }

    #[test]
    fn dup_window_delivers_twice() {
        let mut w = flood_world(6);
        w.schedule_dup_window(None, None, SimTime::ZERO, SimTime::from_ticks(1_000));
        let stats = w.run();
        assert_eq!(stats.messages_duplicated, 20);
        assert_eq!(stats.messages_delivered, 40);
        assert_eq!(w.process(ProcId(1)).received.len(), 40);
    }

    #[test]
    fn duplicate_probability_delivers_extra_copies() {
        let mut cfg = WorldConfig { seed: 9, ..WorldConfig::default() };
        cfg.network.duplicate_probability = 0.5;
        let mut w = World::new(cfg);
        w.add_process(Flood::new(ProcId(1), 100));
        w.add_process(Flood::new(ProcId(0), 0));
        let stats = w.run();
        assert!(stats.messages_duplicated > 10);
        assert_eq!(stats.messages_delivered, 100 + stats.messages_duplicated);
    }

    #[test]
    fn reorder_window_breaks_fifo_order() {
        let mut w = flood_world(1);
        w.schedule_reorder_window(None, None, SimTime::ZERO, SimTime::from_ticks(1_000));
        w.run();
        let got = &w.process(ProcId(1)).received;
        assert_eq!(got.len(), 20);
        let expected: Vec<u64> = (0..20).collect();
        assert_ne!(got, &expected, "reorder window should break send order");
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, expected, "every message still delivered exactly once");
    }

    #[test]
    fn delivery_seq_is_monotone_under_reorder() {
        // Reordering scrambles payload order, but the per-site delivery
        // sequence number stays 1..=n in delivery order — the stable
        // correlation key the positional scheme lacked.
        let mut w = flood_world(1);
        w.schedule_reorder_window(None, None, SimTime::ZERO, SimTime::from_ticks(1_000));
        w.run();
        let seqs: Vec<u64> = w
            .trace()
            .entries()
            .iter()
            .filter_map(|e| match e.event {
                TraceEvent::Deliver { to: ProcId(1), seq, .. } => Some(seq),
                _ => None,
            })
            .collect();
        assert_eq!(seqs, (1..=20).collect::<Vec<u64>>());
        let payloads = &w.process(ProcId(1)).received;
        assert_ne!(payloads, &(0..20).collect::<Vec<u64>>(), "payloads arrive out of order");
    }

    #[test]
    fn causal_trace_of_a_run_is_hb_clean() {
        let ((), trace) = mcv_trace::record_trace(None, || {
            let mut w = flood_world(3);
            w.schedule_dup_window(None, None, SimTime::ZERO, SimTime::from_ticks(2));
            w.run();
        });
        assert!(!trace.is_empty());
        let report = mcv_trace::check(&trace);
        assert!(report.ok(), "{:?}", report.violations);
        // Every deliver cites its send.
        assert!(trace
            .events
            .iter()
            .all(|e| !matches!(e.kind, mcv_trace::EventKind::Deliver { .. }) || e.cause.is_some()));
    }

    #[test]
    fn drifted_clocks_diverge_from_real_time() {
        struct ClockReader {
            readings: Vec<(u64, u64)>,
        }
        impl Process<u64> for ClockReader {
            fn on_start(&mut self, ctx: &mut Ctx<u64>) {
                ctx.set_timer(SimTime::from_ticks(100), 0);
            }
            fn on_message(&mut self, _: &mut Ctx<u64>, _: ProcId, _: u64) {}
            fn on_timer(&mut self, ctx: &mut Ctx<u64>, _: u64) {
                self.readings.push((ctx.now().ticks(), ctx.local_now().ticks()));
            }
        }
        let mut w: World<u64, ClockReader> =
            World::new(WorldConfig { drift: vec![0.0, 0.1], ..WorldConfig::default() });
        w.add_process(ClockReader { readings: Vec::new() });
        w.add_process(ClockReader { readings: Vec::new() });
        w.run();
        // Process 0: no drift; local == real.
        assert_eq!(w.process(ProcId(0)).readings, vec![(100, 100)]);
        // Process 1: 10% fast clock.
        assert_eq!(w.process(ProcId(1)).readings, vec![(100, 110)]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        struct Ticker {
            ticks: u32,
        }
        impl Process<u64> for Ticker {
            fn on_start(&mut self, ctx: &mut Ctx<u64>) {
                ctx.set_timer(SimTime::from_ticks(10), 0);
            }
            fn on_message(&mut self, _: &mut Ctx<u64>, _: ProcId, _: u64) {}
            fn on_timer(&mut self, ctx: &mut Ctx<u64>, _: u64) {
                self.ticks += 1;
                ctx.set_timer(SimTime::from_ticks(10), 0);
            }
        }
        let mut w: World<u64, Ticker> = World::new(WorldConfig::default());
        w.add_process(Ticker { ticks: 0 });
        w.run_until(SimTime::from_ticks(55));
        assert_eq!(w.process(ProcId(0)).ticks, 5);
    }
}
