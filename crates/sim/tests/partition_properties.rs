//! Property tests of the partition model: the symmetric cut is a true
//! equivalence-class separator (symmetric, irreflexive, and exactly
//! "one endpoint inside, one outside"), and the asymmetric variants cut
//! exactly one direction of the same separation relation.

use mcv_sim::{Partition, ProcId};
use proptest::prelude::*;
use std::collections::BTreeSet;

const N: usize = 8;

fn side_strategy() -> impl Strategy<Value = BTreeSet<usize>> {
    prop::collection::vec(0..N, 0..N).prop_map(|v| v.into_iter().collect())
}

fn procs(side: &BTreeSet<usize>) -> Vec<ProcId> {
    side.iter().map(|i| ProcId(*i)).collect()
}

proptest! {
    #[test]
    fn separates_is_symmetric(side in side_strategy(), a in 0..N, b in 0..N) {
        let p = Partition::isolate(procs(&side));
        prop_assert_eq!(p.separates(ProcId(a), ProcId(b)), p.separates(ProcId(b), ProcId(a)));
    }

    #[test]
    fn separates_is_irreflexive(side in side_strategy(), a in 0..N) {
        let p = Partition::isolate(procs(&side));
        prop_assert!(!p.separates(ProcId(a), ProcId(a)));
        prop_assert!(!p.blocks(ProcId(a), ProcId(a)));
    }

    #[test]
    fn separates_iff_exactly_one_endpoint_isolated(side in side_strategy(), a in 0..N, b in 0..N) {
        let p = Partition::isolate(procs(&side));
        let expected = side.contains(&a) != side.contains(&b);
        prop_assert_eq!(p.separates(ProcId(a), ProcId(b)), expected);
    }

    #[test]
    fn symmetric_partition_blocks_iff_it_separates(side in side_strategy(), a in 0..N, b in 0..N) {
        let p = Partition::isolate(procs(&side));
        prop_assert_eq!(p.blocks(ProcId(a), ProcId(b)), p.separates(ProcId(a), ProcId(b)));
    }

    #[test]
    fn one_way_from_blocks_exactly_outbound(side in side_strategy(), a in 0..N, b in 0..N) {
        let p = Partition::one_way_from(procs(&side));
        let expected = side.contains(&a) && !side.contains(&b);
        prop_assert_eq!(p.blocks(ProcId(a), ProcId(b)), expected);
    }

    #[test]
    fn one_way_to_blocks_exactly_inbound(side in side_strategy(), a in 0..N, b in 0..N) {
        let p = Partition::one_way_to(procs(&side));
        let expected = !side.contains(&a) && side.contains(&b);
        prop_assert_eq!(p.blocks(ProcId(a), ProcId(b)), expected);
    }

    #[test]
    fn one_way_cuts_never_block_both_directions(side in side_strategy(), a in 0..N, b in 0..N) {
        for p in [Partition::one_way_from(procs(&side)), Partition::one_way_to(procs(&side))] {
            prop_assert!(!(p.blocks(ProcId(a), ProcId(b)) && p.blocks(ProcId(b), ProcId(a))));
            // An asymmetric cut still only acts across the separation.
            if p.blocks(ProcId(a), ProcId(b)) {
                prop_assert!(p.separates(ProcId(a), ProcId(b)));
            }
        }
    }

    #[test]
    fn one_way_from_and_to_partition_the_symmetric_cut(
        side in side_strategy(), a in 0..N, b in 0..N,
    ) {
        // Outbound + inbound cuts together block exactly what the
        // symmetric cut blocks, and never both on the same message.
        let sym = Partition::isolate(procs(&side));
        let out = Partition::one_way_from(procs(&side));
        let inb = Partition::one_way_to(procs(&side));
        let (x, y) = (ProcId(a), ProcId(b));
        prop_assert_eq!(sym.blocks(x, y), out.blocks(x, y) || inb.blocks(x, y));
        prop_assert!(!(out.blocks(x, y) && inb.blocks(x, y)));
    }
}
