//! Transport conformance: the same delivery, drop-window, partition,
//! crash/recover, duplication, and batching assertions driven against
//! BOTH [`Transport`] implementations — the deterministic virtual-clock
//! [`SimTransport`] and the real threaded network ([`ThreadedTransport`])
//! — plus pipelined-vs-serial runtime equivalence (same seeds, same
//! commit/abort decisions).
//!
//! Both implementations share the fabric policy core, so every policy
//! assertion here must hold identically in both worlds; only timing
//! jitter differs, and the test scales ticks up (1 ms/tick) and keeps
//! fault windows wide so wall-clock scheduling noise cannot move a
//! submission across a window edge.

use mcv_chaos::{CutKind, FaultEvent, FaultSchedule};
use mcv_commit::Msg;
use mcv_dist::{
    run_dist, run_pipeline, DistConfig, NodeEvent, PipelineConfig, SimTransport, ThreadedTransport,
    Transport, TransportConfig,
};
use mcv_txn::TxnId;

/// Wide-tick config: 1 ms per tick keeps threaded scheduling jitter
/// (tens of microseconds) far from every window edge.
fn cfg(batch_window_us: u64) -> TransportConfig {
    TransportConfig { tick_us: 1_000, delay_ticks: 3, seed: 42, batch_window_us }
}

/// A tagged probe message; the tag rides in the txn id.
fn probe(tag: u64) -> Msg {
    Msg::VoteReq { txn: TxnId(tag) }
}

fn tag_of(msg: &Msg) -> u64 {
    match msg {
        Msg::VoteReq { txn } => txn.0,
        other => panic!("unexpected message {other:?}"),
    }
}

/// Flattens advance() output into `(node, from, tag)` delivery triples
/// in dispatch order, panicking on unexpected fault events.
fn deliveries(events: Vec<(usize, NodeEvent)>) -> Vec<(usize, usize, u64)> {
    let mut out = Vec::new();
    for (node, ev) in events {
        match ev {
            NodeEvent::Deliver { from, msg, .. } => out.push((node, from, tag_of(&msg))),
            NodeEvent::DeliverBatch(items) => {
                for it in items {
                    out.push((node, it.from, tag_of(&it.msg)));
                }
            }
            other => panic!("unexpected event for node {node}: {other:?}"),
        }
    }
    out
}

/// Collects every event over a generous horizon (200 ms), long past
/// the widest schedule used here.
fn drain(t: &mut dyn Transport) -> Vec<(usize, NodeEvent)> {
    t.advance(200_000)
}

fn each_transport(
    schedule: &FaultSchedule,
    batch_window_us: u64,
    check: impl Fn(&mut dyn Transport),
) {
    let mut sim = SimTransport::new(&cfg(batch_window_us), schedule);
    check(&mut sim);
    let mut threaded = ThreadedTransport::new(4, &cfg(batch_window_us), schedule);
    check(&mut threaded);
}

#[test]
fn fault_free_delivers_everything_in_fifo_order_per_link() {
    each_transport(&FaultSchedule::none(), 0, |t| {
        for tag in 0..8 {
            t.send(0, 1, probe(tag), String::new());
            t.send(2, 3, probe(100 + tag), String::new());
        }
        let got = deliveries(drain(t));
        let link01: Vec<u64> =
            got.iter().filter(|(n, f, _)| *n == 1 && *f == 0).map(|&(_, _, g)| g).collect();
        let link23: Vec<u64> =
            got.iter().filter(|(n, f, _)| *n == 3 && *f == 2).map(|&(_, _, g)| g).collect();
        assert_eq!(link01, (0..8).collect::<Vec<_>>(), "[{}] FIFO on 0->1", t.name());
        assert_eq!(link23, (100..108).collect::<Vec<_>>(), "[{}] FIFO on 2->3", t.name());
        assert_eq!(got.len(), 16, "[{}] nothing lost, nothing invented", t.name());
    });
}

#[test]
fn drop_window_loses_in_window_traffic_only() {
    // The window covers [0, 50) ticks on link 0->1 (50 ms of real time
    // for the threaded impl — submission happens within the first few
    // hundred microseconds).
    let schedule = FaultSchedule {
        events: vec![FaultEvent::DropWindow { src: Some(0), dst: Some(1), from: 0, until: 50 }],
    };
    each_transport(&schedule, 0, |t| {
        t.send(0, 1, probe(1), String::new());
        // The reverse direction is unaffected by the src/dst filter.
        t.send(1, 0, probe(2), String::new());
        // Step past the window, then send again on the same link.
        let mut events = t.advance(60_000);
        t.send(0, 1, probe(3), String::new());
        events.extend(drain(t));
        let got = deliveries(events);
        let tags: Vec<u64> = got.iter().map(|&(_, _, g)| g).collect();
        assert!(!tags.contains(&1), "[{}] in-window send must drop", t.name());
        assert!(tags.contains(&2), "[{}] reverse link must deliver", t.name());
        assert!(tags.contains(&3), "[{}] post-window send must deliver", t.name());
    });
}

#[test]
fn partition_cuts_the_configured_direction() {
    // Node 1 is isolated outbound-only for [0, 50) ticks: 1->x dies,
    // x->1 still flows.
    let schedule = FaultSchedule {
        events: vec![FaultEvent::Partition {
            side: vec![1],
            cut: CutKind::Outbound,
            from: 0,
            until: 50,
        }],
    };
    each_transport(&schedule, 0, |t| {
        t.send(1, 0, probe(1), String::new()); // blocked: outbound from the side
        t.send(0, 1, probe(2), String::new()); // allowed: inbound to the side
        let got = deliveries(drain(t));
        let tags: Vec<u64> = got.iter().map(|&(_, _, g)| g).collect();
        assert!(!tags.contains(&1), "[{}] outbound across the cut must drop", t.name());
        assert!(tags.contains(&2), "[{}] inbound across the cut must deliver", t.name());
    });
}

#[test]
fn crash_and_recover_dispatch_to_the_scheduled_node() {
    let schedule = FaultSchedule {
        events: vec![FaultEvent::Crash { proc: 2, at: 5 }, FaultEvent::Recover { proc: 2, at: 20 }],
    };
    each_transport(&schedule, 0, |t| {
        let mut crash_seen = false;
        let mut recover_seen = false;
        for (node, ev) in drain(t) {
            match ev {
                NodeEvent::Crash => {
                    assert_eq!(node, 2, "[{}] crash targets node 2", t.name());
                    assert!(!recover_seen, "[{}] crash precedes recover", t.name());
                    crash_seen = true;
                }
                NodeEvent::Recover => {
                    assert_eq!(node, 2, "[{}] recover targets node 2", t.name());
                    assert!(crash_seen, "[{}] recover follows crash", t.name());
                    recover_seen = true;
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert!(crash_seen && recover_seen, "[{}] both faults dispatched", t.name());
    });
}

#[test]
fn dup_window_delivers_at_least_two_copies() {
    let schedule = FaultSchedule {
        events: vec![FaultEvent::DupWindow { src: Some(0), dst: Some(1), from: 0, until: 50 }],
    };
    each_transport(&schedule, 0, |t| {
        t.send(0, 1, probe(7), String::new());
        let got = deliveries(drain(t));
        let copies = got.iter().filter(|&&(n, f, g)| n == 1 && f == 0 && g == 7).count();
        assert!(copies >= 2, "[{}] dup window produced {copies} copies", t.name());
    });
}

#[test]
fn batching_delivers_everything_in_order() {
    // A wide batching window: the burst must still arrive complete and
    // FIFO per link — batching may only merge deliveries, never lose
    // or reorder them.
    each_transport(&FaultSchedule::none(), 2_000, |t| {
        for tag in 0..12 {
            t.send(0, 1, probe(tag), String::new());
        }
        let got = deliveries(drain(t));
        let tags: Vec<u64> =
            got.iter().filter(|(n, f, _)| *n == 1 && *f == 0).map(|&(_, _, g)| g).collect();
        assert_eq!(tags, (0..12).collect::<Vec<_>>(), "[{}] batched FIFO intact", t.name());
    });
}

#[test]
fn batching_merges_a_burst_into_fewer_dispatches() {
    // Virtual clock only — the assertion is about dispatch shape, and
    // the sim transport submits the whole burst at one instant, so the
    // batch head is guaranteed to still be in flight. The window must
    // cover the widest hop (3 ticks = 3 ms here) for the whole burst
    // to join the head.
    let mut t = SimTransport::new(&cfg(4_000), &FaultSchedule::none());
    for tag in 0..12 {
        t.send(0, 1, probe(tag), String::new());
    }
    let events = drain(&mut t);
    let batched = events
        .iter()
        .any(|(_, ev)| matches!(ev, NodeEvent::DeliverBatch(items) if items.len() > 1));
    assert!(batched, "a same-instant burst under a wide window must merge deliveries");
    assert_eq!(deliveries(events).len(), 12);
}

#[test]
fn zero_window_reproduces_the_serial_schedule_exactly() {
    // batch_window_us == 0 must be bit-for-bit the serial schedule:
    // same RNG draws, same FIFO clamps, same delivery order — checked
    // by running the same sends through two sim transports, one built
    // with batching disabled and one with the window set but no
    // overlapping traffic (single spaced sends never form a batch).
    let mut serial = SimTransport::new(&cfg(0), &FaultSchedule::none());
    let mut spaced = SimTransport::new(&cfg(2_000), &FaultSchedule::none());
    let mut serial_got = Vec::new();
    let mut spaced_got = Vec::new();
    for tag in 0..6 {
        let at = tag * 20_000; // 20 ms apart: far wider than any batch window
        serial.advance(at);
        spaced.advance(at);
        serial.send(0, 1, probe(tag), String::new());
        spaced.send(0, 1, probe(tag), String::new());
        serial_got.extend(deliveries(serial.advance(at + 10_000)));
        spaced_got.extend(deliveries(spaced.advance(at + 10_000)));
    }
    assert_eq!(serial_got, spaced_got, "spaced traffic must match the serial schedule");
}

/// Same seeds, same workload, both runtimes: every transaction must
/// reach the same commit/abort decision whether it is driven serially
/// or streamed through the pipelined runtime.
#[test]
fn pipelined_and_serial_reach_the_same_decisions() {
    for seed in [1u64, 9, 23] {
        let dist = DistConfig { n_shards: 2, n_txns: 6, seed, ..DistConfig::default() };
        let serial = run_dist(&dist);
        let pipe = run_pipeline(&PipelineConfig {
            dist: dist.clone(),
            max_inflight: 6,
            batch_window_us: 600,
            arrival_us: None,
        });
        assert!(serial.violated().is_none(), "seed {seed}: {:?}", serial.violated());
        assert!(pipe.violated().is_none(), "seed {seed}: {:?}", pipe.violated());
        // Fault-free: AC2 obliges both runtimes to commit everything.
        assert_eq!(serial.stats.committed, 6, "seed {seed} serial");
        assert_eq!(pipe.stats.committed, 6, "seed {seed} pipelined");
    }
}

#[test]
fn pipelined_and_serial_agree_on_vote_no_aborts() {
    for seed in [4u64, 17] {
        let dist =
            DistConfig { n_shards: 2, n_txns: 4, seed, vote_no: Some(1), ..DistConfig::default() };
        let serial = run_dist(&dist);
        let pipe = run_pipeline(&PipelineConfig {
            dist: dist.clone(),
            max_inflight: 4,
            batch_window_us: 600,
            arrival_us: None,
        });
        assert!(serial.violated().is_none(), "seed {seed}: {:?}", serial.violated());
        assert!(pipe.violated().is_none(), "seed {seed}: {:?}", pipe.violated());
        assert_eq!(serial.stats.aborted, 4, "seed {seed} serial aborts all");
        assert_eq!(pipe.stats.aborted, 4, "seed {seed} pipelined aborts all");
        assert_eq!(serial.stats.committed, 0);
        assert_eq!(pipe.stats.committed, 0);
        // Per-transaction agreement, not just tallies.
        for txn in dist.global_txns() {
            let s = serial.decisions.iter().find(|(k, _)| k.1 == txn.0).map(|(_, c)| *c);
            let p = pipe.decisions.iter().find(|(k, _)| k.1 == txn.0).map(|(_, c)| *c);
            assert_eq!(s, p, "seed {seed} txn {} decision parity", txn.0);
            assert_eq!(s, Some(false), "seed {seed} txn {} aborts", txn.0);
        }
    }
}
