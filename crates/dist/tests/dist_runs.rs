//! Integration tests for the distributed runtime: fault-free
//! commits, vote-no aborts, tolerated fault schedules, and the
//! naive-timeout split-brain counterexample over real threads.

use mcv_dist::{run_dist, DistCampaign, DistConfig};

#[test]
fn fault_free_run_commits_everywhere_and_passes_all_oracles() {
    let out = run_dist(&DistConfig::default());
    assert!(out.violated().is_none(), "violated: {:?}", out.violated());
    assert_eq!(out.stats.committed, out.stats.txns);
    assert_eq!(out.stats.undecided, 0);
    assert!(!out.stats.timed_out);
}

#[test]
fn a_no_vote_aborts_uniformly() {
    let out = run_dist(&DistConfig { vote_no: Some(1), n_txns: 1, ..DistConfig::default() });
    assert!(out.violated().is_none(), "violated: {:?}", out.violated());
    assert_eq!(out.stats.committed, 0);
    assert_eq!(out.stats.aborted, 1);
}

#[test]
fn coordinator_crash_after_votes_still_terminates() {
    // The classic 2PC blocking window: 3PC's termination protocol must
    // decide among the surviving shards.
    let out = run_dist(&DistConfig {
        crash_at: Some((0, mcv_commit::CrashPoint::AfterVotes)),
        n_txns: 1,
        ..DistConfig::default()
    });
    assert!(out.violated().is_none(), "violated: {:?}", out.violated());
    assert_eq!(out.stats.undecided, 0);
}

#[test]
fn naive_timeouts_split_brain_across_real_shards() {
    // Figure 3.2's naive timeout transitions: after the coordinator
    // crashes having sent prepare to only the first shard, that shard
    // times out in `p` (commit) while the others time out in `w`
    // (abort) — cross-shard atomicity is violated on live engines. A
    // handful of attempts absorbs scheduling jitter; in practice the
    // first run splits.
    let cfg = DistConfig {
        naive_timeouts: true,
        quorum_termination: false,
        crash_at: Some((0, mcv_commit::CrashPoint::AfterPartialPrepare)),
        n_shards: 2,
        n_txns: 1,
        ..DistConfig::default()
    };
    let split = (0..3).any(|_| {
        let out = run_dist(&cfg);
        out.violates("atomicity") || out.violates("ac1_agreement")
    });
    assert!(split, "naive timeouts failed to split-brain in 3 attempts");
}

#[test]
fn tolerated_fault_campaign_stays_green() {
    let c = DistCampaign::tolerated(DistConfig { n_txns: 1, ..DistConfig::default() });
    let summary = c.run_seeds(100, 4);
    assert!(summary.all_green(), "failures: {:?}", summary.failures);
    assert_eq!(summary.runs, 4);
}
