//! Seeded fault campaigns over distributed runs: the `mcv-chaos`
//! schedule generator and summary machinery, re-aimed at the threaded
//! runtime.

use crate::artifact::DistArtifact;
use crate::multishot::{run_pipeline, PipelineConfig};
use crate::runtime::{run_dist, DistConfig};
use crate::shrink::shrink;
use mcv_chaos::{CampaignSummary, FaultPlan, FaultSchedule};
use std::collections::BTreeMap;

/// A campaign: a base configuration (its `seed` and `schedule` are
/// overwritten per run) plus the random-schedule plan.
#[derive(Debug, Clone)]
pub struct DistCampaign {
    /// Scenario template.
    pub base: DistConfig,
    /// Random-schedule bounds (ticks; the runtime maps them onto real
    /// time via `tick_us`).
    pub plan: FaultPlan,
    /// Run budget for shrinking each violation.
    pub shrink_budget: usize,
}

impl DistCampaign {
    /// A campaign over `base` within the thesis' tolerated failure
    /// model: crashes that recover, healing partitions, and transient
    /// drop windows over `base.n_nodes()` nodes. Duplication and
    /// reordering stay off (they break assumptions the protocol
    /// makes), and so do torn writes — the engine adapter models the
    /// redo-logged stable prepared state the thesis assumes, so there
    /// is no byte image to tear; the transport degrades a `TornWrite`
    /// to a plain crash when replaying foreign schedules.
    pub fn tolerated(base: DistConfig) -> Self {
        let plan =
            FaultPlan { torn_writes: false, ..FaultPlan::tolerated(base.n_nodes(), base.horizon) };
        DistCampaign { base, plan, shrink_budget: 60 }
    }

    /// The configuration for one seed.
    pub fn config_for(&self, seed: u64) -> DistConfig {
        DistConfig {
            seed,
            schedule: FaultSchedule::generate(seed, &self.plan),
            ..self.base.clone()
        }
    }

    /// Sweeps seeds `0..n_seeds`.
    pub fn run(&self, n_seeds: u64) -> CampaignSummary {
        self.run_seeds(0, n_seeds)
    }

    /// Sweeps seeds `seed_base..seed_base + n_seeds`, recording
    /// per-oracle tallies. Distinct bases give the flake detector
    /// disjoint seed populations per round.
    pub fn run_seeds(&self, seed_base: u64, n_seeds: u64) -> CampaignSummary {
        let _span = mcv_obs::Span::enter("dist.campaign");
        let mut passes: BTreeMap<String, u64> = BTreeMap::new();
        let mut fails: BTreeMap<String, u64> = BTreeMap::new();
        let mut failures = Vec::new();
        for seed in seed_base..seed_base + n_seeds {
            let cfg = self.config_for(seed);
            let out = run_dist(&cfg);
            mcv_obs::counter("dist.runs", 1);
            for o in &out.oracles {
                *if o.pass { &mut passes } else { &mut fails }
                    .entry(o.name.clone())
                    .or_insert(0) += 1;
            }
            if let Some(v) = out.violated() {
                mcv_obs::counter("dist.violations", 1);
                failures.push((seed, v.name.clone()));
            }
        }
        CampaignSummary { runs: n_seeds, passes, fails, failures }
    }

    /// Sweeps seeds `seed_base..seed_base + n_seeds` over the
    /// **pipelined** multi-shot runtime: the same generated fault
    /// schedules and the same eight oracles, but plans streamed by the
    /// submission pump with batched transport and forces. Violations
    /// are tallied, not shrunk — the shrinker replays through the
    /// serial runtime, and a schedule minimized there does not pin
    /// down a pipelined interleaving.
    pub fn run_seeds_pipelined(
        &self,
        seed_base: u64,
        n_seeds: u64,
        max_inflight: usize,
        batch_window_us: u64,
    ) -> CampaignSummary {
        let _span = mcv_obs::Span::enter("dist.campaign.pipeline");
        let mut passes: BTreeMap<String, u64> = BTreeMap::new();
        let mut fails: BTreeMap<String, u64> = BTreeMap::new();
        let mut failures = Vec::new();
        for seed in seed_base..seed_base + n_seeds {
            let cfg = PipelineConfig {
                dist: self.config_for(seed),
                max_inflight,
                batch_window_us,
                arrival_us: None,
            };
            let out = run_pipeline(&cfg);
            mcv_obs::counter("dist.pipeline.runs", 1);
            for o in &out.oracles {
                *if o.pass { &mut passes } else { &mut fails }
                    .entry(o.name.clone())
                    .or_insert(0) += 1;
            }
            if let Some(v) = out.violated() {
                mcv_obs::counter("dist.pipeline.violations", 1);
                failures.push((seed, v.name.clone()));
            }
        }
        CampaignSummary { runs: n_seeds, passes, fails, failures }
    }

    /// Sweeps seeds until the first violation, shrinks it, and wraps
    /// the minimal counterexample as a replayable artifact. `None` if
    /// all runs pass every oracle.
    pub fn hunt(&self, n_seeds: u64) -> Option<DistViolation> {
        let _span = mcv_obs::Span::enter("dist.hunt");
        for seed in 0..n_seeds {
            let cfg = self.config_for(seed);
            let out = run_dist(&cfg);
            mcv_obs::counter("dist.runs", 1);
            let Some(v) = out.violated() else { continue };
            let oracle = v.name.clone();
            let detail = v.detail.clone();
            mcv_obs::counter("dist.violations", 1);
            let shrunk = shrink(&cfg, &oracle, self.shrink_budget);
            // Re-run the minimum for its authoritative detail and
            // trace.
            let min_out = run_dist(&shrunk.config);
            let min_detail = min_out
                .oracles
                .iter()
                .find(|o| o.name == oracle && !o.pass)
                .map(|o| o.detail.clone())
                .unwrap_or(detail);
            return Some(DistViolation {
                seed,
                oracle: oracle.clone(),
                original_events: cfg.schedule.len(),
                shrink_runs: shrunk.runs,
                trace: min_out.trace,
                artifact: DistArtifact::new(shrunk.config, oracle, min_detail),
            });
        }
        None
    }
}

/// A found-and-shrunk violation of a distributed run.
#[derive(Debug)]
pub struct DistViolation {
    /// The campaign seed that first exposed it.
    pub seed: u64,
    /// The violated oracle.
    pub oracle: String,
    /// Schedule size before shrinking.
    pub original_events: usize,
    /// Runs spent shrinking.
    pub shrink_runs: usize,
    /// The causal trace of the minimal run.
    pub trace: mcv_trace::CausalTrace,
    /// The minimal, replayable counterexample.
    pub artifact: DistArtifact,
}
