//! # mcv-dist
//!
//! Cross-shard atomic transactions: the composed commit FSMs of
//! `mcv-commit` (3PC per Figure 3.2, bully election, termination
//! protocol) lifted off the discrete-event simulator and driven over a
//! **real threaded transport**, with one live [`mcv_engine::Engine`]
//! per shard. The same protocol code governs both worlds — the
//! simulator for exhaustiveness, this runtime for evidence that the
//! composition survives genuine concurrency:
//!
//! - each shard is an engine with its own 2PL lock tables and
//!   group-commit WAL, hosted on its own node thread; the commit FSM
//!   reaches it through the [`LocalStore`](mcv_commit::LocalStore)
//!   seam ([`EngineStore`]);
//! - protocol messages cross per-link channels with seeded delays,
//!   FIFO clamping, and injectable faults (drops, partitions,
//!   duplication, reordering, crashes) in the `mcv-chaos` schedule
//!   vocabulary, with simulation ticks mapped onto real microseconds;
//! - a shard only acknowledges a commit after its WAL force — the
//!   engine's commit path blocks on the force and cites it in the
//!   causal trace, which the `mcv-trace` checker verifies per shard
//!   via per-WAL identities;
//! - seeded campaigns sweep fault schedules and check **cross-shard
//!   atomicity** (no shard durably commits while another settles on
//!   abort), the AC properties, termination, per-shard
//!   serializability, WAL recovery, and causal well-formedness;
//! - violations shrink to minimal replayable artifacts, exactly like
//!   `mcv-chaos` — and the naive Figure 3.2 timeouts, demonstrably
//!   unsafe in simulation, split-brain just as reliably over real
//!   threads.
//!
//! # Examples
//!
//! A fault-free cross-shard run commits everywhere:
//!
//! ```
//! use mcv_dist::{run_dist, DistConfig};
//! let out = run_dist(&DistConfig { n_shards: 2, n_txns: 1, ..DistConfig::default() });
//! assert!(out.violated().is_none(), "{:?}", out.violated());
//! assert_eq!(out.stats.committed, 1);
//! ```

#![warn(missing_docs)]

mod artifact;
mod campaign;
mod fabric;
mod multishot;
mod node;
mod oracle;
mod runtime;
mod shrink;
mod store;
mod transport;

pub use artifact::DistArtifact;
pub use campaign::{DistCampaign, DistViolation};
pub use multishot::{run_pipeline, CommitLogEntry, PipelineConfig, PipelineOutcome};
pub use oracle::DIST_ORACLE_NAMES;
pub use runtime::{run_dist, DistConfig, DistOutcome, DistStats, GLOBAL_TXN_BASE};
pub use shrink::{shrink, DistShrunk, REPRO_ATTEMPTS};
pub use store::{CoordStore, EngineStore};
pub use transport::{
    DeliverItem, NodeEvent, SimTransport, ThreadedTransport, Transport, TransportConfig,
};
