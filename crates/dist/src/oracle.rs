//! Cross-shard invariant oracles over a finished distributed run.
//!
//! The headline property is **atomicity**: no shard durably commits a
//! cross-shard transaction while another shard settles on abort. The
//! remaining oracles re-check the AC properties, termination,
//! per-shard conflict-serializability, WAL-image recovery, and the
//! causal well-formedness of the run's trace — the same invariant
//! vocabulary as `mcv-chaos`, evaluated against live engines instead
//! of the simulator's stores.

use crate::runtime::{DistConfig, DistStats, LedgerInner};
use mcv_chaos::OracleResult;
use mcv_engine::Engine;
use mcv_sim::{ProcId, SimTime, Trace, TraceEvent};
use mcv_txn::Wal;

/// Every dist oracle, in evaluation order.
pub const DIST_ORACLE_NAMES: [&str; 8] = [
    "atomicity",
    "ac1_agreement",
    "ac2_validity",
    "ac3_stability",
    "termination",
    "serializability",
    "recovery",
    "causal_order",
];

fn result(name: &str, pass: bool, detail: String) -> OracleResult {
    mcv_obs::counter(&format!("dist.oracle.{name}.{}", if pass { "pass" } else { "fail" }), 1);
    OracleResult { name: name.to_owned(), pass, detail }
}

/// Rebuilds a simulator trace from the ledger's notes so the
/// `mcv-commit` monitors (which consume `decide` notes) apply
/// unchanged to distributed executions.
fn sim_trace(led: &LedgerInner) -> Trace {
    let mut t = Trace::new();
    for (tick, node, text) in &led.notes {
        t.push(
            SimTime::from_ticks(*tick),
            TraceEvent::Note { proc: ProcId(*node), text: text.clone() },
        );
    }
    t
}

/// Evaluates every oracle.
pub(crate) fn evaluate(
    cfg: &DistConfig,
    stats: &DistStats,
    led: &LedgerInner,
    engines: &[Engine],
    trace: &mcv_trace::CausalTrace,
) -> Vec<OracleResult> {
    let mut out = Vec::new();
    let txns = cfg.global_txns();

    // Atomicity: per transaction, the set of shard engines that
    // durably committed it must not coexist with a shard that decided
    // abort; and a shard-site commit decision must be backed by its
    // engine's durable commit.
    {
        let mut bad = Vec::new();
        for t in &txns {
            let committed_shards: Vec<usize> = engines
                .iter()
                .enumerate()
                .filter(|(_, e)| e.committed_ids().contains(t))
                .map(|(i, _)| i + 1)
                .collect();
            let abort_nodes: Vec<usize> = led
                .decided
                .iter()
                .filter(|((node, txn), commit)| *txn == t.0 && !**commit && *node > 0)
                .map(|((node, _), _)| *node)
                .collect();
            if !committed_shards.is_empty() && !abort_nodes.is_empty() {
                bad.push(format!(
                    "T{}: committed at shard(s) {committed_shards:?} but aborted at node(s) {abort_nodes:?}",
                    t.0
                ));
            }
            for ((node, txn), commit) in &led.decided {
                if *txn == t.0 && *commit && *node > 0 && !committed_shards.contains(node) {
                    bad.push(format!(
                        "T{}: node {node} decided commit but its engine has no durable commit",
                        t.0
                    ));
                }
            }
        }
        out.push(result("atomicity", bad.is_empty(), bad.join("; ")));
    }

    // AC1 (agreement): every node that decides, decides the same way.
    {
        let st = sim_trace(led);
        let detail = match mcv_commit::monitor::check_uniformity(&st) {
            Ok(()) => String::new(),
            Err(vs) => vs
                .iter()
                .map(|v| {
                    format!(
                        "T{} committed at node {} / aborted at node {}",
                        v.txn.0, v.committed_at.0, v.aborted_at.0
                    )
                })
                .collect::<Vec<_>>()
                .join("; "),
        };
        out.push(result("ac1_agreement", detail.is_empty(), detail));
    }

    // AC2 (validity): a no-vote forbids commit; a fault-free run with
    // only yes votes must commit everything.
    {
        let mut bad = Vec::new();
        if cfg.vote_no.is_some() {
            for t in &txns {
                if led.decided.iter().any(|((_, txn), commit)| *txn == t.0 && *commit) {
                    bad.push(format!("T{} committed despite a no vote", t.0));
                }
            }
        }
        let fault_free = cfg.schedule.is_empty() && cfg.crash_at.is_none() && cfg.vote_no.is_none();
        if fault_free {
            for t in &txns {
                if !engines.iter().all(|e| e.committed_ids().contains(t)) {
                    bad.push(format!("T{} did not commit in a fault-free all-yes run", t.0));
                }
            }
        }
        out.push(result("ac2_validity", bad.is_empty(), bad.join("; ")));
    }

    // AC3 (stability): no node ever reverses a decision it made.
    out.push(result("ac3_stability", led.flips.is_empty(), led.flips.join("; ")));

    // Termination: the run settled before the deadline, with every
    // operational node that joined a transaction's protocol decided
    // on it. A node that crashed or was cut off before the vote
    // request never participates and owes no decision — the same
    // exemption the simulator's oracle grants via
    // `local_state(txn).is_none()`.
    {
        let mut bad = Vec::new();
        if stats.timed_out {
            bad.push("deadline fired before the run settled".to_owned());
        }
        for (node, up) in led.up.iter().enumerate() {
            if !up {
                continue;
            }
            for t in &txns {
                if led.participated.contains(&(node, t.0))
                    && !led.decided.contains_key(&(node, t.0))
                {
                    bad.push(format!("up node {node} undecided on T{}", t.0));
                }
            }
        }
        out.push(result("termination", bad.is_empty(), bad.join("; ")));
    }

    // Serializability: each shard's sampled history must stay
    // conflict-serializable.
    {
        let bad: Vec<String> = engines
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.sampled_history().is_conflict_serializable())
            .map(|(i, _)| format!("shard {} history not conflict-serializable", i + 1))
            .collect();
        out.push(result("serializability", bad.is_empty(), bad.join("; ")));
    }

    // Recovery: replaying each shard's durable WAL image must
    // reproduce exactly its committed state.
    {
        let mut bad = Vec::new();
        for (i, e) in engines.iter().enumerate() {
            let recovered = Wal::from_bytes_lossy(&e.durable_image()).recover();
            let state = e.state();
            // Items an aborted transaction touched appear in the
            // engine's state map rolled back to 0 but never reach the
            // durable image — compare value-wise with the 0 default.
            let diverged = recovered.keys().chain(state.keys()).find(|item| {
                recovered.get(*item).copied().unwrap_or(0) != state.get(*item).copied().unwrap_or(0)
            });
            if let Some(item) = diverged {
                bad.push(format!(
                    "shard {}: WAL replay diverges from committed state at {item:?} ({:?} vs {:?})",
                    i + 1,
                    recovered.get(item),
                    state.get(item)
                ));
            }
        }
        out.push(result("recovery", bad.is_empty(), bad.join("; ")));
    }

    // Causal order: the trace satisfies the happens-before rules
    // (Deliver cites its Send, forces precede commit acks, Lamport
    // clocks monotone, ...).
    {
        let hb = mcv_trace::check(trace);
        let detail =
            hb.violations.iter().take(5).map(|v| v.to_string()).collect::<Vec<_>>().join("; ");
        out.push(result("causal_order", hb.ok(), detail));
    }

    debug_assert_eq!(out.len(), DIST_ORACLE_NAMES.len());
    out
}
