//! Counterexample shrinking for distributed runs.
//!
//! Unlike the simulator, a threaded run is not bit-deterministic: real
//! scheduling jitter can mask a violation on any single replay. The
//! reproduction check therefore allows up to [`REPRO_ATTEMPTS`] runs
//! per candidate and accepts the candidate if *any* of them violates
//! the target oracle. The passes themselves mirror `mcv-chaos`:
//! fault-event removal (newest first), transaction-count reduction,
//! and fault-window tightening.

use crate::runtime::{run_dist, DistConfig};
use mcv_chaos::FaultSchedule;

/// Replays allowed per candidate before declaring it non-reproducing.
pub const REPRO_ATTEMPTS: usize = 2;

/// A shrink result: the smallest configuration that still reproduces,
/// and how many runs it took to find.
#[derive(Debug, Clone)]
pub struct DistShrunk {
    /// The minimal violating configuration found.
    pub config: DistConfig,
    /// Runs spent.
    pub runs: usize,
}

fn reproduces(cfg: &DistConfig, oracle: &str, runs: &mut usize, budget: usize) -> bool {
    for _ in 0..REPRO_ATTEMPTS {
        if *runs >= budget {
            return false;
        }
        *runs += 1;
        if run_dist(cfg).violates(oracle) {
            return true;
        }
    }
    false
}

/// Shrinks `cfg` while it keeps violating `oracle`, spending at most
/// `budget` runs.
pub fn shrink(cfg: &DistConfig, oracle: &str, budget: usize) -> DistShrunk {
    let mut best = cfg.clone();
    let mut runs = 0usize;

    // Pass 1: drop fault events, newest first (later events are more
    // often incidental).
    let mut i = best.schedule.len();
    while i > 0 && runs < budget {
        i -= 1;
        let mut cand = best.clone();
        cand.schedule = FaultSchedule {
            events: {
                let mut evs = best.schedule.events.clone();
                evs.remove(i);
                evs
            },
        };
        if reproduces(&cand, oracle, &mut runs, budget) {
            best = cand;
            // Indices shifted; restart from the (new) tail.
            i = best.schedule.len();
        }
    }

    // Pass 2: fewer transactions.
    while best.n_txns > 1 && runs < budget {
        let cand = DistConfig { n_txns: best.n_txns - 1, ..best.clone() };
        if reproduces(&cand, oracle, &mut runs, budget) {
            best = cand;
        } else {
            break;
        }
    }

    // Pass 3: fewer shards (the topology floor for a cross-shard
    // counterexample is two).
    while best.n_shards > 2 && runs < budget {
        let cand = DistConfig { n_shards: best.n_shards - 1, ..best.clone() };
        if cand.schedule.references_beyond(cand.n_nodes()) {
            break;
        }
        if reproduces(&cand, oracle, &mut runs, budget) {
            best = cand;
        } else {
            break;
        }
    }

    // Pass 4: tighten every fault window to half its span.
    let mut progress = true;
    while progress && runs < budget {
        progress = false;
        for j in 0..best.schedule.len() {
            let ev = &best.schedule.events[j];
            let Some((from, until)) = ev.window() else { continue };
            if until <= from + 1 {
                continue;
            }
            let mid = from + (until - from) / 2;
            let mut evs = best.schedule.events.clone();
            evs[j] = ev.with_until(mid);
            let cand = DistConfig { schedule: FaultSchedule { events: evs }, ..best.clone() };
            if reproduces(&cand, oracle, &mut runs, budget) {
                best = cand;
                progress = true;
            }
        }
    }

    DistShrunk { config: best, runs }
}
