//! Replayable counterexample artifacts for distributed runs.

use crate::runtime::{run_dist, DistConfig, DistOutcome};
use crate::shrink::REPRO_ATTEMPTS;
use std::io;
use std::path::Path;

/// A self-contained, replayable counterexample: the full distributed
/// configuration (topology, workload, timed faults, targeted crash),
/// which oracle it violates, and the command line that replays it.
///
/// Threaded runs are not bit-deterministic, so
/// [`DistArtifact::reproduces`] allows a few attempts — the shipped
/// counterexamples (naive timeouts plus a coordinator crash window)
/// are near-deterministic in practice.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DistArtifact {
    /// Artifact identifier (derived from oracle + schedule size).
    pub id: String,
    /// The violated oracle's name.
    pub violated: String,
    /// Evidence text from the oracle.
    pub detail: String,
    /// The exact configuration to replay.
    pub config: DistConfig,
    /// Shell command that replays this artifact once written to a file
    /// named `<id>.json`.
    pub replay_cmd: String,
}

impl DistArtifact {
    /// Packages a violating configuration.
    pub fn new(config: DistConfig, violated: String, detail: String) -> Self {
        let id = format!("dist-{}-{}ev-seed{}", violated, config.schedule.len(), config.seed);
        let replay_cmd = format!("cargo run --release --example dist_stress -- --replay {id}.json");
        DistArtifact { id, violated, detail, config, replay_cmd }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("artifact serializes")
    }

    /// Parses an artifact back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying serde error on malformed input.
    pub fn from_json(text: &str) -> Result<Self, serde::Error> {
        serde_json::from_str(text)
    }

    /// Writes `<id>.json` into `dir` and returns the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, dir: impl AsRef<Path>) -> io::Result<std::path::PathBuf> {
        let path = dir.as_ref().join(format!("{}.json", self.id));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Writes the causal trace as `<id>.trace.jsonl` next to the
    /// artifact (wall-clock timestamps stripped).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_trace(
        &self,
        dir: impl AsRef<Path>,
        trace: &mcv_trace::CausalTrace,
    ) -> io::Result<std::path::PathBuf> {
        let path = dir.as_ref().join(format!("{}.trace.jsonl", self.id));
        let mut stripped = trace.clone();
        stripped.strip_wall();
        stripped.write_jsonl(&path)?;
        Ok(path)
    }

    /// Re-executes the packaged configuration once.
    pub fn replay(&self) -> DistOutcome {
        run_dist(&self.config)
    }

    /// Whether a replay (allowing [`REPRO_ATTEMPTS`] tries) still
    /// violates the packaged oracle.
    pub fn reproduces(&self) -> bool {
        (0..REPRO_ATTEMPTS).any(|_| self.replay().violates(&self.violated))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_round_trips_through_json() {
        let cfg = DistConfig { naive_timeouts: true, seed: 9, ..DistConfig::default() };
        let a = DistArtifact::new(cfg, "atomicity".into(), "split".into());
        let back = DistArtifact::from_json(&a.to_json()).unwrap();
        assert_eq!(back, a);
        assert!(back.replay_cmd.contains("--replay"));
    }
}
