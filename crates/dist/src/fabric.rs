//! The transport fabric: the single policy core every transport
//! implementation shares — fault windows, seeded per-hop delays, FIFO
//! clamping, duplication/reordering, and per-link delivery batching.
//!
//! [`Fabric`] is a pure state machine over caller-supplied clocks:
//! `submit` stamps a message into the in-flight heap at the caller's
//! "now", `pop_due` dispatches everything whose due time has passed.
//! The threaded network thread drives it with wall-clock microseconds;
//! [`SimTransport`](crate::SimTransport) drives the *same* code with a
//! virtual clock — so every chaos fault window, drop decision, and
//! delay sample behaves identically in both worlds, and the
//! conformance suite can assert it.
//!
//! Batching (`batch_window_us > 0`) is the multi-shot transport
//! optimization: the first message on an idle link (the *batch head*)
//! pays a full sampled hop delay; messages submitted to the same link
//! while the head is still in flight ride along at the head's due time
//! for near-zero marginal flight, and arrive together as one
//! [`NodeEvent::DeliverBatch`] so the receiver can amortize its WAL
//! force over the whole batch. With `batch_window_us == 0` the fabric
//! reproduces the serial per-message schedule bit-for-bit (same RNG
//! draw sequence, same FIFO clamps).

use crate::transport::{DeliverItem, NodeEvent};
use mcv_chaos::{CutKind, FaultEvent, FaultSchedule};
use mcv_commit::Msg;
use mcv_trace::Cause;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;

/// A scheduled future dispatch, ordered by due time then FIFO seq.
struct Scheduled {
    due_us: u64,
    seq: u64,
    to: usize,
    /// When the message entered the fabric (microseconds since run
    /// start; 0 for fault dispatches) — the flight-time base for
    /// profiling.
    enq_us: u64,
    what: Dispatch,
}

enum Dispatch {
    Deliver { from: usize, msg: Msg, sent: Option<(Cause, String)> },
    Crash,
    Recover,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        (self.due_us, self.seq) == (other.due_us, other.seq)
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due_us, self.seq).cmp(&(other.due_us, other.seq))
    }
}

/// A half-open real-time window on a link pattern.
struct LinkWindow {
    src: Option<usize>,
    dst: Option<usize>,
    from_us: u64,
    until_us: u64,
}

impl LinkWindow {
    fn matches(&self, now_us: u64, from: usize, to: usize) -> bool {
        self.src.is_none_or(|s| s == from)
            && self.dst.is_none_or(|d| d == to)
            && now_us >= self.from_us
            && now_us < self.until_us
    }
}

struct PartitionWindow {
    side: Vec<usize>,
    cut: CutKind,
    from_us: u64,
    until_us: u64,
}

impl PartitionWindow {
    fn blocks(&self, now_us: u64, from: usize, to: usize) -> bool {
        if now_us < self.from_us || now_us >= self.until_us {
            return false;
        }
        let f_in = self.side.contains(&from);
        let t_in = self.side.contains(&to);
        match self.cut {
            CutKind::Both => f_in != t_in,
            CutKind::Outbound => f_in && !t_in,
            CutKind::Inbound => !f_in && t_in,
        }
    }
}

/// The shared fault/delay/batching policy engine (see module docs).
pub(crate) struct Fabric {
    tick_us: u64,
    /// Uniform per-hop delay in `1..=delay_ticks` ticks.
    delay_ticks: u64,
    /// Per-link batching window; 0 disables batching entirely.
    batch_window_us: u64,
    rng: StdRng,
    heap: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
    fifo_last: BTreeMap<(usize, usize), u64>,
    /// Due time of each link's open batch head (batching mode only).
    link_head: BTreeMap<(usize, usize), u64>,
    drops: Vec<LinkWindow>,
    dups: Vec<LinkWindow>,
    reorders: Vec<LinkWindow>,
    partitions: Vec<PartitionWindow>,
    rec: Option<Arc<mcv_trace::Recorder>>,
    /// Each delivery records its measured flight time as an anonymous
    /// `transport_rtt` sample.
    prof: Option<mcv_prof::Profiler>,
}

impl Fabric {
    /// Builds the fabric: parses the fault schedule into real-time
    /// windows and schedules its crash/recover dispatches.
    pub fn new(
        tick_us: u64,
        delay_ticks: u64,
        batch_window_us: u64,
        seed: u64,
        rec: Option<Arc<mcv_trace::Recorder>>,
        prof: Option<mcv_prof::Profiler>,
        schedule: &FaultSchedule,
    ) -> Fabric {
        let mut f = Fabric {
            tick_us,
            delay_ticks,
            batch_window_us,
            rng: StdRng::seed_from_u64(seed ^ 0x006e_6574_776f_726b_u64),
            heap: BinaryHeap::new(),
            seq: 0,
            fifo_last: BTreeMap::new(),
            link_head: BTreeMap::new(),
            drops: Vec::new(),
            dups: Vec::new(),
            reorders: Vec::new(),
            partitions: Vec::new(),
            rec,
            prof,
        };
        let us = |ticks: u64| ticks.saturating_mul(tick_us);
        for ev in &schedule.events {
            match ev {
                FaultEvent::Crash { proc, at } | FaultEvent::TornWrite { proc, at, .. } => {
                    f.seq += 1;
                    f.heap.push(Reverse(Scheduled {
                        due_us: us(*at),
                        seq: f.seq,
                        to: *proc,
                        enq_us: 0,
                        what: Dispatch::Crash,
                    }));
                }
                FaultEvent::Recover { proc, at } => {
                    f.seq += 1;
                    f.heap.push(Reverse(Scheduled {
                        due_us: us(*at),
                        seq: f.seq,
                        to: *proc,
                        enq_us: 0,
                        what: Dispatch::Recover,
                    }));
                }
                FaultEvent::Partition { side, cut, from, until } => {
                    f.partitions.push(PartitionWindow {
                        side: side.clone(),
                        cut: *cut,
                        from_us: us(*from),
                        until_us: us(*until),
                    });
                }
                FaultEvent::DropWindow { src, dst, from, until } => {
                    f.drops.push(LinkWindow {
                        src: *src,
                        dst: *dst,
                        from_us: us(*from),
                        until_us: us(*until),
                    });
                }
                FaultEvent::DupWindow { src, dst, from, until } => {
                    f.dups.push(LinkWindow {
                        src: *src,
                        dst: *dst,
                        from_us: us(*from),
                        until_us: us(*until),
                    });
                }
                FaultEvent::ReorderWindow { src, dst, from, until } => {
                    f.reorders.push(LinkWindow {
                        src: *src,
                        dst: *dst,
                        from_us: us(*from),
                        until_us: us(*until),
                    });
                }
            }
        }
        f
    }

    fn us(&self, ticks: u64) -> u64 {
        ticks.saturating_mul(self.tick_us)
    }

    /// Stamps one message into the fabric at `now_us`: applies the
    /// fault windows, samples a delay (or joins the link's open batch),
    /// and records the `Send`/`Drop` trace event.
    pub fn submit(
        &mut self,
        now_us: u64,
        from: usize,
        to: usize,
        msg: Msg,
        label: String,
        cause: Option<Cause>,
    ) {
        let tick = now_us / self.tick_us.max(1);
        mcv_obs::counter("dist.net.sent", 1);
        let lost = self.partitions.iter().any(|p| p.blocks(now_us, from, to))
            || self.drops.iter().any(|w| w.matches(now_us, from, to));
        if lost {
            mcv_obs::counter("dist.net.dropped", 1);
            if let Some(rec) = &self.rec {
                rec.record(from, tick, cause, mcv_trace::EventKind::Drop { from, to, label });
            }
            return;
        }
        let copies = if self.dups.iter().any(|w| w.matches(now_us, from, to)) {
            mcv_obs::counter("dist.net.duplicated", 1);
            2
        } else {
            1
        };
        let reorder = self.reorders.iter().any(|w| w.matches(now_us, from, to));
        // One Send event per message; dup copies share it.
        let sent = self.rec.as_ref().map(|rec| {
            let c = rec.record(
                from,
                tick,
                cause,
                mcv_trace::EventKind::Send { to, label: label.clone() },
            );
            (c, label.clone())
        });
        let bound = self.delay_ticks.max(1);
        for _ in 0..copies {
            let due = if reorder {
                // Extra jitter, skipping the FIFO clamp so the copy can
                // overtake older traffic (and any open batch).
                let base = self.rng.gen_range(1..=bound);
                let jitter = self.rng.gen_range(0..=4 * bound);
                now_us + self.us(base) + self.us(jitter)
            } else if self.batch_window_us > 0
                && self.link_head.get(&(from, to)).is_some_and(|h| {
                    *h > now_us && h.saturating_sub(now_us) <= self.batch_window_us
                })
            {
                // Ride the link's open batch: the head already paid the
                // hop delay, so joiners land with it at near-zero
                // marginal flight — the group-commit dwell window
                // lifted up to the transport.
                mcv_obs::counter("dist.net.batched", 1);
                let h = self.link_head[&(from, to)];
                self.fifo_last.insert((from, to), h);
                h
            } else {
                let hop = self.rng.gen_range(1..=bound);
                let mut due = now_us + self.us(hop);
                let last = self.fifo_last.get(&(from, to)).copied().unwrap_or(0);
                if due <= last {
                    due = last + 1;
                }
                self.fifo_last.insert((from, to), due);
                if self.batch_window_us > 0 {
                    self.link_head.insert((from, to), due);
                }
                due
            };
            self.seq += 1;
            self.heap.push(Reverse(Scheduled {
                due_us: due,
                seq: self.seq,
                to,
                enq_us: now_us,
                what: Dispatch::Deliver { from, msg: msg.clone(), sent: sent.clone() },
            }));
        }
    }

    /// The earliest pending dispatch's due time.
    pub fn next_due(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(s)| s.due_us)
    }

    /// Pops every dispatch due by `now_us`, in (due, seq) order, and
    /// groups consecutive deliveries to the same node into one
    /// [`NodeEvent::DeliverBatch`]. Crash/recover dispatches break a
    /// node's run so per-node ordering is preserved exactly.
    pub fn pop_due(&mut self, now_us: u64) -> Vec<(usize, NodeEvent)> {
        let mut out: Vec<(usize, NodeEvent)> = Vec::new();
        let mut open: BTreeMap<usize, Vec<DeliverItem>> = BTreeMap::new();
        let flush = |open: &mut BTreeMap<usize, Vec<DeliverItem>>,
                     out: &mut Vec<(usize, NodeEvent)>,
                     node: usize| {
            if let Some(items) = open.remove(&node) {
                out.push((node, pack(items)));
            }
        };
        while self.heap.peek().is_some_and(|Reverse(s)| s.due_us <= now_us) {
            let Reverse(s) = self.heap.pop().expect("peeked");
            match s.what {
                Dispatch::Deliver { from, msg, sent } => {
                    if let Some(p) = &self.prof {
                        // Anonymous sample: flight time from fabric
                        // entry to dispatch (txn 0 — hops are not tied
                        // to one transaction here; the critical-path
                        // analyzer does the per-txn transport
                        // attribution from the trace).
                        let mut t = mcv_prof::Timeline::new(0);
                        t.add(
                            mcv_prof::Phase::TransportRtt,
                            now_us.saturating_sub(s.enq_us).saturating_mul(1_000),
                        );
                        p.record(&t);
                    }
                    open.entry(s.to).or_default().push(DeliverItem { from, msg, sent });
                }
                Dispatch::Crash => {
                    flush(&mut open, &mut out, s.to);
                    out.push((s.to, NodeEvent::Crash));
                }
                Dispatch::Recover => {
                    flush(&mut open, &mut out, s.to);
                    out.push((s.to, NodeEvent::Recover));
                }
            }
        }
        for (node, items) in open {
            out.push((node, pack(items)));
        }
        out
    }
}

/// A single delivery stays a plain `Deliver` (the serial path is
/// byte-identical); two or more become a batch.
fn pack(mut items: Vec<DeliverItem>) -> NodeEvent {
    if items.len() == 1 {
        let it = items.pop().expect("one item");
        NodeEvent::Deliver { from: it.from, msg: it.msg, sent: it.sent }
    } else {
        NodeEvent::DeliverBatch(items)
    }
}
