//! One node of the distributed topology: a commit-protocol
//! [`Site`](mcv_commit::Site) hosted on its own OS thread, driven by
//! the transport instead of the discrete-event simulator.
//!
//! The loop reproduces the simulator world's effect and trace
//! discipline exactly — notes, then sends, then cancels (targeting
//! pre-existing timers), then newly armed timers, then self-crash;
//! `Deliver` events cite their `Send`, `TimerFire` cites its
//! `TimerSet`, and the triggering event is installed as the ambient
//! trace context around each callback — so the causal checker of
//! `mcv-trace` accepts distributed executions under the same rules as
//! simulated ones.

use crate::runtime::Ledger;
use crate::transport::{NetMsg, NodeEvent};
use mcv_commit::{LocalStore, Msg, Site};
use mcv_sim::{ProcId, Process, SimTime, TimerToken};
use mcv_trace::Cause;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything a node thread needs besides its `Site`.
pub(crate) struct NodeSeat {
    pub id: usize,
    pub n: usize,
    pub tick_us: u64,
    pub start: Instant,
    pub rx: Receiver<NodeEvent>,
    pub net: Sender<NetMsg>,
    pub ledger: Arc<Ledger>,
}

struct NodeLoop<S: LocalStore> {
    seat: NodeSeat,
    site: Site<S>,
    up: bool,
    deliver_seq: u64,
    next_tid: u64,
    /// Pending timers: `(fire_tick, tid)`, min-first.
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    /// Live timer metadata: `tid -> (token, TimerSet cause)`. Cancelled
    /// or crashed-away timers are removed here; their heap entries are
    /// skipped lazily.
    live: BTreeMap<u64, (TimerToken, Option<Cause>)>,
}

/// Runs one node to completion (shutdown or transport hang-up).
pub(crate) fn run_node<S: LocalStore>(seat: NodeSeat, site: Site<S>) {
    let mut n = NodeLoop {
        seat,
        site,
        up: true,
        deliver_seq: 0,
        next_tid: 0,
        heap: BinaryHeap::new(),
        live: BTreeMap::new(),
    };
    n.run();
}

impl<S: LocalStore> NodeLoop<S> {
    fn now_tick(&self) -> u64 {
        (self.seat.start.elapsed().as_micros() as u64) / self.seat.tick_us.max(1)
    }

    fn ctx(&self, t: u64) -> mcv_sim::Ctx<Msg> {
        mcv_sim::Ctx::external(ProcId(self.seat.id), self.seat.n, SimTime::from_ticks(t))
    }

    /// Applies one callback's effects in the simulator world's order.
    fn drain(&mut self, mut ctx: mcv_sim::Ctx<Msg>, t: u64) {
        let fx = ctx.take_effects();
        for note in &fx.notes {
            self.seat.ledger.note(self.seat.id, t, note);
            mcv_trace::emit(self.seat.id, t, mcv_trace::EventKind::Note { text: note.clone() });
        }
        let tracing = mcv_trace::active();
        for (to, msg) in fx.sends {
            mcv_obs::counter("dist.sent", 1);
            let label =
                if tracing { mcv_trace::label_of(&format!("{msg:?}")) } else { String::new() };
            // The network thread records the Send (or Drop) event on
            // our behalf, citing this ambient cause — a lost channel
            // means the run is shutting down.
            let _ = self.seat.net.send(NetMsg::Send {
                from: self.seat.id,
                to: to.0,
                msg,
                label,
                cause: mcv_trace::context(),
            });
        }
        // Cancels first: they target timers that existed before this
        // callback, so a timer re-armed with the same token survives.
        for token in fx.cancels {
            self.live.retain(|_, (tk, _)| *tk != token);
        }
        for (delay, token) in fx.timers {
            self.next_tid += 1;
            let set = mcv_trace::emit(self.seat.id, t, mcv_trace::EventKind::TimerSet { token });
            self.live.insert(self.next_tid, (token, set));
            self.heap.push(Reverse((t + delay.ticks(), self.next_tid)));
        }
        if fx.crash && self.up {
            self.crash(t);
        }
    }

    fn crash(&mut self, t: u64) {
        self.up = false;
        self.seat.ledger.set_up(self.seat.id, false);
        mcv_obs::counter("dist.crashes", 1);
        mcv_trace::emit(self.seat.id, t, mcv_trace::EventKind::Crash);
        self.site.on_crash();
        // Pending timers of a crashed node die with it.
        self.live.clear();
        self.heap.clear();
    }

    /// Fires every live timer whose tick has passed.
    fn fire_due(&mut self) {
        loop {
            let t = self.now_tick();
            let Some(&Reverse((due, tid))) = self.heap.peek() else { return };
            if due > t {
                return;
            }
            self.heap.pop();
            let Some((token, set)) = self.live.remove(&tid) else { continue };
            if !self.up {
                continue;
            }
            mcv_obs::counter("dist.timer_fires", 1);
            let fired = mcv_trace::emit_caused(
                self.seat.id,
                t,
                set,
                mcv_trace::EventKind::TimerFire { token },
            );
            let prev = mcv_trace::set_context(fired);
            let mut ctx = self.ctx(t);
            self.site.on_timer(&mut ctx, token);
            self.drain(ctx, t);
            mcv_trace::set_context(prev);
        }
    }

    /// The nearest live timer's deadline in ticks, if any.
    fn next_deadline(&mut self) -> Option<u64> {
        while let Some(&Reverse((due, tid))) = self.heap.peek() {
            if self.live.contains_key(&tid) {
                return Some(due);
            }
            self.heap.pop();
        }
        None
    }

    fn run(&mut self) {
        let t0 = self.now_tick();
        let mut ctx = self.ctx(t0);
        self.site.on_start(&mut ctx);
        self.drain(ctx, t0);
        loop {
            self.fire_due();
            let now_us = self.seat.start.elapsed().as_micros() as u64;
            let wait = self
                .next_deadline()
                .map(|due| {
                    Duration::from_micros((due * self.seat.tick_us.max(1)).saturating_sub(now_us))
                })
                .unwrap_or(Duration::from_millis(5))
                .min(Duration::from_millis(5))
                .max(Duration::from_micros(50));
            match self.seat.rx.recv_timeout(wait) {
                Ok(NodeEvent::Deliver { from, msg, sent }) => self.deliver(from, msg, sent),
                Ok(NodeEvent::Crash) => {
                    let t = self.now_tick();
                    if self.up {
                        self.crash(t);
                    }
                }
                Ok(NodeEvent::Recover) => self.recover(),
                Ok(NodeEvent::Shutdown) | Err(RecvTimeoutError::Disconnected) => return,
                Err(RecvTimeoutError::Timeout) => {}
            }
        }
    }

    fn deliver(&mut self, from: usize, msg: Msg, sent: Option<(Cause, String)>) {
        let t = self.now_tick();
        let (cause, label) = sent.map(|(c, l)| (Some(c), l)).unwrap_or_default();
        if !self.up {
            // A dead receiver loses the message, receiver-sited like
            // the simulator's drop-at-delivery.
            mcv_obs::counter("dist.dropped", 1);
            mcv_trace::emit_caused(
                self.seat.id,
                t,
                cause,
                mcv_trace::EventKind::Drop { from, to: self.seat.id, label },
            );
            return;
        }
        mcv_obs::counter("dist.delivered", 1);
        self.deliver_seq += 1;
        let delivered = mcv_trace::emit_caused(self.seat.id, t, cause, {
            mcv_trace::EventKind::Deliver { from, label, deliver_seq: self.deliver_seq }
        });
        let prev = mcv_trace::set_context(delivered);
        let mut ctx = self.ctx(t);
        self.site.on_message(&mut ctx, ProcId(from), msg);
        self.drain(ctx, t);
        mcv_trace::set_context(prev);
    }

    fn recover(&mut self) {
        if self.up {
            return;
        }
        let t = self.now_tick();
        self.up = true;
        self.seat.ledger.set_up(self.seat.id, true);
        mcv_obs::counter("dist.recoveries", 1);
        let recovered = mcv_trace::emit(self.seat.id, t, mcv_trace::EventKind::Recover);
        let prev = mcv_trace::set_context(recovered);
        let mut ctx = self.ctx(t);
        self.site.on_recover(&mut ctx);
        self.drain(ctx, t);
        mcv_trace::set_context(prev);
    }
}
