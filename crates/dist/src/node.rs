//! One node of the distributed topology: a commit-protocol
//! [`Site`](mcv_commit::Site) hosted on its own OS thread, driven by
//! the transport instead of the discrete-event simulator.
//!
//! The loop reproduces the simulator world's effect and trace
//! discipline exactly — notes, then sends, then cancels (targeting
//! pre-existing timers), then newly armed timers, then self-crash;
//! `Deliver` events cite their `Send`, `TimerFire` cites its
//! `TimerSet`, and the triggering event is installed as the ambient
//! trace context around each callback — so the causal checker of
//! `mcv-trace` accepts distributed executions under the same rules as
//! simulated ones.

use crate::runtime::Ledger;
use crate::transport::{NetMsg, NodeEvent};
use mcv_commit::{LocalStore, Msg, Site, TxnPlan};
use mcv_sim::{ProcId, Process, SimTime, TimerToken};
use mcv_trace::Cause;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A send captured during a callback, transmitted only after the
/// node's store has flushed any staged commit forces — so a shard
/// never acknowledges a commit whose log record is not yet durable.
struct PendingSend {
    to: usize,
    msg: Msg,
    label: String,
    cause: Option<Cause>,
}

/// Everything a node thread needs besides its `Site`.
pub(crate) struct NodeSeat {
    pub id: usize,
    pub n: usize,
    pub tick_us: u64,
    pub start: Instant,
    pub rx: Receiver<NodeEvent>,
    pub net: Sender<NetMsg>,
    pub ledger: Arc<Ledger>,
}

struct NodeLoop<S: LocalStore> {
    seat: NodeSeat,
    site: Site<S>,
    up: bool,
    deliver_seq: u64,
    next_tid: u64,
    /// Pending timers: `(fire_tick, tid)`, min-first.
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    /// Live timer metadata: `tid -> (token, TimerSet cause)`. Cancelled
    /// or crashed-away timers are removed here; their heap entries are
    /// skipped lazily.
    live: BTreeMap<u64, (TimerToken, Option<Cause>)>,
    /// Plans submitted while this node was down: the coordinator's
    /// durable intake queue, replayed on recovery.
    queued_submits: Vec<TxnPlan>,
}

/// Runs one node to completion (shutdown or transport hang-up).
pub(crate) fn run_node<S: LocalStore>(seat: NodeSeat, site: Site<S>) {
    let mut n = NodeLoop {
        seat,
        site,
        up: true,
        deliver_seq: 0,
        next_tid: 0,
        heap: BinaryHeap::new(),
        live: BTreeMap::new(),
        queued_submits: Vec::new(),
    };
    n.run();
}

impl<S: LocalStore> NodeLoop<S> {
    fn now_tick(&self) -> u64 {
        (self.seat.start.elapsed().as_micros() as u64) / self.seat.tick_us.max(1)
    }

    fn ctx(&self, t: u64) -> mcv_sim::Ctx<Msg> {
        mcv_sim::Ctx::external(ProcId(self.seat.id), self.seat.n, SimTime::from_ticks(t))
    }

    /// Applies one callback's effects in the simulator world's order,
    /// except that sends are *captured* (with the ambient cause) and
    /// returned: the caller transmits them via [`NodeLoop::finish`]
    /// after the store has flushed any staged commit forces, so an
    /// acknowledgement never leaves before the durability it claims.
    fn drain(&mut self, mut ctx: mcv_sim::Ctx<Msg>, t: u64) -> Vec<PendingSend> {
        let fx = ctx.take_effects();
        for note in &fx.notes {
            self.seat.ledger.note(self.seat.id, t, note);
            mcv_trace::emit(self.seat.id, t, mcv_trace::EventKind::Note { text: note.clone() });
        }
        let tracing = mcv_trace::active();
        let mut pending = Vec::with_capacity(fx.sends.len());
        for (to, msg) in fx.sends {
            mcv_obs::counter("dist.sent", 1);
            let label =
                if tracing { mcv_trace::label_of(&format!("{msg:?}")) } else { String::new() };
            pending.push(PendingSend { to: to.0, msg, label, cause: mcv_trace::context() });
        }
        // Cancels first: they target timers that existed before this
        // callback, so a timer re-armed with the same token survives.
        for token in fx.cancels {
            self.live.retain(|_, (tk, _)| *tk != token);
        }
        for (delay, token) in fx.timers {
            self.next_tid += 1;
            let set = mcv_trace::emit(self.seat.id, t, mcv_trace::EventKind::TimerSet { token });
            self.live.insert(self.next_tid, (token, set));
            self.heap.push(Reverse((t + delay.ticks(), self.next_tid)));
        }
        if fx.crash && self.up {
            self.crash(t);
        }
        pending
    }

    /// Flushes the store (one force wave covering every commit staged
    /// by the callbacks that produced `pending`), then transmits the
    /// captured sends. Sends survive a self-crash in the same callback
    /// — they left the site before it died.
    fn finish(&mut self, pending: Vec<PendingSend>) {
        self.site.db.flush();
        for p in pending {
            // The network thread records the Send (or Drop) event on
            // our behalf, citing the captured cause — a lost channel
            // means the run is shutting down.
            let _ = self.seat.net.send(NetMsg::Send {
                from: self.seat.id,
                to: p.to,
                msg: p.msg,
                label: p.label,
                cause: p.cause,
            });
        }
    }

    fn crash(&mut self, t: u64) {
        self.up = false;
        self.seat.ledger.set_up(self.seat.id, false);
        mcv_obs::counter("dist.crashes", 1);
        mcv_trace::emit(self.seat.id, t, mcv_trace::EventKind::Crash);
        self.site.on_crash();
        // Pending timers of a crashed node die with it.
        self.live.clear();
        self.heap.clear();
    }

    /// Fires every live timer whose tick has passed.
    fn fire_due(&mut self) {
        loop {
            let t = self.now_tick();
            let Some(&Reverse((due, tid))) = self.heap.peek() else { return };
            if due > t {
                return;
            }
            self.heap.pop();
            let Some((token, set)) = self.live.remove(&tid) else { continue };
            if !self.up {
                continue;
            }
            mcv_obs::counter("dist.timer_fires", 1);
            let fired = mcv_trace::emit_caused(
                self.seat.id,
                t,
                set,
                mcv_trace::EventKind::TimerFire { token },
            );
            let prev = mcv_trace::set_context(fired);
            let mut ctx = self.ctx(t);
            self.site.on_timer(&mut ctx, token);
            let pending = self.drain(ctx, t);
            mcv_trace::set_context(prev);
            self.finish(pending);
        }
    }

    /// The nearest live timer's deadline in ticks, if any.
    fn next_deadline(&mut self) -> Option<u64> {
        while let Some(&Reverse((due, tid))) = self.heap.peek() {
            if self.live.contains_key(&tid) {
                return Some(due);
            }
            self.heap.pop();
        }
        None
    }

    fn run(&mut self) {
        let t0 = self.now_tick();
        let mut ctx = self.ctx(t0);
        self.site.on_start(&mut ctx);
        let pending = self.drain(ctx, t0);
        self.finish(pending);
        loop {
            self.fire_due();
            let now_us = self.seat.start.elapsed().as_micros() as u64;
            let wait = self
                .next_deadline()
                .map(|due| {
                    Duration::from_micros((due * self.seat.tick_us.max(1)).saturating_sub(now_us))
                })
                .unwrap_or(Duration::from_millis(5))
                .min(Duration::from_millis(5))
                .max(Duration::from_micros(50));
            match self.seat.rx.recv_timeout(wait) {
                Ok(NodeEvent::Deliver { from, msg, sent }) => {
                    let pending = self.deliver(from, msg, sent);
                    self.finish(pending);
                }
                Ok(NodeEvent::DeliverBatch(items)) => {
                    // Process every message of the batch, then flush
                    // once: all commits staged by the batch share one
                    // force wave before any acknowledgement leaves.
                    let mut pending = Vec::new();
                    for it in items {
                        pending.extend(self.deliver(it.from, it.msg, it.sent));
                    }
                    self.finish(pending);
                }
                Ok(NodeEvent::Submit(plan)) => self.submit(plan),
                Ok(NodeEvent::Crash) => {
                    let t = self.now_tick();
                    if self.up {
                        self.crash(t);
                    }
                }
                Ok(NodeEvent::Recover) => self.recover(),
                Ok(NodeEvent::Shutdown) | Err(RecvTimeoutError::Disconnected) => {
                    // Staged-but-unforced commits must reach the device
                    // before the run snapshots durable state.
                    self.site.db.flush();
                    return;
                }
                Err(RecvTimeoutError::Timeout) => {}
            }
        }
    }

    fn deliver(
        &mut self,
        from: usize,
        msg: Msg,
        sent: Option<(Cause, String)>,
    ) -> Vec<PendingSend> {
        let t = self.now_tick();
        let (cause, label) = sent.map(|(c, l)| (Some(c), l)).unwrap_or_default();
        if !self.up {
            // A dead receiver loses the message, receiver-sited like
            // the simulator's drop-at-delivery.
            mcv_obs::counter("dist.dropped", 1);
            mcv_trace::emit_caused(
                self.seat.id,
                t,
                cause,
                mcv_trace::EventKind::Drop { from, to: self.seat.id, label },
            );
            return Vec::new();
        }
        mcv_obs::counter("dist.delivered", 1);
        self.deliver_seq += 1;
        let delivered = mcv_trace::emit_caused(self.seat.id, t, cause, {
            mcv_trace::EventKind::Deliver { from, label, deliver_seq: self.deliver_seq }
        });
        let prev = mcv_trace::set_context(delivered);
        let mut ctx = self.ctx(t);
        self.site.on_message(&mut ctx, ProcId(from), msg);
        let pending = self.drain(ctx, t);
        mcv_trace::set_context(prev);
        pending
    }

    /// Starts one pumped transaction plan (multi-shot submission). A
    /// down coordinator queues the plan — the intake survives the
    /// crash, like a client retrying — and replays it on recovery.
    fn submit(&mut self, plan: TxnPlan) {
        if !self.up {
            self.queued_submits.push(plan);
            return;
        }
        mcv_obs::counter("dist.submitted", 1);
        let t = self.now_tick();
        let mut ctx = self.ctx(t);
        self.site.submit_plan(&mut ctx, plan);
        let pending = self.drain(ctx, t);
        self.finish(pending);
    }

    fn recover(&mut self) {
        if self.up {
            return;
        }
        let t = self.now_tick();
        self.up = true;
        self.seat.ledger.set_up(self.seat.id, true);
        mcv_obs::counter("dist.recoveries", 1);
        let recovered = mcv_trace::emit(self.seat.id, t, mcv_trace::EventKind::Recover);
        let prev = mcv_trace::set_context(recovered);
        let mut ctx = self.ctx(t);
        self.site.on_recover(&mut ctx);
        let pending = self.drain(ctx, t);
        mcv_trace::set_context(prev);
        self.finish(pending);
        for plan in std::mem::take(&mut self.queued_submits) {
            self.submit(plan);
        }
    }
}
