//! [`LocalStore`] adapters: what a commit-protocol [`Site`] drives at
//! each node of the distributed topology.
//!
//! - [`EngineStore`] wires a shard's `Site` to a live [`mcv_engine::Engine`]:
//!   the FSM's begin/write/commit/abort land on real 2PL locks and the
//!   shard's group-commit WAL, so a global commit is only acknowledged
//!   after the shard's log force (the engine's commit path blocks on
//!   the force and cites it in the causal trace).
//! - [`CoordStore`] is the coordinator's stand-in: node 0 owns no data
//!   shard, so its local work is vacuous.
//!
//! [`Site`]: mcv_commit::Site

use mcv_commit::LocalStore;
use mcv_engine::{Engine, StagedCommit, Txn};
use mcv_txn::{TxnId, Value};
use std::collections::BTreeMap;

/// A [`LocalStore`] over one shard's live engine.
///
/// Crash modeling: the thesis assumes each site's recovery manager
/// redo-logs work as it is performed, so a prepared transaction's
/// writes survive a crash in stable storage. The adapter models that
/// by *retaining* open [`Txn`] handles across [`LocalStore::crash`] —
/// the volatile protocol state at the `Site` is wiped (votes, timers,
/// FSM positions), while the shard's prepared work stays restorable,
/// exactly as a redo log would leave it. A decision applied after
/// recovery then lands via [`LocalStore::resolve`] on the retained
/// handle.
#[derive(Debug)]
pub struct EngineStore {
    engine: Engine,
    open: BTreeMap<TxnId, Txn>,
    /// Writes the engine refused (deadlock victim): the site must vote
    /// no and the handle must not be committed later.
    poisoned: BTreeMap<TxnId, bool>,
    /// Pipelined mode: commits are staged (record appended, locks
    /// held, durability deferred) and forced in one batch at
    /// [`LocalStore::flush`] — the participant half of the multi-shot
    /// force amortization.
    pipelined: bool,
    staged: Vec<StagedCommit>,
}

impl EngineStore {
    /// Wraps a shard engine (serial mode: every commit forces and
    /// waits inline).
    pub fn new(engine: Engine) -> Self {
        EngineStore {
            engine,
            open: BTreeMap::new(),
            poisoned: BTreeMap::new(),
            pipelined: false,
            staged: Vec::new(),
        }
    }

    /// Wraps a shard engine in pipelined mode: commits stage their log
    /// records and the node loop's per-batch `flush` pays one
    /// durability wait for all of them.
    pub fn pipelined(engine: Engine) -> Self {
        EngineStore {
            engine,
            open: BTreeMap::new(),
            poisoned: BTreeMap::new(),
            pipelined: true,
            staged: Vec::new(),
        }
    }

    /// The wrapped engine (cheap clone of the shared handle).
    pub fn engine(&self) -> Engine {
        self.engine.clone()
    }
}

impl LocalStore for EngineStore {
    fn begin(&mut self, txn: TxnId) {
        // Global ids live in their own range (see `GLOBAL_TXN_BASE`),
        // disjoint from the engine's local allocator.
        self.open.entry(txn).or_insert_with(|| self.engine.begin_at(txn));
    }

    fn write(&mut self, txn: TxnId, item: &str, value: Value) -> Result<(), ()> {
        let Some(t) = self.open.get_mut(&txn) else { return Err(()) };
        match t.write(item, value) {
            Ok(()) => Ok(()),
            Err(_) => {
                self.poisoned.insert(txn, true);
                Err(())
            }
        }
    }

    fn commit(&mut self, txn: TxnId) -> Result<(), ()> {
        if self.poisoned.contains_key(&txn) {
            return Err(());
        }
        let Some(t) = self.open.remove(&txn) else { return Err(()) };
        if self.pipelined {
            let staged = t.commit_stage().map_err(|_| ())?;
            self.staged.push(staged);
            Ok(())
        } else {
            t.commit().map_err(|_| ())
        }
    }

    fn abort(&mut self, txn: TxnId) -> Result<(), ()> {
        let Some(t) = self.open.remove(&txn) else { return Err(()) };
        t.abort();
        Ok(())
    }

    fn resolve(&mut self, txn: TxnId, commit: bool) {
        // Settle an in-doubt transaction after recovery; unknown ids
        // (a broadcast decision for work this shard never saw) are a
        // no-op.
        if let Some(t) = self.open.remove(&txn) {
            if commit && !self.poisoned.contains_key(&txn) {
                if self.pipelined {
                    if let Ok(staged) = t.commit_stage() {
                        self.staged.push(staged);
                    }
                } else {
                    let _ = t.commit();
                }
            } else {
                t.abort();
            }
        }
    }

    fn crash(&mut self) {
        // Volatile protocol state dies at the Site; the handles stay —
        // they stand in for the redo-logged prepared state the thesis
        // assumes stable storage preserves.
    }

    fn recover(&mut self) {}

    fn flush(&mut self) {
        if !self.staged.is_empty() {
            self.engine.finish_commits(std::mem::take(&mut self.staged));
        }
    }
}

/// The coordinator's vacuous local store: node 0 owns no shard.
#[derive(Debug, Default)]
pub struct CoordStore;

impl LocalStore for CoordStore {
    fn begin(&mut self, _txn: TxnId) {}

    fn write(&mut self, _txn: TxnId, _item: &str, _value: Value) -> Result<(), ()> {
        Ok(())
    }

    fn commit(&mut self, _txn: TxnId) -> Result<(), ()> {
        Ok(())
    }

    fn abort(&mut self, _txn: TxnId) -> Result<(), ()> {
        Ok(())
    }

    fn resolve(&mut self, _txn: TxnId, _commit: bool) {}

    fn crash(&mut self) {}

    fn recover(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcv_engine::EngineConfig;

    #[test]
    fn engine_store_commit_applies_and_is_durable() {
        let engine = Engine::new(EngineConfig { force_latency_us: 0, ..Default::default() });
        let mut s = EngineStore::new(engine.clone());
        let t = TxnId(1_000_000);
        s.begin(t);
        s.write(t, "X", 7).unwrap();
        s.commit(t).unwrap();
        assert_eq!(engine.value("X"), 7);
        assert!(engine.committed_ids().contains(&t));
    }

    #[test]
    fn engine_store_retains_handles_across_crash_and_resolves() {
        let engine = Engine::new(EngineConfig { force_latency_us: 0, ..Default::default() });
        let mut s = EngineStore::new(engine.clone());
        let t = TxnId(1_000_001);
        s.begin(t);
        s.write(t, "Y", 3).unwrap();
        s.crash();
        s.recover();
        // The prepared work survived; a post-recovery decision lands.
        s.resolve(t, true);
        assert_eq!(engine.value("Y"), 3);
    }

    #[test]
    fn engine_store_abort_rolls_back() {
        let engine = Engine::new(EngineConfig { force_latency_us: 0, ..Default::default() });
        let mut s = EngineStore::new(engine.clone());
        let t = TxnId(1_000_002);
        s.begin(t);
        s.write(t, "Z", 9).unwrap();
        s.abort(t).unwrap();
        assert_eq!(engine.value("Z"), 0);
        assert!(!engine.committed_ids().contains(&t));
    }

    #[test]
    fn pipelined_store_defers_durability_until_flush() {
        let engine = Engine::new(EngineConfig { force_latency_us: 0, ..Default::default() });
        let mut s = EngineStore::pipelined(engine.clone());
        for (i, item) in ["A", "B", "C"].iter().enumerate() {
            let t = TxnId(1_000_010 + i as u64);
            s.begin(t);
            s.write(t, item, 5).unwrap();
            s.commit(t).unwrap();
        }
        // Commit records are staged, not yet on the device.
        let before = mcv_txn::Wal::from_bytes_lossy(&engine.durable_image());
        assert!(before.committed().is_empty(), "staged commits must not be durable yet");
        s.flush();
        let after = mcv_txn::Wal::from_bytes_lossy(&engine.durable_image());
        assert_eq!(after.committed().len(), 3, "one flush forces the whole batch");
        assert_eq!(engine.value("A"), 5);
    }

    #[test]
    fn unknown_txn_resolve_is_a_noop() {
        let engine = Engine::new(EngineConfig { force_latency_us: 0, ..Default::default() });
        let mut s = EngineStore::new(engine);
        s.resolve(TxnId(42), true);
        assert!(s.commit(TxnId(42)).is_err());
    }
}
