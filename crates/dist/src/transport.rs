//! The real threaded transport: per-link delivery with seeded delays,
//! FIFO clamping, and injectable faults.
//!
//! One network thread owns every link. Senders hand it
//! [`NetMsg::Send`] commands; it applies the run's fault windows
//! (partitions, drop/dup/reorder windows — the same [`FaultEvent`]
//! vocabulary `mcv-chaos` generates, with simulation ticks mapped onto
//! real microseconds), samples a seeded delay, clamps FIFO links, and
//! schedules the delivery. Crash/recover faults become [`NodeEvent`]s
//! dispatched to the victim node at their scheduled instant.
//!
//! Trace discipline mirrors `mcv-sim`'s world loop: one `Send` event
//! per message (duplicated copies share it as their causal
//! antecedent), sender-sited `Drop` events for messages lost in
//! flight, and the `(cause, label)` pair riding in the envelope so the
//! receiver's `Deliver` cites the send.

use mcv_chaos::{CutKind, FaultEvent, FaultSchedule};
use mcv_commit::Msg;
use mcv_trace::Cause;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What a node receives from the transport.
#[derive(Debug)]
pub(crate) enum NodeEvent {
    /// A message arrived.
    Deliver {
        /// Sender node.
        from: usize,
        /// The protocol message.
        msg: Msg,
        /// The send's trace cause and label, if tracing.
        sent: Option<(Cause, String)>,
    },
    /// The fault schedule crashes this node now.
    Crash,
    /// The fault schedule recovers this node now.
    Recover,
    /// The run is over; exit the node loop.
    Shutdown,
}

/// What the network thread receives.
pub(crate) enum NetMsg {
    /// A node handed a message to the network.
    Send {
        /// Sender node.
        from: usize,
        /// Destination node.
        to: usize,
        /// The protocol message.
        msg: Msg,
        /// Pre-rendered message label (empty when not tracing).
        label: String,
        /// The sender's ambient cause at send time.
        cause: Option<Cause>,
    },
    /// Stop the network thread.
    Shutdown,
}

/// A scheduled future dispatch, ordered by due time then FIFO seq.
struct Scheduled {
    due_us: u64,
    seq: u64,
    to: usize,
    /// When the message entered the network (microseconds since run
    /// start; 0 for fault dispatches) — the flight-time base for
    /// profiling.
    enq_us: u64,
    what: Dispatch,
}

enum Dispatch {
    Deliver { from: usize, msg: Msg, sent: Option<(Cause, String)> },
    Crash,
    Recover,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        (self.due_us, self.seq) == (other.due_us, other.seq)
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due_us, self.seq).cmp(&(other.due_us, other.seq))
    }
}

/// A half-open real-time window on a link pattern.
struct LinkWindow {
    src: Option<usize>,
    dst: Option<usize>,
    from_us: u64,
    until_us: u64,
}

impl LinkWindow {
    fn matches(&self, now_us: u64, from: usize, to: usize) -> bool {
        self.src.is_none_or(|s| s == from)
            && self.dst.is_none_or(|d| d == to)
            && now_us >= self.from_us
            && now_us < self.until_us
    }
}

struct PartitionWindow {
    side: Vec<usize>,
    cut: CutKind,
    from_us: u64,
    until_us: u64,
}

impl PartitionWindow {
    fn blocks(&self, now_us: u64, from: usize, to: usize) -> bool {
        if now_us < self.from_us || now_us >= self.until_us {
            return false;
        }
        let f_in = self.side.contains(&from);
        let t_in = self.side.contains(&to);
        match self.cut {
            CutKind::Both => f_in != t_in,
            CutKind::Outbound => f_in && !t_in,
            CutKind::Inbound => !f_in && t_in,
        }
    }
}

/// The network thread's state and configuration.
pub(crate) struct Network {
    pub rx: Receiver<NetMsg>,
    pub nodes: Vec<Sender<NodeEvent>>,
    pub start: Instant,
    pub tick_us: u64,
    /// Uniform per-hop delay in `1..=delay_ticks` ticks.
    pub delay_ticks: u64,
    pub seed: u64,
    pub rec: Option<Arc<mcv_trace::Recorder>>,
    /// Phase profiler captured at `run_dist` entry; each delivery
    /// records its measured flight time as an anonymous
    /// `transport_rtt` sample.
    pub prof: Option<mcv_prof::Profiler>,
}

impl Network {
    /// Runs the network loop until shutdown or every sender hangs up.
    /// `schedule` times are simulation ticks, scaled by `tick_us`.
    pub fn run(self, schedule: &FaultSchedule) {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x006e_6574_776f_726b_u64);
        let mut heap: BinaryHeap<Reverse<Scheduled>> = BinaryHeap::new();
        let mut seq: u64 = 0;
        let mut fifo_last: BTreeMap<(usize, usize), u64> = BTreeMap::new();
        let mut drops: Vec<LinkWindow> = Vec::new();
        let mut dups: Vec<LinkWindow> = Vec::new();
        let mut reorders: Vec<LinkWindow> = Vec::new();
        let mut partitions: Vec<PartitionWindow> = Vec::new();
        let us = |ticks: u64| ticks.saturating_mul(self.tick_us);
        for ev in &schedule.events {
            match ev {
                FaultEvent::Crash { proc, at } | FaultEvent::TornWrite { proc, at, .. } => {
                    seq += 1;
                    heap.push(Reverse(Scheduled {
                        due_us: us(*at),
                        seq,
                        to: *proc,
                        enq_us: 0,
                        what: Dispatch::Crash,
                    }));
                }
                FaultEvent::Recover { proc, at } => {
                    seq += 1;
                    heap.push(Reverse(Scheduled {
                        due_us: us(*at),
                        seq,
                        to: *proc,
                        enq_us: 0,
                        what: Dispatch::Recover,
                    }));
                }
                FaultEvent::Partition { side, cut, from, until } => {
                    partitions.push(PartitionWindow {
                        side: side.clone(),
                        cut: *cut,
                        from_us: us(*from),
                        until_us: us(*until),
                    });
                }
                FaultEvent::DropWindow { src, dst, from, until } => {
                    drops.push(LinkWindow {
                        src: *src,
                        dst: *dst,
                        from_us: us(*from),
                        until_us: us(*until),
                    });
                }
                FaultEvent::DupWindow { src, dst, from, until } => {
                    dups.push(LinkWindow {
                        src: *src,
                        dst: *dst,
                        from_us: us(*from),
                        until_us: us(*until),
                    });
                }
                FaultEvent::ReorderWindow { src, dst, from, until } => {
                    reorders.push(LinkWindow {
                        src: *src,
                        dst: *dst,
                        from_us: us(*from),
                        until_us: us(*until),
                    });
                }
            }
        }

        loop {
            let now_us = self.start.elapsed().as_micros() as u64;
            // Dispatch everything due.
            while heap.peek().is_some_and(|Reverse(s)| s.due_us <= now_us) {
                let Reverse(s) = heap.pop().expect("peeked");
                let ev = match s.what {
                    Dispatch::Deliver { from, msg, sent } => {
                        if let Some(p) = &self.prof {
                            // Anonymous sample: flight time from network
                            // entry to dispatch (txn 0 — hops are not
                            // tied to one transaction here; the
                            // critical-path analyzer does the per-txn
                            // transport attribution from the trace).
                            let mut t = mcv_prof::Timeline::new(0);
                            t.add(
                                mcv_prof::Phase::TransportRtt,
                                now_us.saturating_sub(s.enq_us).saturating_mul(1_000),
                            );
                            p.record(&t);
                        }
                        NodeEvent::Deliver { from, msg, sent }
                    }
                    Dispatch::Crash => NodeEvent::Crash,
                    Dispatch::Recover => NodeEvent::Recover,
                };
                // A hung-up node (already shut down) just loses traffic.
                let _ = self.nodes[s.to].send(ev);
            }
            let wait = heap
                .peek()
                .map(|Reverse(s)| Duration::from_micros(s.due_us.saturating_sub(now_us)))
                .unwrap_or(Duration::from_millis(5))
                .min(Duration::from_millis(5))
                .max(Duration::from_micros(50));
            match self.rx.recv_timeout(wait) {
                Ok(NetMsg::Send { from, to, msg, label, cause }) => {
                    let now_us = self.start.elapsed().as_micros() as u64;
                    let tick = now_us / self.tick_us.max(1);
                    mcv_obs::counter("dist.net.sent", 1);
                    let lost = partitions.iter().any(|p| p.blocks(now_us, from, to))
                        || drops.iter().any(|w| w.matches(now_us, from, to));
                    if lost {
                        mcv_obs::counter("dist.net.dropped", 1);
                        if let Some(rec) = &self.rec {
                            rec.record(
                                from,
                                tick,
                                cause,
                                mcv_trace::EventKind::Drop { from, to, label },
                            );
                        }
                        continue;
                    }
                    let copies = if dups.iter().any(|w| w.matches(now_us, from, to)) {
                        mcv_obs::counter("dist.net.duplicated", 1);
                        2
                    } else {
                        1
                    };
                    let reorder = reorders.iter().any(|w| w.matches(now_us, from, to));
                    // One Send event per message; dup copies share it.
                    let sent = self.rec.as_ref().map(|rec| {
                        let c = rec.record(
                            from,
                            tick,
                            cause,
                            mcv_trace::EventKind::Send { to, label: label.clone() },
                        );
                        (c, label.clone())
                    });
                    let bound = self.delay_ticks.max(1);
                    for _ in 0..copies {
                        let mut due = now_us + us(rng.gen_range(1..=bound));
                        if reorder {
                            // Extra jitter, skipping the FIFO clamp so
                            // the copy can overtake older traffic.
                            due += us(rng.gen_range(0..=4 * bound));
                        } else {
                            let last = fifo_last.get(&(from, to)).copied().unwrap_or(0);
                            if due <= last {
                                due = last + 1;
                            }
                            fifo_last.insert((from, to), due);
                        }
                        seq += 1;
                        heap.push(Reverse(Scheduled {
                            due_us: due,
                            seq,
                            to,
                            enq_us: now_us,
                            what: Dispatch::Deliver { from, msg: msg.clone(), sent: sent.clone() },
                        }));
                    }
                }
                Ok(NetMsg::Shutdown) => break,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
    }
}
