//! The unified transport layer: one [`Transport`] trait over the
//! shared policy [`Fabric`](crate::fabric::Fabric), with a
//! deterministic virtual-clock implementation ([`SimTransport`]) and
//! the real threaded channel implementation ([`ThreadedTransport`] /
//! the internal network thread).
//!
//! Every fault decision — partitions, drop/dup/reorder windows (the
//! same [`FaultEvent`](mcv_chaos::FaultEvent) vocabulary `mcv-chaos`
//! generates, with simulation ticks mapped onto real microseconds),
//! seeded delays, FIFO clamping, and per-link delivery batching — is
//! made by the fabric, so both implementations behave identically
//! given the same submission times, and the conformance suite
//! (`tests/transport_conformance.rs`) drives both through this trait.
//!
//! Trace discipline mirrors `mcv-sim`'s world loop: one `Send` event
//! per message (duplicated copies share it as their causal
//! antecedent), sender-sited `Drop` events for messages lost in
//! flight, and the `(cause, label)` pair riding in the envelope so the
//! receiver's `Deliver` cites the send.

use crate::fabric::Fabric;
use mcv_chaos::FaultSchedule;
use mcv_commit::{Msg, TxnPlan};
use mcv_trace::Cause;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One message of a delivery batch.
#[derive(Debug)]
pub struct DeliverItem {
    /// Sender node.
    pub from: usize,
    /// The protocol message.
    pub msg: Msg,
    /// The send's trace cause and label, if tracing.
    pub sent: Option<(Cause, String)>,
}

/// What a node receives from the transport.
#[derive(Debug)]
pub enum NodeEvent {
    /// A message arrived.
    Deliver {
        /// Sender node.
        from: usize,
        /// The protocol message.
        msg: Msg,
        /// The send's trace cause and label, if tracing.
        sent: Option<(Cause, String)>,
    },
    /// Several messages arrived together (one per-link batch): the
    /// receiver processes them all, then completes its buffered
    /// durability work once — the force-amortization seam of the
    /// multi-shot commit path.
    DeliverBatch(Vec<DeliverItem>),
    /// The multi-shot runtime submits a new transaction plan to the
    /// coordinator node while earlier transactions are still in
    /// flight.
    Submit(TxnPlan),
    /// The fault schedule crashes this node now.
    Crash,
    /// The fault schedule recovers this node now.
    Recover,
    /// The run is over; exit the node loop.
    Shutdown,
}

/// What the network thread receives.
pub(crate) enum NetMsg {
    /// A node handed a message to the network.
    Send {
        /// Sender node.
        from: usize,
        /// Destination node.
        to: usize,
        /// The protocol message.
        msg: Msg,
        /// Pre-rendered message label (empty when not tracing).
        label: String,
        /// The sender's ambient cause at send time.
        cause: Option<Cause>,
    },
    /// Stop the network thread.
    Shutdown,
}

/// Shared transport knobs (the fabric's policy inputs).
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Real microseconds per simulation tick.
    pub tick_us: u64,
    /// Uniform per-hop delay in `1..=delay_ticks` ticks.
    pub delay_ticks: u64,
    /// Seed for delay sampling.
    pub seed: u64,
    /// Per-link batching window in microseconds; 0 disables batching
    /// (the serial per-message schedule).
    pub batch_window_us: u64,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig { tick_us: 200, delay_ticks: 3, seed: 0, batch_window_us: 0 }
    }
}

/// One transport implementation: a clocked message fabric between
/// `n` nodes. Implementations share the policy core, so given the
/// same submission times they make the same fault/delay/batching
/// decisions; they differ only in what "time" is (virtual vs wall
/// clock) and how dispatches reach the nodes (direct return vs
/// channels off a network thread).
pub trait Transport {
    /// Implementation name, for diagnostics.
    fn name(&self) -> &'static str;
    /// Hands a protocol message to the fabric.
    fn send(&mut self, from: usize, to: usize, msg: Msg, label: String);
    /// Advances time to `until_us` (microseconds since the transport's
    /// epoch), returning every event dispatched on the way, in
    /// dispatch order.
    fn advance(&mut self, until_us: u64) -> Vec<(usize, NodeEvent)>;
}

/// The deterministic virtual-clock transport: the fabric driven
/// directly, no threads, no wall clock. Sends are stamped at the
/// current virtual instant; [`Transport::advance`] steps the clock
/// through each due time.
pub struct SimTransport {
    fabric: Fabric,
    now_us: u64,
}

impl SimTransport {
    /// A new virtual-clock transport over `schedule`'s faults.
    pub fn new(cfg: &TransportConfig, schedule: &FaultSchedule) -> Self {
        SimTransport {
            fabric: Fabric::new(
                cfg.tick_us,
                cfg.delay_ticks,
                cfg.batch_window_us,
                cfg.seed,
                None,
                None,
                schedule,
            ),
            now_us: 0,
        }
    }

    /// The current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }
}

impl Transport for SimTransport {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn send(&mut self, from: usize, to: usize, msg: Msg, label: String) {
        self.fabric.submit(self.now_us, from, to, msg, label, None);
    }

    fn advance(&mut self, until_us: u64) -> Vec<(usize, NodeEvent)> {
        let mut out = Vec::new();
        while let Some(due) = self.fabric.next_due() {
            if due > until_us {
                break;
            }
            self.now_us = self.now_us.max(due);
            out.extend(self.fabric.pop_due(self.now_us));
        }
        self.now_us = self.now_us.max(until_us);
        out
    }
}

/// The network thread's state and configuration: owns every link,
/// drives the shared fabric with wall-clock time, and dispatches due
/// events into per-node channels.
pub(crate) struct Network {
    pub rx: Receiver<NetMsg>,
    pub nodes: Vec<Sender<NodeEvent>>,
    pub start: Instant,
    pub tick_us: u64,
    /// Uniform per-hop delay in `1..=delay_ticks` ticks.
    pub delay_ticks: u64,
    /// Per-link batching window in microseconds (0 = serial schedule).
    pub batch_window_us: u64,
    pub seed: u64,
    pub rec: Option<Arc<mcv_trace::Recorder>>,
    /// Phase profiler captured at runtime entry; each delivery records
    /// its measured flight time as an anonymous `transport_rtt` sample.
    pub prof: Option<mcv_prof::Profiler>,
}

impl Network {
    /// Runs the network loop until shutdown or every sender hangs up.
    /// `schedule` times are simulation ticks, scaled by `tick_us`.
    pub fn run(self, schedule: &FaultSchedule) {
        let mut fabric = Fabric::new(
            self.tick_us,
            self.delay_ticks,
            self.batch_window_us,
            self.seed,
            self.rec.clone(),
            self.prof.clone(),
            schedule,
        );
        loop {
            let now_us = self.start.elapsed().as_micros() as u64;
            for (to, ev) in fabric.pop_due(now_us) {
                // A hung-up node (already shut down) just loses traffic.
                let _ = self.nodes[to].send(ev);
            }
            let wait = fabric
                .next_due()
                .map(|due| Duration::from_micros(due.saturating_sub(now_us)))
                .unwrap_or(Duration::from_millis(5))
                .min(Duration::from_millis(5))
                .max(Duration::from_micros(50));
            match self.rx.recv_timeout(wait) {
                Ok(NetMsg::Send { from, to, msg, label, cause }) => {
                    let now_us = self.start.elapsed().as_micros() as u64;
                    fabric.submit(now_us, from, to, msg, label, cause);
                }
                Ok(NetMsg::Shutdown) => break,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
    }
}

/// The threaded channel transport behind the [`Transport`] trait: a
/// real network thread (the same one the dist runtime uses) owning the
/// fabric, reached over channels, with wall-clock time. Built for the
/// conformance suite; the runtime wires the network thread directly.
pub struct ThreadedTransport {
    net: Sender<NetMsg>,
    rxs: Vec<Receiver<NodeEvent>>,
    start: Instant,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ThreadedTransport {
    /// Spawns a network thread over `schedule`'s faults for `n_nodes`
    /// endpoints.
    pub fn new(n_nodes: usize, cfg: &TransportConfig, schedule: &FaultSchedule) -> Self {
        let (net_tx, net_rx) = mpsc::channel::<NetMsg>();
        let mut node_txs = Vec::with_capacity(n_nodes);
        let mut rxs = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let (tx, rx) = mpsc::channel::<NodeEvent>();
            node_txs.push(tx);
            rxs.push(rx);
        }
        let start = Instant::now();
        let network = Network {
            rx: net_rx,
            nodes: node_txs,
            start,
            tick_us: cfg.tick_us,
            delay_ticks: cfg.delay_ticks,
            batch_window_us: cfg.batch_window_us,
            seed: cfg.seed,
            rec: None,
            prof: None,
        };
        let schedule = schedule.clone();
        let handle = std::thread::Builder::new()
            .name("conf-net".into())
            .spawn(move || network.run(&schedule))
            .expect("spawn network thread");
        ThreadedTransport { net: net_tx, rxs, start, handle: Some(handle) }
    }
}

impl Transport for ThreadedTransport {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn send(&mut self, from: usize, to: usize, msg: Msg, label: String) {
        let _ = self.net.send(NetMsg::Send { from, to, msg, label, cause: None });
    }

    fn advance(&mut self, until_us: u64) -> Vec<(usize, NodeEvent)> {
        // Wall clock: sleep past the target instant, give the network
        // thread a beat to dispatch, then drain the node channels.
        let target = Duration::from_micros(until_us);
        loop {
            let e = self.start.elapsed();
            if e >= target {
                break;
            }
            std::thread::sleep((target - e).min(Duration::from_millis(5)));
        }
        std::thread::sleep(Duration::from_millis(5));
        let mut out = Vec::new();
        for (node, rx) in self.rxs.iter().enumerate() {
            while let Ok(ev) = rx.try_recv() {
                out.push((node, ev));
            }
        }
        out
    }
}

impl Drop for ThreadedTransport {
    fn drop(&mut self) {
        let _ = self.net.send(NetMsg::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}
