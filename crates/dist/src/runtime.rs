//! Assembles and runs one distributed execution: per-shard engines on
//! their own node threads, the coordinator, the network thread, and
//! the stop monitor.

use crate::node::{run_node, NodeSeat};
use crate::store::{CoordStore, EngineStore};
use crate::transport::{NetMsg, Network, NodeEvent};
use mcv_chaos::{FaultEvent, FaultSchedule, OracleResult};
use mcv_commit::{CrashPoint, Protocol, Site, SiteConfig, TxnPlan};
use mcv_engine::{Engine, EngineConfig};
use mcv_sim::ProcId;
use mcv_txn::TxnId;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Global (cross-shard) transaction ids start here. The per-shard
/// engines' own allocators count up from 1, so the two id spaces never
/// collide; `Engine::begin_at` relies on the caller maintaining this
/// split.
pub const GLOBAL_TXN_BASE: u64 = 1_000_000;

/// Full configuration of one distributed run. Serializable, so a
/// violating run ships as a replayable artifact.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DistConfig {
    /// Number of data shards; the topology is node 0 (coordinator,
    /// no shard) plus nodes `1..=n_shards` (one engine each).
    pub n_shards: usize,
    /// Number of cross-shard transactions, all started at once.
    pub n_txns: usize,
    /// Items each transaction writes at each shard.
    pub writes_per_shard: usize,
    /// Seed for delays, fault schedules and workload generation.
    pub seed: u64,
    /// Per-phase protocol timeout in ticks.
    pub timeout: u64,
    /// Real microseconds per simulation tick — the bridge between the
    /// chaos schedules' tick times and the threaded transport.
    pub tick_us: u64,
    /// Uniform per-hop network delay, in `1..=delay_ticks` ticks.
    pub delay_ticks: u64,
    /// Modeled device-force latency of each shard engine's WAL, in
    /// microseconds (the participants' commit-point durability cost).
    pub force_latency_us: u64,
    /// Use the naive Figure 3.2 timeout transitions instead of
    /// election + termination — unsafe with two or more shards.
    pub naive_timeouts: bool,
    /// Quorum-checked termination (the hardened default). Without it
    /// a recovered yes-voter whose decision requests go unanswered
    /// applies the thesis' `w2 -> abort` failure transition — a guess
    /// that splits the brain when its yes vote already enabled a
    /// commit (the cross-shard campaign finds this within 300 seeds).
    pub quorum_termination: bool,
    /// Targeted crash: `(node, point)` — the classic coordinator
    /// windows, injected at protocol positions rather than wall times.
    pub crash_at: Option<(usize, CrashPoint)>,
    /// This node votes no on everything (AC2 probes).
    pub vote_no: Option<usize>,
    /// Timed faults (ticks), in the `mcv-chaos` vocabulary.
    pub schedule: FaultSchedule,
    /// All scheduled faults lie before this tick; the run only
    /// declares success after it has passed.
    pub horizon: u64,
    /// Hard wall-clock stop in milliseconds.
    pub deadline_ms: u64,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            n_shards: 3,
            n_txns: 2,
            writes_per_shard: 2,
            seed: 0,
            timeout: 40,
            tick_us: 200,
            delay_ticks: 3,
            force_latency_us: 20,
            naive_timeouts: false,
            quorum_termination: true,
            crash_at: None,
            vote_no: None,
            schedule: FaultSchedule::none(),
            horizon: 150,
            deadline_ms: 5_000,
        }
    }
}

impl DistConfig {
    /// Total node count (coordinator + shards).
    pub fn n_nodes(&self) -> usize {
        self.n_shards + 1
    }

    /// The global transaction ids this run drives.
    pub fn global_txns(&self) -> Vec<TxnId> {
        (0..self.n_txns as u64).map(|i| TxnId(GLOBAL_TXN_BASE + i)).collect()
    }

    /// The coordinator's transaction plans. Every shard appears as a
    /// cohort in every plan (3PC needs `WorkDone` from all cohorts);
    /// item names are namespaced per transaction so concurrent global
    /// transactions never contend for the same 2PL locks across shards
    /// — a distributed deadlock would otherwise stall node threads,
    /// and cross-engine cycles are invisible to each engine's local
    /// detector.
    pub fn plans(&self) -> Vec<TxnPlan> {
        self.global_txns()
            .iter()
            .enumerate()
            .map(|(i, txn)| TxnPlan {
                txn: *txn,
                writes: (1..=self.n_shards)
                    .map(|s| {
                        let writes = (0..self.writes_per_shard)
                            .map(|j| (format!("g{i}_s{s}_{j}"), (i * 100 + j) as i64))
                            .collect();
                        (ProcId(s), writes)
                    })
                    .collect(),
            })
            .collect()
    }
}

/// Shared run ledger: decisions, liveness, and raw notes — the input
/// to the cross-node oracles.
#[derive(Debug)]
pub(crate) struct Ledger {
    inner: Mutex<LedgerInner>,
}

#[derive(Debug, Clone)]
pub(crate) struct LedgerInner {
    /// `(tick, node, text)` in arrival order.
    pub notes: Vec<(u64, usize, String)>,
    pub up: Vec<bool>,
    /// First decision per `(node, txn)`; `true` = commit.
    pub decided: BTreeMap<(usize, u64), bool>,
    /// Nodes that entered the protocol for a transaction (noted a
    /// state transition for it). A node that crashed or was
    /// partitioned away before the vote request arrived never joins
    /// and owes no decision — the same exemption the simulator's
    /// termination oracle grants via `local_state(txn).is_none()`.
    pub participated: BTreeSet<(usize, u64)>,
    /// Evidence of a decision flipping after it was made (AC3).
    pub flips: Vec<String>,
    /// The coordinator's commit log: node 0's first decisions in
    /// arrival order, `(tick, txn, commit)` — the observable spine of
    /// the multi-shot protocol (many in-flight transactions, one
    /// totally-ordered decision sequence).
    pub decision_log: Vec<(u64, u64, bool)>,
}

impl Ledger {
    pub fn new(n_nodes: usize) -> Arc<Ledger> {
        Arc::new(Ledger {
            inner: Mutex::new(LedgerInner {
                notes: Vec::new(),
                up: vec![true; n_nodes],
                decided: BTreeMap::new(),
                participated: BTreeSet::new(),
                flips: Vec::new(),
                decision_log: Vec::new(),
            }),
        })
    }

    pub fn note(&self, node: usize, tick: u64, text: &str) {
        let mut g = self.inner.lock().expect("ledger mutex");
        // The site note grammar: `decide T<n> commit|abort` drives the
        // monitors, `state T<n> <s>` marks protocol participation.
        let mut parts = text.split_whitespace();
        let head = parts.next();
        if head == Some("decide") {
            if let (Some(txn_text), Some(verdict)) = (parts.next(), parts.next()) {
                if let Some(Ok(txn)) = txn_text.strip_prefix('T').map(str::parse::<u64>) {
                    g.participated.insert((node, txn));
                    let commit = verdict == "commit";
                    match g.decided.insert((node, txn), commit) {
                        None => {
                            if node == 0 {
                                g.decision_log.push((tick, txn, commit));
                            }
                        }
                        Some(prev) => {
                            if prev != commit {
                                g.decided.insert((node, txn), prev);
                                g.flips.push(format!(
                                    "node {node} flipped T{txn}: {} then {}",
                                    if prev { "commit" } else { "abort" },
                                    verdict
                                ));
                            }
                        }
                    }
                }
            }
        } else if head == Some("state") {
            if let Some(Ok(txn)) =
                parts.next().and_then(|t| t.strip_prefix('T')).map(str::parse::<u64>)
            {
                g.participated.insert((node, txn));
            }
        }
        g.notes.push((tick, node, text.to_owned()));
    }

    pub fn set_up(&self, node: usize, up: bool) {
        self.inner.lock().expect("ledger mutex").up[node] = up;
    }

    /// Whether every currently-up node that joined a transaction's
    /// protocol has decided it. Up nodes that never participated
    /// (crashed or partitioned away before the vote request) owe no
    /// decision.
    pub fn settled(&self, txns: &[TxnId]) -> bool {
        let g = self.inner.lock().expect("ledger mutex");
        g.up.iter().enumerate().filter(|(_, u)| **u).all(|(node, _)| {
            txns.iter().all(|t| {
                !g.participated.contains(&(node, t.0)) || g.decided.contains_key(&(node, t.0))
            })
        })
    }

    /// Total notes recorded so far — the stop monitor's quiescence
    /// probe.
    pub fn notes_len(&self) -> usize {
        self.inner.lock().expect("ledger mutex").notes.len()
    }

    /// Distinct transactions with a decision anywhere — the multi-shot
    /// submission pump's window accounting.
    pub fn decided_txn_count(&self) -> usize {
        let g = self.inner.lock().expect("ledger mutex");
        g.decided.keys().map(|(_, txn)| *txn).collect::<BTreeSet<_>>().len()
    }

    pub fn snapshot(&self) -> LedgerInner {
        self.inner.lock().expect("ledger mutex").clone()
    }
}

/// Aggregate statistics of one run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DistStats {
    /// Cross-shard transactions driven.
    pub txns: u64,
    /// Committed at every shard engine.
    pub committed: u64,
    /// Uniformly aborted.
    pub aborted: u64,
    /// No decision recorded anywhere (blocked or shut down early).
    pub undecided: u64,
    /// Wall time of the run.
    pub wall_ms: u64,
    /// The hard deadline fired before the run settled.
    pub timed_out: bool,
}

/// Everything one distributed run produced.
#[derive(Debug)]
pub struct DistOutcome {
    /// Aggregate statistics.
    pub stats: DistStats,
    /// Every oracle's verdict.
    pub oracles: Vec<OracleResult>,
    /// First decision per `(node, txn)`; `true` = commit.
    pub decisions: BTreeMap<(usize, u64), bool>,
    /// The run's causal trace.
    pub trace: mcv_trace::CausalTrace,
}

impl DistOutcome {
    /// The first violated oracle, if any.
    pub fn violated(&self) -> Option<&OracleResult> {
        self.oracles.iter().find(|o| !o.pass)
    }

    /// Whether the named oracle failed.
    pub fn violates(&self, name: &str) -> bool {
        self.oracles.iter().any(|o| o.name == name && !o.pass)
    }
}

/// The tick after which no scheduled fault is still pending.
pub(crate) fn fault_horizon(schedule: &FaultSchedule) -> u64 {
    schedule
        .events
        .iter()
        .map(|e| match e {
            FaultEvent::Crash { at, .. }
            | FaultEvent::Recover { at, .. }
            | FaultEvent::TornWrite { at, .. } => *at,
            FaultEvent::Partition { until, .. }
            | FaultEvent::DropWindow { until, .. }
            | FaultEvent::DupWindow { until, .. }
            | FaultEvent::ReorderWindow { until, .. } => *until,
        })
        .max()
        .unwrap_or(0)
}

/// Runs one distributed execution to completion and evaluates every
/// oracle over it.
///
/// Topology: node 0 is the coordinator (no shard), nodes
/// `1..=n_shards` each own a live [`Engine`] reached through the
/// [`EngineStore`] adapter, so the commit FSMs govern real 2PL locks
/// and per-shard group-commit WALs. All protocol traffic crosses the
/// threaded transport with seeded delays and the configured faults.
pub fn run_dist(cfg: &DistConfig) -> DistOutcome {
    let _span = mcv_obs::Span::enter("dist.run");
    let n = cfg.n_nodes();
    let rec = mcv_trace::Recorder::unbounded();
    // Node threads record at sites `0..n`; engine-side events (WAL,
    // locks) pick lanes above them.
    rec.reserve_lanes(n);
    let start = Instant::now();
    let ledger = Ledger::new(n);
    let engines: Vec<Engine> = mcv_trace::with_recorder(Arc::clone(&rec), || {
        (0..cfg.n_shards)
            .map(|_| {
                Engine::new(EngineConfig {
                    shards: 4,
                    force_latency_us: cfg.force_latency_us,
                    sample_every: 1,
                    ..Default::default()
                })
            })
            .collect()
    });

    let (net_tx, net_rx) = mpsc::channel::<NetMsg>();
    let mut node_txs: Vec<mpsc::Sender<NodeEvent>> = Vec::with_capacity(n);
    let mut node_rxs: Vec<mpsc::Receiver<NodeEvent>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = mpsc::channel::<NodeEvent>();
        node_txs.push(tx);
        node_rxs.push(rx);
    }

    let network = Network {
        rx: net_rx,
        nodes: node_txs.clone(),
        start,
        tick_us: cfg.tick_us,
        delay_ticks: cfg.delay_ticks,
        // Serial path: no transport batching — every message pays its
        // own sampled hop delay, exactly the pre-multi-shot schedule.
        batch_window_us: 0,
        seed: cfg.seed,
        rec: Some(Arc::clone(&rec)),
        prof: mcv_prof::installed(),
    };
    let schedule = cfg.schedule.clone();
    let net_handle = std::thread::Builder::new()
        .name("dist-net".into())
        .spawn(move || network.run(&schedule))
        .expect("spawn network thread");

    let site_cfg = |node: usize| SiteConfig {
        protocol: Protocol::ThreePhase,
        coordinator: ProcId(0),
        timeout: cfg.timeout,
        crash_at: cfg.crash_at.and_then(|(who, p)| (who == node).then_some(p)),
        vote_no: cfg.vote_no == Some(node),
        plans: if node == 0 { cfg.plans() } else { Vec::new() },
        naive_timeouts: cfg.naive_timeouts,
        quorum_termination: cfg.quorum_termination,
    };

    let mut handles = Vec::with_capacity(n);
    for (node, rx) in node_rxs.into_iter().enumerate() {
        let seat = NodeSeat {
            id: node,
            n,
            tick_us: cfg.tick_us,
            start,
            rx,
            net: net_tx.clone(),
            ledger: Arc::clone(&ledger),
        };
        let scfg = site_cfg(node);
        let rec = Arc::clone(&rec);
        let engine = (node > 0).then(|| engines[node - 1].clone());
        let h = std::thread::Builder::new()
            .name(format!("dist-node-{node}"))
            .spawn(move || {
                mcv_trace::with_recorder(rec, || match engine {
                    Some(e) => run_node(seat, Site::with_store(scfg, EngineStore::new(e))),
                    None => run_node(seat, Site::with_store(scfg, CoordStore)),
                })
            })
            .expect("spawn node thread");
        handles.push(h);
    }

    // Stop monitor: success needs every fault played out, every up
    // participant decided, and a short quiet tail (no new notes) so
    // in-flight messages that would pull a late node into the
    // protocol get to land first; the deadline is the failsafe
    // against livelock or a genuinely blocked protocol.
    let txns = cfg.global_txns();
    let horizon = cfg.horizon.max(fault_horizon(&cfg.schedule));
    let deadline = Duration::from_millis(cfg.deadline_ms);
    let mut timed_out = false;
    let mut quiet = 0u32;
    let mut last_notes = usize::MAX;
    loop {
        std::thread::sleep(Duration::from_millis(2));
        let elapsed = start.elapsed();
        let ticks = elapsed.as_micros() as u64 / cfg.tick_us.max(1);
        let notes = ledger.notes_len();
        if ticks > horizon && notes == last_notes && ledger.settled(&txns) {
            quiet += 1;
        } else {
            quiet = 0;
        }
        last_notes = notes;
        if quiet >= 4 {
            break;
        }
        if elapsed >= deadline {
            timed_out = !ledger.settled(&txns);
            break;
        }
    }
    for tx in &node_txs {
        let _ = tx.send(NodeEvent::Shutdown);
    }
    let _ = net_tx.send(NetMsg::Shutdown);
    for h in handles {
        let _ = h.join();
    }
    let _ = net_handle.join();

    let led = ledger.snapshot();
    let trace = rec.snapshot();
    let mut committed = 0u64;
    let mut aborted = 0u64;
    let mut undecided = 0u64;
    for t in &txns {
        let all_committed = engines.iter().all(|e| e.committed_ids().contains(t));
        let any_decided = led.decided.iter().any(|((_, txn), _)| *txn == t.0);
        if all_committed {
            committed += 1;
        } else if any_decided {
            aborted += 1;
        } else {
            undecided += 1;
        }
    }
    let stats = DistStats {
        txns: txns.len() as u64,
        committed,
        aborted,
        undecided,
        wall_ms: start.elapsed().as_millis() as u64,
        timed_out,
    };
    mcv_obs::counter("dist.txn.committed", committed);
    mcv_obs::counter("dist.txn.aborted", aborted);
    let oracles = crate::oracle::evaluate(cfg, &stats, &led, &engines, &trace);
    DistOutcome { stats, oracles, decisions: led.decided, trace }
}
