//! The multi-shot pipelined commit runtime: many cross-shard
//! transactions in flight per shard-link at once.
//!
//! [`run_dist`](crate::run_dist) starts every transaction at tick 0
//! and waits out a fixed fault horizon — fine for oracle campaigns,
//! hopeless as a throughput measurement (the serial path settles near
//! 210 tps against ~8,900 tps single-shard). [`run_pipeline`] keeps
//! the same topology, protocol code, fault vocabulary, and oracles,
//! and changes only the *scheduling*:
//!
//! - a **submission pump** streams [`TxnPlan`]s to the coordinator
//!   through [`NodeEvent::Submit`](crate::NodeEvent::Submit), holding
//!   at most `max_inflight` undecided transactions open — the
//!   coordinator's commit log ([`CommitLogEntry`]) totally orders
//!   their decisions;
//! - the transport runs with a per-link **batching window**: messages
//!   submitted while a link's batch head is still in flight ride along
//!   at the head's delivery instant, so concurrent transactions share
//!   hop delays instead of queuing behind FIFO clamps;
//! - shard stores run in **pipelined mode**
//!   ([`EngineStore::pipelined`]): commit records are staged and each
//!   delivery batch pays one WAL force for all of them
//!   (`engine.wal.forces` collapses below `engine.wal.commits`), with
//!   acknowledgements still held until the force completes;
//! - the run ends on **quiescence** (every submitted transaction
//!   decided everywhere, plus a quiet tail), not on a horizon — a
//!   fault-free pipelined run never waits out phantom fault windows.

use crate::node::{run_node, NodeSeat};
use crate::runtime::{fault_horizon, DistConfig, DistStats, Ledger};
use crate::store::{CoordStore, EngineStore};
use crate::transport::{NetMsg, Network, NodeEvent};
use mcv_chaos::OracleResult;
use mcv_commit::{Protocol, Site, SiteConfig};
use mcv_engine::{Engine, EngineConfig};
use mcv_sim::ProcId;
use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of one pipelined run: a [`DistConfig`] (topology,
/// workload, faults, protocol knobs) plus the multi-shot scheduling
/// parameters.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PipelineConfig {
    /// The underlying distributed configuration. Its `n_txns` plans
    /// are streamed by the pump instead of all starting at once; its
    /// `horizon` only matters when faults are scheduled.
    pub dist: DistConfig,
    /// Maximum undecided transactions in flight at once.
    pub max_inflight: usize,
    /// Per-link transport batching window in microseconds; 0 degrades
    /// to the serial per-message schedule.
    pub batch_window_us: u64,
    /// Open-loop arrival offsets in microseconds since run start, one
    /// per transaction (`None` = submit as fast as the window allows).
    /// Shorter vectors leave the tail unconstrained.
    pub arrival_us: Option<Vec<u64>>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            dist: DistConfig::default(),
            max_inflight: 16,
            batch_window_us: 1_000,
            arrival_us: None,
        }
    }
}

/// One entry of the coordinator's commit log: the `index`-th decision
/// node 0 reached, at ledger tick `tick`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CommitLogEntry {
    /// Position in the coordinator's total decision order.
    pub index: usize,
    /// Tick at which the coordinator recorded the decision.
    pub tick: u64,
    /// Global transaction id.
    pub txn: u64,
    /// `true` = commit.
    pub commit: bool,
}

/// Everything one pipelined run produced.
#[derive(Debug)]
pub struct PipelineOutcome {
    /// Aggregate statistics. `wall_ms` is the settle time (submission
    /// of the first plan to quiescence), excluding thread teardown —
    /// the denominator of throughput measurements.
    pub stats: DistStats,
    /// Every oracle's verdict — the same eight oracles the serial
    /// runtime checks.
    pub oracles: Vec<OracleResult>,
    /// First decision per `(node, txn)`; `true` = commit.
    pub decisions: BTreeMap<(u64, u64), bool>,
    /// The coordinator's totally-ordered commit log.
    pub commit_log: Vec<CommitLogEntry>,
    /// The run's causal trace.
    pub trace: mcv_trace::CausalTrace,
    /// Plans actually handed to the coordinator (fewer than `n_txns`
    /// if the in-flight window jammed against a blocked protocol).
    pub submitted: u64,
    /// Commit records appended across all shard WALs.
    pub wal_commits: u64,
    /// Device forces paid across all shard WALs; batching shows as
    /// `wal_forces` well below `wal_commits`.
    pub wal_forces: u64,
}

impl PipelineOutcome {
    /// The first violated oracle, if any.
    pub fn violated(&self) -> Option<&OracleResult> {
        self.oracles.iter().find(|o| !o.pass)
    }

    /// Whether the named oracle failed.
    pub fn violates(&self, name: &str) -> bool {
        self.oracles.iter().any(|o| o.name == name && !o.pass)
    }
}

/// Runs one pipelined multi-shot execution to completion and evaluates
/// every oracle over it.
///
/// The assembly mirrors [`run_dist`](crate::run_dist) — node 0
/// coordinates, nodes `1..=n_shards` each own a live [`Engine`] —
/// with three differences: shard stores are pipelined
/// ([`EngineStore::pipelined`]), the network runs with the configured
/// batching window, and plans arrive through the submission pump
/// rather than the coordinator's start-time plan list.
pub fn run_pipeline(cfg: &PipelineConfig) -> PipelineOutcome {
    let _span = mcv_obs::Span::enter("dist.pipeline");
    let d = &cfg.dist;
    let n = d.n_nodes();
    let rec = mcv_trace::Recorder::unbounded();
    rec.reserve_lanes(n);
    let start = Instant::now();
    let ledger = Ledger::new(n);
    let engines: Vec<Engine> = mcv_trace::with_recorder(Arc::clone(&rec), || {
        (0..d.n_shards)
            .map(|_| {
                Engine::new(EngineConfig {
                    shards: 4,
                    force_latency_us: d.force_latency_us,
                    sample_every: 1,
                    ..Default::default()
                })
            })
            .collect()
    });

    let (net_tx, net_rx) = mpsc::channel::<NetMsg>();
    let mut node_txs: Vec<mpsc::Sender<NodeEvent>> = Vec::with_capacity(n);
    let mut node_rxs: Vec<mpsc::Receiver<NodeEvent>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = mpsc::channel::<NodeEvent>();
        node_txs.push(tx);
        node_rxs.push(rx);
    }

    let network = Network {
        rx: net_rx,
        nodes: node_txs.clone(),
        start,
        tick_us: d.tick_us,
        delay_ticks: d.delay_ticks,
        batch_window_us: cfg.batch_window_us,
        seed: d.seed,
        rec: Some(Arc::clone(&rec)),
        prof: mcv_prof::installed(),
    };
    let schedule = d.schedule.clone();
    let net_handle = std::thread::Builder::new()
        .name("dist-net".into())
        .spawn(move || network.run(&schedule))
        .expect("spawn network thread");

    let site_cfg = |node: usize| SiteConfig {
        protocol: Protocol::ThreePhase,
        coordinator: ProcId(0),
        timeout: d.timeout,
        crash_at: d.crash_at.and_then(|(who, p)| (who == node).then_some(p)),
        vote_no: d.vote_no == Some(node),
        // Pumped, not planned: the coordinator starts idle.
        plans: Vec::new(),
        naive_timeouts: d.naive_timeouts,
        quorum_termination: d.quorum_termination,
    };

    let mut handles = Vec::with_capacity(n);
    for (node, rx) in node_rxs.into_iter().enumerate() {
        let seat = NodeSeat {
            id: node,
            n,
            tick_us: d.tick_us,
            start,
            rx,
            net: net_tx.clone(),
            ledger: Arc::clone(&ledger),
        };
        let scfg = site_cfg(node);
        let rec = Arc::clone(&rec);
        let engine = (node > 0).then(|| engines[node - 1].clone());
        let h = std::thread::Builder::new()
            .name(format!("dist-node-{node}"))
            .spawn(move || {
                mcv_trace::with_recorder(rec, || match engine {
                    Some(e) => run_node(seat, Site::with_store(scfg, EngineStore::pipelined(e))),
                    None => run_node(seat, Site::with_store(scfg, CoordStore)),
                })
            })
            .expect("spawn node thread");
        handles.push(h);
    }

    // Submission pump + stop monitor. Fault-free runs owe no horizon
    // wait — quiescence alone ends them; faulted runs still wait out
    // the schedule so late fault windows get their chance to bite.
    let plans = d.plans();
    let txns = d.global_txns();
    let fault_free = d.schedule.events.is_empty() && d.crash_at.is_none();
    let horizon = if fault_free { 0 } else { d.horizon.max(fault_horizon(&d.schedule)) };
    let deadline = Duration::from_millis(d.deadline_ms);
    let mut submitted = 0usize;
    let mut timed_out = false;
    let mut quiet = 0u32;
    let mut last_notes = usize::MAX;
    let settle_ms = loop {
        std::thread::sleep(Duration::from_millis(1));
        let elapsed = start.elapsed();
        let now_us = elapsed.as_micros() as u64;
        // Pump: respect the in-flight window and the arrival schedule.
        let mut awaiting_arrival = false;
        while submitted < plans.len() {
            if submitted.saturating_sub(ledger.decided_txn_count()) >= cfg.max_inflight {
                break;
            }
            if let Some(at) = cfg.arrival_us.as_ref().and_then(|a| a.get(submitted)) {
                if now_us < *at {
                    awaiting_arrival = true;
                    break;
                }
            }
            let _ = node_txs[0].send(NodeEvent::Submit(plans[submitted].clone()));
            submitted += 1;
        }
        let ticks = now_us / d.tick_us.max(1);
        let notes = ledger.notes_len();
        let all_out = submitted == plans.len();
        if !awaiting_arrival
            && ticks > horizon
            && notes == last_notes
            && ledger.settled(&txns[..submitted])
        {
            quiet += 1;
        } else {
            quiet = 0;
        }
        last_notes = notes;
        // Success: everything streamed and the system went quiet. A
        // long quiet spell with plans still jammed behind the window
        // means the protocol blocked — stop early, the deadline is
        // only the failsafe against live churn.
        if quiet >= 4 && all_out {
            break elapsed.as_millis() as u64;
        }
        if quiet >= 250 {
            timed_out = true;
            break elapsed.as_millis() as u64;
        }
        if elapsed >= deadline {
            timed_out = !all_out || !ledger.settled(&txns[..submitted]);
            break elapsed.as_millis() as u64;
        }
    };
    for tx in &node_txs {
        let _ = tx.send(NodeEvent::Shutdown);
    }
    let _ = net_tx.send(NetMsg::Shutdown);
    for h in handles {
        let _ = h.join();
    }
    let _ = net_handle.join();

    let led = ledger.snapshot();
    let trace = rec.snapshot();
    let mut committed = 0u64;
    let mut aborted = 0u64;
    let mut undecided = 0u64;
    for t in &txns {
        let all_committed = engines.iter().all(|e| e.committed_ids().contains(t));
        let any_decided = led.decided.iter().any(|((_, txn), _)| *txn == t.0);
        if all_committed {
            committed += 1;
        } else if any_decided {
            aborted += 1;
        } else {
            undecided += 1;
        }
    }
    let stats = DistStats {
        txns: txns.len() as u64,
        committed,
        aborted,
        undecided,
        wall_ms: settle_ms,
        timed_out,
    };
    mcv_obs::counter("dist.pipeline.committed", committed);
    mcv_obs::counter("dist.pipeline.aborted", aborted);
    let (wal_commits, wal_forces) = engines
        .iter()
        .map(|e| {
            let m = e.metrics_snapshot();
            (m.counter("engine.wal.commits"), m.counter("engine.wal.forces"))
        })
        .fold((0, 0), |(c, f), (dc, df)| (c + dc, f + df));
    let oracles = crate::oracle::evaluate(d, &stats, &led, &engines, &trace);
    let commit_log = led
        .decision_log
        .iter()
        .enumerate()
        .map(|(index, &(tick, txn, commit))| CommitLogEntry { index, tick, txn, commit })
        .collect();
    let decisions =
        led.decided.into_iter().map(|((node, txn), c)| ((node as u64, txn), c)).collect();
    PipelineOutcome {
        stats,
        oracles,
        decisions,
        commit_log,
        trace,
        submitted: submitted as u64,
        wal_commits,
        wal_forces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_fault_free_commits_everything() {
        let cfg = PipelineConfig {
            dist: DistConfig { n_shards: 2, n_txns: 8, seed: 7, ..DistConfig::default() },
            max_inflight: 4,
            batch_window_us: 600,
            arrival_us: None,
        };
        let out = run_pipeline(&cfg);
        assert!(out.violated().is_none(), "{:?}", out.violated());
        assert_eq!(out.stats.committed, 8);
        assert_eq!(out.submitted, 8);
        assert_eq!(out.commit_log.len(), 8, "coordinator logs one decision per txn");
        assert!(
            out.commit_log.windows(2).all(|w| w[0].index + 1 == w[1].index),
            "commit log indices are dense"
        );
    }

    #[test]
    fn pipeline_batches_wal_forces() {
        let cfg = PipelineConfig {
            dist: DistConfig {
                n_shards: 2,
                n_txns: 12,
                seed: 3,
                force_latency_us: 50,
                ..DistConfig::default()
            },
            max_inflight: 12,
            batch_window_us: 1_000,
            arrival_us: None,
        };
        let out = run_pipeline(&cfg);
        assert!(out.violated().is_none(), "{:?}", out.violated());
        assert_eq!(out.wal_commits, 24, "12 txns x 2 shards");
        assert!(
            out.wal_forces < out.wal_commits,
            "batched forces ({}) must undercut commits ({})",
            out.wal_forces,
            out.wal_commits
        );
    }

    #[test]
    fn pipeline_vote_no_aborts_everywhere() {
        let cfg = PipelineConfig {
            dist: DistConfig {
                n_shards: 2,
                n_txns: 4,
                seed: 11,
                vote_no: Some(1),
                ..DistConfig::default()
            },
            max_inflight: 4,
            batch_window_us: 600,
            arrival_us: None,
        };
        let out = run_pipeline(&cfg);
        assert!(out.violated().is_none(), "{:?}", out.violated());
        assert_eq!(out.stats.committed, 0);
        assert_eq!(out.stats.aborted, 4);
    }
}
