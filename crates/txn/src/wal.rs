//! The undo/redo write-ahead log (the thesis' *Undo/Redo Logging
//! Protocol* building block).
//!
//! Requirements from Section 3.5.1, enforced here:
//! - *log must be kept in stable storage* — the log lives in the
//!   crash-surviving half of a site;
//! - *undo entry in stable log before writing into it / redo entry
//!   before committing* — [`Wal::log_update`] records both the old
//!   (undo) and new (redo) value, and [`crate::SiteDb`] refuses to
//!   apply a write that was not logged first;
//! - *log is a sequence of entries `[t, X, v]` plus sets of committed
//!   and aborted transactions* — exactly [`LogRecord`]'s shape.

use crate::ids::{Item, TxnId, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One record of the write-ahead log.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum LogRecord {
    /// Transaction `txn` intends to change `item` from `old` to `new`.
    /// `old` is the undo entry, `new` the redo entry.
    Update {
        /// The writing transaction.
        txn: TxnId,
        /// The data item.
        item: Item,
        /// Undo value (before-image).
        old: Value,
        /// Redo value (after-image).
        new: Value,
    },
    /// `txn` committed.
    Commit {
        /// The committed transaction.
        txn: TxnId,
    },
    /// `txn` aborted.
    Abort {
        /// The aborted transaction.
        txn: TxnId,
    },
    /// A checkpoint completed; `state` is the checkpointed database
    /// image (kept inline so recovery can start here).
    CheckpointDone {
        /// Snapshot of all data items at the checkpoint.
        state: BTreeMap<Item, Value>,
    },
}

/// The write-ahead log. Append-only; lives in stable storage.
///
/// # Examples
///
/// ```
/// use mcv_txn::{Wal, TxnId};
/// let mut wal = Wal::new();
/// wal.log_update(TxnId(1), "X", 0, 10);
/// wal.log_commit(TxnId(1));
/// let state = wal.recover();
/// assert_eq!(state.get("X"), Some(&10));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Wal {
    records: Vec<LogRecord>,
}

impl Wal {
    /// An empty log.
    pub fn new() -> Self {
        Wal::default()
    }

    /// Appends an update record (undo + redo entry).
    pub fn log_update(&mut self, txn: TxnId, item: impl Into<Item>, old: Value, new: Value) {
        self.records.push(LogRecord::Update { txn, item: item.into(), old, new });
    }

    /// Appends a commit record.
    pub fn log_commit(&mut self, txn: TxnId) {
        self.records.push(LogRecord::Commit { txn });
    }

    /// Appends an abort record.
    pub fn log_abort(&mut self, txn: TxnId) {
        self.records.push(LogRecord::Abort { txn });
    }

    /// Appends a checkpoint record with the stable database image.
    pub fn log_checkpoint(&mut self, state: BTreeMap<Item, Value>) {
        self.records.push(LogRecord::CheckpointDone { state });
    }

    /// All records in append order.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Transactions with a commit record.
    pub fn committed(&self) -> BTreeSet<TxnId> {
        self.records
            .iter()
            .filter_map(|r| match r {
                LogRecord::Commit { txn } => Some(*txn),
                _ => None,
            })
            .collect()
    }

    /// Transactions with an abort record.
    pub fn aborted(&self) -> BTreeSet<TxnId> {
        self.records
            .iter()
            .filter_map(|r| match r {
                LogRecord::Abort { txn } => Some(*txn),
                _ => None,
            })
            .collect()
    }

    /// Transactions with updates but neither commit nor abort — the
    /// in-doubt set a commit protocol must resolve after a failure.
    pub fn in_doubt(&self) -> BTreeSet<TxnId> {
        let committed = self.committed();
        let aborted = self.aborted();
        self.records
            .iter()
            .filter_map(|r| match r {
                LogRecord::Update { txn, .. }
                    if !committed.contains(txn) && !aborted.contains(txn) =>
                {
                    Some(*txn)
                }
                _ => None,
            })
            .collect()
    }

    /// Whether `txn` logged an update for `item` (write-ahead check).
    pub fn has_update(&self, txn: TxnId, item: &str) -> bool {
        self.records.iter().any(
            |r| matches!(r, LogRecord::Update { txn: t, item: i, .. } if *t == txn && i == item),
        )
    }

    /// Recovery: rebuilds the database state after a crash.
    ///
    /// Starts from the most recent checkpoint image (or empty), then
    /// *redoes* updates of committed transactions and *undoes* (skips)
    /// updates of aborted or in-doubt transactions — "the protocol
    /// examines the log, finds the last committed values of all data
    /// items and restores them".
    ///
    /// Idempotent: recovering twice yields the same state (the thesis'
    /// "undo and redo must function even if there is a second crash
    /// during recovery").
    pub fn recover(&self) -> BTreeMap<Item, Value> {
        let committed = self.committed();
        // Find the last checkpoint.
        let mut state: BTreeMap<Item, Value> = BTreeMap::new();
        let mut start = 0;
        for (i, r) in self.records.iter().enumerate() {
            if let LogRecord::CheckpointDone { state: snap } = r {
                state = snap.clone();
                start = i + 1;
            }
        }
        // Redo committed updates after the checkpoint; note commit
        // records may come after the checkpoint for earlier updates, so
        // we replay from the beginning when any committed update precedes
        // the checkpoint but isn't reflected: the checkpoint image in this
        // design always reflects exactly the committed prefix, making the
        // suffix replay sufficient.
        for r in &self.records[start..] {
            if let LogRecord::Update { txn, item, new, .. } = r {
                if committed.contains(txn) {
                    state.insert(item.clone(), *new);
                }
            }
        }
        state
    }

    /// The on-disk image of the log: one JSON record per line, in
    /// append order. This is the byte representation torn-write
    /// injection operates on.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for r in &self.records {
            out.extend_from_slice(
                serde_json::to_string(r).expect("log record serializes").as_bytes(),
            );
            out.push(b'\n');
        }
        out
    }

    /// Rebuilds a log from a (possibly torn) byte image: complete JSON
    /// lines are kept, a trailing partial or corrupt line — the torn
    /// write — is discarded, exactly as a real recovery scan would.
    pub fn from_bytes_lossy(bytes: &[u8]) -> Self {
        let mut records = Vec::new();
        for line in bytes.split(|b| *b == b'\n') {
            if line.is_empty() {
                continue;
            }
            match std::str::from_utf8(line).ok().and_then(|s| serde_json::from_str(s).ok()) {
                Some(r) => records.push(r),
                // A record that doesn't parse marks the torn tail; the
                // log is a prefix-valid sequence, so stop here.
                None => break,
            }
        }
        Wal { records }
    }

    /// Byte length of the *forced* prefix of [`Wal::to_bytes`]: the
    /// image through the last commit, abort, or checkpoint record.
    /// Those are the force points of the undo/redo protocol (the log
    /// is flushed before a decision is durable), so a torn write can
    /// only affect bytes past this offset.
    pub fn stable_len_bytes(&self) -> usize {
        let last_forced = self
            .records
            .iter()
            .rposition(|r| {
                matches!(
                    r,
                    LogRecord::Commit { .. }
                        | LogRecord::Abort { .. }
                        | LogRecord::CheckpointDone { .. }
                )
            })
            .map(|i| i + 1)
            .unwrap_or(0);
        self.records[..last_forced]
            .iter()
            .map(|r| serde_json::to_string(r).expect("log record serializes").len() + 1)
            .sum()
    }

    /// Simulates a torn (partial) write: the byte image is truncated at
    /// offset `at` and the log reloaded from the surviving prefix, with
    /// any trailing half-record discarded.
    ///
    /// The cut is clamped to [`Wal::stable_len_bytes`] — the force
    /// discipline guarantees everything up to the last decision record
    /// reached stable storage, so only the unforced tail (in-doubt
    /// updates) can be lost. Returns the number of records lost.
    pub fn torn_write(&mut self, at: usize) -> usize {
        let bytes = self.to_bytes();
        let cut = at.max(self.stable_len_bytes()).min(bytes.len());
        let survived = Wal::from_bytes_lossy(&bytes[..cut]);
        let lost = self.records.len() - survived.records.len();
        *self = survived;
        lost
    }
}

/// A [`Wal`] with an explicit force (durability) cursor — the
/// group-commit hook the concurrent engine builds on.
///
/// [`Wal`] models durability implicitly: [`Wal::stable_len_bytes`]
/// assumes every decision record was forced the instant it was
/// appended, which is exactly the per-transaction force discipline the
/// thesis states — and exactly what a group-commit log amortizes away.
/// `ForcedWal` makes the force explicit: appends land in a volatile
/// tail, and only [`ForcedWal::force`] moves them into the durable
/// byte image (one "device write" per call, covering *all* pending
/// records). A crash at any instant surrenders exactly
/// [`ForcedWal::durable_image`]; committers therefore must not
/// acknowledge until their commit record's index is below the forced
/// cursor.
///
/// # Examples
///
/// ```
/// use mcv_txn::{ForcedWal, LogRecord, TxnId, Wal};
/// let mut fw = ForcedWal::new();
/// fw.append(LogRecord::Update { txn: TxnId(1), item: "X".into(), old: 0, new: 7 });
/// let lsn = fw.append(LogRecord::Commit { txn: TxnId(1) });
/// assert!(!fw.is_forced(lsn));
/// fw.force();
/// assert!(fw.is_forced(lsn));
/// let survivor = Wal::from_bytes_lossy(fw.durable_image());
/// assert_eq!(survivor.recover().get("X"), Some(&7));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ForcedWal {
    wal: Wal,
    /// Byte image of the forced prefix — what a crash surrenders.
    durable: Vec<u8>,
    /// Number of records covered by `durable`.
    forced_records: usize,
    /// Number of force operations performed.
    forces: u64,
}

impl ForcedWal {
    /// An empty log with nothing forced.
    pub fn new() -> Self {
        ForcedWal::default()
    }

    /// Appends `record` to the volatile tail and returns its LSN (the
    /// record count after the append): the log is forced through this
    /// record once `forced_records() >= lsn`.
    pub fn append(&mut self, record: LogRecord) -> usize {
        self.wal.records.push(record);
        self.wal.records.len()
    }

    /// The full in-memory log (forced prefix + volatile tail).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Number of records in the log, forced or not.
    pub fn len(&self) -> usize {
        self.wal.records.len()
    }

    /// Whether the log has no records at all.
    pub fn is_empty(&self) -> bool {
        self.wal.records.is_empty()
    }

    /// Number of records covered by the durable image.
    pub fn forced_records(&self) -> usize {
        self.forced_records
    }

    /// Whether the record at `lsn` (as returned by [`ForcedWal::append`])
    /// has reached stable storage.
    pub fn is_forced(&self, lsn: usize) -> bool {
        self.forced_records >= lsn
    }

    /// How many force operations ran so far. Group commit shows up as
    /// `forces() < number of commit records`: one device write covers
    /// many committers.
    pub fn forces(&self) -> u64 {
        self.forces
    }

    /// Number of appended-but-unforced records.
    pub fn pending(&self) -> usize {
        self.wal.records.len() - self.forced_records
    }

    /// Forces the entire volatile tail to stable storage in one device
    /// write and returns the number of records newly made durable.
    /// Counts as one force even when several commit records are
    /// covered — the whole point of group commit. A force with nothing
    /// pending is a no-op and is **not** counted.
    pub fn force(&mut self) -> usize {
        let newly = self.pending();
        if newly == 0 {
            return 0;
        }
        for r in &self.wal.records[self.forced_records..] {
            self.durable.extend_from_slice(
                serde_json::to_string(r).expect("log record serializes").as_bytes(),
            );
            self.durable.push(b'\n');
        }
        self.forced_records = self.wal.records.len();
        self.forces += 1;
        newly
    }

    /// The byte image of the forced prefix — exactly what survives a
    /// crash at this instant. Feed it to [`Wal::from_bytes_lossy`] to
    /// recover.
    pub fn durable_image(&self) -> &[u8] {
        &self.durable
    }
}

impl fmt::Display for Wal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.records {
            match r {
                LogRecord::Update { txn, item, old, new } => {
                    writeln!(f, "[{txn}, {item}, {old} -> {new}]")?
                }
                LogRecord::Commit { txn } => writeln!(f, "[commit {txn}]")?,
                LogRecord::Abort { txn } => writeln!(f, "[abort {txn}]")?,
                LogRecord::CheckpointDone { state } => {
                    writeln!(f, "[checkpoint, {} items]", state.len())?
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_redoes_committed_only() {
        let mut wal = Wal::new();
        wal.log_update(TxnId(1), "X", 0, 10);
        wal.log_update(TxnId(2), "Y", 0, 20);
        wal.log_commit(TxnId(1));
        wal.log_abort(TxnId(2));
        let s = wal.recover();
        assert_eq!(s.get("X"), Some(&10));
        assert_eq!(s.get("Y"), None);
    }

    #[test]
    fn in_doubt_transactions_are_not_redone() {
        let mut wal = Wal::new();
        wal.log_update(TxnId(3), "Z", 5, 50);
        let s = wal.recover();
        assert!(s.is_empty());
        assert_eq!(wal.in_doubt().len(), 1);
    }

    #[test]
    fn recovery_starts_from_checkpoint() {
        let mut wal = Wal::new();
        wal.log_update(TxnId(1), "X", 0, 10);
        wal.log_commit(TxnId(1));
        let mut snap = BTreeMap::new();
        snap.insert("X".to_string(), 10);
        wal.log_checkpoint(snap);
        wal.log_update(TxnId(2), "X", 10, 30);
        wal.log_commit(TxnId(2));
        let s = wal.recover();
        assert_eq!(s.get("X"), Some(&30));
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut wal = Wal::new();
        wal.log_update(TxnId(1), "X", 0, 7);
        wal.log_commit(TxnId(1));
        assert_eq!(wal.recover(), wal.recover());
    }

    #[test]
    fn later_writes_win_within_committed() {
        let mut wal = Wal::new();
        wal.log_update(TxnId(1), "X", 0, 1);
        wal.log_commit(TxnId(1));
        wal.log_update(TxnId(2), "X", 1, 2);
        wal.log_commit(TxnId(2));
        assert_eq!(wal.recover().get("X"), Some(&2));
    }

    #[test]
    fn committed_aborted_sets() {
        let mut wal = Wal::new();
        wal.log_commit(TxnId(1));
        wal.log_abort(TxnId(2));
        assert!(wal.committed().contains(&TxnId(1)));
        assert!(wal.aborted().contains(&TxnId(2)));
        assert!(wal.in_doubt().is_empty());
    }

    #[test]
    fn has_update_checks_write_ahead() {
        let mut wal = Wal::new();
        wal.log_update(TxnId(1), "X", 0, 1);
        assert!(wal.has_update(TxnId(1), "X"));
        assert!(!wal.has_update(TxnId(1), "Y"));
        assert!(!wal.has_update(TxnId(2), "X"));
    }

    #[test]
    fn byte_image_round_trips() {
        let mut wal = Wal::new();
        wal.log_update(TxnId(1), "X", 0, 10);
        wal.log_commit(TxnId(1));
        let mut snap = BTreeMap::new();
        snap.insert("X".to_string(), 10);
        wal.log_checkpoint(snap);
        wal.log_update(TxnId(2), "Y", 0, 5);
        wal.log_abort(TxnId(2));
        assert_eq!(Wal::from_bytes_lossy(&wal.to_bytes()), wal);
    }

    #[test]
    fn from_bytes_discards_trailing_partial_record() {
        let mut wal = Wal::new();
        wal.log_update(TxnId(1), "X", 0, 10);
        wal.log_commit(TxnId(1));
        wal.log_update(TxnId(2), "Y", 0, 5);
        let bytes = wal.to_bytes();
        // Cut mid-way through the last record's line.
        let survived = Wal::from_bytes_lossy(&bytes[..bytes.len() - 3]);
        assert_eq!(survived.len(), 2);
        assert_eq!(survived.records()[..], wal.records()[..2]);
    }

    #[test]
    fn stable_prefix_covers_through_last_decision() {
        let mut wal = Wal::new();
        assert_eq!(wal.stable_len_bytes(), 0);
        wal.log_update(TxnId(1), "X", 0, 10);
        assert_eq!(wal.stable_len_bytes(), 0);
        wal.log_commit(TxnId(1));
        let forced = wal.stable_len_bytes();
        assert_eq!(forced, wal.to_bytes().len());
        // An unforced tail update does not extend the stable prefix.
        wal.log_update(TxnId(2), "Y", 0, 5);
        assert_eq!(wal.stable_len_bytes(), forced);
        assert!(wal.to_bytes().len() > forced);
    }

    #[test]
    fn torn_write_is_clamped_to_forced_prefix() {
        let mut wal = Wal::new();
        wal.log_update(TxnId(1), "X", 0, 10);
        wal.log_commit(TxnId(1));
        wal.log_update(TxnId(2), "Y", 0, 5);
        // Tearing at offset 0 cannot lose the forced commit record.
        let lost = wal.clone().torn_write(0);
        assert_eq!(lost, 1);
        let mut torn = wal.clone();
        torn.torn_write(0);
        assert_eq!(torn.committed().len(), 1);
        assert_eq!(torn.len(), 2);
        // Recovery is unchanged: only the in-doubt tail was lost.
        assert_eq!(torn.recover(), wal.recover());
    }

    #[test]
    fn torn_write_mid_record_drops_the_half_record() {
        let mut wal = Wal::new();
        wal.log_commit(TxnId(1));
        wal.log_update(TxnId(2), "Y", 0, 5);
        let full = wal.to_bytes().len();
        // Tear a few bytes into the unforced update record.
        let lost = wal.torn_write(full - 2);
        assert_eq!(lost, 1);
        assert_eq!(wal.len(), 1);
    }

    #[test]
    fn torn_write_past_end_loses_nothing() {
        let mut wal = Wal::new();
        wal.log_update(TxnId(1), "X", 0, 1);
        wal.log_commit(TxnId(1));
        let lost = wal.torn_write(usize::MAX);
        assert_eq!(lost, 0);
        assert_eq!(wal.len(), 2);
    }

    #[test]
    fn forced_wal_batches_many_commits_into_one_force() {
        let mut fw = ForcedWal::new();
        let mut last = 0;
        for t in 1..=5u64 {
            fw.append(LogRecord::Update { txn: TxnId(t), item: "X".into(), old: 0, new: t as i64 });
            last = fw.append(LogRecord::Commit { txn: TxnId(t) });
        }
        assert_eq!(fw.pending(), 10);
        assert!(!fw.is_forced(last));
        assert_eq!(fw.force(), 10);
        assert_eq!(fw.forces(), 1);
        assert!(fw.is_forced(last));
        assert_eq!(fw.pending(), 0);
        // Forcing with nothing pending neither writes nor counts.
        assert_eq!(fw.force(), 0);
        assert_eq!(fw.forces(), 1);
    }

    #[test]
    fn forced_wal_durable_image_is_the_forced_prefix() {
        let mut fw = ForcedWal::new();
        fw.append(LogRecord::Update { txn: TxnId(1), item: "X".into(), old: 0, new: 10 });
        fw.append(LogRecord::Commit { txn: TxnId(1) });
        fw.force();
        fw.append(LogRecord::Update { txn: TxnId(2), item: "Y".into(), old: 0, new: 20 });
        fw.append(LogRecord::Commit { txn: TxnId(2) });
        // T2's commit is appended but unforced: a crash now loses it.
        let crash = Wal::from_bytes_lossy(fw.durable_image());
        assert_eq!(crash.committed(), BTreeSet::from([TxnId(1)]));
        assert_eq!(crash.recover().get("X"), Some(&10));
        assert_eq!(crash.recover().get("Y"), None);
        fw.force();
        let after = Wal::from_bytes_lossy(fw.durable_image());
        assert_eq!(after, *fw.wal());
        assert_eq!(after.recover().get("Y"), Some(&20));
    }

    #[test]
    fn display_renders_entries() {
        let mut wal = Wal::new();
        wal.log_update(TxnId(1), "X", 0, 1);
        wal.log_commit(TxnId(1));
        let text = wal.to_string();
        assert!(text.contains("[T1, X, 0 -> 1]"));
        assert!(text.contains("[commit T1]"));
    }
}
