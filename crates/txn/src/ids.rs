//! Transaction identifiers and statuses.

use std::fmt;

/// A transaction identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Lifecycle status of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum TxnStatus {
    /// Executing; may still read/write.
    Active,
    /// Durably committed.
    Committed,
    /// Rolled back.
    Aborted,
}

impl fmt::Display for TxnStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnStatus::Active => write!(f, "active"),
            TxnStatus::Committed => write!(f, "committed"),
            TxnStatus::Aborted => write!(f, "aborted"),
        }
    }
}

/// The value type stored in data items.
pub type Value = i64;

/// The name of a data item.
pub type Item = String;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(TxnId(3).to_string(), "T3");
        assert_eq!(TxnStatus::Committed.to_string(), "committed");
    }
}
