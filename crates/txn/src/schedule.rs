//! Histories and conflict-serializability checking (the *Serializability
//! of Transactions* global property, Section 4.1.1, made executable).
//!
//! A history records the interleaved read/write operations of a set of
//! transactions. Two operations conflict when they touch the same item,
//! come from different transactions, and at least one writes. The
//! history is conflict-serializable iff the conflict graph is acyclic;
//! the witness serial order is a topological sort.

use crate::ids::{Item, TxnId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Kind of an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum OpKind {
    /// A read of the item.
    Read,
    /// A write of the item.
    Write,
}

/// One operation of a history.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Op {
    /// The issuing transaction.
    pub txn: TxnId,
    /// The touched item.
    pub item: Item,
    /// Read or write.
    pub kind: OpKind,
}

/// An interleaved execution history.
///
/// # Examples
///
/// ```
/// use mcv_txn::{History, OpKind, TxnId};
/// let mut h = History::new();
/// h.push(TxnId(1), "X", OpKind::Write);
/// h.push(TxnId(2), "X", OpKind::Read);
/// h.push(TxnId(2), "Y", OpKind::Write);
/// h.push(TxnId(1), "Y", OpKind::Read);
/// // T1 -> T2 on X, T2 -> T1 on Y: a cycle.
/// assert!(!h.is_conflict_serializable());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct History {
    ops: Vec<Op>,
}

impl History {
    /// An empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Appends an operation.
    pub fn push(&mut self, txn: TxnId, item: impl Into<Item>, kind: OpKind) {
        self.ops.push(Op { txn, item: item.into(), kind });
    }

    /// The operations in execution order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the history has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The set of transactions appearing in the history.
    pub fn transactions(&self) -> BTreeSet<TxnId> {
        self.ops.iter().map(|o| o.txn).collect()
    }

    /// Conflict edges `a → b` (`a`'s op precedes and conflicts with
    /// `b`'s).
    pub fn conflict_edges(&self) -> BTreeSet<(TxnId, TxnId)> {
        let mut edges = BTreeSet::new();
        for (i, a) in self.ops.iter().enumerate() {
            for b in &self.ops[i + 1..] {
                if a.txn != b.txn
                    && a.item == b.item
                    && (a.kind == OpKind::Write || b.kind == OpKind::Write)
                {
                    edges.insert((a.txn, b.txn));
                }
            }
        }
        edges
    }

    /// Whether the conflict graph is acyclic.
    pub fn is_conflict_serializable(&self) -> bool {
        self.equivalent_serial_order().is_some()
    }

    /// A serial order witnessing serializability, if one exists
    /// (topological sort of the conflict graph; ties broken by id).
    pub fn equivalent_serial_order(&self) -> Option<Vec<TxnId>> {
        let txns = self.transactions();
        let edges = self.conflict_edges();
        let mut indegree: BTreeMap<TxnId, usize> = txns.iter().map(|t| (*t, 0)).collect();
        for (_, b) in &edges {
            *indegree.get_mut(b).expect("edge endpoints in txns") += 1;
        }
        let mut order = Vec::new();
        let mut ready: BTreeSet<TxnId> =
            indegree.iter().filter(|(_, d)| **d == 0).map(|(t, _)| *t).collect();
        while let Some(&t) = ready.iter().next() {
            ready.remove(&t);
            order.push(t);
            for (a, b) in &edges {
                if *a == t {
                    let d = indegree.get_mut(b).expect("endpoint");
                    *d -= 1;
                    if *d == 0 {
                        ready.insert(*b);
                    }
                }
            }
        }
        if order.len() == txns.len() {
            Some(order)
        } else {
            None
        }
    }
}

impl History {
    /// View-serializability check by brute force over serial orders
    /// (exponential in the number of transactions — intended for the
    /// small histories of tests and monitors). Two histories are view
    /// equivalent when every read reads-from the same write and final
    /// writes coincide.
    ///
    /// Conflict-serializability implies view-serializability; the
    /// converse fails only with blind writes.
    pub fn is_view_serializable(&self) -> bool {
        let txns: Vec<TxnId> = self.transactions().into_iter().collect();
        if txns.len() > 8 {
            // Guard rail: factorial blow-up.
            return self.is_conflict_serializable();
        }
        let target = self.view_signature(self.ops.clone());
        permutations(&txns).into_iter().any(|order| {
            let serial: Vec<Op> = order
                .iter()
                .flat_map(|t| self.ops.iter().filter(|o| o.txn == *t).cloned())
                .collect();
            self.view_signature(serial) == target
        })
    }

    /// The reads-from relation and final writes of an operation
    /// sequence: `(reader-op-index ↦ writer txn, item ↦ final writer)`.
    #[allow(clippy::type_complexity)]
    fn view_signature(
        &self,
        ops: Vec<Op>,
    ) -> (Vec<(TxnId, Item, usize, Option<TxnId>)>, BTreeMap<Item, TxnId>) {
        let mut last_writer: BTreeMap<Item, TxnId> = BTreeMap::new();
        // Reads are keyed by their occurrence index within (txn, item)
        // so the i-th read of an item by a transaction must read from
        // the same writer in the witness order.
        let mut occurrence: BTreeMap<(TxnId, Item), usize> = BTreeMap::new();
        let mut reads = Vec::new();
        for o in &ops {
            match o.kind {
                OpKind::Read => {
                    let k = occurrence
                        .entry((o.txn, o.item.clone()))
                        .and_modify(|c| *c += 1)
                        .or_insert(0);
                    reads.push((o.txn, o.item.clone(), *k, last_writer.get(&o.item).copied()));
                }
                OpKind::Write => {
                    last_writer.insert(o.item.clone(), o.txn);
                }
            }
        }
        reads.sort();
        (reads, last_writer)
    }
}

fn permutations(items: &[TxnId]) -> Vec<Vec<TxnId>> {
    if items.is_empty() {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for (i, x) in items.iter().enumerate() {
        let mut rest: Vec<TxnId> = items.to_vec();
        rest.remove(i);
        for mut p in permutations(&rest) {
            p.insert(0, *x);
            out.push(p);
        }
    }
    out
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, o) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            let k = match o.kind {
                OpKind::Read => "r",
                OpKind::Write => "w",
            };
            write!(f, "{k}{}[{}]", o.txn.0, o.item)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_history_is_serializable() {
        let mut h = History::new();
        h.push(TxnId(1), "X", OpKind::Write);
        h.push(TxnId(1), "Y", OpKind::Write);
        h.push(TxnId(2), "X", OpKind::Read);
        h.push(TxnId(2), "Y", OpKind::Read);
        assert!(h.is_conflict_serializable());
        assert_eq!(h.equivalent_serial_order(), Some(vec![TxnId(1), TxnId(2)]));
    }

    #[test]
    fn classic_nonserializable_interleaving() {
        // r1[X] w2[X] w1[X]: T2 between T1's read and write.
        let mut h = History::new();
        h.push(TxnId(1), "X", OpKind::Read);
        h.push(TxnId(2), "X", OpKind::Write);
        h.push(TxnId(1), "X", OpKind::Write);
        assert!(!h.is_conflict_serializable());
    }

    #[test]
    fn reads_do_not_conflict() {
        let mut h = History::new();
        h.push(TxnId(1), "X", OpKind::Read);
        h.push(TxnId(2), "X", OpKind::Read);
        h.push(TxnId(1), "X", OpKind::Read);
        assert!(h.conflict_edges().is_empty());
        assert!(h.is_conflict_serializable());
    }

    #[test]
    fn disjoint_items_never_conflict() {
        let mut h = History::new();
        h.push(TxnId(1), "X", OpKind::Write);
        h.push(TxnId(2), "Y", OpKind::Write);
        h.push(TxnId(1), "X", OpKind::Write);
        assert!(h.is_conflict_serializable());
    }

    #[test]
    fn empty_history_is_serializable() {
        assert!(History::new().is_conflict_serializable());
    }

    #[test]
    fn view_serializable_blind_write_history() {
        // The classic view-but-not-conflict-serializable history:
        // w1[X] w2[X] w2[Y] w1[Y] w3[X] w3[Y]  (all blind writes; T3
        // overwrites everything, so T1 T2 T3 is a view-equivalent
        // serial order, but the conflict graph has a T1/T2 cycle).
        let mut h = History::new();
        h.push(TxnId(1), "X", OpKind::Write);
        h.push(TxnId(2), "X", OpKind::Write);
        h.push(TxnId(2), "Y", OpKind::Write);
        h.push(TxnId(1), "Y", OpKind::Write);
        h.push(TxnId(3), "X", OpKind::Write);
        h.push(TxnId(3), "Y", OpKind::Write);
        assert!(!h.is_conflict_serializable());
        assert!(h.is_view_serializable());
    }

    #[test]
    fn conflict_serializable_implies_view_serializable() {
        let mut h = History::new();
        h.push(TxnId(1), "X", OpKind::Write);
        h.push(TxnId(2), "X", OpKind::Read);
        h.push(TxnId(2), "Y", OpKind::Write);
        assert!(h.is_conflict_serializable());
        assert!(h.is_view_serializable());
    }

    #[test]
    fn non_view_serializable_interleaving() {
        // r1[X] w2[X] r1[X] — T1 reads initial then T2's value: no
        // serial order reproduces both reads.
        let mut h = History::new();
        h.push(TxnId(1), "X", OpKind::Read);
        h.push(TxnId(2), "X", OpKind::Write);
        h.push(TxnId(1), "X", OpKind::Read);
        assert!(!h.is_view_serializable());
    }

    #[test]
    fn display_uses_standard_notation() {
        let mut h = History::new();
        h.push(TxnId(1), "X", OpKind::Read);
        h.push(TxnId(2), "X", OpKind::Write);
        assert_eq!(h.to_string(), "r1[X] w2[X]");
    }
}
