//! Shared skewed-key generation for workload drivers.
//!
//! Every workload in the repo (engine stress, mvcc anomaly campaigns,
//! bench experiments) draws item indices from the same two
//! distributions: uniform, or YCSB-style Zipfian. This module is the
//! single home for both so the engine and bench crates agree on what
//! `--zipf <theta>` means.

use rand::RngCore;

/// YCSB-style Zipfian item selector (Gray et al.'s rejection-free
/// formula with precomputed zeta).
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: usize,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    /// A selector over `0..n` with skew `theta`.
    pub fn new(n: usize, theta: f64) -> Zipfian {
        assert!(n > 0, "zipfian over empty domain");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian { n, theta, alpha, zetan, eta }
    }

    fn zeta(n: usize, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draws one item index in `0..n` (index 0 is the hottest).
    pub fn next(&self, rng: &mut impl RngCore) -> usize {
        // 53 uniform mantissa bits in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let idx = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as usize;
        idx.min(self.n - 1)
    }
}

/// A key picker over `0..n`: the shared dispatch point between the
/// uniform and skewed distributions, so call sites hold one value
/// regardless of mix.
#[derive(Debug, Clone)]
pub enum KeyPicker {
    /// Uniform over the domain.
    Uniform {
        /// Domain size.
        n: usize,
    },
    /// Zipfian-skewed over the domain.
    Zipfian(Zipfian),
}

impl KeyPicker {
    /// A uniform picker over `0..n`.
    pub fn uniform(n: usize) -> KeyPicker {
        assert!(n > 0, "picker over empty domain");
        KeyPicker::Uniform { n }
    }

    /// A zipfian picker over `0..n` with skew `theta`.
    pub fn zipfian(n: usize, theta: f64) -> KeyPicker {
        KeyPicker::Zipfian(Zipfian::new(n, theta))
    }

    /// Draws one index in `0..n`.
    pub fn next(&self, rng: &mut impl RngCore) -> usize {
        match self {
            KeyPicker::Uniform { n } => (rng.next_u64() % *n as u64) as usize,
            KeyPicker::Zipfian(z) => z.next(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipfian_prefers_low_indices() {
        let z = Zipfian::new(1_000, 0.99);
        let mut rng = StdRng::seed_from_u64(7);
        let mut head = 0u64;
        const DRAWS: u64 = 10_000;
        for _ in 0..DRAWS {
            if z.next(&mut rng) < 10 {
                head += 1;
            }
        }
        // Under uniform the first 10 of 1000 items get ~1% of draws;
        // zipf(0.99) concentrates far more than that.
        assert!(head > DRAWS / 4, "zipf head share too small: {head}/{DRAWS}");
    }

    #[test]
    fn zipfian_stays_in_range() {
        let z = Zipfian::new(17, 0.5);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..5_000 {
            assert!(z.next(&mut rng) < 17);
        }
    }

    #[test]
    fn picker_dispatch_covers_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        for picker in [KeyPicker::uniform(9), KeyPicker::zipfian(9, 0.7)] {
            let mut seen = [false; 9];
            for _ in 0..2_000 {
                seen[picker.next(&mut rng)] = true;
            }
            assert!(seen.iter().filter(|s| **s).count() >= 5, "picker barely covers domain");
        }
    }
}
