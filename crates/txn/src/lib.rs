//! # mcv-txn
//!
//! The transaction-processing substrate under the thesis' 3PC case
//! study: every local building block the commit protocol assumes,
//! implemented executably and tested against the very axioms the
//! formal specs in `mcv-blocks` state.
//!
//! - [`Wal`] — undo/redo write-ahead logging (`Storevalues`, SP6);
//! - [`LockManager`] — strict two-phase locking (`Readlock`/`Writelock`,
//!   SP7/SP8);
//! - [`CheckpointStore`] — tentative/permanent checkpoints (SP9);
//! - [`History`] — conflict-serializability checking (global property 1);
//! - [`SiteDb`] — the crash-faithful site database integrating all of
//!   the above with rollback recovery (SP10).
//!
//! # Examples
//!
//! ```
//! use mcv_txn::{SiteDb, TxnId};
//! let mut db = SiteDb::new();
//! db.begin(TxnId(1));
//! db.write(TxnId(1), "account_a", -100)?;
//! db.write(TxnId(1), "account_b", 100)?;
//! db.commit(TxnId(1))?;
//! db.crash();
//! db.recover();
//! assert_eq!(db.value("account_b"), Some(100));
//! # Ok::<(), mcv_txn::DbError>(())
//! ```

#![warn(missing_docs)]

mod checkpoint;
mod db;
mod ids;
mod keys;
mod locks;
mod schedule;
mod wal;

pub use checkpoint::{CheckpointStore, Snapshot};
pub use db::{DbError, SiteDb};
pub use ids::{Item, TxnId, TxnStatus, Value};
pub use keys::{KeyPicker, Zipfian};
pub use locks::{shard_of, youngest_victim, LockError, LockManager, LockMode, LockOutcome};
pub use schedule::{History, Op, OpKind};
pub use wal::{ForcedWal, LogRecord, Wal};
