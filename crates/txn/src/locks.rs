//! Strict two-phase locking (the thesis' *Two Phase Locking Protocol*
//! building block).
//!
//! Requirements from Section 3.5.1, enforced and tested here:
//! - *only one transaction at a time may write-lock an object* —
//!   exclusive locks are mutually exclusive;
//! - *multiple transactions may read-lock an object; a read counter
//!   holds the number* — shared locks are counted;
//! - *if an object is write-locked, no read locks are allowed*;
//! - *transaction must unlock all objects before finishing* —
//!   [`LockManager::release_all`] at commit/abort (strict 2PL);
//! - the 2PL rule proper: once a transaction has released any lock it
//!   may not acquire another (growing/shrinking phases).

use crate::ids::{Item, TxnId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Lock modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum LockMode {
    /// Shared (read) lock.
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

/// Outcome of a lock request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock was granted immediately.
    Granted,
    /// The request conflicts and was queued; the transaction must wait.
    Queued,
    /// Granting would deadlock. The `victim` is chosen deterministically
    /// (see [`LockManager::deadlock_victim`]); the caller must abort it —
    /// usually, but not necessarily, the requester itself.
    WouldDeadlock {
        /// The waits-for cycle found, as transaction ids.
        cycle: Vec<TxnId>,
        /// The deterministic victim: youngest transaction in the cycle.
        victim: TxnId,
    },
}

/// The deterministic youngest-victim rule shared by [`LockManager`] and
/// the concurrent engine's deadlock detector: the victim is the
/// transaction with the numerically greatest [`TxnId`] in the cycle
/// (ids are handed out monotonically, so the greatest id is the
/// youngest transaction — the one with the least work to redo).
/// Panics on an empty cycle.
pub fn youngest_victim(cycle: &[TxnId]) -> TxnId {
    *cycle.iter().max().expect("deadlock cycle is non-empty")
}

/// Maps `item` to one of `shards` lock-table/data shards (FNV-1a hash).
/// Shared between the engine's sharded lock table and anything else
/// that partitions the item space, so co-located items stay co-located
/// across layers. Panics if `shards` is zero.
pub fn shard_of(item: &str, shards: usize) -> usize {
    assert!(shards > 0, "shard_of: zero shards");
    let mut h: u64 = 0xcbf29ce484222325;
    for b in item.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % shards as u64) as usize
}

/// Errors violating the locking discipline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// The transaction already released a lock and is in its shrinking
    /// phase (2PL violation).
    ShrinkingPhase(TxnId),
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::ShrinkingPhase(t) => {
                write!(f, "{t} attempted to lock after unlocking (2PL violation)")
            }
        }
    }
}

impl std::error::Error for LockError {}

#[derive(Debug, Default, Clone)]
struct LockEntry {
    /// Holders of shared locks (the "read counter" is `sharers.len()`).
    sharers: BTreeSet<TxnId>,
    /// Holder of the exclusive lock, if any (the "1-bit write lock flag").
    exclusive: Option<TxnId>,
    /// FIFO wait queue.
    waiting: VecDeque<(TxnId, LockMode)>,
}

/// A strict two-phase lock manager.
///
/// # Examples
///
/// ```
/// use mcv_txn::{LockManager, LockMode, LockOutcome, TxnId};
/// let mut lm = LockManager::new();
/// assert_eq!(lm.acquire(TxnId(1), "X", LockMode::Exclusive).unwrap(), LockOutcome::Granted);
/// assert_eq!(lm.acquire(TxnId(2), "X", LockMode::Shared).unwrap(), LockOutcome::Queued);
/// let granted = lm.release_all(TxnId(1));
/// assert_eq!(granted, vec![(TxnId(2), "X".to_string(), LockMode::Shared)]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct LockManager {
    table: BTreeMap<Item, LockEntry>,
    /// Transactions that have released at least one lock.
    shrinking: BTreeSet<TxnId>,
    /// Waits-for edges for deadlock detection.
    waits_for: BTreeMap<TxnId, BTreeSet<TxnId>>,
    /// Monotone request counter driving `first_touch`.
    seq: u64,
    /// Sequence number of each transaction's first lock request, for
    /// the victim-selection tie-break.
    first_touch: BTreeMap<TxnId, u64>,
}

impl LockManager {
    /// A new, empty lock manager.
    pub fn new() -> Self {
        LockManager::default()
    }

    /// Requests `mode` on `item` for `txn`.
    ///
    /// # Errors
    ///
    /// [`LockError::ShrinkingPhase`] if `txn` already released locks.
    pub fn acquire(
        &mut self,
        txn: TxnId,
        item: impl Into<Item>,
        mode: LockMode,
    ) -> Result<LockOutcome, LockError> {
        if self.shrinking.contains(&txn) {
            return Err(LockError::ShrinkingPhase(txn));
        }
        self.seq += 1;
        let seq = self.seq;
        self.first_touch.entry(txn).or_insert(seq);
        let item = item.into();
        let entry = self.table.entry(item.clone()).or_default();
        let compatible = match mode {
            LockMode::Shared => entry.exclusive.is_none() || entry.exclusive == Some(txn),
            LockMode::Exclusive => {
                (entry.exclusive.is_none() || entry.exclusive == Some(txn))
                    && entry.sharers.iter().all(|s| *s == txn)
            }
        };
        // Respect the FIFO queue: even a compatible request waits behind
        // earlier queued conflicting requests (no starvation of writers).
        let must_queue = !entry.waiting.is_empty() && entry.waiting.iter().any(|(t, _)| *t != txn);
        if compatible && !must_queue {
            match mode {
                LockMode::Shared => {
                    // Holding exclusive subsumes shared.
                    if entry.exclusive != Some(txn) {
                        entry.sharers.insert(txn);
                    }
                }
                LockMode::Exclusive => {
                    entry.sharers.remove(&txn);
                    entry.exclusive = Some(txn);
                }
            }
            return Ok(LockOutcome::Granted);
        }
        // Build waits-for edges to current holders.
        let holders: BTreeSet<TxnId> =
            entry.sharers.iter().copied().chain(entry.exclusive).filter(|h| *h != txn).collect();
        let edges = self.waits_for.entry(txn).or_default();
        for h in &holders {
            edges.insert(*h);
        }
        if let Some(cycle) = self.find_cycle(txn) {
            // Undo the tentative edges for this request.
            self.waits_for.remove(&txn);
            let victim = self.deadlock_victim(&cycle);
            return Ok(LockOutcome::WouldDeadlock { cycle, victim });
        }
        self.table.get_mut(&item).expect("entry just touched").waiting.push_back((txn, mode));
        Ok(LockOutcome::Queued)
    }

    /// Non-queuing variant of [`LockManager::acquire`]: grants the lock
    /// if immediately compatible, otherwise returns `Ok(false)` without
    /// enqueuing (the caller retries or aborts — how `SiteDb` models
    /// waiting under the event-driven simulator).
    ///
    /// # Errors
    ///
    /// [`LockError::ShrinkingPhase`] if `txn` already released locks.
    pub fn try_acquire(
        &mut self,
        txn: TxnId,
        item: impl Into<Item>,
        mode: LockMode,
    ) -> Result<bool, LockError> {
        if self.shrinking.contains(&txn) {
            return Err(LockError::ShrinkingPhase(txn));
        }
        let item = item.into();
        let entry = self.table.entry(item).or_default();
        let compatible = match mode {
            LockMode::Shared => entry.exclusive.is_none() || entry.exclusive == Some(txn),
            LockMode::Exclusive => {
                (entry.exclusive.is_none() || entry.exclusive == Some(txn))
                    && entry.sharers.iter().all(|s| *s == txn)
            }
        };
        let must_queue = !entry.waiting.is_empty() && entry.waiting.iter().any(|(t, _)| *t != txn);
        if compatible && !must_queue {
            match mode {
                LockMode::Shared => {
                    // Holding exclusive subsumes shared.
                    if entry.exclusive != Some(txn) {
                        entry.sharers.insert(txn);
                    }
                }
                LockMode::Exclusive => {
                    entry.sharers.remove(&txn);
                    entry.exclusive = Some(txn);
                }
            }
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Releases everything `txn` holds or waits for, marking it
    /// shrinking (strict 2PL: called at commit/abort). Returns the
    /// requests that became grantable, in grant order.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<(TxnId, Item, LockMode)> {
        self.shrinking.insert(txn);
        self.waits_for.remove(&txn);
        self.first_touch.remove(&txn);
        for edges in self.waits_for.values_mut() {
            edges.remove(&txn);
        }
        let mut granted = Vec::new();
        let items: Vec<Item> = self.table.keys().cloned().collect();
        for item in items {
            let entry = self.table.get_mut(&item).expect("key listed");
            entry.sharers.remove(&txn);
            if entry.exclusive == Some(txn) {
                entry.exclusive = None;
            }
            entry.waiting.retain(|(t, _)| *t != txn);
            // Promote waiters.
            while let Some((next, mode)) = entry.waiting.front().copied() {
                let ok = match mode {
                    LockMode::Shared => entry.exclusive.is_none(),
                    LockMode::Exclusive => entry.exclusive.is_none() && entry.sharers.is_empty(),
                };
                if !ok {
                    break;
                }
                entry.waiting.pop_front();
                match mode {
                    LockMode::Shared => {
                        entry.sharers.insert(next);
                    }
                    LockMode::Exclusive => entry.exclusive = Some(next),
                }
                self.waits_for.remove(&next);
                granted.push((next, item.clone(), mode));
            }
        }
        granted
    }

    /// Whether `txn` holds a lock on `item` at least as strong as `mode`.
    pub fn holds(&self, txn: TxnId, item: &str, mode: LockMode) -> bool {
        match self.table.get(item) {
            None => false,
            Some(e) => match mode {
                LockMode::Shared => e.sharers.contains(&txn) || e.exclusive == Some(txn),
                LockMode::Exclusive => e.exclusive == Some(txn),
            },
        }
    }

    /// Number of shared holders of `item` (the thesis' read counter).
    pub fn read_count(&self, item: &str) -> usize {
        self.table.get(item).map_or(0, |e| e.sharers.len())
    }

    /// Whether `item` is write-locked (the 1-bit write-lock flag).
    pub fn write_locked(&self, item: &str) -> bool {
        self.table.get(item).is_some_and(|e| e.exclusive.is_some())
    }

    /// Deterministic deadlock-victim selection over `cycle`.
    ///
    /// Rule (documented so the engine's abort/retry loop stays
    /// reproducible): the **youngest** transaction in the cycle is the
    /// victim — primarily the numerically greatest [`TxnId`] (ids are
    /// assigned monotonically); among hypothetical equal ids, the one
    /// whose *first lock acquisition* came latest. Since `TxnId`s are
    /// unique in any one manager, the tie-break never fires in
    /// practice, but pinning it keeps the rule total.
    ///
    /// Panics on an empty cycle.
    pub fn deadlock_victim(&self, cycle: &[TxnId]) -> TxnId {
        *cycle
            .iter()
            .max_by_key(|t| (t.0, self.first_touch.get(t).copied().unwrap_or(0)))
            .expect("deadlock cycle is non-empty")
    }

    /// DFS cycle search in the waits-for graph starting from `from`.
    fn find_cycle(&self, from: TxnId) -> Option<Vec<TxnId>> {
        let mut path = vec![from];
        let mut on_path = BTreeSet::from([from]);
        self.dfs(from, from, &mut path, &mut on_path)
    }

    fn dfs(
        &self,
        start: TxnId,
        at: TxnId,
        path: &mut Vec<TxnId>,
        on_path: &mut BTreeSet<TxnId>,
    ) -> Option<Vec<TxnId>> {
        if let Some(next) = self.waits_for.get(&at) {
            for &n in next {
                if n == start {
                    return Some(path.clone());
                }
                if on_path.insert(n) {
                    path.push(n);
                    if let Some(c) = self.dfs(start, n, path, on_path) {
                        return Some(c);
                    }
                    path.pop();
                    on_path.remove(&n);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_locks_are_counted() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(TxnId(1), "X", LockMode::Shared).unwrap(), LockOutcome::Granted);
        assert_eq!(lm.acquire(TxnId(2), "X", LockMode::Shared).unwrap(), LockOutcome::Granted);
        assert_eq!(lm.read_count("X"), 2);
        assert!(!lm.write_locked("X"));
    }

    #[test]
    fn write_lock_excludes_everyone() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(TxnId(1), "X", LockMode::Exclusive).unwrap(), LockOutcome::Granted);
        assert_eq!(lm.acquire(TxnId(2), "X", LockMode::Shared).unwrap(), LockOutcome::Queued);
        assert_eq!(lm.acquire(TxnId(3), "X", LockMode::Exclusive).unwrap(), LockOutcome::Queued);
        assert!(lm.write_locked("X"));
    }

    #[test]
    fn readers_block_writers_but_not_readers() {
        let mut lm = LockManager::new();
        lm.acquire(TxnId(1), "X", LockMode::Shared).unwrap();
        assert_eq!(lm.acquire(TxnId(2), "X", LockMode::Exclusive).unwrap(), LockOutcome::Queued);
        // A later reader queues behind the waiting writer (fairness).
        assert_eq!(lm.acquire(TxnId(3), "X", LockMode::Shared).unwrap(), LockOutcome::Queued);
    }

    #[test]
    fn release_promotes_waiters_in_order() {
        let mut lm = LockManager::new();
        lm.acquire(TxnId(1), "X", LockMode::Exclusive).unwrap();
        lm.acquire(TxnId(2), "X", LockMode::Shared).unwrap();
        lm.acquire(TxnId(3), "X", LockMode::Shared).unwrap();
        let granted = lm.release_all(TxnId(1));
        assert_eq!(granted.len(), 2);
        assert_eq!(lm.read_count("X"), 2);
    }

    #[test]
    fn lock_upgrade_by_sole_sharer() {
        let mut lm = LockManager::new();
        lm.acquire(TxnId(1), "X", LockMode::Shared).unwrap();
        assert_eq!(lm.acquire(TxnId(1), "X", LockMode::Exclusive).unwrap(), LockOutcome::Granted);
        assert!(lm.holds(TxnId(1), "X", LockMode::Exclusive));
    }

    #[test]
    fn two_phase_rule_enforced() {
        let mut lm = LockManager::new();
        lm.acquire(TxnId(1), "X", LockMode::Shared).unwrap();
        lm.release_all(TxnId(1));
        let err = lm.acquire(TxnId(1), "Y", LockMode::Shared).unwrap_err();
        assert_eq!(err, LockError::ShrinkingPhase(TxnId(1)));
    }

    #[test]
    fn deadlock_is_detected() {
        let mut lm = LockManager::new();
        lm.acquire(TxnId(1), "X", LockMode::Exclusive).unwrap();
        lm.acquire(TxnId(2), "Y", LockMode::Exclusive).unwrap();
        assert_eq!(lm.acquire(TxnId(1), "Y", LockMode::Exclusive).unwrap(), LockOutcome::Queued);
        match lm.acquire(TxnId(2), "X", LockMode::Exclusive).unwrap() {
            LockOutcome::WouldDeadlock { cycle, victim } => {
                assert!(cycle.contains(&TxnId(2)));
                assert_eq!(victim, TxnId(2));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn victim_selection_is_youngest_not_requester() {
        // T1 (older) closes the cycle, but the deterministic victim is
        // the youngest member, T3 — not the requester.
        let mut lm = LockManager::new();
        lm.acquire(TxnId(3), "X", LockMode::Exclusive).unwrap();
        lm.acquire(TxnId(1), "Y", LockMode::Exclusive).unwrap();
        lm.acquire(TxnId(3), "Y", LockMode::Exclusive).unwrap();
        match lm.acquire(TxnId(1), "X", LockMode::Exclusive).unwrap() {
            LockOutcome::WouldDeadlock { cycle, victim } => {
                assert_eq!(victim, TxnId(3));
                assert_eq!(victim, youngest_victim(&cycle));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn victim_selection_is_deterministic_across_replays() {
        // Same request sequence, same victim — every time.
        let run = || {
            let mut lm = LockManager::new();
            lm.acquire(TxnId(5), "A", LockMode::Exclusive).unwrap();
            lm.acquire(TxnId(2), "B", LockMode::Exclusive).unwrap();
            lm.acquire(TxnId(9), "C", LockMode::Exclusive).unwrap();
            lm.acquire(TxnId(5), "B", LockMode::Exclusive).unwrap();
            lm.acquire(TxnId(2), "C", LockMode::Exclusive).unwrap();
            match lm.acquire(TxnId(9), "A", LockMode::Exclusive).unwrap() {
                LockOutcome::WouldDeadlock { victim, .. } => victim,
                other => panic!("expected deadlock, got {other:?}"),
            }
        };
        assert_eq!(run(), TxnId(9));
        assert_eq!(run(), run());
    }

    #[test]
    fn youngest_victim_picks_max_id() {
        assert_eq!(youngest_victim(&[TxnId(4), TxnId(11), TxnId(7)]), TxnId(11));
        assert_eq!(youngest_victim(&[TxnId(1)]), TxnId(1));
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for shards in [1usize, 2, 16, 61] {
            for item in ["X", "Y", "acct0", "acct12345", ""] {
                let s = shard_of(item, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(item, shards), "stable for {item}");
            }
        }
        // Not everything lands in one shard.
        let spread: std::collections::BTreeSet<usize> =
            (0..64).map(|i| shard_of(&format!("item{i}"), 16)).collect();
        assert!(spread.len() > 4, "hash should spread: {spread:?}");
    }

    #[test]
    fn victim_abort_unblocks_the_other() {
        let mut lm = LockManager::new();
        lm.acquire(TxnId(1), "X", LockMode::Exclusive).unwrap();
        lm.acquire(TxnId(2), "Y", LockMode::Exclusive).unwrap();
        lm.acquire(TxnId(1), "Y", LockMode::Exclusive).unwrap();
        let _ = lm.acquire(TxnId(2), "X", LockMode::Exclusive).unwrap();
        // T2 aborts; T1's request for Y should now be granted.
        let granted = lm.release_all(TxnId(2));
        assert!(granted.contains(&(TxnId(1), "Y".to_string(), LockMode::Exclusive)));
    }

    #[test]
    fn holds_reflects_modes() {
        let mut lm = LockManager::new();
        lm.acquire(TxnId(1), "X", LockMode::Shared).unwrap();
        assert!(lm.holds(TxnId(1), "X", LockMode::Shared));
        assert!(!lm.holds(TxnId(1), "X", LockMode::Exclusive));
        assert!(!lm.holds(TxnId(2), "X", LockMode::Shared));
    }
}
